//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! Provides the surface the workspace benches use (`benchmark_group`,
//! `bench_function`, `BenchmarkId`, `Throughput`, `black_box`, the
//! `criterion_group!` / `criterion_main!` macros) with a simple
//! calibrate-then-measure loop instead of criterion's statistics engine:
//! each benchmark is warmed up, its iteration count is scaled so one
//! sample takes ≳10 ms, and the mean ns/iter over the samples is printed
//! together with derived throughput.
//!
//! Passing `--test` (as `cargo test --benches` does) runs every
//! registered benchmark exactly once, as a smoke test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier; defers to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group, reported as
/// elements/sec or bytes/sec next to the timing line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured routine processes this many logical elements.
    Elements(u64),
    /// The measured routine processes this many bytes.
    Bytes(u64),
}

/// Identifier for one benchmark inside a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("lookup", 1024)` renders as `lookup/1024`.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is only a parameter (no function name).
    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to the closure of `bench_function`.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Iterations to run when measuring (1 in calibration/test mode).
    iters: u64,
    /// Total time spent inside `iter`'s routine.
    elapsed: Duration,
}

impl Bencher {
    /// Runs the routine `self.iters` times, accumulating elapsed time.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Global measurement settings (shared by every group).
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    /// Target wall time per sample when calibrating.
    sample_target: Duration,
    /// When set, run each routine once and skip timing.
    test_mode: bool,
}

impl Default for Settings {
    fn default() -> Self {
        Settings { sample_size: 10, sample_target: Duration::from_millis(10), test_mode: false }
    }
}

/// The benchmark manager: entry point handed to `criterion_group!`
/// functions.
#[derive(Debug)]
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes a harness=false bench target with `--bench` only
        // under `cargo bench`; `cargo test --benches` passes no such flag
        // (and libtest-style runners pass `--test`). Anything but a real
        // bench run gets smoke-test mode: each routine once, no timing.
        let args: Vec<String> = std::env::args().collect();
        let test_mode = !args.iter().any(|a| a == "--bench") || args.iter().any(|a| a == "--test");
        Criterion { settings: Settings { test_mode, ..Settings::default() } }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let settings = self.settings.clone();
        run_benchmark(&id.into().id, &settings, None, f);
        self
    }
}

/// A group of related benchmarks sharing sample settings and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    // Tie the group's lifetime to the Criterion that opened it, matching
    // the real API so `group.finish()` ordering stays enforced.
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&label, &self.settings, self.throughput, f);
        self
    }

    /// Measures one benchmark, handing `input` to the closure (API
    /// parity with criterion; the input is simply passed through).
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing nothing extra; exists for API parity).
    pub fn finish(self) {}
}

fn run_benchmark(
    label: &str,
    settings: &Settings,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };

    if settings.test_mode {
        f(&mut b);
        println!("test {label} ... ok");
        return;
    }

    // Calibrate: grow the iteration count until one sample is ≥ target.
    f(&mut b); // warm-up
    loop {
        f(&mut b);
        if b.elapsed >= settings.sample_target || b.iters >= 1 << 30 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            64
        } else {
            // Aim straight at the target with 20% headroom.
            let ratio = settings.sample_target.as_secs_f64() / b.elapsed.as_secs_f64();
            (ratio * 1.2).ceil() as u64
        };
        b.iters = b.iters.saturating_mul(grow.max(2)).min(1 << 30);
    }

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..settings.sample_size {
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters;
    }

    let ns_per_iter = total.as_nanos() as f64 / total_iters.max(1) as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!(" {:.3e} elem/s", n as f64 / (ns_per_iter / 1e9))
        }
        Throughput::Bytes(n) => {
            format!(" {:.3e} B/s", n as f64 / (ns_per_iter / 1e9))
        }
    });
    println!("{label:<50} {ns_per_iter:>14.1} ns/iter{}", rate.unwrap_or_default());
}

/// Declares a group function running each listed benchmark with a fresh
/// default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
