//! Self-checks for the vendored stub: generation varies, failures fail.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ranges_stay_in_bounds(x in 3u64..17, y in 0u8..=32, n in 1usize..9) {
        prop_assert!((3..17).contains(&x));
        prop_assert!(y <= 32);
        prop_assert!((1..9).contains(&n));
    }

    #[test]
    fn vec_lengths_respect_range(v in prop::collection::vec(any::<u32>(), 2..50)) {
        prop_assert!(v.len() >= 2 && v.len() < 50);
    }

    #[test]
    fn prop_map_applies(p in (any::<u32>(), 1u8..4).prop_map(|(a, b)| (a, b * 2))) {
        prop_assert!(p.1 >= 2 && p.1 < 8);
    }
}

#[test]
fn generation_varies_across_cases() {
    use proptest::strategy::Strategy;
    let mut rng = proptest::TestRng::from_name("generation_varies");
    let strat = proptest::collection::vec(proptest::strategy::any::<u64>(), 0..20);
    let a = strat.generate(&mut rng);
    let b = strat.generate(&mut rng);
    let c = strat.generate(&mut rng);
    assert!(!(a == b && b == c), "three consecutive draws identical");
}

#[test]
fn generation_is_deterministic() {
    use proptest::strategy::Strategy;
    let draw = || {
        let mut rng = proptest::TestRng::from_name("fixed");
        (0u64..1000).generate(&mut rng)
    };
    assert_eq!(draw(), draw());
}

#[test]
#[should_panic(expected = "failed at case")]
fn failing_property_panics() {
    use proptest::test_runner::TestCaseError;
    proptest::run_cases("always_fails", 8, &(0u64..10), |x| {
        if x < 10 {
            return Err(TestCaseError::fail("deliberate"));
        }
        Ok(())
    });
}

#[test]
fn full_width_inclusive_ranges_do_not_panic() {
    use proptest::strategy::Strategy;
    let mut rng = proptest::TestRng::from_name("full_width");
    for _ in 0..32 {
        let _: u64 = (0u64..=u64::MAX).generate(&mut rng);
        let _: i64 = (i64::MIN..=i64::MAX).generate(&mut rng);
        let b: u8 = (0u8..=u8::MAX).generate(&mut rng);
        let _ = b;
    }
}
