//! One-stop imports mirroring `proptest::prelude`.

pub use crate as prop;
pub use crate::strategy::{any, Arbitrary, Just, Strategy};
pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
