//! Test-runner types: [`Config`] (aka `ProptestConfig`) and
//! [`TestCaseError`].

use std::fmt;

/// Per-`proptest!` block configuration. Only the case count is honoured.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases each test in the block runs.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` random cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A single failing test case. Produced by the `prop_assert*` macros or
/// constructed directly via [`TestCaseError::fail`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with `reason`.
    #[must_use]
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }

    /// Rejects the current case (treated identically to failure here,
    /// since the stub has no rejection budget).
    #[must_use]
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}
