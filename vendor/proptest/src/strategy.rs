//! The [`Strategy`] trait and the built-in strategies the workspace uses:
//! integer ranges, `any::<T>()`, tuples, and [`Map`].

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::TestRng;

/// A recipe for generating values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no shrinking tree: a strategy is just a
/// deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f` (the `proptest` combinator
    /// the workspace uses to assemble structured instances).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Generates an arbitrary value of `T` (full-range for integers).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-range generator, usable via [`any`].
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi as i128 - lo as i128 + 1;
                if span > u64::MAX as i128 {
                    // Full 64-bit domain: the span does not fit in u64, and
                    // every raw draw is already uniform over it.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
