//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The workspace's property tests were written against the real
//! [proptest](https://crates.io/crates/proptest); this stand-in provides
//! exactly the surface they use so the suite runs in an environment with
//! no registry access (see `vendor/README.md`).
//!
//! Design points:
//!
//! * **Deterministic.** Each `proptest!` test derives its RNG seed from
//!   the test's own name via FNV-1a, so a failure reproduces on every
//!   run and on every machine — there is no time- or thread-dependent
//!   state anywhere.
//! * **No shrinking.** A failing case reports its case index and the
//!   generated seed instead of a minimised counterexample.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a over the bytes), so
    /// every test gets a distinct but fully reproducible stream.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range handed to TestRng::below");
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }

    /// Current internal state, reported on failure for reproduction.
    #[must_use]
    pub fn state(&self) -> u64 {
        self.0
    }
}

/// Runs `cases` instances of a single `proptest!`-generated test body.
///
/// Like the real proptest, the `PROPTEST_CASES` environment variable
/// overrides the per-test case count — CI uses it to deepen the
/// differential batteries in release builds without touching the code.
/// Generation stays fully deterministic either way: the seed stream
/// depends only on the test name, so a bumped run replays the default
/// run's cases as its prefix.
///
/// This is the engine behind the [`proptest!`] macro expansion; it is
/// public only so the macro can reach it via `$crate`.
pub fn run_cases<S, F>(name: &str, cases: u32, strategy: &S, mut body: F)
where
    S: strategy::Strategy,
    F: FnMut(S::Value) -> Result<(), test_runner::TestCaseError>,
{
    let cases = std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(cases);
    let mut rng = TestRng::from_name(name);
    for case in 0..cases {
        let seed = rng.state();
        let value = strategy.generate(&mut rng);
        if let Err(e) = body(value) {
            panic!(
                "proptest `{name}` failed at case {case}/{cases} \
                 (rng state {seed:#018x}): {e}"
            );
        }
    }
}

/// The `proptest!` block macro: wraps each contained `#[test]` function
/// whose arguments use `pattern in strategy` syntax into a driver that
/// generates inputs and treats `prop_assert*` failures as test failures.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let strategy = ($($strat,)+);
                $crate::run_cases(
                    stringify!($name),
                    config.cases,
                    &strategy,
                    |value| {
                        let ($($pat,)+) = value;
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, args…)`: like
/// `assert!` but returns a [`test_runner::TestCaseError`] so the runner
/// can attach case/seed context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    format!("assertion failed: {}", stringify!($cond)),
                ),
            );
        }
    };
    ($cond:expr, $fmt:literal $(, $arg:expr)* $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    format!(concat!("assertion failed: ", $fmt) $(, $arg)*),
                ),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` / `prop_assert_eq!(a, b, fmt, args…)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "assertion failed: `{:?}` == `{:?}`",
                    lhs, rhs
                )),
            );
        }
    }};
    ($a:expr, $b:expr, $fmt:literal $(, $arg:expr)* $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    concat!("assertion failed: `{:?}` == `{:?}`: ", $fmt),
                    lhs, rhs $(, $arg)*
                )),
            );
        }
    }};
}

/// `prop_assert_ne!(a, b)` — provided for completeness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                lhs, rhs
            )));
        }
    }};
}
