//! Integration test: the full FIB pipeline across crates — synthetic
//! table (otc-trie) → dependency tree (otc-core) → workload (otc-sdn) →
//! policies (otc-core + otc-baselines) → verified simulation (otc-sim).

use std::sync::Arc;

use online_tree_caching::baselines::{BypassAll, DependentSetPolicy, InvalidateOnUpdate};
use online_tree_caching::core::policy::CachePolicy;
use online_tree_caching::core::tc::{TcConfig, TcFast};
use online_tree_caching::sdn::{
    forwarding_violations, generate_events, run_fib, to_request_stream, FibEvent, FibWorkloadConfig,
};
use online_tree_caching::sim::{run_policy, SimConfig};
use online_tree_caching::trie::{hierarchical_table, HierarchicalConfig, RuleTree};
use online_tree_caching::util::SplitMix64;

fn build_world(seed: u64, n_rules: usize, update_p: f64) -> (RuleTree, Vec<FibEvent>) {
    let mut rng = SplitMix64::new(seed);
    let rules = RuleTree::build(&hierarchical_table(
        HierarchicalConfig { n: n_rules, subdivide_p: 0.7, max_len: 28 },
        &mut rng,
    ));
    let events = generate_events(
        &rules,
        FibWorkloadConfig { events: 20_000, theta: 1.0, update_p, addr_attempts: 16 },
        &mut rng,
    );
    (rules, events)
}

#[test]
fn event_conservation() {
    let (rules, events) = build_world(1, 512, 0.05);
    let tree = Arc::new(rules.tree().clone());
    let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(4, 64));
    let report = run_fib(&rules, &mut tc, &events, 4);
    let packets = events.iter().filter(|e| matches!(e, FibEvent::Packet(_))).count() as u64;
    let updates = events.iter().filter(|e| matches!(e, FibEvent::Update(_))).count() as u64;
    assert_eq!(report.packets, packets);
    assert_eq!(report.updates, updates);
    assert_eq!(report.hits + report.misses, packets, "every packet is a hit or a miss");
    assert!(report.miss_rate() > 0.0 && report.miss_rate() <= 1.0);
}

#[test]
fn request_stream_equals_live_run_for_tc() {
    // Feeding the translated request stream through the verified simulator
    // must reproduce exactly the costs of the live FIB run.
    let (rules, events) = build_world(2, 512, 0.05);
    let tree = Arc::new(rules.tree().clone());
    let alpha = 4u64;

    let mut tc_live = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, 64));
    let live = run_fib(&rules, &mut tc_live, &events, alpha);

    let (reqs, chunks) = to_request_stream(&rules, &events, alpha);
    let mut tc_sim = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, 64));
    let sim = run_policy(&tree, &mut tc_sim, &reqs, SimConfig::new(alpha)).expect("valid");

    assert_eq!(live.total_cost(), sim.total());
    assert_eq!(live.service_cost, sim.cost.service);
    assert!(!chunks.is_empty(), "churny workload produced update chunks");
}

#[test]
fn forwarding_is_always_correct_for_every_policy() {
    let (rules, events) = build_world(3, 256, 0.1);
    let tree = Arc::new(rules.tree().clone());
    let mut rng = SplitMix64::new(99);
    let probes: Vec<u32> = (0..256).map(|_| rng.next_u64() as u32).collect();
    let mut policies: Vec<Box<dyn CachePolicy>> = vec![
        Box::new(TcFast::new(Arc::clone(&tree), TcConfig::new(4, 48))),
        Box::new(DependentSetPolicy::lru(Arc::clone(&tree), 48)),
        Box::new(DependentSetPolicy::fifo(Arc::clone(&tree), 48)),
        Box::new(InvalidateOnUpdate::new(Arc::clone(&tree), 48)),
        Box::new(BypassAll::new(&tree, 48)),
    ];
    for policy in &mut policies {
        for chunk in events.chunks(500) {
            run_fib(&rules, policy.as_mut(), chunk, 4);
            assert_eq!(
                forwarding_violations(&rules, policy.cache(), &probes),
                0,
                "policy {} broke forwarding correctness",
                policy.name()
            );
        }
    }
}

#[test]
fn tc_wins_under_heavy_churn() {
    let (rules, events) = build_world(4, 1024, 0.15);
    let tree = Arc::new(rules.tree().clone());
    let alpha = 8u64;
    let k = 96;
    let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, k));
    let mut lru = DependentSetPolicy::lru(Arc::clone(&tree), k);
    let tc_cost = run_fib(&rules, &mut tc, &events, alpha).total_cost();
    let lru_cost = run_fib(&rules, &mut lru, &events, alpha).total_cost();
    assert!(
        tc_cost < lru_cost,
        "under 15% churn TC ({tc_cost}) must beat dependent-set LRU ({lru_cost})"
    );
}

#[test]
fn sharded_pipeline_matches_sum_of_per_subtrie_runs() {
    // The multi-shard FIB pipeline must equal the component-wise sum of
    // independently-run per-subtrie single-shard runs — the acceptance
    // differential for the sharded engine, at realistic scale.
    use online_tree_caching::core::forest::{Forest, ShardId};
    use online_tree_caching::core::Tree;
    use online_tree_caching::sdn::{route_events, run_fib_routed, run_fib_sharded, FibReport};

    let (rules, events) = build_world(6, 1024, 0.05);
    let alpha = 4u64;
    let total_capacity = 128usize;
    for shards in [2usize, 4, 8] {
        let capacity = (total_capacity / shards).max(1);
        let factory = move |shard_tree: Arc<Tree>, _shard: ShardId| {
            Box::new(TcFast::new(shard_tree, TcConfig::new(alpha, capacity)))
                as Box<dyn CachePolicy>
        };
        let sharded = run_fib_sharded(&rules, &factory, &events, alpha, shards, shards);

        let forest = Forest::partition(rules.tree(), shards);
        assert_eq!(sharded.per_shard.len(), forest.num_shards());
        let per_shard_events = route_events(&rules, &forest, &events);
        let mut sum = FibReport { name: sharded.total.name.clone(), ..FibReport::default() };
        for (s, shard_events) in per_shard_events.iter().enumerate() {
            let sid = ShardId(s as u32);
            let mut policy = factory(Arc::clone(forest.tree(sid)), sid);
            let solo = run_fib_routed(forest.tree(sid), policy.as_mut(), shard_events, alpha);
            assert_eq!(sharded.per_shard[s], solo, "shard {s} of {shards}");
            sum.add(&solo);
        }
        assert_eq!(sharded.total, sum, "{shards}-shard total");
        // And the sharded run processed every event exactly once.
        let packets = events.iter().filter(|e| matches!(e, FibEvent::Packet(_))).count() as u64;
        assert_eq!(sharded.total.packets, packets);
        assert_eq!(sharded.total.hits + sharded.total.misses, packets);
    }
}

#[test]
fn all_policies_respect_capacity_through_simulator() {
    let (rules, events) = build_world(5, 256, 0.08);
    let tree = Arc::new(rules.tree().clone());
    let alpha = 2u64;
    let (reqs, _) = to_request_stream(&rules, &events, alpha);
    let mk: Vec<Box<dyn CachePolicy>> = vec![
        Box::new(TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, 32))),
        Box::new(DependentSetPolicy::lru(Arc::clone(&tree), 32)),
        Box::new(DependentSetPolicy::fifo(Arc::clone(&tree), 32)),
        Box::new(DependentSetPolicy::random(Arc::clone(&tree), 32, 7)),
        Box::new(InvalidateOnUpdate::new(Arc::clone(&tree), 32)),
    ];
    for mut policy in mk {
        let report = run_policy(&tree, policy.as_mut(), &reqs, SimConfig::new(alpha))
            .unwrap_or_else(|e| panic!("{} violated the protocol: {e}", policy.name()));
        assert!(report.peak_cache <= 32, "{} exceeded capacity", policy.name());
    }
}
