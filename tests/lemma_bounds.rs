//! Integration test: the analysis lemmas checked against exact per-phase
//! OPT on small instances.
//!
//! * **Lemma 5.3** (as an identity): `TC(P) = 2α·size(F) + req(F∞) + kP·α`
//!   for finished phases (the flush term drops for the unfinished one).
//! * **Lemma 5.12**: `req(F∞) ≤ 2·kONL·α + 2·OPT(P)` where OPT may start
//!   the phase in an arbitrary cache state (Lemma 5.11's convention) —
//!   computed exactly by the free-start subforest DP with `kOPT = kONL`.

use std::sync::Arc;

use online_tree_caching::baselines::opt_cost_free_start;
use online_tree_caching::core::tc::{TcConfig, TcFast};
use online_tree_caching::core::{Request, Sign, Tree};
use online_tree_caching::sim::{run_policy, SimConfig};
use online_tree_caching::util::SplitMix64;

fn random_tree(n: usize, rng: &mut SplitMix64) -> Tree {
    let mut parents: Vec<Option<usize>> = vec![None];
    for i in 1..n {
        parents.push(Some(rng.index(i)));
    }
    Tree::from_parents(&parents)
}

fn random_requests(tree: &Tree, len: usize, rng: &mut SplitMix64) -> Vec<Request> {
    (0..len)
        .map(|_| {
            let node = online_tree_caching::core::NodeId(rng.index(tree.len()) as u32);
            let sign = if rng.chance(0.4) { Sign::Negative } else { Sign::Positive };
            Request { node, sign }
        })
        .collect()
}

#[test]
fn lemma_5_3_identity_per_phase() {
    let mut rng = SplitMix64::new(0x53);
    for trial in 0..25 {
        let n = 4 + rng.index(8);
        let tree = Arc::new(random_tree(n, &mut rng));
        let alpha = 1 + rng.next_below(4);
        let k = 1 + rng.index(5);
        let reqs = random_requests(&tree, 1500, &mut rng);
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, k));
        let report = run_policy(&tree, &mut tc, &reqs, SimConfig::new(alpha)).expect("valid");
        for (i, phase) in report.phases.iter().enumerate() {
            let flush_term = if phase.finished { phase.k_p as u64 * alpha } else { 0 };
            let predicted = 2 * alpha * phase.fields_size + phase.open_requests + flush_term;
            assert_eq!(
                phase.cost.total(),
                predicted,
                "trial {trial} phase {i}: Lemma 5.3 identity broken"
            );
        }
    }
}

#[test]
fn lemma_5_12_open_field_bound_per_phase() {
    let mut rng = SplitMix64::new(0x512);
    for trial in 0..20 {
        let n = 4 + rng.index(7);
        let tree = Arc::new(random_tree(n, &mut rng));
        let alpha = 1 + rng.next_below(3);
        let k_onl = 1 + rng.index(5);
        let reqs = random_requests(&tree, 1200, &mut rng);
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, k_onl));
        let report = run_policy(&tree, &mut tc, &reqs, SimConfig::new(alpha)).expect("valid");

        // Phases partition the request sequence in order.
        let mut start = 0usize;
        for (i, phase) in report.phases.iter().enumerate() {
            let end = start + phase.rounds as usize;
            let slice = &reqs[start..end];
            // Lemma 5.12 with kOPT = kONL and OPT free to pick its starting
            // cache (the strongest admissible form of the bound).
            let opt_p = opt_cost_free_start(&tree, slice, alpha, k_onl);
            let bound = 2 * k_onl as u64 * alpha + 2 * opt_p;
            assert!(
                phase.open_requests <= bound,
                "trial {trial} phase {i}: req(F∞) = {} exceeds 2·kONL·α + 2·OPT(P) = {bound} \
                 (n={n}, α={alpha}, k={k_onl}, OPT(P)={opt_p})",
                phase.open_requests
            );
            start = end;
        }
        assert_eq!(start, reqs.len(), "phases must partition the input");
    }
}
