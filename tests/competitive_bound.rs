//! Integration test: the headline theorem as an executable check.
//!
//! On exhaustive sweeps of small instances (where exact OPT is
//! computable), TC's cost must stay within a universal constant times
//! `h(T) · R · OPT + h(T) · kONL · α` — the Theorem 5.15 guarantee with an
//! explicit constant. A violation on any instance falsifies either the
//! implementation or the theorem; neither is acceptable.

use std::sync::Arc;

use online_tree_caching::baselines::opt_cost;
use online_tree_caching::core::policy::CachePolicy;
use online_tree_caching::core::tc::{TcConfig, TcFast};
use online_tree_caching::core::{Request, Sign, Tree};
use online_tree_caching::util::SplitMix64;

fn tc_cost(tree: &Arc<Tree>, reqs: &[Request], alpha: u64, k: usize) -> u64 {
    let mut tc = TcFast::new(Arc::clone(tree), TcConfig::new(alpha, k));
    let (service, touched) = online_tree_caching::core::policy::run_raw(&mut tc, reqs);
    service + alpha * touched
}

fn random_tree(n: usize, rng: &mut SplitMix64) -> Tree {
    let mut parents: Vec<Option<usize>> = vec![None];
    for i in 1..n {
        parents.push(Some(rng.index(i)));
    }
    Tree::from_parents(&parents)
}

fn random_requests(tree: &Tree, len: usize, neg_p: f64, rng: &mut SplitMix64) -> Vec<Request> {
    (0..len)
        .map(|_| {
            let node = online_tree_caching::core::NodeId(rng.index(tree.len()) as u32);
            let sign = if rng.chance(neg_p) { Sign::Negative } else { Sign::Positive };
            Request { node, sign }
        })
        .collect()
}

/// The universal constant used by the check. The analysis-side constants
/// (Lemma 5.3 + 5.11 + 5.12 + 5.14 composed) are comfortably below this;
/// measured worst cases on random instances sit near 3.
const C: f64 = 16.0;

#[test]
fn theorem_5_15_bound_holds_on_random_instances() {
    let mut rng = SplitMix64::new(0x515);
    let mut worst: f64 = 0.0;
    for trial in 0..150 {
        let n = 2 + rng.index(9);
        let tree = Arc::new(random_tree(n, &mut rng));
        let alpha = 1 + rng.next_below(4);
        let k_onl = 1 + rng.index(8);
        let k_opt = 1 + rng.index(k_onl);
        let reqs = random_requests(&tree, 400, 0.35, &mut rng);
        let tc = tc_cost(&tree, &reqs, alpha, k_onl);
        let opt = opt_cost(&tree, &reqs, alpha, k_opt);
        let h = f64::from(tree.height());
        let r_aug = k_onl as f64 / (k_onl - k_opt + 1) as f64;
        let bound = C * h * r_aug * opt as f64 + C * h * k_onl as f64 * alpha as f64;
        assert!(
            (tc as f64) <= bound,
            "trial {trial}: TC {tc} exceeds bound {bound} (n={n}, α={alpha}, \
             kONL={k_onl}, kOPT={k_opt}, OPT={opt})"
        );
        if opt > 0 {
            worst = worst.max(tc as f64 / opt as f64 / (h * r_aug));
        }
    }
    // The normalised worst case should stay far below the check constant —
    // if this starts creeping towards C the theorem-constant story changes.
    assert!(worst < C / 2.0, "normalised worst ratio {worst} uncomfortably high");
}

#[test]
fn tc_never_beaten_by_more_than_constant_on_extremal_shapes() {
    let mut rng = SplitMix64::new(0x516);
    for tree in [Tree::path(8), Tree::star(7), Tree::kary(2, 3)] {
        let tree = Arc::new(tree);
        for alpha in [1u64, 3] {
            for k in [1usize, 3, tree.len()] {
                let reqs = random_requests(&tree, 500, 0.4, &mut rng);
                let tc = tc_cost(&tree, &reqs, alpha, k);
                let opt = opt_cost(&tree, &reqs, alpha, k);
                let h = f64::from(tree.height());
                assert!(
                    tc as f64 <= C * h * k as f64 * opt as f64 + C * h * k as f64 * alpha as f64,
                    "shape {tree:?} α={alpha} k={k}: TC {tc} vs OPT {opt}"
                );
            }
        }
    }
}

#[test]
fn opt_lower_bounds_every_policy() {
    // Exact OPT must not exceed the cost of any online policy we ship.
    use online_tree_caching::baselines::{DependentSetPolicy, InvalidateOnUpdate};
    let mut rng = SplitMix64::new(0x517);
    for _ in 0..40 {
        let n = 2 + rng.index(8);
        let tree = Arc::new(random_tree(n, &mut rng));
        let alpha = 1 + rng.next_below(3);
        let k = 1 + rng.index(6);
        let reqs = random_requests(&tree, 300, 0.3, &mut rng);
        let opt = opt_cost(&tree, &reqs, alpha, k);

        let run = |policy: &mut dyn CachePolicy| -> u64 {
            let (service, touched) = online_tree_caching::core::policy::run_raw(policy, &reqs);
            service + alpha * touched
        };
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, k));
        let mut lru = DependentSetPolicy::lru(Arc::clone(&tree), k);
        let mut inv = InvalidateOnUpdate::new(Arc::clone(&tree), k);
        for (name, cost) in
            [("tc", run(&mut tc)), ("lru", run(&mut lru)), ("invalidate", run(&mut inv))]
        {
            assert!(opt <= cost, "{name}: OPT {opt} exceeds online cost {cost}");
        }
    }
}
