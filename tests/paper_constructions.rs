//! Integration test: the paper's constructions run end to end.
//!
//! * the Figure 4 gadget script drives TC through its exact chronology;
//! * the Appendix C adversary forces a ratio that grows with `kONL`;
//! * the Appendix B canonicalization stays within its factor-2 envelope.

use std::sync::Arc;

use online_tree_caching::baselines::{offline_star_upper_bound, InvalidateOnUpdate};
use online_tree_caching::core::policy::{Action, CachePolicy};
use online_tree_caching::core::tc::{TcConfig, TcFast};
use online_tree_caching::core::{Request, Tree};
use online_tree_caching::sdn::{canonicalize, evaluate_solution, is_canonical, record_run};
use online_tree_caching::util::SplitMix64;
use online_tree_caching::workloads::gadget::ExpectedAction;
use online_tree_caching::workloads::{drive_paging_adversary, Fig4Gadget};

#[test]
fn figure4_chronology_is_reproduced() {
    for (s, ell, alpha) in [(5usize, 2usize, 4u64), (12, 4, 6)] {
        let g = Fig4Gadget::new(s, ell, alpha);
        let tree = Arc::new(g.tree.clone());
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, g.min_capacity));
        let mut milestones = g.milestones.iter();
        let mut next = milestones.next();
        for (i, &req) in g.schedule.iter().enumerate() {
            let out = tc.step_owned(req);
            for action in out.actions {
                let m = next.unwrap_or_else(|| panic!("unexpected action at round {i}"));
                assert_eq!(m.index, i, "action fired at the wrong round");
                match (&m.expected, action) {
                    (ExpectedAction::Fetch(want), Action::Fetch(mut got)) => {
                        got.sort_unstable();
                        assert_eq!(want, &got);
                    }
                    (ExpectedAction::Evict(want), Action::Evict(mut got)) => {
                        got.sort_unstable();
                        assert_eq!(want, &got);
                    }
                    (want, got) => panic!("expected {want:?}, got {got:?}"),
                }
                next = milestones.next();
            }
        }
        assert!(next.is_none(), "script ended with milestones pending");
        assert_eq!(tc.cache().len(), tree.len(), "final fetch cached the whole tree");
    }
}

#[test]
fn adversary_ratio_grows_with_k() {
    let alpha = 4u64;
    let mut last = 0.0f64;
    for k in [4usize, 8, 16] {
        let tree = Arc::new(Tree::star(k + 1));
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, k));
        let run = drive_paging_adversary(&mut tc, &tree, alpha, 60 * k);
        let tc_cost = run.online_service + alpha * run.online_touched;
        let opt_ub = offline_star_upper_bound(&run.trace, alpha, k);
        let ratio = tc_cost as f64 / opt_ub as f64;
        assert!(ratio > last, "ratio must grow with k: {ratio} after {last}");
        assert!(ratio >= 0.5 * k as f64, "ratio {ratio} too small for k = {k}");
        last = ratio;
    }
}

#[test]
fn canonicalization_within_factor_two_for_eager_evictor() {
    let tree = Arc::new(Tree::kary(3, 4));
    let alpha = 6u64;
    let mut rng = SplitMix64::new(0xB0);
    // Build a chunked stream directly.
    let mut reqs = Vec::new();
    let mut chunks = Vec::new();
    for _ in 0..6_000 {
        let node = online_tree_caching::core::NodeId(rng.index(tree.len()) as u32);
        if rng.chance(0.25) {
            let start = reqs.len();
            for _ in 0..alpha {
                reqs.push(Request::neg(node));
            }
            chunks.push(start..reqs.len());
        } else {
            reqs.push(Request::pos(node));
        }
    }
    let capacity = 30usize;
    let mut policy = InvalidateOnUpdate::new(Arc::clone(&tree), capacity);
    let original = record_run(&mut policy, &reqs);
    let canonical = canonicalize(&original, &chunks);
    assert!(is_canonical(&canonical, &chunks));
    let c0 = evaluate_solution(&tree, &reqs, &original, alpha, capacity).expect("valid");
    let c1 = evaluate_solution(&tree, &reqs, &canonical, alpha, capacity).expect("valid");
    assert!(
        c1.total() <= 2 * c0.total(),
        "canonical {} vs original {} breaks Appendix B",
        c1.total(),
        c0.total()
    );
    // And the transform must have actually moved something for this policy.
    let moved: usize = chunks
        .iter()
        .map(|c| (c.start..c.end - 1).map(|t| original.actions[t].len()).sum::<usize>())
        .sum();
    assert!(moved > 0, "the eager evictor should act inside chunks");
}
