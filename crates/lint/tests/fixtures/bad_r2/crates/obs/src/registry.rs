//! R2 tripping fixture: a wall-clock read inside `otc-obs` but outside
//! the audited `clock.rs` seam. The crate as a whole is *not* exempt —
//! only the one seam file is — so this must be flagged.

use std::time::Instant;

/// Sneaks a clock read into registry code instead of going through
/// `otc_obs::clock::stamp`.
pub fn registered_at() -> Instant {
    Instant::now()
}
