//! R2 tripping fixture: a wall-clock read outside the bench crates.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::Instant;

/// Stamps a window with the wall clock — live runs would diverge from
/// replay. otc-lint must flag the `Instant::now` call.
pub fn window_stamp() -> Instant {
    Instant::now()
}
