//! R6 tripping fixture: a raw thread spawn outside the blessed seams.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Runs a closure on an ad-hoc thread — thread counts now change
/// scheduling, which R6 forbids outside `otc_util::{par, ring}` and
/// the serve worker seam.
pub fn run_detached(work: impl FnOnce() + Send + 'static) {
    std::thread::spawn(work);
}
