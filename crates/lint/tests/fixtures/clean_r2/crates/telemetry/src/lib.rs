//! R2 clean twin: time derived from the round index, not the clock.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Stamps a window with its round index — identical in a live run and
/// a replay.
#[must_use]
pub fn window_stamp(round: u64, window_len: u64) -> u64 {
    round / window_len.max(1)
}
