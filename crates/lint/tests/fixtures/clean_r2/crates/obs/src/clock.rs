//! R2 clean twin addition: the one audited wall-clock seam. This exact
//! workspace-relative path (`crates/obs/src/clock.rs`) is allowlisted,
//! so the `Instant::now` here must pass.

use std::time::Instant;

/// The audited monotonic stamp every observability timestamp flows
/// through.
#[must_use]
pub fn stamp() -> Instant {
    Instant::now()
}
