//! R3 clean twin: the typed-error spelling of the same function.

/// Reads the version field of a frame header; a truncated header is a
/// typed error, never a panic.
pub fn header_version(header: &[u8]) -> Result<u16, String> {
    let Some(bytes) = header.get(..2) else {
        return Err(format!("header truncated at {} bytes", header.len()));
    };
    let mut le = [0u8; 2];
    le.copy_from_slice(bytes);
    Ok(u16::from_le_bytes(le))
}
