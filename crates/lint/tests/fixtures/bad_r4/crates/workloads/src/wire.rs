//! R4 tripping fixture: a narrowing cast in a codec.

/// Encodes a record count as a 2-byte prefix. `as u16` silently
/// truncates counts above 65535 into wrong-but-decodable bytes —
/// exactly what R4 forbids in a `wire.rs`.
pub fn encode_count(buf: &mut Vec<u8>, count: usize) {
    buf.extend_from_slice(&(count as u16).to_le_bytes());
}
