//! R4 tripping fixture's crate root (clean itself).
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod wire;
