//! R1 tripping fixture: a `HashMap` in a determinism crate.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::HashMap;

/// Counts requests per node — through a hash map, whose iteration
/// order is process-random. otc-lint must flag both mentions.
pub fn count(nodes: &[u32]) -> Vec<(u32, u64)> {
    let mut seen: HashMap<u32, u64> = HashMap::new();
    for &n in nodes {
        *seen.entry(n).or_insert(0) += 1;
    }
    seen.into_iter().collect()
}
