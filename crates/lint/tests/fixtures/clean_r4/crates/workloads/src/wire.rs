//! R4 clean twin: the value-preserving spelling of the same codec.

/// Encodes a record count as a 2-byte prefix; an overflowing count is
/// a typed error instead of silently truncated bytes.
pub fn encode_count(buf: &mut Vec<u8>, count: usize) -> Result<(), String> {
    let short = u16::try_from(count).map_err(|_| format!("count {count} exceeds u16"))?;
    buf.extend_from_slice(&short.to_le_bytes());
    Ok(())
}
