//! R4 clean twin's crate root.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod wire;
