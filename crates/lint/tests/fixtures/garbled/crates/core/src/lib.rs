//! Garbled-source robustness fixture: truncated mid-everything. The
//! linter must produce *some* deterministic answer without panicking —
//! an unterminated attribute, string, and block comment all at once.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub fn torn() -> &'static str {
    let _dangling = #[cfg(feature = "never
    r"an unterminated raw string literal that swallows the rest /* of
    the file, including this never-closed block comment {{{ and a brace
