//! R1 clean twin: the ordered-map spelling of the same function.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;

/// Counts requests per node in key order — deterministic by
/// construction.
pub fn count(nodes: &[u32]) -> Vec<(u32, u64)> {
    let mut seen: BTreeMap<u32, u64> = BTreeMap::new();
    for &n in nodes {
        *seen.entry(n).or_insert(0) += 1;
    }
    seen.into_iter().collect()
}
