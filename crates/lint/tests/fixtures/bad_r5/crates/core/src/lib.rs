//! R5 tripping fixture: a crate root missing both required attributes.

/// A perfectly documented function in an insufficiently hardened
/// crate — otc-lint must demand `#![forbid(unsafe_code)]` and
/// `#![deny(missing_docs)]`.
#[must_use]
pub fn double(x: u64) -> u64 {
    x.saturating_mul(2)
}
