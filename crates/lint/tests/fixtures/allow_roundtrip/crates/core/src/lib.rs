//! Allow round-trip fixture: a real violation, legitimately suppressed
//! by a reasoned `otc-lint: allow` directive. The linter must report
//! zero findings, one suppression, and mark the allow as used.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Builds a map that is drained through a sort before anything
/// order-sensitive reads it, so the hash order never escapes.
#[must_use]
pub fn histogram(nodes: &[u32]) -> Vec<(u32, u64)> {
    // otc-lint: allow(R1 reason="drained through a sort below; hash order never reaches a cost path")
    let mut seen = std::collections::HashMap::<u32, u64>::new();
    for &n in nodes {
        *seen.entry(n).or_insert(0) += 1;
    }
    let mut out: Vec<(u32, u64)> = seen.into_iter().collect();
    out.sort_unstable();
    out
}
