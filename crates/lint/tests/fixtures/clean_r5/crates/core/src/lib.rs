//! R5 clean twin: the same crate root carrying both attributes.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// A perfectly documented function in a properly hardened crate.
#[must_use]
pub fn double(x: u64) -> u64 {
    x.saturating_mul(2)
}
