//! R7 tripping fixture: a determinism crate importing the
//! observability layer. A timing read could now reach a cost path, so
//! otc-lint must flag the `otc_obs` mention.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

use otc_obs::Histogram;

/// Times a drain from inside the simulator — the structural breach R7
/// exists to catch.
pub fn timed_drain(h: &Histogram) {
    h.record(1);
}
