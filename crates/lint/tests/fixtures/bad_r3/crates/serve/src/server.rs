//! R3 tripping fixture: a panic in a recovery path.

/// Reads the version field of a frame header. A truncated header
/// panics — exactly what R3 forbids in a `server.rs`.
pub fn header_version(header: &[u8]) -> u16 {
    let bytes: [u8; 2] = header[..2].try_into().unwrap();
    u16::from_le_bytes(bytes)
}
