//! R7 clean twin: the serve crate is the blessed `otc_obs` consumer —
//! its hooks seam is one-way, so naming the crate here is legal.

use otc_obs::Histogram;

/// Records one stage latency on the serve side of the seam.
pub fn record_stage(h: &Histogram, nanos: u64) {
    h.record(nanos);
}
