//! R6 clean twin: the same work routed through the scoped seam.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Runs a closure over every slot through a count-invariant helper
/// (standing in for `otc_util::par::parallel_map_mut`); no raw thread
/// is spawned here.
pub fn run_scoped(slots: &mut [u64], work: impl Fn(&mut u64) + Sync) {
    for slot in slots.iter_mut() {
        work(slot);
    }
}
