//! The linter linted: every rule class has a known-bad fixture tree
//! that must trip it and a clean twin that must pass, the allow
//! directive round-trips, garbled source never panics, and the
//! `--check` binary turns each of those verdicts into an exit code.

use std::path::{Path, PathBuf};
use std::process::Command;

use otc_lint::lint_workspace;

/// The seven (bad tree, clean twin, rule id) triples under
/// `tests/fixtures/`.
const TWINS: &[(&str, &str, &str)] = &[
    ("bad_r1", "clean_r1", "R1"),
    ("bad_r2", "clean_r2", "R2"),
    ("bad_r3", "clean_r3", "R3"),
    ("bad_r4", "clean_r4", "R4"),
    ("bad_r5", "clean_r5", "R5"),
    ("bad_r6", "clean_r6", "R6"),
    ("bad_r7", "clean_r7", "R7"),
];

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures").join(name)
}

#[test]
fn each_bad_fixture_trips_exactly_its_rule() {
    for &(bad, _, rule) in TWINS {
        let report = lint_workspace(&fixture(bad)).expect("fixture tree lints");
        assert!(!report.diagnostics.is_empty(), "{bad} must trip {rule} but the report is clean");
        for d in &report.diagnostics {
            assert_eq!(d.rule, rule, "{bad} tripped {} instead of {rule}: {}", d.rule, d.message);
            assert!(d.span.line >= 1 && d.span.col >= 1, "{bad}: span must be 1-based");
            assert!(d.file.starts_with("crates/"), "{bad}: file must be workspace-relative");
            assert!(!d.hint.is_empty(), "{bad}: every diagnostic carries a fix hint");
        }
    }
}

#[test]
fn each_clean_twin_passes() {
    for &(_, clean, rule) in TWINS {
        let report = lint_workspace(&fixture(clean)).expect("fixture tree lints");
        assert!(
            report.clean(),
            "{clean} must pass {rule} but found: {:?}",
            report.diagnostics.iter().map(|d| &d.message).collect::<Vec<_>>()
        );
    }
}

#[test]
fn a_reasoned_allow_round_trips_as_a_used_suppression() {
    let report = lint_workspace(&fixture("allow_roundtrip")).expect("fixture tree lints");
    assert!(report.clean(), "the allowed violation must not surface as a finding");
    assert_eq!(report.suppressed.len(), 1, "exactly the HashMap mention is suppressed");
    assert_eq!(report.suppressed.first().map(|d| d.rule), Some("R1"));
    assert_eq!(report.allows.len(), 1);
    let allow = report.allows.first().expect("one allow");
    assert!(allow.used, "the directive must be audited as used, not stale");
    assert!(allow.reason.as_deref().is_some_and(|r| r.contains("sort")));
}

#[test]
fn garbled_source_yields_a_report_not_a_panic() {
    // The tree holds an unterminated attribute, string and block
    // comment; any Ok report is acceptable — crashing is not.
    let report = lint_workspace(&fixture("garbled")).expect("garbled source must still lint");
    assert_eq!(report.files, 1, "the torn file was visited");
}

/// Runs the real binary (`--check --root <tree>`) and returns
/// (exit success, stdout).
fn run_check(tree: &str) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_otc-lint"))
        .args(["--check", "--root"])
        .arg(fixture(tree))
        .output()
        .expect("otc-lint binary runs");
    (out.status.success(), String::from_utf8_lossy(&out.stdout).into_owned())
}

#[test]
fn check_exit_codes_follow_the_verdicts() {
    for &(bad, clean, rule) in TWINS {
        let (ok, stdout) = run_check(bad);
        assert!(!ok, "--check must exit nonzero on {bad}");
        assert!(stdout.contains(rule), "{bad}: diagnostic must name {rule}:\n{stdout}");
        assert!(stdout.contains("--> crates/"), "{bad}: diagnostic must carry a span:\n{stdout}");
        let (ok, stdout) = run_check(clean);
        assert!(ok, "--check must exit zero on {clean}:\n{stdout}");
    }
    let (ok, _) = run_check("allow_roundtrip");
    assert!(ok, "--check must exit zero when every violation is allowed with a reason");
    let (ok, _) = run_check("garbled");
    assert!(ok, "--check must exit zero (not crash) on garbled source");
}
