//! `otc-lint` — the workspace invariant linter.
//!
//! The compiler proves memory safety and clippy proves idiom; neither
//! can express *this repo's* contracts — that live serving, trace
//! replay and in-memory runs stay bit-identical at any shard/thread
//! count, and that recovery from a corrupt log is "never a panic,
//! never a partial restore". Those contracts are runtime-tested by the
//! differential and fault-injection suites, but a runtime test only
//! catches the seed you ran. `otc-lint` turns the contracts into
//! static rules checked on every build.
//!
//! The tool is deliberately primitive: a hand-rolled, comment- and
//! string-aware lexer ([`lexer`]) feeds a token-pattern rule engine
//! ([`rules`]) — no rustc internals, no syn, zero dependencies. The
//! rules are listed in [`rules::RULES`]; `DESIGN.md` ("Static
//! invariants") maps each to the runtime invariant it guards.
//!
//! Use as a library (`lint_source`) from tests, or as the CI gate:
//!
//! ```text
//! cargo run --release -p otc-lint -- --check
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use report::Report;
pub use rules::{lint_source, Diagnostic, FileResult};

/// Lints every workspace source file under `root`: `src/**.rs` for the
/// umbrella crate and `crates/*/src/**.rs` for the members. Vendored
/// crates (`vendor/`), tests, benches and examples are out of scope —
/// the rules govern shipped library/binary code.
///
/// Files are visited in sorted path order so the report itself is
/// deterministic (the linter practises what it preaches).
///
/// # Errors
/// Returns any I/O error encountered while walking or reading; a
/// missing `crates/` directory is an error because it means `root` is
/// not the workspace root.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} has no crates/ directory — not the workspace root?", root.display()),
        ));
    }
    let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for member in members {
        collect_rs(&member.join("src"), &mut files)?;
    }
    files.sort();

    let mut report = Report::default();
    for path in files {
        let src = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let r = lint_source(&rel, &src);
        report.files += 1;
        report.diagnostics.extend(r.diagnostics);
        report.allows.extend(r.allows);
        report.suppressed.extend(r.suppressed);
    }
    Ok(report)
}

/// Recursively gathers `*.rs` files under `dir` (silently skips a
/// missing `dir`: not every crate has every source tree).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.collect::<io::Result<Vec<_>>>()?.into_iter().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_root_is_an_error_not_a_panic() {
        let err = lint_workspace(Path::new("/nonexistent/definitely-not-here")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
