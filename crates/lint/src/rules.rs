//! The rule engine: seven repo-specific invariants over the token stream.
//!
//! Each rule guards one of the determinism/durability invariants listed
//! in `DESIGN.md` ("Static invariants" maps them one-to-one):
//!
//! | Rule | Contract it guards |
//! |------|--------------------|
//! | R1 `no-hash-order` | deterministic costs: no `HashMap`/`HashSet` in cost/determinism crates |
//! | R2 `no-wall-clock` | replay ≡ live: no clocks/sleeps/env branching outside bench+experiments |
//! | R3 `no-panic-decode` | durability: no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in parse/decode/recovery files |
//! | R4 `no-narrowing-cast` | codec exactness: no narrowing `as` casts in wire/snapshot/trace codecs |
//! | R5 `crate-root-attrs` | hygiene: every crate root forbids `unsafe_code` and denies `missing_docs` |
//! | R6 `no-raw-spawn` | structured concurrency: `thread::spawn` only in the blessed seams |
//! | R7 `no-obs-in-determinism` | observation never changes results: determinism crates cannot name `otc_obs` |
//!
//! Test code (`#[cfg(test)]` modules, `#[test]` functions) is exempt
//! from every rule: tests may unwrap, sleep and hash to their heart's
//! content. Doc comments and string literals are trivia to the lexer,
//! so they can never trip a rule.
//!
//! A violation can be suppressed with an audited comment on the same
//! line (or a standalone comment on the line directly above):
//!
//! ```text
//! // otc-lint: allow(R3 reason="io::Write to a Vec is infallible")
//! ```
//!
//! The `reason` is mandatory — an allow without one is itself a
//! diagnostic (`A0`), and an allow that suppresses nothing is stale and
//! also a diagnostic (`A1`). Allows are counted and listed in the JSON
//! report so they stay auditable.

use crate::lexer::{lex, Comment, Span, Tok, Token};

/// One lint finding, span-accurate and self-describing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id: `R1`–`R7`, or `A0`/`A1` for allow-audit findings.
    pub rule: &'static str,
    /// Short kebab-case rule name (`no-hash-order`, …).
    pub name: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// Where the finding anchors.
    pub span: Span,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

/// One parsed `// otc-lint: allow(...)` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// File the directive lives in.
    pub file: String,
    /// Line of the comment.
    pub line: u32,
    /// Rule ids the directive suppresses (`R3`, …).
    pub rules: Vec<String>,
    /// The mandatory justification. `None` is an `A0` finding.
    pub reason: Option<String>,
    /// Lines the directive covers (its own line, plus the next line
    /// when the comment stands alone).
    pub(crate) covers: (u32, u32),
    /// Whether any diagnostic was actually suppressed.
    pub used: bool,
}

/// Everything linting one file produces.
#[derive(Debug, Default)]
pub struct FileResult {
    /// Findings that survived the allow directives.
    pub diagnostics: Vec<Diagnostic>,
    /// Every allow directive found, audited (`used`/`reason`).
    pub allows: Vec<Allow>,
    /// Findings suppressed by a justified allow (kept for the report).
    pub suppressed: Vec<Diagnostic>,
}

/// Crates whose cost/determinism paths must not depend on hash
/// iteration order (R1).
const R1_CRATES: &[&str] = &["core", "sim", "baselines", "trie", "sdn"];

/// Crates exempt from the wall-clock/env ban (R2): measurement code is
/// *supposed* to read clocks. Telemetry stays in-model (window indices,
/// not timestamps), so it is deliberately not exempt.
const R2_EXEMPT_CRATES: &[&str] = &["bench", "experiments"];

/// The single non-bench file allowed to read the wall clock (R2): the
/// audited seam every observability timestamp flows through. Keeping the
/// allowlist to one file is what makes "grep for clocks" equal to "read
/// clock.rs" — `otc-obs` itself is *not* exempt as a crate, so a clock
/// read sneaking into its histogram or registry code still trips R2.
const R2_ALLOW_FILES: &[&str] = &["crates/obs/src/clock.rs"];

/// File names whose non-test code is a parse/decode/recovery path (R3):
/// typed errors only, never a panic. The arena core files qualify since
/// PR 9: their `restore_state`/`from_bytes` paths decode untrusted
/// snapshot bytes, so `unwrap`/`expect` are banned file-wide (structural
/// `assert!`s with messages stay legal).
const R3_FILES: &[&str] = &[
    "wire.rs",
    "trace.rs",
    "snapshot.rs",
    "server.rs",
    "rebalance.rs",
    "arena.rs",
    "tree.rs",
    "cache.rs",
    "fast.rs",
    "expo.rs",
];

/// File names that are binary codecs (R4): every integer conversion
/// must be value-preserving, so no narrowing `as`. The arena files route
/// their single `usize → u32` conversion through the audited
/// `arena::node_id`, so they hold to the same bar.
const R4_FILES: &[&str] =
    &["wire.rs", "trace.rs", "snapshot.rs", "arena.rs", "tree.rs", "cache.rs", "fast.rs"];

/// Cast targets R4 rejects. The workspace builds for 64-bit targets
/// (documented in DESIGN.md), so `usize`/`u64`/`i64`/`u128` targets are
/// widening from any narrower source and stay legal; these can truncate.
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Workspace-relative paths allowed to call `thread::spawn` (R6): the
/// scoped-parallelism seam, the ring-channel tests' home, and the serve
/// worker seam. Everything else goes through `otc_util::par` so thread
/// counts can never change results.
const R6_EXEMPT: &[&str] =
    &["crates/util/src/par.rs", "crates/util/src/ring.rs", "crates/serve/src/server.rs"];

/// Crates that must not depend on `otc-obs` (R7): the determinism
/// argument (invariants #1–#7) lives in these crates, and invariant #8
/// ("observation never changes results") is made structural by keeping
/// the observability crate unreachable from them — a timing read cannot
/// influence a cost path it cannot even name. The serve crate is the one
/// blessed consumer: its hooks seam is one-way by construction.
const R7_CRATES: &[&str] = &["core", "sim", "baselines", "trie", "sdn", "workloads", "util"];

/// Rule metadata for `--list-rules` and the JSON report.
pub const RULES: &[(&str, &str, &str)] = &[
    (
        "R1",
        "no-hash-order",
        "no HashMap/HashSet in cost/determinism crates (core, sim, baselines, trie, sdn)",
    ),
    (
        "R2",
        "no-wall-clock",
        "no Instant::now/SystemTime/thread::sleep/env reads outside otc-bench, otc-experiments \
         and the audited otc_obs::clock seam",
    ),
    (
        "R3",
        "no-panic-decode",
        "no unwrap/expect/panic!/unreachable!/todo!/unimplemented! in parse/decode/recovery files",
    ),
    (
        "R4",
        "no-narrowing-cast",
        "no narrowing `as` casts in wire/snapshot/trace codecs — use try_from",
    ),
    (
        "R5",
        "crate-root-attrs",
        "every crate root carries #![forbid(unsafe_code)] and #![deny(missing_docs)]",
    ),
    (
        "R6",
        "no-raw-spawn",
        "no raw std::thread::spawn outside otc_util::{par,ring} and the serve worker seam",
    ),
    (
        "R7",
        "no-obs-in-determinism",
        "determinism crates (core, sim, baselines, trie, sdn, workloads, util) must not name \
         otc_obs — observation stays structurally unreachable from results",
    ),
    ("A0", "allow-needs-reason", "every otc-lint allow comment must carry a reason=\"...\""),
    ("A1", "stale-allow", "an otc-lint allow comment that suppresses nothing must be removed"),
];

/// How a file is classified for the rules, derived purely from its
/// workspace-relative path.
struct FileClass<'a> {
    rel: &'a str,
    /// `core` for `crates/core/src/...`; `(root)` for the umbrella `src/`.
    crate_name: &'a str,
    /// The final path component (`wire.rs`).
    file_name: &'a str,
}

impl<'a> FileClass<'a> {
    fn of(rel: &'a str) -> Self {
        let rel_slash = rel;
        let crate_name =
            rel_slash.strip_prefix("crates/").and_then(|r| r.split('/').next()).unwrap_or("(root)");
        let file_name = rel_slash.rsplit('/').next().unwrap_or(rel_slash);
        Self { rel, crate_name, file_name }
    }

    fn r1_applies(&self) -> bool {
        R1_CRATES.contains(&self.crate_name)
    }

    fn r2_applies(&self) -> bool {
        !R2_EXEMPT_CRATES.contains(&self.crate_name) && !R2_ALLOW_FILES.contains(&self.rel)
    }

    fn r3_applies(&self) -> bool {
        R3_FILES.contains(&self.file_name) || self.rel.contains("proto")
    }

    fn r4_applies(&self) -> bool {
        R4_FILES.contains(&self.file_name)
    }

    fn r5_applies(&self) -> bool {
        self.rel.ends_with("src/lib.rs")
    }

    fn r6_applies(&self) -> bool {
        !R6_EXEMPT.contains(&self.rel)
    }

    fn r7_applies(&self) -> bool {
        R7_CRATES.contains(&self.crate_name)
    }
}

/// Lints one source file given its workspace-relative path (which
/// drives the rule classification) and its content. This is the whole
/// engine; the binary and the fixture tests both call it.
#[must_use]
pub fn lint_source(rel: &str, src: &str) -> FileResult {
    let class = FileClass::of(rel);
    let lexed = lex(src);
    let in_test = test_mask(&lexed.tokens);
    let mut allows = parse_allows(rel, &lexed.comments);

    let mut found: Vec<Diagnostic> = Vec::new();
    check_tokens(&class, &lexed.tokens, &in_test, &mut found);
    if class.r5_applies() {
        check_crate_root_attrs(&class, &lexed.tokens, &mut found);
    }

    // Apply the allow directives, auditing usage.
    let mut result = FileResult::default();
    'diags: for d in found {
        for a in &mut allows {
            if a.covers.0 <= d.span.line
                && d.span.line <= a.covers.1
                && a.rules.iter().any(|r| r == d.rule)
            {
                a.used = true;
                if a.reason.is_some() {
                    result.suppressed.push(d);
                    continue 'diags;
                }
                // An allow without a reason suppresses nothing; A0
                // below will flag the directive itself.
            }
        }
        result.diagnostics.push(d);
    }

    for a in &allows {
        if a.reason.is_none() {
            result.diagnostics.push(Diagnostic {
                rule: "A0",
                name: "allow-needs-reason",
                file: rel.to_string(),
                span: Span { line: a.line, col: 1 },
                message: format!(
                    "otc-lint allow({}) has no reason — unexplained allows are forbidden",
                    a.rules.join(", ")
                ),
                hint: "write otc-lint: allow(Rn reason=\"why this is sound\")",
            });
        } else if !a.used {
            result.diagnostics.push(Diagnostic {
                rule: "A1",
                name: "stale-allow",
                file: rel.to_string(),
                span: Span { line: a.line, col: 1 },
                message: format!(
                    "otc-lint allow({}) suppresses nothing on line {} or {} — it is stale",
                    a.rules.join(", "),
                    a.covers.0,
                    a.covers.1
                ),
                hint: "delete the stale allow comment",
            });
        }
    }
    result.diagnostics.sort_by_key(|d| (d.span.line, d.span.col));
    result.allows = allows;
    result
}

/// The single token-stream pass shared by R1/R2/R3/R4/R6/R7.
fn check_tokens(
    class: &FileClass<'_>,
    tokens: &[Token],
    in_test: &[bool],
    found: &mut Vec<Diagnostic>,
) {
    let ident = |k: usize| match tokens.get(k).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct =
        |k: usize, c: char| matches!(tokens.get(k).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c);
    // `a :: b` — the path separator is two ':' punct tokens.
    let path_sep = |k: usize| punct(k, ':') && punct(k + 1, ':');

    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let Tok::Ident(word) = &t.tok else { continue };
        let diag = |rule: &'static str, name: &'static str, message: String, hint: &'static str| {
            Diagnostic { rule, name, file: class.rel.to_string(), span: t.span, message, hint }
        };

        match word.as_str() {
            "HashMap" | "HashSet" if class.r1_applies() => {
                found.push(diag(
                    "R1",
                    "no-hash-order",
                    format!(
                        "`{word}` in a determinism crate (otc-{}): iteration order is \
                         process-random and must never reach a cost path",
                        class.crate_name
                    ),
                    "use BTreeMap/BTreeSet, or sort before any iteration and justify with an allow",
                ));
            }
            "Instant" if class.r2_applies() && path_sep(i + 1) && ident(i + 3) == Some("now") => {
                found.push(diag(
                    "R2",
                    "no-wall-clock",
                    "`Instant::now` outside otc-bench/otc-experiments: wall-clock reads make \
                     live runs diverge from replay"
                        .to_string(),
                    "derive timing from round/window indices, or move the measurement into otc-bench",
                ));
            }
            "SystemTime" if class.r2_applies() => {
                found.push(diag(
                    "R2",
                    "no-wall-clock",
                    "`SystemTime` outside otc-bench/otc-experiments: wall-clock reads make \
                     live runs diverge from replay"
                        .to_string(),
                    "derive timing from round/window indices, or move the measurement into otc-bench",
                ));
            }
            "sleep"
                if class.r2_applies()
                    && i >= 3
                    && path_sep(i - 2)
                    && ident(i - 3) == Some("thread") =>
            {
                found.push(diag(
                    "R2",
                    "no-wall-clock",
                    "`thread::sleep` outside otc-bench/otc-experiments: timing-dependent \
                     control flow is nondeterministic"
                        .to_string(),
                    "use channel backpressure or a condition variable instead of sleeping",
                ));
            }
            "var" | "vars" | "var_os"
                if class.r2_applies()
                    && i >= 3
                    && path_sep(i - 2)
                    && ident(i - 3) == Some("env") =>
            {
                found.push(diag(
                    "R2",
                    "no-wall-clock",
                    format!(
                        "`env::{word}` outside otc-bench/otc-experiments: environment-dependent \
                         branching makes runs irreproducible"
                    ),
                    "thread configuration through EngineConfig/ServeConfig instead of the environment",
                ));
            }
            "unwrap" | "expect" if class.r3_applies() && i >= 1 && punct(i - 1, '.') => {
                found.push(diag(
                    "R3",
                    "no-panic-decode",
                    format!(
                        "`.{word}()` in a parse/decode/recovery path: corrupt input must \
                         yield a typed error, never a panic or partial restore"
                    ),
                    "propagate a typed error (?), or restructure so the failure case is impossible without a panic",
                ));
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if class.r3_applies() && punct(i + 1, '!') =>
            {
                found.push(diag(
                    "R3",
                    "no-panic-decode",
                    format!(
                        "`{word}!` in a parse/decode/recovery path: corrupt input must \
                         yield a typed error, never a panic or partial restore"
                    ),
                    "return a typed error, or restructure the control flow so the arm disappears",
                ));
            }
            "as" if class.r4_applies() => {
                if let Some(target) = ident(i + 1) {
                    if NARROW_INTS.contains(&target) {
                        found.push(diag(
                            "R4",
                            "no-narrowing-cast",
                            format!(
                                "narrowing `as {target}` in a codec: a silent truncation here \
                                 writes bytes that decode to the wrong value"
                            ),
                            "use try_from and surface the failure as a typed error (or prove the bound and allow with a reason)",
                        ));
                    }
                }
            }
            "otc_obs" if class.r7_applies() => {
                found.push(diag(
                    "R7",
                    "no-obs-in-determinism",
                    format!(
                        "`otc_obs` named in a determinism crate (otc-{}): the observability \
                         layer must stay structurally unreachable from anything that computes \
                         results (invariant #8)",
                        class.crate_name
                    ),
                    "keep observation on the serve side of the hooks seam; determinism crates \
                     expose one-way hook traits instead of importing otc_obs",
                ));
            }
            "spawn"
                if class.r6_applies()
                    && i >= 3
                    && path_sep(i - 2)
                    && ident(i - 3) == Some("thread") =>
            {
                found.push(diag(
                    "R6",
                    "no-raw-spawn",
                    "raw `thread::spawn` outside otc_util::{par, ring} and the serve worker \
                     seam: ad-hoc threads escape the determinism argument"
                        .to_string(),
                    "use otc_util::par::parallel_map_mut (scoped, count-invariant) or route through the serve worker seam",
                ));
            }
            _ => {}
        }
    }
}

/// R5: the crate root must carry `#![forbid(unsafe_code)]` and
/// `#![deny(missing_docs)]` (forbid also accepted for the latter).
fn check_crate_root_attrs(class: &FileClass<'_>, tokens: &[Token], found: &mut Vec<Diagnostic>) {
    let mut has_unsafe_forbid = false;
    let mut has_docs_deny = false;
    for w in tokens.windows(7) {
        // # ! [ level ( lint ) ]  — windows(7) sees `# ! [ level ( lint )`.
        let [h, b, o, level, p, lint, _] = w else { continue };
        let (
            Tok::Punct('#'),
            Tok::Punct('!'),
            Tok::Punct('['),
            Tok::Ident(level),
            Tok::Punct('('),
            Tok::Ident(lint),
        ) = (&h.tok, &b.tok, &o.tok, &level.tok, &p.tok, &lint.tok)
        else {
            continue;
        };
        match (level.as_str(), lint.as_str()) {
            ("forbid", "unsafe_code") => has_unsafe_forbid = true,
            ("deny" | "forbid", "missing_docs") => has_docs_deny = true,
            _ => {}
        }
    }
    let missing: &[(&str, bool)] = &[
        ("#![forbid(unsafe_code)]", has_unsafe_forbid),
        ("#![deny(missing_docs)]", has_docs_deny),
    ];
    for (attr, present) in missing {
        if !present {
            found.push(Diagnostic {
                rule: "R5",
                name: "crate-root-attrs",
                file: class.rel.to_string(),
                span: Span { line: 1, col: 1 },
                message: format!("crate root is missing `{attr}`"),
                hint: "add the attribute at the top of the crate root, below the module docs",
            });
        }
    }
}

/// Computes, for every token, whether it sits inside test-only code: an
/// item annotated `#[test]`-ish or `#[cfg(test)]` (including stacked
/// attributes), through the end of the item's braced body (or its
/// terminating `;`). A `#![cfg(test)]` inner attribute marks the rest
/// of the file.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].tok != Tok::Punct('#') {
            i += 1;
            continue;
        }
        let inner = matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!')));
        let open = i + 1 + usize::from(inner);
        if !matches!(tokens.get(open).map(|t| &t.tok), Some(Tok::Punct('['))) {
            i += 1;
            continue;
        }
        let Some(close) = matching_bracket(tokens, open) else {
            break; // unterminated attribute: garbled source, stop masking
        };
        if !attr_is_test(&tokens[open + 1..close]) {
            i = close + 1;
            continue;
        }
        if inner {
            for m in mask.iter_mut().skip(i) {
                *m = true;
            }
            return mask;
        }
        // Skip any further stacked attributes, then mask through the
        // item's braced body (or its `;` for body-less items).
        let mut j = close + 1;
        while matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('#')))
            && matches!(tokens.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
        {
            match matching_bracket(tokens, j + 1) {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        let mut end = tokens.len() - 1;
        let mut k = j;
        while k < tokens.len() {
            match &tokens[k].tok {
                Tok::Punct(';') => {
                    end = k;
                    break;
                }
                Tok::Punct('{') => {
                    end = matching_brace(tokens, k).unwrap_or(tokens.len() - 1);
                    break;
                }
                _ => k += 1,
            }
        }
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Whether an attribute's tokens mark test-only code: they mention
/// `test` (as `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`) and do
/// not negate it (`#[cfg(not(test))]` is live code).
fn attr_is_test(attr: &[Token]) -> bool {
    let mut saw_test = false;
    let mut saw_not = false;
    for t in attr {
        if let Tok::Ident(s) = &t.tok {
            match s.as_str() {
                "test" => saw_test = true,
                "not" => saw_not = true,
                _ => {}
            }
        }
    }
    saw_test && !saw_not
}

/// Index of the `]` matching the `[` at `open`, if any.
fn matching_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`, if any.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parses every `otc-lint: allow(...)` directive out of the line
/// comments. Grammar, inside a `//` comment:
///
/// ```text
/// otc-lint: allow(R3)                       — flagged A0 (no reason)
/// otc-lint: allow(R3 reason="justified")    — suppresses R3 findings
/// otc-lint: allow(R3, R4 reason="...")      — several rules, one reason
/// ```
///
/// A directive covers its own line; a *standalone* comment (nothing
/// else on the line) also covers the next line, for statements too long
/// to share a line with their justification.
fn parse_allows(rel: &str, comments: &[Comment]) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        // Doc comments (`///`, `//!` — text starts with the third `/`
        // or `!`) are documentation, not directives: they may *mention*
        // the allow syntax without invoking it.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let Some(at) = c.text.find("otc-lint:") else { continue };
        let rest = c.text[at + "otc-lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow") else { continue };
        let Some(rest) = rest.trim_start().strip_prefix('(') else { continue };
        let body = match rest.find(')') {
            Some(end) => &rest[..end],
            None => rest, // unterminated: parse what is there, A0 will bite
        };
        let (rules_part, reason) = match body.find("reason") {
            Some(r) => {
                let after = &body[r + "reason".len()..];
                let reason = after
                    .trim_start()
                    .strip_prefix('=')
                    .map(str::trim_start)
                    .and_then(|q| q.strip_prefix('"'))
                    .and_then(|q| q.rfind('"').map(|e| q[..e].to_string()))
                    .filter(|s| !s.trim().is_empty());
                (&body[..r], reason)
            }
            None => (body, None),
        };
        let rules: Vec<String> = rules_part
            .split([',', ' '])
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        if rules.is_empty() {
            continue;
        }
        let covers =
            if c.trailing { (c.span.line, c.span.line) } else { (c.span.line, c.span.line + 1) };
        out.push(Allow {
            file: rel.to_string(),
            line: c.span.line,
            rules,
            reason,
            covers,
            used: false,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_modules_are_exempt() {
        let src = "
            fn live() { m.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { m.unwrap().expect(\"fine in tests\"); }
            }
        ";
        let r = lint_source("crates/serve/src/wire.rs", src);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].span.line, 2);
    }

    #[test]
    fn cfg_not_test_is_live() {
        let src = "
            #[cfg(not(test))]
            fn live() { m.unwrap(); }
        ";
        let r = lint_source("crates/serve/src/wire.rs", src);
        assert_eq!(r.diagnostics.len(), 1);
    }

    #[test]
    fn allow_roundtrip_same_line_and_next_line() {
        let src = "
            let a = m.unwrap(); // otc-lint: allow(R3 reason=\"proven above\")
            // otc-lint: allow(R3 reason=\"also proven\")
            let b = m.unwrap();
        ";
        let r = lint_source("crates/serve/src/wire.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.suppressed.len(), 2);
        assert!(r.allows.iter().all(|a| a.used));
    }

    #[test]
    fn allow_without_reason_is_a0_and_does_not_suppress() {
        let src = "let a = m.unwrap(); // otc-lint: allow(R3)";
        let r = lint_source("crates/serve/src/wire.rs", src);
        let rules: Vec<&str> = r.diagnostics.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"R3") && rules.contains(&"A0"), "{rules:?}");
    }

    #[test]
    fn doc_comments_do_not_carry_directives() {
        let src = "
            /// Suppress with `// otc-lint: allow(R3)`.
            //! Or: otc-lint: allow(R3 reason=\"docs\")
            fn live() {}
        ";
        let r = lint_source("crates/serve/src/wire.rs", src);
        assert!(r.allows.is_empty(), "{:?}", r.allows);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn stale_allow_is_a1() {
        let src = "let a = 1; // otc-lint: allow(R3 reason=\"nothing here\")";
        let r = lint_source("crates/serve/src/wire.rs", src);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, "A1");
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src =
            "let a = m.unwrap_or(0); let b = m.unwrap_or_else(f); let c = m.unwrap_or_default();";
        let r = lint_source("crates/serve/src/wire.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn widening_casts_are_legal() {
        let src = "let a = x as u64; let b = y as usize; let c = z as u128;";
        let r = lint_source("crates/sim/src/snapshot.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn rules_only_fire_where_classified() {
        // unwrap outside an R3 file; HashMap outside an R1 crate.
        let r =
            lint_source("crates/util/src/rng.rs", "fn f() { m.unwrap(); let h = HashMap::new(); }");
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }
}
