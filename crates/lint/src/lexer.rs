//! A comment- and string-aware Rust lexer.
//!
//! This is not a full Rust lexer — it is exactly as much of one as the
//! rule engine needs: it separates **identifiers**, **punctuation** and
//! **literals** from each other and from trivia (whitespace, comments),
//! attaching a 1-based line/column span to every token, and it collects
//! line comments separately so [`crate::rules`] can parse
//! `// otc-lint: allow(...)` directives out of them.
//!
//! The properties the rules depend on:
//!
//! * text inside string/char/byte/raw-string literals and inside
//!   comments can never produce an identifier token — `"HashMap"` in a
//!   diagnostic message does not trip R1;
//! * `'a` lifetimes are distinguished from `'x'` char literals, so a
//!   lifetime never starts a bogus "unterminated literal" scan;
//! * raw strings (`r"…"`, `r#"…"#`, arbitrary `#` depth, `b`/`br`
//!   prefixes) and nested block comments are skipped exactly;
//! * garbled input never panics: unterminated literals and comments
//!   lex to end-of-file, stray bytes become punctuation tokens, and
//!   invalid UTF-8 is replaced before lexing (see
//!   [`crate::lint_source`]). `crates/lint/tests/selftest.rs` fuzzes
//!   truncations of real sources to pin this.

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number in characters, starting at 1.
    pub col: u32,
}

/// What a token is; the rule engine only ever needs these three classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`HashMap`, `as`, `unwrap`, `r#type`).
    Ident(String),
    /// A single punctuation character (`.`, `:`, `!`, `[`, …).
    Punct(char),
    /// Any literal: string, raw string, byte string, char or number.
    /// The content is trivia to every rule, so it is not kept.
    Lit,
    /// A lifetime (`'a`, `'static`). Distinct from [`Tok::Lit`] so a
    /// rule can never confuse it with a char literal.
    Lifetime,
}

/// One token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token class and (for identifiers) its text.
    pub tok: Tok,
    /// Where the token starts.
    pub span: Span,
}

/// One `//` line comment (doc comments included), with the `//` prefix
/// stripped but inner `!`/`/` markers kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// The comment text after the leading `//`.
    pub text: String,
    /// Where the `//` starts.
    pub span: Span,
    /// Whether any non-whitespace token precedes the comment on its
    /// line (a *trailing* comment, as opposed to a standalone one).
    pub trailing: bool,
}

/// The output of [`lex`]: code tokens plus the line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-trivia tokens, in source order.
    pub tokens: Vec<Token>,
    /// All line comments, in source order.
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn span(&self) -> Span {
        Span { line: self.line, col: self.col }
    }

    /// Consumes one character, tracking line/column.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes characters while `pred` holds, returning them.
    fn take_while(&mut self, pred: impl Fn(char) -> bool) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek(0) {
            if !pred(c) {
                break;
            }
            out.push(c);
            self.bump();
        }
        out
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never panics, whatever the
/// input: anything unrecognised is consumed as punctuation, and every
/// unterminated construct simply runs to end-of-file.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor { chars: src.chars().collect(), i: 0, line: 1, col: 1 };
    let mut out = Lexed::default();
    let mut line_has_code = false;

    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            line_has_code = false;
            cur.bump();
            continue;
        }
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let span = cur.span();
            cur.bump();
            cur.bump();
            let text = cur.take_while(|c| c != '\n');
            out.comments.push(Comment { text, span, trailing: line_has_code });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        cur.bump();
                        cur.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break, // unterminated: runs to EOF
                }
            }
            continue;
        }

        line_has_code = true;
        let span = cur.span();

        // Raw strings and byte strings: r"…", r#"…"#, b"…", br#"…"#,
        // plus raw identifiers r#ident.
        if (c == 'r' || c == 'b') && try_lex_prefixed_literal(&mut cur, &mut out, span) {
            continue;
        }

        if c == '"' {
            cur.bump();
            lex_string_body(&mut cur);
            out.tokens.push(Token { tok: Tok::Lit, span });
            continue;
        }

        if c == '\'' {
            lex_quote(&mut cur, &mut out, span);
            continue;
        }

        if is_ident_start(c) {
            let text = cur.take_while(is_ident_continue);
            out.tokens.push(Token { tok: Tok::Ident(text), span });
            continue;
        }

        if c.is_ascii_digit() {
            lex_number(&mut cur);
            out.tokens.push(Token { tok: Tok::Lit, span });
            continue;
        }

        cur.bump();
        out.tokens.push(Token { tok: Tok::Punct(c), span });
    }
    out
}

/// Handles the `r` / `b` prefixed forms. Returns `true` if it consumed a
/// token (pushed to `out`), `false` if the `r`/`b` is an ordinary
/// identifier start the caller should lex normally.
fn try_lex_prefixed_literal(cur: &mut Cursor, out: &mut Lexed, span: Span) -> bool {
    let c0 = cur.peek(0);
    let (prefix_len, rest) = match (c0, cur.peek(1)) {
        (Some('b'), Some('r')) => (2, cur.peek(2)),
        (Some('r' | 'b'), _) => (1, cur.peek(1)),
        _ => return false,
    };
    match rest {
        // Raw identifier r#ident (only bare `r`, and `r#"` is a raw
        // string, so require an identifier character after the `#`).
        Some('#')
            if c0 == Some('r') && prefix_len == 1 && cur.peek(2).is_some_and(is_ident_start) =>
        {
            cur.bump(); // r
            cur.bump(); // #
            let text = cur.take_while(is_ident_continue);
            out.tokens.push(Token { tok: Tok::Ident(text), span });
            true
        }
        // Raw string with hashes: r#"…"#, br##"…"##, …
        Some('#') => {
            for _ in 0..prefix_len {
                cur.bump();
            }
            let hashes = cur.take_while(|c| c == '#').len();
            if cur.peek(0) == Some('"') {
                cur.bump();
                lex_raw_string_body(cur, hashes);
            }
            // A stray `r#` not followed by `"` consumed the hashes as
            // garbage — robustness over precision.
            out.tokens.push(Token { tok: Tok::Lit, span });
            true
        }
        // Raw/byte string without hashes: r"…", b"…", br"…".
        Some('"') => {
            for _ in 0..prefix_len {
                cur.bump();
            }
            cur.bump(); // the quote
            if c0 == Some('r') || prefix_len == 2 {
                lex_raw_string_body(cur, 0);
            } else {
                lex_string_body(cur);
            }
            out.tokens.push(Token { tok: Tok::Lit, span });
            true
        }
        // Byte char b'x'.
        Some('\'') if c0 == Some('b') && prefix_len == 1 => {
            cur.bump(); // b
            cur.bump(); // '
            lex_char_body(cur);
            out.tokens.push(Token { tok: Tok::Lit, span });
            true
        }
        _ => false,
    }
}

/// Consumes a `"…"` body after the opening quote, honouring `\\` escapes.
/// Unterminated strings run to EOF.
fn lex_string_body(cur: &mut Cursor) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => return,
            _ => {}
        }
    }
}

/// Consumes a raw-string body after the opening quote: ends at `"`
/// followed by `hashes` `#` characters. No escapes.
fn lex_raw_string_body(cur: &mut Cursor, hashes: usize) {
    while let Some(c) = cur.bump() {
        if c == '"' && (0..hashes).all(|k| cur.peek(k) == Some('#')) {
            for _ in 0..hashes {
                cur.bump();
            }
            return;
        }
    }
}

/// Consumes a char-literal body after the opening `'` (one possibly
/// escaped character plus the closing quote), tolerating garbage.
fn lex_char_body(cur: &mut Cursor) {
    if let Some('\\') = cur.bump() {
        cur.bump(); // the escaped character
                    // Multi-char escapes (\u{…}, \x41) run until the quote.
        while let Some(c) = cur.peek(0) {
            if c == '\'' || c == '\n' {
                break;
            }
            cur.bump();
        }
    }
    if cur.peek(0) == Some('\'') {
        cur.bump();
    }
}

/// Disambiguates `'` between a char literal and a lifetime, consuming
/// whichever it is.
fn lex_quote(cur: &mut Cursor, out: &mut Lexed, span: Span) {
    // Lifetime: 'ident NOT followed by a closing quote ('a, 'static —
    // but 'a' is a char literal).
    if cur.peek(1).is_some_and(is_ident_start) && cur.peek(2) != Some('\'') {
        cur.bump(); // '
        cur.take_while(is_ident_continue);
        out.tokens.push(Token { tok: Tok::Lifetime, span });
        return;
    }
    cur.bump(); // '
    lex_char_body(cur);
    out.tokens.push(Token { tok: Tok::Lit, span });
}

/// Consumes a numeric literal loosely: digits, `_`, type suffixes, hex
/// letters and a fractional part — but never the `..` of a range.
fn lex_number(cur: &mut Cursor) {
    cur.take_while(|c| c.is_alphanumeric() || c == '_');
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        cur.take_while(|c| c.is_alphanumeric() || c == '_');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in /* a nested */ block */
            let x = "HashMap::new()";
            let y = r#"HashMap "quoted" inside"#;
            let z = b"HashMap";
            let w = 'H';
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "HashMap"), "got {ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { unwrap() }";
        let ids = idents(src);
        assert!(ids.contains(&"unwrap".to_string()));
        let lifetimes = lex(src).tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn spans_are_line_and_column_accurate() {
        let src = "let a = 1;\n  foo.unwrap();\n";
        let lexed = lex(src);
        let unwrap = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("unwrap".to_string()))
            .expect("unwrap token");
        assert_eq!(unwrap.span, Span { line: 2, col: 7 });
    }

    #[test]
    fn trailing_vs_standalone_comments() {
        let src = "// standalone\nlet x = 1; // trailing\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[0].trailing);
        assert!(lexed.comments[1].trailing);
    }

    #[test]
    fn garbled_input_never_panics() {
        for src in [
            "\"unterminated",
            "r#\"unterminated raw",
            "/* unterminated block",
            "'",
            "b'",
            "r#",
            "\u{FFFD}\u{0}\u{7}",
            "let x = 'a",
        ] {
            let _ = lex(src);
        }
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let lexed = lex("for i in 0..10 {}");
        let dots = lexed.tokens.iter().filter(|t| t.tok == Tok::Punct('.')).count();
        assert_eq!(dots, 2);
    }
}
