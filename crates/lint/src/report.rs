//! Rendering: human-readable diagnostics for the terminal and a
//! hand-rolled `lint-report.json` for CI artifacts.
//!
//! The JSON writer is deliberately minimal (objects, arrays, strings,
//! numbers — all we need) so the crate keeps its zero-dependency
//! promise. Output is deterministic: files and findings are emitted in
//! sorted order by the caller.

use std::fmt::Write as _;

use crate::rules::{Allow, Diagnostic, RULES};

/// Aggregated result of linting the whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving findings across all files, in walk order.
    pub diagnostics: Vec<Diagnostic>,
    /// Every allow directive encountered, audited.
    pub allows: Vec<Allow>,
    /// Findings suppressed by justified allows.
    pub suppressed: Vec<Diagnostic>,
    /// Number of files linted.
    pub files: usize,
}

impl Report {
    /// Whether the gate passes: no surviving diagnostics.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Human-readable rendering, one block per finding plus a summary
    /// line. Stable ordering: the caller feeds files in sorted order
    /// and per-file findings are sorted by span.
    #[must_use]
    pub fn human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(
                out,
                "{}: [{} {}] {}\n  --> {}:{}:{}\n  hint: {}",
                severity(d.rule),
                d.rule,
                d.name,
                d.message,
                d.file,
                d.span.line,
                d.span.col,
                d.hint
            );
        }
        let _ = writeln!(
            out,
            "otc-lint: {} file(s), {} finding(s), {} suppressed by {} allow(s)",
            self.files,
            self.diagnostics.len(),
            self.suppressed.len(),
            self.allows.len()
        );
        if !self.allows.is_empty() {
            let _ = writeln!(out, "audited allows:");
            for a in &self.allows {
                let _ = writeln!(
                    out,
                    "  {}:{} allow({}) reason={:?}{}",
                    a.file,
                    a.line,
                    a.rules.join(", "),
                    a.reason.as_deref().unwrap_or("<MISSING>"),
                    if a.used { "" } else { " [stale]" }
                );
            }
        }
        out
    }

    /// `lint-report.json`: machine-readable mirror of the findings and
    /// the allow audit, archived by CI.
    #[must_use]
    pub fn json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_obj();
        w.key("clean");
        w.raw(if self.clean() { "true" } else { "false" });
        w.key("files_linted");
        w.raw(&self.files.to_string());
        w.key("rules");
        w.open_arr();
        for (id, name, summary) in RULES {
            w.open_obj();
            w.key("id");
            w.str(id);
            w.key("name");
            w.str(name);
            w.key("summary");
            w.str(summary);
            w.close_obj();
        }
        w.close_arr();
        w.key("diagnostics");
        w.diag_array(&self.diagnostics);
        w.key("suppressed");
        w.diag_array(&self.suppressed);
        w.key("allows");
        w.open_arr();
        for a in &self.allows {
            w.open_obj();
            w.key("file");
            w.str(&a.file);
            w.key("line");
            w.raw(&a.line.to_string());
            w.key("rules");
            w.open_arr();
            for r in &a.rules {
                w.str(r);
            }
            w.close_arr();
            w.key("reason");
            match &a.reason {
                Some(r) => w.str(r),
                None => w.raw("null"),
            }
            w.key("used");
            w.raw(if a.used { "true" } else { "false" });
            w.close_obj();
        }
        w.close_arr();
        w.close_obj();
        w.finish()
    }
}

fn severity(rule: &str) -> &'static str {
    if rule.starts_with('A') {
        "warning"
    } else {
        "error"
    }
}

/// A tiny streaming JSON writer: tracks whether a comma is due and
/// escapes strings per RFC 8259. Enough for our report, nothing more.
struct JsonWriter {
    buf: String,
    need_comma: Vec<bool>,
}

impl JsonWriter {
    fn new() -> Self {
        Self { buf: String::new(), need_comma: vec![false] }
    }

    fn sep(&mut self) {
        if let Some(last) = self.need_comma.last_mut() {
            if *last {
                self.buf.push(',');
            }
            *last = true;
        }
    }

    fn open_obj(&mut self) {
        self.sep();
        self.buf.push('{');
        self.need_comma.push(false);
    }

    fn close_obj(&mut self) {
        self.buf.push('}');
        self.need_comma.pop();
    }

    fn open_arr(&mut self) {
        self.sep();
        self.buf.push('[');
        self.need_comma.push(false);
    }

    fn close_arr(&mut self) {
        self.buf.push(']');
        self.need_comma.pop();
    }

    /// Writes `"key":` — the following value call supplies the value.
    fn key(&mut self, k: &str) {
        self.sep();
        self.escape(k);
        self.buf.push(':');
        // The value immediately after a key must not be comma-prefixed.
        if let Some(last) = self.need_comma.last_mut() {
            *last = false;
        }
    }

    fn str(&mut self, s: &str) {
        self.sep();
        self.escape(s);
    }

    /// Writes a pre-rendered value (number, bool, null).
    fn raw(&mut self, v: &str) {
        self.sep();
        self.buf.push_str(v);
    }

    fn escape(&mut self, s: &str) {
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.buf, "\\u{:04x}", c as u32);
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    fn diag_array(&mut self, diags: &[Diagnostic]) {
        self.open_arr();
        for d in diags {
            self.open_obj();
            self.key("rule");
            self.str(d.rule);
            self.key("name");
            self.str(d.name);
            self.key("file");
            self.str(&d.file);
            self.key("line");
            self.raw(&d.span.line.to_string());
            self.key("col");
            self.raw(&d.span.col.to_string());
            self.key("message");
            self.str(&d.message);
            self.key("hint");
            self.str(d.hint);
            self.close_obj();
        }
        self.close_arr();
    }

    fn finish(mut self) -> String {
        self.buf.push('\n');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::Span;

    fn sample() -> Report {
        Report {
            diagnostics: vec![Diagnostic {
                rule: "R3",
                name: "no-panic-decode",
                file: "crates/serve/src/wire.rs".to_string(),
                span: Span { line: 7, col: 13 },
                message: "`.unwrap()` in a parse path \"quoted\"".to_string(),
                hint: "propagate a typed error",
            }],
            allows: vec![Allow {
                file: "crates/workloads/src/trace.rs".to_string(),
                line: 141,
                rules: vec!["R3".to_string()],
                reason: Some("in-memory write".to_string()),
                covers: (141, 142),
                used: true,
            }],
            suppressed: Vec::new(),
            files: 2,
        }
    }

    #[test]
    fn human_mentions_span_and_rule() {
        let h = sample().human();
        assert!(h.contains("crates/serve/src/wire.rs:7:13"), "{h}");
        assert!(h.contains("[R3 no-panic-decode]"), "{h}");
        assert!(h.contains("2 file(s), 1 finding(s)"), "{h}");
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let j = sample().json();
        assert!(j.contains("\"clean\":false"), "{j}");
        assert!(j.contains("\\\"quoted\\\""), "{j}");
        assert!(j.contains("\"line\":7,\"col\":13"), "{j}");
        // Balanced delimiters outside of strings: a cheap structural check.
        let mut depth = 0i32;
        let mut in_str = false;
        let mut esc = false;
        for c in j.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn empty_report_is_clean() {
        let r = Report::default();
        assert!(r.clean());
        assert!(r.json().contains("\"clean\":true"));
    }
}
