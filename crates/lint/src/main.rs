//! CLI entry point for `otc-lint`.
//!
//! ```text
//! otc-lint --check [--root DIR] [--json PATH] [--list-rules]
//! ```
//!
//! `--check` lints the workspace and exits nonzero on any finding;
//! `--json` additionally writes `lint-report.json` (CI archives it);
//! `--list-rules` prints the rule table and exits. With no flags the
//! tool behaves as `--check` but always exits 0 (report-only mode).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use otc_lint::lint_workspace;
use otc_lint::rules::RULES;

fn main() -> ExitCode {
    let mut check = false;
    let mut root = PathBuf::from(".");
    let mut json: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(path) => json = Some(PathBuf::from(path)),
                None => return usage("--json needs a file path"),
            },
            "--list-rules" => {
                for (id, name, summary) in RULES {
                    println!("{id} {name:<20} {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("otc-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.human());
    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, report.json()) {
            eprintln!("otc-lint: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("otc-lint: wrote {}", path.display());
    }
    if check && !report.clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("otc-lint: {error}");
    }
    eprintln!("usage: otc-lint [--check] [--root DIR] [--json PATH] [--list-rules]");
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
