//! Bench crate: all targets live in benches/.
#![forbid(unsafe_code)]
