//! Bench crate: criterion targets live in `benches/`; the JSON baseline
//! recorders (`bench_engine`, `bench_trace_replay`) live in `src/bin/` and
//! share the structured host provenance emitted by [`HostInfo::capture`].
#![deny(missing_docs)]
#![forbid(unsafe_code)]

/// Provenance of the machine a baseline was recorded on. Serialized as a
/// structured `host` object into every `BENCH_*.json` (replacing the old
/// free-form comment string), so regressions can be attributed to hardware
/// or toolchain changes instead of being puzzled over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    /// Logical CPU count (`std::thread::available_parallelism`).
    pub nproc: usize,
    /// `rustc --version` of the toolchain on `PATH` (respecting `$RUSTC`),
    /// or `"unknown"` when it cannot be queried.
    pub rustc: String,
    /// Recording date as `YYYY-MM-DD` (UTC).
    pub date: String,
}

impl HostInfo {
    /// Probes the current machine.
    #[must_use]
    pub fn capture() -> Self {
        let nproc = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let rustc_bin = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
        let rustc = std::process::Command::new(rustc_bin)
            .arg("--version")
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map_or_else(|| "unknown".to_string(), |s| s.trim().to_string());
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        Self { nproc, rustc, date: civil_date_utc(secs) }
    }

    /// The structured JSON `host` object (no trailing newline), e.g.
    /// `{ "nproc": 8, "rustc": "rustc 1.80.0", "date": "2026-07-26" }`.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{ \"nproc\": {}, \"rustc\": \"{}\", \"date\": \"{}\" }}",
            self.nproc,
            self.rustc.replace('\\', "\\\\").replace('"', "\\\""),
            self.date
        )
    }
}

/// The shared trace-replay benchmark workload: a forest of `shards`
/// independent random trees plus a Markov-bursty stream addressed over
/// the forest's **global** id space, recorded as a
/// [`Trace`](otc_workloads::trace::Trace) with full provenance. One definition keeps the criterion target
/// (`benches/trace_replay.rs`) and the JSON recorder
/// (`bench_trace_replay`) measuring the identical workload — including
/// the non-obvious global addressing detail: `Tree::star(n)` has `n + 1`
/// nodes, so a star over `global_len − 1` leaves is exactly the forest's
/// id space, which `from_trees` forests require (`universe ==
/// global_len`; a partitioned forest would break that assumption by
/// replicating roots).
#[must_use]
pub fn trace_replay_workload(
    shards: usize,
    nodes_per_shard: usize,
    len: usize,
    alpha: u64,
    seed: u64,
) -> (otc_core::forest::Forest, otc_workloads::trace::Trace) {
    use otc_core::forest::{Forest, ShardId};
    use otc_core::tree::Tree;
    use otc_workloads::trace::{Trace, TraceHeader};
    use otc_workloads::{markov_bursty, random_attachment, MarkovBurstyConfig};

    let mut rng = otc_util::SplitMix64::new(seed);
    let trees: Vec<std::sync::Arc<Tree>> = (0..shards)
        .map(|_| std::sync::Arc::new(random_attachment(nodes_per_shard, &mut rng)))
        .collect();
    let forest = Forest::from_trees(trees);
    let flat = Tree::star(forest.global_len() - 1); // virtual global address space
    let cfg = MarkovBurstyConfig { len, alpha, ..MarkovBurstyConfig::default() };
    let requests = markov_bursty(&flat, cfg, &mut rng);
    let header = TraceHeader {
        universe: forest.global_len() as u32,
        shard_map: (0..shards).map(|s| forest.tree(ShardId(s as u32)).len() as u32).collect(),
        seed,
        generator: "markov-bursty".to_string(),
    };
    (forest, Trace { header, requests })
}

/// Converts seconds since the Unix epoch to a `YYYY-MM-DD` UTC date
/// (Howard Hinnant's `civil_from_days` algorithm; no external time crate
/// in this offline workspace).
#[must_use]
pub fn civil_date_utc(epoch_secs: u64) -> String {
    let days = (epoch_secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_dates_are_correct() {
        assert_eq!(civil_date_utc(0), "1970-01-01");
        assert_eq!(civil_date_utc(86_399), "1970-01-01");
        assert_eq!(civil_date_utc(86_400), "1970-01-02");
        // A leap day and its successor.
        assert_eq!(civil_date_utc(951_782_400), "2000-02-29");
        assert_eq!(civil_date_utc(951_868_800), "2000-03-01");
        // 2026-07-26 00:00:00 UTC.
        assert_eq!(civil_date_utc(1_785_024_000), "2026-07-26");
    }

    #[test]
    fn host_info_is_well_formed() {
        let host = HostInfo::capture();
        assert!(host.nproc >= 1);
        let json = host.to_json();
        assert!(json.starts_with("{ \"nproc\": "));
        assert!(json.contains("\"rustc\": \""));
        assert!(json.contains("\"date\": \""));
        assert_eq!(host.date.len(), 10, "date is YYYY-MM-DD, got {}", host.date);
    }
}
