//! Bench crate: criterion targets live in `benches/`; the JSON baseline
//! recorders (`bench_engine`, `bench_trace_replay`) live in `src/bin/` and
//! share the structured host provenance emitted by [`HostInfo::capture`].
#![deny(missing_docs)]
#![forbid(unsafe_code)]

/// Provenance of the machine a baseline was recorded on. Serialized as a
/// structured `host` object into every `BENCH_*.json` (replacing the old
/// free-form comment string), so regressions can be attributed to hardware
/// or toolchain changes instead of being puzzled over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    /// Logical CPU count (`std::thread::available_parallelism`).
    pub nproc: usize,
    /// `rustc --version` of the toolchain on `PATH` (respecting `$RUSTC`),
    /// or `"unknown"` when it cannot be queried.
    pub rustc: String,
    /// Recording date as `YYYY-MM-DD` (UTC).
    pub date: String,
}

impl HostInfo {
    /// Probes the current machine.
    #[must_use]
    pub fn capture() -> Self {
        let nproc = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let rustc_bin = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
        let rustc = std::process::Command::new(rustc_bin)
            .arg("--version")
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map_or_else(|| "unknown".to_string(), |s| s.trim().to_string());
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        Self { nproc, rustc, date: civil_date_utc(secs) }
    }

    /// The structured JSON `host` object (no trailing newline), e.g.
    /// `{ "nproc": 8, "rustc": "rustc 1.80.0", "date": "2026-07-26" }`.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{ \"nproc\": {}, \"rustc\": \"{}\", \"date\": \"{}\" }}",
            self.nproc,
            self.rustc.replace('\\', "\\\\").replace('"', "\\\""),
            self.date
        )
    }
}

/// The shared trace-replay benchmark workload: a forest of `shards`
/// independent random trees plus a Markov-bursty stream addressed over
/// the forest's **global** id space, recorded as a
/// [`Trace`](otc_workloads::trace::Trace) with full provenance. One definition keeps the criterion target
/// (`benches/trace_replay.rs`) and the JSON recorder
/// (`bench_trace_replay`) measuring the identical workload — including
/// the non-obvious global addressing detail: `Tree::star(n)` has `n + 1`
/// nodes, so a star over `global_len − 1` leaves is exactly the forest's
/// id space, which `from_trees` forests require (`universe ==
/// global_len`; a partitioned forest would break that assumption by
/// replicating roots).
#[must_use]
pub fn trace_replay_workload(
    shards: usize,
    nodes_per_shard: usize,
    len: usize,
    alpha: u64,
    seed: u64,
) -> (otc_core::forest::Forest, otc_workloads::trace::Trace) {
    use otc_core::forest::{Forest, ShardId};
    use otc_core::tree::Tree;
    use otc_workloads::trace::{Trace, TraceHeader};
    use otc_workloads::{markov_bursty, random_attachment, MarkovBurstyConfig};

    let mut rng = otc_util::SplitMix64::new(seed);
    let trees: Vec<std::sync::Arc<Tree>> = (0..shards)
        .map(|_| std::sync::Arc::new(random_attachment(nodes_per_shard, &mut rng)))
        .collect();
    let forest = Forest::from_trees(trees);
    let flat = Tree::star(forest.global_len() - 1); // virtual global address space
    let cfg = MarkovBurstyConfig { len, alpha, ..MarkovBurstyConfig::default() };
    let requests = markov_bursty(&flat, cfg, &mut rng);
    let header = TraceHeader {
        universe: forest.global_len() as u32,
        shard_map: (0..shards).map(|s| forest.tree(ShardId(s as u32)).len() as u32).collect(),
        seed,
        generator: "markov-bursty".to_string(),
    };
    (forest, Trace { header, requests })
}

/// The fixed FIB workload behind `BENCH_engine.json`, shared between the
/// recorder (`bench_engine`) and the regression gate (`bench_regress`) so
/// both always measure the identical byte-for-byte stream: 4096-rule
/// synthetic table, 200k events, Zipf(θ=1.0) popularity, 2% update churn,
/// α = 4, 256 TCAM entries split evenly across shards.
pub mod fib_baseline {
    use std::sync::Arc;
    use std::time::Instant;

    use otc_core::forest::ShardId;
    use otc_core::policy::CachePolicy;
    use otc_core::tc::{TcConfig, TcFast};
    use otc_core::tree::Tree;
    use otc_sdn::{generate_events, run_fib, run_fib_sharded, FibEvent, FibWorkloadConfig};
    use otc_trie::{hierarchical_table, HierarchicalConfig, RuleTree};
    use otc_util::SplitMix64;

    /// Reconfiguration cost per node fetched/evicted.
    pub const ALPHA: u64 = 4;
    /// Total TCAM capacity, split evenly across shards.
    pub const TOTAL_CAPACITY: usize = 256;
    /// Events per run.
    pub const EVENTS: usize = 200_000;
    /// Rules in the synthetic FIB.
    pub const RULES: usize = 4096;
    /// Shard counts timed by both binaries.
    pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

    /// Builds the fixed rule table and event stream (seed `0xBE7C`).
    #[must_use]
    pub fn build() -> (Arc<RuleTree>, Vec<FibEvent>) {
        let mut rng = SplitMix64::new(0xBE7C);
        let rules = Arc::new(RuleTree::build(&hierarchical_table(
            HierarchicalConfig { n: RULES, subdivide_p: 0.7, max_len: 28 },
            &mut rng,
        )));
        let events = generate_events(
            &rules,
            FibWorkloadConfig { events: EVENTS, theta: 1.0, update_p: 0.02, addr_attempts: 16 },
            &mut rng,
        );
        (rules, events)
    }

    /// Runs `f` `iters` times; returns (best wall seconds, last cost).
    pub fn time_best<F: FnMut() -> u64>(mut f: F, iters: usize) -> (f64, u64) {
        let mut best = f64::INFINITY;
        let mut cost = 0;
        for _ in 0..iters {
            let start = Instant::now();
            cost = f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        (best, cost)
    }

    /// Times the classic single-threaded `run_fib` pipeline; returns
    /// (events/s, total cost).
    #[must_use]
    pub fn measure_run_fib(rules: &Arc<RuleTree>, events: &[FibEvent], iters: usize) -> (f64, u64) {
        let (secs, cost) = time_best(
            || {
                let mut tc = TcFast::new(
                    Arc::new(rules.tree().clone()),
                    TcConfig::new(ALPHA, TOTAL_CAPACITY),
                );
                run_fib(rules, &mut tc, events, ALPHA).total_cost()
            },
            iters,
        );
        (events.len() as f64 / secs, cost)
    }

    /// Times the sharded pipeline at `shards` shards (one worker thread per
    /// shard); returns (events/s, total cost).
    #[must_use]
    pub fn measure_sharded(
        rules: &Arc<RuleTree>,
        events: &[FibEvent],
        shards: usize,
        iters: usize,
    ) -> (f64, u64) {
        let capacity = (TOTAL_CAPACITY / shards).max(1);
        let factory = move |tree: Arc<Tree>, _s: ShardId| {
            Box::new(TcFast::new(tree, TcConfig::new(ALPHA, capacity))) as Box<dyn CachePolicy>
        };
        let (secs, cost) = time_best(
            || run_fib_sharded(rules, &factory, events, ALPHA, shards, shards).total.total_cost(),
            iters,
        );
        (events.len() as f64 / secs, cost)
    }
}

/// Extracts the value of `"key": <integer>` from a JSON fragment. The
/// workspace has no JSON dependency, and every `BENCH_*.json` is written
/// by our own recorders with `"key": value` spacing, so a scan for the
/// quoted key followed by a digit run is exact — this is a reader for our
/// own stable output format, not a general JSON parser.
#[must_use]
pub fn json_u64_field(fragment: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = fragment.find(&needle)? + needle.len();
    let rest = fragment.get(at..)?.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

/// Extracts the value of `"key": "string"` from a JSON fragment (same
/// own-format caveat as [`json_u64_field`]; stops at the closing quote, so
/// values must not contain escaped quotes — ours never do).
#[must_use]
pub fn json_str_field<'a>(fragment: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = fragment.find(&needle)? + needle.len();
    let rest = fragment.get(at..)?.trim_start().strip_prefix('"')?;
    let end = rest.find('"')?;
    rest.get(..end)
}

/// Converts seconds since the Unix epoch to a `YYYY-MM-DD` UTC date
/// (Howard Hinnant's `civil_from_days` algorithm; no external time crate
/// in this offline workspace).
#[must_use]
pub fn civil_date_utc(epoch_secs: u64) -> String {
    let days = (epoch_secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_dates_are_correct() {
        assert_eq!(civil_date_utc(0), "1970-01-01");
        assert_eq!(civil_date_utc(86_399), "1970-01-01");
        assert_eq!(civil_date_utc(86_400), "1970-01-02");
        // A leap day and its successor.
        assert_eq!(civil_date_utc(951_782_400), "2000-02-29");
        assert_eq!(civil_date_utc(951_868_800), "2000-03-01");
        // 2026-07-26 00:00:00 UTC.
        assert_eq!(civil_date_utc(1_785_024_000), "2026-07-26");
    }

    #[test]
    fn json_field_scrapers_read_our_own_format() {
        let row = "    { \"pipeline\": \"run_fib_sharded\", \"shards\": 4, \"threads\": 4, \
                   \"events_per_sec\": 8542411, \"total_cost\": 167192 }";
        assert_eq!(json_u64_field(row, "shards"), Some(4));
        assert_eq!(json_u64_field(row, "events_per_sec"), Some(8_542_411));
        assert_eq!(json_u64_field(row, "total_cost"), Some(167_192));
        assert_eq!(json_str_field(row, "pipeline"), Some("run_fib_sharded"));
        assert_eq!(json_u64_field(row, "absent"), None);
        assert_eq!(json_str_field(row, "shards"), None, "numeric value is not a string");
        let host = "\"host\": { \"nproc\": 8, \"rustc\": \"rustc 1.80.0\" }";
        assert_eq!(json_u64_field(host, "nproc"), Some(8));
        assert_eq!(json_str_field(host, "rustc"), Some("rustc 1.80.0"));
    }

    #[test]
    fn host_info_is_well_formed() {
        let host = HostInfo::capture();
        assert!(host.nproc >= 1);
        let json = host.to_json();
        assert!(json.starts_with("{ \"nproc\": "));
        assert!(json.contains("\"rustc\": \""));
        assert!(json.contains("\"date\": \""));
        assert_eq!(host.date.len(), 10, "date is YYYY-MM-DD, got {}", host.date);
    }
}
