//! Throughput-regression gate against the committed `BENCH_engine.json`.
//!
//! ```text
//! cargo run --release -p otc-bench --bin bench_regress
//! OTC_SMOKE=1 cargo run --release -p otc-bench --bin bench_regress   # CI
//! ```
//!
//! Replays the exact [`otc_bench::fib_baseline`] workload that
//! `bench_engine` records and compares the fresh run against the
//! committed baseline, row by row:
//!
//! * **Total costs must match exactly, always.** The workload is
//!   deterministic, so a cost drift is a semantic bug (this is what first
//!   exposed a PR 3 baseline recorded from a different code state: its
//!   7.58M events/s figure never had a matching cost row).
//! * **Throughput may not drop more than 15%** below the committed
//!   `events_per_sec` — but only when the baseline was recorded on a
//!   matching host (`host.nproc` and `host.rustc` equal). Comparing
//!   wall-clock across different machines or toolchains is noise, so a
//!   host mismatch downgrades the throughput check to a loud warning.
//!
//! Exit status is non-zero on any cost mismatch or (host-matched)
//! throughput regression. `OTC_SMOKE=1` keeps the full 200k-event
//! workload — cost identity stays fully checked — but times a single
//! iteration instead of best-of-3 and widens the throughput tolerance,
//! since a smoke run takes no warm-up care.

use otc_bench::fib_baseline::{self, measure_run_fib, measure_sharded};
use otc_bench::{json_str_field, json_u64_field, HostInfo};

/// One `results[]` row of the committed baseline.
struct BaselineRow {
    pipeline: String,
    shards: usize,
    events_per_sec: u64,
    total_cost: u64,
}

fn parse_baseline(text: &str) -> Result<(HostInfo, Vec<BaselineRow>), String> {
    // The recorder writes `"host": { ... }` on one line and one results
    // row per line; scan line-oriented rather than parsing JSON (no JSON
    // dependency in this workspace, and the format is our own output).
    let host_line =
        text.lines().find(|l| l.contains("\"host\":")).ok_or("baseline has no \"host\" object")?;
    let host = HostInfo {
        nproc: json_u64_field(host_line, "nproc").ok_or("host object has no \"nproc\"")? as usize,
        rustc: json_str_field(host_line, "rustc")
            .ok_or("host object has no \"rustc\"")?
            .to_string(),
        date: json_str_field(host_line, "date").unwrap_or("unknown").to_string(),
    };
    let mut rows = Vec::new();
    for line in text.lines() {
        let Some(pipeline) = json_str_field(line, "pipeline") else { continue };
        // Skip the top-level "benchmark"/"command" lines; rows always
        // carry all three numeric fields.
        let (Some(shards), Some(eps), Some(cost)) = (
            json_u64_field(line, "shards"),
            json_u64_field(line, "events_per_sec"),
            json_u64_field(line, "total_cost"),
        ) else {
            continue;
        };
        rows.push(BaselineRow {
            pipeline: pipeline.to_string(),
            shards: shards as usize,
            events_per_sec: eps,
            total_cost: cost,
        });
    }
    if rows.is_empty() {
        return Err("baseline has no results rows".to_string());
    }
    Ok((host, rows))
}

fn main() {
    let smoke = std::env::var("OTC_SMOKE").is_ok();
    let iters = if smoke { 1 } else { 3 };
    // Smoke runs (CI containers, single timing pass) are only meant to
    // catch order-of-magnitude collapses and cost drift.
    let tolerance = if smoke { 0.50 } else { 0.15 };

    let path = "BENCH_engine.json";
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_regress: cannot read {path}: {e} (run from the repo root)");
            std::process::exit(1);
        }
    };
    let (baseline_host, rows) = match parse_baseline(&text) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("bench_regress: malformed {path}: {e}");
            std::process::exit(1);
        }
    };

    let host = HostInfo::capture();
    let host_matches = host.nproc == baseline_host.nproc && host.rustc == baseline_host.rustc;
    println!(
        "baseline host: nproc {}, {} ({})",
        baseline_host.nproc, baseline_host.rustc, baseline_host.date
    );
    println!("current host:  nproc {}, {}", host.nproc, host.rustc);
    if !host_matches {
        println!(
            "HOST MISMATCH: throughput checks are advisory only (cost identity still enforced)"
        );
    }
    println!("timing: best of {iters} run(s), throughput tolerance {:.0}%", tolerance * 100.0);

    let (rules, events) = fib_baseline::build();
    let mut failures = 0u32;
    for row in &rows {
        let (eps, cost) = match (row.pipeline.as_str(), row.shards) {
            ("run_fib", 1) => measure_run_fib(&rules, &events, iters),
            ("run_fib_sharded", shards) => measure_sharded(&rules, &events, shards, iters),
            (other, shards) => {
                eprintln!("FAIL  unknown baseline row: pipeline {other:?}, shards {shards}");
                failures += 1;
                continue;
            }
        };
        let label = format!("{} x{}", row.pipeline, row.shards);
        if cost != row.total_cost {
            eprintln!(
                "FAIL  {label}: total cost {cost} != committed {} — the workload is \
                 deterministic, so this is a semantic change, not noise",
                row.total_cost
            );
            failures += 1;
            continue;
        }
        let floor = row.events_per_sec as f64 * (1.0 - tolerance);
        let ratio = eps / row.events_per_sec as f64;
        if eps < floor && host_matches {
            eprintln!(
                "FAIL  {label}: {eps:.0} events/s is {ratio:.2}x the committed {} (floor \
                 {floor:.0})",
                row.events_per_sec
            );
            failures += 1;
        } else if eps < floor {
            println!(
                "warn  {label}: {eps:.0} events/s is {ratio:.2}x the committed {} — ignored \
                 (host mismatch)",
                row.events_per_sec
            );
        } else {
            println!(
                "ok    {label}: {eps:.0} events/s ({ratio:.2}x committed), cost {cost} identical"
            );
        }
    }

    if failures > 0 {
        eprintln!("\nbench_regress: {failures} check(s) FAILED against committed {path}");
        std::process::exit(1);
    }
    println!("\nbench_regress: all {} rows within tolerance, costs identical", rows.len());
}
