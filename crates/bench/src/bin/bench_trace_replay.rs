//! Records the trace-replay throughput baseline into
//! `BENCH_trace_replay.json`.
//!
//! ```text
//! cargo run --release -p otc-bench --bin bench_trace_replay
//! ```
//!
//! One fixed Markov-bursty workload over a 4-shard forest is recorded to
//! the binary trace format once, then timed three ways — in-memory batch
//! submission, streaming binary replay (`ShardedEngine::replay_trace`),
//! and streaming replay with windowed telemetry on — so both the cost of
//! the persistence seam and the cost of observation are measured, not
//! guessed. Total costs are asserted identical across all three (replay is
//! bit-exact by construction; a drift here is a bug, not a regression).

use std::fmt::Write as _;
use std::io::Cursor;
use std::sync::Arc;
use std::time::Instant;

use otc_core::forest::ShardId;
use otc_core::policy::CachePolicy;
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::Tree;
use otc_sim::engine::{EngineConfig, ShardedEngine};
use otc_workloads::trace::TraceReader;

const ALPHA: u64 = 4;
const LEN: usize = 400_000;
const SHARDS: usize = 4;
const PER_SHARD_NODES: usize = 2048;
const CAPACITY: usize = 128;
const WINDOW: usize = 8192;

fn factory(tree: Arc<Tree>, _s: ShardId) -> Box<dyn CachePolicy> {
    Box::new(TcFast::new(tree, TcConfig::new(ALPHA, CAPACITY)))
}

fn time_best<F: FnMut() -> u64>(mut f: F, iters: usize) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut cost = 0;
    for _ in 0..iters {
        let start = Instant::now();
        cost = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, cost)
}

fn main() {
    // A 4-tree forest and a bursty global stream over it, recorded once
    // (shared with the criterion target so both measure one workload).
    let (forest, trace) =
        otc_bench::trace_replay_workload(SHARDS, PER_SHARD_NODES, LEN, ALPHA, 0x7ACE);
    let bytes = trace.to_bytes();
    println!(
        "trace: {} requests, {} bytes on disk ({:.2} B/request)",
        trace.requests.len(),
        bytes.len(),
        bytes.len() as f64 / trace.requests.len() as f64
    );
    let iters = 3;

    let mut results = String::new();
    let (secs, base_cost) = time_best(
        || {
            let mut engine =
                ShardedEngine::new(forest.clone(), &factory, EngineConfig::bare(ALPHA));
            engine.submit_batch(&trace.requests).expect("valid");
            engine.into_report().expect("valid").cost.total()
        },
        iters,
    );
    let base_rps = trace.requests.len() as f64 / secs;
    println!("in-memory submit_batch:   {base_rps:>12.0} requests/s  (cost {base_cost})");
    write!(
        results,
        "    {{ \"pipeline\": \"submit_batch\", \"telemetry\": false, \
         \"requests_per_sec\": {base_rps:.0}, \"total_cost\": {base_cost} }}"
    )
    .unwrap();

    for telemetry in [false, true] {
        let (secs, cost) = time_best(
            || {
                let cfg = if telemetry {
                    EngineConfig::bare(ALPHA).audit_every(WINDOW).telemetry(true)
                } else {
                    EngineConfig::bare(ALPHA)
                };
                let mut engine = ShardedEngine::new(forest.clone(), &factory, cfg);
                let mut reader = TraceReader::new(Cursor::new(bytes.as_slice())).expect("valid");
                let mut chunk = Vec::with_capacity(64 * 1024);
                engine.replay_trace(&mut reader, &mut chunk).expect("valid");
                if telemetry {
                    assert!(!engine.timeline().windows.is_empty());
                }
                engine.into_report().expect("valid").cost.total()
            },
            iters,
        );
        assert_eq!(cost, base_cost, "replay must be bit-identical to the in-memory run");
        let rps = trace.requests.len() as f64 / secs;
        let label = if telemetry { "replay_trace + telemetry" } else { "replay_trace" };
        println!("{label:<25} {rps:>12.0} requests/s  ({:>5.2}x in-memory)", rps / base_rps);
        write!(
            results,
            ",\n    {{ \"pipeline\": \"replay_trace\", \"telemetry\": {telemetry}, \
             \"requests_per_sec\": {rps:.0}, \"total_cost\": {cost} }}"
        )
        .unwrap();
    }

    let host = otc_bench::HostInfo::capture();
    let json = format!(
        "{{\n  \"benchmark\": \"binary trace replay through the sharded engine\",\n  \
         \"command\": \"cargo run --release -p otc-bench --bin bench_trace_replay\",\n  \
         \"host\": {},\n  \
         \"workload\": {{ \"generator\": \"markov-bursty\", \"requests\": {LEN}, \
         \"shards\": {SHARDS}, \"alpha\": {ALPHA}, \"capacity_per_shard\": {CAPACITY}, \
         \"trace_bytes\": {}, \"telemetry_window\": {WINDOW} }},\n  \
         \"timing\": \"best of {iters} runs per point\",\n  \"results\": [\n{results}\n  ]\n}}\n",
        host.to_json(),
        bytes.len()
    );
    std::fs::write("BENCH_trace_replay.json", &json).expect("write BENCH_trace_replay.json");
    println!("\nrecorded BENCH_trace_replay.json");
}
