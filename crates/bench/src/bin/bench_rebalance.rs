//! Records the static-vs-dynamic placement baseline into
//! `BENCH_rebalance.json`.
//!
//! ```text
//! cargo run --release -p otc-bench --bin bench_rebalance
//! ```
//!
//! The question the rebalancer exists to answer: when per-cell load
//! *moves* (the diurnal multi-tenant generator — phase-shifted tenant
//! day/night cycles, working sets re-drawn every tenant-day), how much
//! better is re-homing cells at every decision boundary than the best
//! static placement computed with perfect hindsight?
//!
//! The **primary metric is deterministic**, not wall clock: per decision
//! window, the load of a serving group is the sum of its cells'
//! `rounds + paid_rounds` deltas (the planner's own currency, a pure
//! function of the request stream), and the window's cost is the
//! *heaviest* group — the straggler that bounds a parallel tier's
//! makespan. Summing over windows gives the placement-weighted makespan
//! proxy reported below. Static-LPT gets an oracle advantage: its LPT
//! weights are the *true total* per-cell loads of the full run, known
//! only in hindsight; the dynamic schedule starts from naive round-robin
//! and sees only the past. Wall clock on this host is reported for
//! provenance but is **not** evidence either way — see the honesty note
//! emitted into the JSON (a 1-core host serializes the groups, so
//! placement cannot change elapsed time here).
//!
//! `OTC_SMOKE=1` shrinks the workload for CI-speed runs.

use std::sync::Arc;
use std::time::Instant;

use otc_core::forest::{Forest, RoutingTable, ShardId};
use otc_core::policy::CachePolicy;
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::Tree;
use otc_serve::initial_table;
use otc_sim::engine::{EngineConfig, ShardedEngine};
use otc_sim::{RebalanceConfig, Rebalancer};
use otc_util::SplitMix64;
use otc_workloads::{diurnal_tenant_stream, DiurnalConfig, TenantProfile};

const ALPHA: u64 = 4;
const GROUPS: u32 = 4;
const CAPACITY: usize = 48;
const SEED: u64 = 0xD1A2;

fn factory(tree: Arc<Tree>, _s: ShardId) -> Box<dyn CachePolicy> {
    Box::new(TcFast::new(tree, TcConfig::new(ALPHA, CAPACITY)))
}

/// Sum over windows of the heaviest group's load under `owner_of`: the
/// placement-weighted makespan proxy. `windows[w][c]` is cell `c`'s
/// `rounds + paid_rounds` delta in window `w`; `tables[w]` is the
/// placement in force while window `w` executed.
fn makespan_sum(windows: &[Vec<u64>], tables: &[RoutingTable]) -> u64 {
    windows
        .iter()
        .zip(tables)
        .map(|(weights, table)| {
            let mut load = vec![0u64; table.num_groups() as usize];
            for (cell, &w) in weights.iter().enumerate() {
                load[table.owners()[cell] as usize] += w;
            }
            load.into_iter().max().unwrap_or(0)
        })
        .sum()
}

fn main() {
    let smoke = std::env::var("OTC_SMOKE").is_ok();
    let len: usize = if smoke { 24_000 } else { 120_000 };
    // Keep the windows-per-day ratio fixed across smoke and full runs:
    // the planner needs several boundaries per diurnal cycle to react.
    let interval = (len / 30) as u64;

    // The example's diurnal setup: 6 cells over 4 groups (6 over 3 would
    // pair every cell with its anti-phase twin and balance by symmetry).
    let mut rng = SplitMix64::new(SEED);
    let tree = Tree::kary(6, 4);
    let forest = Forest::cells(&tree);
    let cells = forest.num_shards();
    let profiles = vec![TenantProfile::skewed(1.1); cells];
    let diurnal = DiurnalConfig { len, alpha: ALPHA, period: len / 4, amplitude: 0.9 };
    let stream = diurnal_tenant_stream(&forest, &profiles, diurnal, &mut rng);
    println!(
        "workload: {} diurnal requests over {cells} cells ({} global nodes), \
         boundary every {interval}",
        stream.len(),
        forest.global_len()
    );

    // One execution pass: per-window per-cell load deltas and the dynamic
    // schedule, both pure functions of the stream (placement-invariant).
    let started = Instant::now();
    let mut engine = ShardedEngine::new(forest.clone(), &factory, EngineConfig::bare(ALPHA));
    let mut rebalancer = Rebalancer::new(
        RebalanceConfig::new(interval).threshold_x1000(1150),
        initial_table(cells, GROUPS).expect("valid shape"),
    );
    let mut windows: Vec<Vec<u64>> = Vec::new();
    let mut dynamic_tables: Vec<RoutingTable> = vec![rebalancer.table().clone()];
    let mut prev = vec![0u64; cells];
    let mut migrations = 0u64;
    let sample = |engine: &mut ShardedEngine<'_>, prev: &mut Vec<u64>| {
        let loads = engine.cell_loads().expect("valid stream");
        let now: Vec<u64> = loads.iter().map(|l| l.rounds + l.paid_rounds).collect();
        let delta = now.iter().zip(prev.iter()).map(|(n, p)| n - p).collect();
        *prev = now;
        (loads, delta)
    };
    for chunk in stream.chunks(interval as usize) {
        engine.submit_batch(chunk).expect("valid stream");
        let (loads, delta) = sample(&mut engine, &mut prev);
        windows.push(delta);
        if chunk.len() == interval as usize {
            let record = rebalancer.on_boundary(&loads).expect("boundary");
            migrations += record.moves.len() as u64;
        }
        // The table decided at this boundary governs the *next* window.
        dynamic_tables.push(rebalancer.table().clone());
    }
    let elapsed = started.elapsed().as_secs_f64();
    let totals: Vec<u64> = (0..cells).map(|c| windows.iter().map(|w| w[c]).sum()).collect();
    let total_load: u64 = totals.iter().sum();

    // Static contenders: naive round-robin, and LPT over the *hindsight*
    // totals (the strongest static placement a profiler could pick).
    let round_robin = vec![initial_table(cells, GROUPS).expect("valid shape"); windows.len()];
    let lpt = vec![RoutingTable::lpt(&totals, GROUPS); windows.len()];
    let rr_sum = makespan_sum(&windows, &round_robin);
    let lpt_sum = makespan_sum(&windows, &lpt);
    let dyn_sum = makespan_sum(&windows, &dynamic_tables[..windows.len()]);
    // A perfectly balanced placement would put total/groups on every
    // group in every window: the unreachable floor.
    let floor = total_load.div_ceil(u64::from(GROUPS));

    let gain_vs_lpt = (lpt_sum as f64 - dyn_sum as f64) / lpt_sum as f64 * 100.0;
    println!("placement-weighted makespan proxy (lower is better):");
    println!("  round-robin static : {rr_sum}");
    println!("  LPT static (oracle): {lpt_sum}");
    println!("  dynamic rebalanced : {dyn_sum}  ({migrations} migrations)");
    println!("  perfect-balance floor: {floor}");
    println!("dynamic beats oracle LPT by {gain_vs_lpt:.1}%");
    assert!(
        dyn_sum < lpt_sum,
        "dynamic must beat static LPT on a load that moves (got {dyn_sum} vs {lpt_sum})"
    );

    let host = otc_bench::HostInfo::capture();
    let json = format!(
        "{{\n  \"benchmark\": \"static vs dynamic cell placement under diurnal skew\",\n  \
         \"command\": \"cargo run --release -p otc-bench --bin bench_rebalance\",\n  \
         \"host\": {},\n  \
         \"workload\": {{ \"generator\": \"diurnal-tenant\", \"requests\": {len}, \
         \"cells\": {cells}, \"groups\": {GROUPS}, \"alpha\": {ALPHA}, \
         \"capacity_per_cell\": {CAPACITY}, \"boundary_interval\": {interval}, \
         \"period\": {period}, \"amplitude\": 0.9 }},\n  \
         \"metric\": \"sum over decision windows of the heaviest group's rounds+paid_rounds \
         (placement-weighted makespan proxy; deterministic, lower is better)\",\n  \
         \"results\": [\n    \
         {{ \"placement\": \"static-round-robin\", \"makespan_sum\": {rr_sum} }},\n    \
         {{ \"placement\": \"static-lpt-hindsight\", \"makespan_sum\": {lpt_sum} }},\n    \
         {{ \"placement\": \"dynamic-rebalanced\", \"makespan_sum\": {dyn_sum}, \
         \"migrations\": {migrations} }}\n  ],\n  \
         \"perfect_balance_floor\": {floor},\n  \
         \"dynamic_gain_vs_lpt_percent\": {gain_vs_lpt:.1},\n  \
         \"execution_pass_secs\": {elapsed:.3},\n  \
         \"honesty\": \"the makespan proxy is the primary result: it is a deterministic, \
         placement-weighted function of the request stream. Wall clock on this host \
         (see host.nproc) cannot corroborate it — with a single core the serving groups \
         execute serialized, so elapsed time is placement-independent by construction; \
         rerun on a multi-core host to see the proxy translate into elapsed time.\"\n}}\n",
        host.to_json(),
        period = diurnal.period,
    );
    std::fs::write("BENCH_rebalance.json", &json).expect("write BENCH_rebalance.json");
    println!("\nrecorded BENCH_rebalance.json");
}
