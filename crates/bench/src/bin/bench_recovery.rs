//! Records the crash-recovery throughput baseline into
//! `BENCH_recovery.json`.
//!
//! ```text
//! cargo run --release -p otc-bench --bin bench_recovery
//! ```
//!
//! The same fixed Markov-bursty workload as `bench_trace_replay` is run
//! to 7/8 of its length, an `OTCS` snapshot is taken there, and three
//! durability costs are timed — writing the snapshot (the steady-state
//! overhead a serving cadence pays), parsing + restoring it into a
//! fresh engine, and full recovery (restore + replay of the remaining
//! log tail) — against the pure log-replay recovery of the whole trace.
//! The recovered engine's report is asserted identical to the
//! uninterrupted run's (determinism invariant #6); the interesting
//! number is the recovery speedup a snapshot buys over replaying from
//! the log's beginning.

use std::fmt::Write as _;
use std::io::Cursor;
use std::sync::Arc;
use std::time::Instant;

use otc_core::forest::ShardId;
use otc_core::policy::CachePolicy;
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::Tree;
use otc_sim::engine::{EngineConfig, ShardedEngine};
use otc_sim::snapshot::{EngineSnapshot, LogPosition};
use otc_workloads::trace::TraceReader;

const ALPHA: u64 = 4;
const LEN: usize = 400_000;
const SHARDS: usize = 4;
const PER_SHARD_NODES: usize = 2048;
const CAPACITY: usize = 128;

fn factory(tree: Arc<Tree>, _s: ShardId) -> Box<dyn CachePolicy> {
    Box::new(TcFast::new(tree, TcConfig::new(ALPHA, CAPACITY)))
}

fn time_best<F: FnMut() -> u64>(mut f: F, iters: usize) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut cost = 0;
    for _ in 0..iters {
        let start = Instant::now();
        cost = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, cost)
}

fn main() {
    let (forest, trace) =
        otc_bench::trace_replay_workload(SHARDS, PER_SHARD_NODES, LEN, ALPHA, 0x7ACE);
    let bytes = trace.to_bytes();
    let snap_at = LEN - LEN / 8;

    // Walk the trace to the snapshot point to learn its byte offset.
    let mut scan = TraceReader::new(Cursor::new(bytes.as_slice())).expect("valid");
    while (scan.records_read() as usize) < snap_at {
        scan.next().expect("trace is long enough").expect("valid record");
    }
    let pos = LogPosition { offset: scan.byte_pos(), records: scan.records_read() };
    println!(
        "trace: {LEN} requests, {} bytes; snapshot point at record {snap_at} (byte {})",
        bytes.len(),
        pos.offset
    );
    let iters = 3;
    let cfg = EngineConfig::bare(ALPHA);

    // The engine state every measurement starts from: the run up to the
    // snapshot point, plus the uninterrupted baseline for the identity.
    let mut live = ShardedEngine::new(forest.clone(), &factory, cfg);
    live.submit_batch(&trace.requests[..snap_at]).expect("valid");
    let mut snap_bytes: Vec<u8> = Vec::new();
    live.write_snapshot(pos, &mut snap_bytes).expect("snapshot");
    let (full_secs, full_cost) = time_best(
        || {
            let mut engine = ShardedEngine::new(forest.clone(), &factory, cfg);
            let mut reader = TraceReader::new(Cursor::new(bytes.as_slice())).expect("valid");
            let mut chunk = Vec::with_capacity(64 * 1024);
            engine.replay_trace(&mut reader, &mut chunk).expect("valid");
            engine.into_report().expect("valid").cost.total()
        },
        iters,
    );
    println!("pure log replay ({LEN} records): {:>8.3} ms", full_secs * 1e3);
    let mut results = String::new();

    // 1. Snapshot write: what one cadence tick costs a live service.
    let (write_secs, _) = time_best(
        || {
            live.write_snapshot(pos, &mut snap_bytes).expect("snapshot");
            snap_bytes.len() as u64
        },
        iters * 3,
    );
    println!(
        "snapshot write: {:>9.3} ms for {} bytes ({:.0} MB/s)",
        write_secs * 1e3,
        snap_bytes.len(),
        snap_bytes.len() as f64 / write_secs / 1e6
    );
    write!(
        results,
        "    {{ \"step\": \"snapshot_write\", \"millis\": {:.3}, \
         \"snapshot_bytes\": {}, \"mb_per_sec\": {:.0} }}",
        write_secs * 1e3,
        snap_bytes.len(),
        snap_bytes.len() as f64 / write_secs / 1e6
    )
    .unwrap();

    // 2. Parse + restore: rebuilding engine state from the image alone.
    let (restore_secs, _) = time_best(
        || {
            let snap = EngineSnapshot::parse(&snap_bytes).expect("parses");
            let mut engine = ShardedEngine::new(forest.clone(), &factory, cfg);
            engine.restore_snapshot(&snap).expect("restores");
            snap.meta.log.records
        },
        iters,
    );
    println!("parse + restore: {:>8.3} ms", restore_secs * 1e3);
    write!(
        results,
        ",\n    {{ \"step\": \"parse_restore\", \"millis\": {:.3} }}",
        restore_secs * 1e3
    )
    .unwrap();

    // 3. Full recovery: restore + tail replay, vs. replaying everything.
    let tail = LEN - snap_at;
    let (recover_secs, recovered_cost) = time_best(
        || {
            let snap = EngineSnapshot::parse(&snap_bytes).expect("parses");
            let mut engine = ShardedEngine::new(forest.clone(), &factory, cfg);
            let mut reader = TraceReader::new(Cursor::new(bytes.as_slice())).expect("valid");
            let mut chunk = Vec::with_capacity(64 * 1024);
            let stats = engine.recover(&snap, &mut reader, &mut chunk).expect("recovers");
            assert_eq!(stats.replayed, tail as u64);
            engine.into_report().expect("valid").cost.total()
        },
        iters,
    );
    assert_eq!(
        recovered_cost, full_cost,
        "snapshot + tail replay must equal the uninterrupted run"
    );
    let speedup = full_secs / recover_secs;
    println!(
        "recover (restore + {tail}-record tail): {:>6.3} ms  ({speedup:.1}x faster than pure replay)",
        recover_secs * 1e3
    );
    write!(
        results,
        ",\n    {{ \"step\": \"recover_snapshot_plus_tail\", \"millis\": {:.3}, \
         \"tail_records\": {tail}, \"speedup_vs_pure_replay\": {speedup:.2} }},\n    \
         {{ \"step\": \"recover_pure_log_replay\", \"millis\": {:.3}, \
         \"records\": {LEN}, \"total_cost\": {full_cost} }}",
        recover_secs * 1e3,
        full_secs * 1e3
    )
    .unwrap();

    let host = otc_bench::HostInfo::capture();
    let json = format!(
        "{{\n  \"benchmark\": \"OTCS snapshot write and crash recovery\",\n  \
         \"command\": \"cargo run --release -p otc-bench --bin bench_recovery\",\n  \
         \"host\": {},\n  \
         \"workload\": {{ \"generator\": \"markov-bursty\", \"requests\": {LEN}, \
         \"shards\": {SHARDS}, \"alpha\": {ALPHA}, \"capacity_per_shard\": {CAPACITY}, \
         \"snapshot_at_record\": {snap_at}, \"trace_bytes\": {} }},\n  \
         \"timing\": \"best of {iters} runs per point\",\n  \"results\": [\n{results}\n  ]\n}}\n",
        host.to_json(),
        bytes.len()
    );
    std::fs::write("BENCH_recovery.json", &json).expect("write BENCH_recovery.json");
    println!("\nrecorded BENCH_recovery.json");
}
