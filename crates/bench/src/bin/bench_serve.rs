//! Records the live-serving throughput baseline into `BENCH_serve.json`.
//!
//! ```text
//! cargo run --release -p otc-bench --bin bench_serve
//! ```
//!
//! A fixed Markov-bursty workload over a 4-shard forest is pushed through
//! a loopback `otc-serve` instance across a **connections × pipelining**
//! sweep: every cell starts a fresh server (persistent per-shard
//! workers, trace logging off), splits the workload round-robin across
//! `connections` concurrent clients, and times first-byte → drain-barrier
//! wall clock for sustained requests/s. The single-connection cells are
//! asserted cost-identical to an offline `submit_batch` ground truth (one
//! client ⇒ the offline order reaches every shard verbatim); concurrent
//! cells interleave nondeterministically at ingress, so their per-run
//! cost legitimately differs — their identity pin is live ≡ replay of the
//! logged trace, covered by `crates/serve/tests/loopback.rs`.
//!
//! `OTC_SMOKE=1` shrinks the workload for CI-speed runs.

use std::sync::Arc;
use std::time::Instant;

use otc_core::forest::ShardId;
use otc_core::policy::CachePolicy;
use otc_core::request::Request;
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::Tree;
use otc_serve::{Client, ServeConfig, Server, TraceLog};
use otc_sim::engine::{EngineConfig, ShardedEngine};

const ALPHA: u64 = 4;
const SHARDS: usize = 4;
const PER_SHARD_NODES: usize = 2048;
const CAPACITY: usize = 128;
const BATCH: usize = 256;

fn factory(tree: Arc<Tree>, _s: ShardId) -> Box<dyn CachePolicy> {
    Box::new(TcFast::new(tree, TcConfig::new(ALPHA, CAPACITY)))
}

/// One sweep cell: serve `slices` over `connections` concurrent clients
/// with up to `pipeline` unacknowledged frames per client; returns
/// (elapsed seconds, total cost served).
fn serve_cell(
    forest: &otc_core::forest::Forest,
    slices: &[Vec<Request>],
    pipeline: usize,
) -> (f64, u64) {
    let engine = ShardedEngine::new(forest.clone(), &factory, EngineConfig::bare(ALPHA));
    let server =
        Server::start(engine, ServeConfig { log: TraceLog::Off, ..ServeConfig::default() })
            .expect("bind loopback");
    let addr = server.addr();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for reqs in slices {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for chunk in reqs.chunks(BATCH) {
                    client.send(chunk).expect("send");
                    if client.inflight() >= pipeline {
                        client.wait_acks().expect("acks");
                    }
                }
                client.drain().expect("drain");
                client.bye().expect("bye");
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let outcome = server.shutdown().expect("clean shutdown");
    (secs, outcome.report.cost.total())
}

fn main() {
    let smoke = std::env::var("OTC_SMOKE").is_ok();
    let len: usize = if smoke { 40_000 } else { 400_000 };
    let iters = if smoke { 1 } else { 3 };

    // The shared trace-replay workload (same generator as bench_engine /
    // bench_trace_replay, so the numbers stay comparable).
    let (forest, trace) =
        otc_bench::trace_replay_workload(SHARDS, PER_SHARD_NODES, len, ALPHA, 0x5E12E);
    println!(
        "workload: {} requests over {} global nodes",
        trace.requests.len(),
        forest.global_len()
    );

    // Offline ground truth: every serving cell must reproduce this cost.
    let mut offline = ShardedEngine::new(forest.clone(), &factory, EngineConfig::bare(ALPHA));
    offline.submit_batch(&trace.requests).expect("valid");
    let base_cost = offline.into_report().expect("valid").cost.total();
    println!("offline ground-truth cost: {base_cost}");

    let mut results = String::new();
    let mut first = true;
    for connections in [1usize, 2, 4] {
        // Round-robin split keeps per-connection volumes balanced.
        let mut slices: Vec<Vec<Request>> = vec![Vec::new(); connections];
        for (i, &r) in trace.requests.iter().enumerate() {
            slices[i % connections].push(r);
        }
        for pipeline in [1usize, 8] {
            let mut best = f64::INFINITY;
            let mut cost = 0u64;
            for _ in 0..iters {
                let (secs, c) = serve_cell(&forest, &slices, pipeline);
                if connections == 1 {
                    assert_eq!(
                        c, base_cost,
                        "one connection must reproduce the offline ground truth exactly"
                    );
                }
                cost = c;
                best = best.min(secs);
            }
            let rps = trace.requests.len() as f64 / best;
            println!(
                "connections {connections} x pipeline {pipeline}: {rps:>12.0} requests/s \
                 (cost {cost})"
            );
            use std::fmt::Write as _;
            write!(
                results,
                "{}    {{ \"connections\": {connections}, \"pipeline\": {pipeline}, \
                 \"requests_per_sec\": {rps:.0}, \"total_cost\": {cost} }}",
                if first { "" } else { ",\n" },
            )
            .expect("String writes cannot fail");
            first = false;
        }
    }

    let host = otc_bench::HostInfo::capture();
    let json = format!(
        "{{\n  \"benchmark\": \"live serving over loopback TCP (otc-serve)\",\n  \
         \"command\": \"cargo run --release -p otc-bench --bin bench_serve\",\n  \
         \"host\": {},\n  \
         \"workload\": {{ \"generator\": \"markov-bursty\", \"requests\": {len}, \
         \"shards\": {SHARDS}, \"alpha\": {ALPHA}, \"capacity_per_shard\": {CAPACITY}, \
         \"submit_batch_size\": {BATCH}, \"trace_log\": \"off\" }},\n  \
         \"timing\": \"best of {iters} runs per cell, first send to drain barrier\",\n  \
         \"results\": [\n{results}\n  ]\n}}\n",
        host.to_json(),
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nrecorded BENCH_serve.json");
}
