//! Records the live-serving throughput baseline into `BENCH_serve.json`.
//!
//! ```text
//! cargo run --release -p otc-bench --bin bench_serve
//! ```
//!
//! A fixed Markov-bursty workload over a 4-shard forest is pushed through
//! a loopback `otc-serve` instance across a **connections × pipelining**
//! sweep: every cell starts a fresh server (persistent per-shard
//! workers, trace logging off), splits the workload round-robin across
//! `connections` concurrent clients, and times first-byte → drain-barrier
//! wall clock for sustained requests/s. The single-connection cells are
//! asserted cost-identical to an offline `submit_batch` ground truth (one
//! client ⇒ the offline order reaches every shard verbatim); concurrent
//! cells interleave nondeterministically at ingress, so their per-run
//! cost legitimately differs — their identity pin is live ≡ replay of the
//! logged trace, covered by `crates/serve/tests/loopback.rs`.
//!
//! A final **stage-latency** section reruns the busiest cell (max
//! connections × max pipelining) with `ServeConfig::metrics` on, scrapes
//! the per-stage histograms, and records their p50/p99/p999 plus the
//! measured metrics overhead — each on-run bracketed by two off-runs,
//! median delta vs the bracket mean, alongside an off-vs-off control
//! delta that discloses the host's measurement floor — into the JSON:
//! the observability layer's cost, measured honestly rather than
//! asserted.
//!
//! `OTC_SMOKE=1` shrinks the workload for CI-speed runs.

use std::sync::Arc;
use std::time::Instant;

use otc_core::forest::ShardId;
use otc_core::policy::CachePolicy;
use otc_core::request::Request;
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::Tree;
use otc_obs::{HistogramSnapshot, MetricValue, MetricsSnapshot};
use otc_serve::{Client, ServeConfig, Server, TraceLog};
use otc_sim::engine::{EngineConfig, ShardedEngine};

const ALPHA: u64 = 4;
const SHARDS: usize = 4;
const PER_SHARD_NODES: usize = 2048;
const CAPACITY: usize = 128;
const BATCH: usize = 256;

fn factory(tree: Arc<Tree>, _s: ShardId) -> Box<dyn CachePolicy> {
    Box::new(TcFast::new(tree, TcConfig::new(ALPHA, CAPACITY)))
}

/// One sweep cell: serve `slices` over `connections` concurrent clients
/// with up to `pipeline` unacknowledged frames per client; returns
/// (elapsed seconds, total cost served).
fn serve_cell(
    forest: &otc_core::forest::Forest,
    slices: &[Vec<Request>],
    pipeline: usize,
) -> (f64, u64) {
    let (secs, cost, _) = serve_cell_metrics(forest, slices, pipeline, false);
    (secs, cost)
}

/// [`serve_cell`] with the metrics surface switchable: returns the final
/// scrape too, so the stage-latency section can read the histograms of
/// the exact run it timed.
fn serve_cell_metrics(
    forest: &otc_core::forest::Forest,
    slices: &[Vec<Request>],
    pipeline: usize,
    metrics: bool,
) -> (f64, u64, Option<MetricsSnapshot>) {
    let engine = ShardedEngine::new(forest.clone(), &factory, EngineConfig::bare(ALPHA));
    let server = Server::start(
        engine,
        ServeConfig { log: TraceLog::Off, metrics, ..ServeConfig::default() },
    )
    .expect("bind loopback");
    let addr = server.addr();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for reqs in slices {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for chunk in reqs.chunks(BATCH) {
                    client.send(chunk).expect("send");
                    if client.inflight() >= pipeline {
                        client.wait_acks().expect("acks");
                    }
                }
                client.drain().expect("drain");
                client.bye().expect("bye");
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let outcome = server.shutdown().expect("clean shutdown");
    (secs, outcome.report.cost.total(), outcome.metrics)
}

/// Merges every histogram series named `name` in the scrape (the
/// per-group/per-cell label fan-out) into one distribution.
fn merged_stage(snap: &MetricsSnapshot, name: &str) -> HistogramSnapshot {
    let mut merged = HistogramSnapshot::default();
    for record in snap.metrics.iter().filter(|r| r.name == name) {
        if let MetricValue::Histogram(h) = &record.value {
            merged.merge(h);
        }
    }
    merged
}

fn main() {
    let smoke = std::env::var("OTC_SMOKE").is_ok();
    let len: usize = if smoke { 40_000 } else { 400_000 };
    let iters = if smoke { 1 } else { 3 };

    // The shared trace-replay workload (same generator as bench_engine /
    // bench_trace_replay, so the numbers stay comparable).
    let (forest, trace) =
        otc_bench::trace_replay_workload(SHARDS, PER_SHARD_NODES, len, ALPHA, 0x5E12E);
    println!(
        "workload: {} requests over {} global nodes",
        trace.requests.len(),
        forest.global_len()
    );

    // Offline ground truth: every serving cell must reproduce this cost.
    let mut offline = ShardedEngine::new(forest.clone(), &factory, EngineConfig::bare(ALPHA));
    offline.submit_batch(&trace.requests).expect("valid");
    let base_cost = offline.into_report().expect("valid").cost.total();
    println!("offline ground-truth cost: {base_cost}");

    let mut results = String::new();
    let mut first = true;
    for connections in [1usize, 2, 4] {
        // Round-robin split keeps per-connection volumes balanced.
        let mut slices: Vec<Vec<Request>> = vec![Vec::new(); connections];
        for (i, &r) in trace.requests.iter().enumerate() {
            slices[i % connections].push(r);
        }
        for pipeline in [1usize, 8] {
            let mut best = f64::INFINITY;
            let mut cost = 0u64;
            for _ in 0..iters {
                let (secs, c) = serve_cell(&forest, &slices, pipeline);
                if connections == 1 {
                    assert_eq!(
                        c, base_cost,
                        "one connection must reproduce the offline ground truth exactly"
                    );
                }
                cost = c;
                best = best.min(secs);
            }
            let rps = trace.requests.len() as f64 / best;
            println!(
                "connections {connections} x pipeline {pipeline}: {rps:>12.0} requests/s \
                 (cost {cost})"
            );
            use std::fmt::Write as _;
            write!(
                results,
                "{}    {{ \"connections\": {connections}, \"pipeline\": {pipeline}, \
                 \"requests_per_sec\": {rps:.0}, \"total_cost\": {cost} }}",
                if first { "" } else { ",\n" },
            )
            .expect("String writes cannot fail");
            first = false;
        }
    }

    // Stage-latency section: the busiest cell (4 connections × 8-deep
    // pipelining), metrics off vs on, plus the per-stage histograms of
    // the fastest metrics-on run.
    let connections = 4usize;
    let pipeline = 8usize;
    let mut slices: Vec<Vec<Request>> = vec![Vec::new(); connections];
    for (i, &r) in trace.requests.iter().enumerate() {
        slices[i % connections].push(r);
    }
    // On a loopback host the scheduler lottery swings any single run by
    // several percent — far more than the per-record cost — so the
    // overhead estimate brackets every metrics-on run between two
    // metrics-off runs (comparing against the bracket mean cancels
    // linear drift exactly) and takes the median across triplets. The
    // same triplets yield an off-vs-off *control* delta, recorded next
    // to the overhead: when the two are the same size, the true
    // overhead is below this host's measurement floor — reported, not
    // hidden. (Best-of and plain paired estimators were tried first
    // and still swung ±4–7% on off-vs-off controls.)
    let triplets = if smoke { 4 } else { 16 };
    let mut on_deltas: Vec<f64> = Vec::with_capacity(triplets);
    let mut ctl_deltas: Vec<f64> = Vec::with_capacity(triplets);
    let mut on_best = f64::INFINITY;
    let mut scrape: Option<MetricsSnapshot> = None;
    for _ in 0..triplets {
        let (off_a, _, _) = serve_cell_metrics(&forest, &slices, pipeline, false);
        let (on, _, snap) = serve_cell_metrics(&forest, &slices, pipeline, true);
        let (off_b, _, _) = serve_cell_metrics(&forest, &slices, pipeline, false);
        let bracket = (off_a + off_b) / 2.0;
        on_deltas.push((on - bracket) / bracket * 100.0);
        ctl_deltas.push((off_b - off_a) / off_a * 100.0);
        if on < on_best {
            on_best = on;
            scrape = snap;
        }
    }
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        let mid = v.len() / 2;
        if v.len() % 2 == 1 {
            v[mid]
        } else {
            (v[mid - 1] + v[mid]) / 2.0
        }
    };
    let overhead_pct = median(on_deltas);
    let control_pct = median(ctl_deltas);
    let scrape = scrape.expect("metrics-on cell returns a scrape");
    println!(
        "\nstage latency ({connections} conns x {pipeline} pipeline): metrics overhead \
         {overhead_pct:+.2}% vs a {control_pct:+.2}% off-vs-off control \
         (medians over {triplets} off/on/off triplets)"
    );
    let mut stages = String::new();
    for (i, name) in [
        "otc_serve_accept_nanos",
        "otc_serve_lock_hold_nanos",
        "otc_serve_ring_wait_nanos",
        "otc_serve_drain_nanos",
        "otc_serve_flush_nanos",
    ]
    .iter()
    .enumerate()
    {
        let h = merged_stage(&scrape, name);
        let (p50, p99, p999) = (h.p50().unwrap_or(0), h.p99().unwrap_or(0), h.p999().unwrap_or(0));
        println!("  {name:<28} n={:<9} p50={p50:>8}ns p99={p99:>9}ns p999={p999:>9}ns", h.count);
        use std::fmt::Write as _;
        write!(
            stages,
            "{}    {{ \"stage\": \"{name}\", \"count\": {}, \"p50_nanos\": {p50}, \
             \"p99_nanos\": {p99}, \"p999_nanos\": {p999} }}",
            if i == 0 { "" } else { ",\n" },
            h.count,
        )
        .expect("String writes cannot fail");
    }

    let host = otc_bench::HostInfo::capture();
    let json = format!(
        "{{\n  \"benchmark\": \"live serving over loopback TCP (otc-serve)\",\n  \
         \"command\": \"cargo run --release -p otc-bench --bin bench_serve\",\n  \
         \"host\": {},\n  \
         \"workload\": {{ \"generator\": \"markov-bursty\", \"requests\": {len}, \
         \"shards\": {SHARDS}, \"alpha\": {ALPHA}, \"capacity_per_shard\": {CAPACITY}, \
         \"submit_batch_size\": {BATCH}, \"trace_log\": \"off\" }},\n  \
         \"timing\": \"best of {iters} runs per cell, first send to drain barrier\",\n  \
         \"results\": [\n{results}\n  ],\n  \
         \"stage_latency\": {{ \"connections\": {connections}, \"pipeline\": {pipeline}, \
         \"triplets\": {triplets}, \
         \"estimator\": \"median on-vs-bracket-mean delta over off/on/off triplets\", \
         \"metrics_overhead_pct\": {overhead_pct:.2}, \
         \"off_vs_off_control_pct\": {control_pct:.2}, \
         \"stages\": [\n{stages}\n  ] }}\n}}\n",
        host.to_json(),
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nrecorded BENCH_serve.json");
}
