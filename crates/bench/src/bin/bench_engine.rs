//! Records the sharded-engine throughput baseline into `BENCH_engine.json`.
//!
//! ```text
//! cargo run --release -p otc-bench --bin bench_engine
//! ```
//!
//! One fixed FIB workload (4096-rule synthetic table, 200k events, 2%
//! update churn, α = 4); the sharded pipeline is timed at shard counts
//! 1/2/4/8 (one worker thread per shard, total TCAM capacity split
//! evenly) next to the classic single-threaded `run_fib`. Costs are
//! deterministic and recorded alongside the timings so a semantic drift
//! is as visible as a throughput one.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use otc_core::forest::ShardId;
use otc_core::policy::CachePolicy;
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::Tree;
use otc_sdn::{generate_events, run_fib, run_fib_sharded, FibWorkloadConfig};
use otc_trie::{hierarchical_table, HierarchicalConfig, RuleTree};
use otc_util::SplitMix64;

const ALPHA: u64 = 4;
const TOTAL_CAPACITY: usize = 256;
const EVENTS: usize = 200_000;
const RULES: usize = 4096;

fn time_best<F: FnMut() -> u64>(mut f: F, iters: usize) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut cost = 0;
    for _ in 0..iters {
        let start = Instant::now();
        cost = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, cost)
}

fn main() {
    let mut rng = SplitMix64::new(0xBE7C);
    let rules = Arc::new(RuleTree::build(&hierarchical_table(
        HierarchicalConfig { n: RULES, subdivide_p: 0.7, max_len: 28 },
        &mut rng,
    )));
    let events = generate_events(
        &rules,
        FibWorkloadConfig { events: EVENTS, theta: 1.0, update_p: 0.02, addr_attempts: 16 },
        &mut rng,
    );
    let iters = 3;

    let mut results = String::new();
    let (secs, cost) = time_best(
        || {
            let mut tc =
                TcFast::new(Arc::new(rules.tree().clone()), TcConfig::new(ALPHA, TOTAL_CAPACITY));
            run_fib(&rules, &mut tc, &events, ALPHA).total_cost()
        },
        iters,
    );
    let baseline_eps = events.len() as f64 / secs;
    println!("single-thread run_fib: {baseline_eps:>12.0} events/s  (cost {cost})");
    write!(
        results,
        "    {{ \"pipeline\": \"run_fib\", \"shards\": 1, \"threads\": 1, \
         \"events_per_sec\": {baseline_eps:.0}, \"total_cost\": {cost} }}"
    )
    .unwrap();

    for shards in [1usize, 2, 4, 8] {
        let capacity = (TOTAL_CAPACITY / shards).max(1);
        let factory = move |tree: Arc<Tree>, _s: ShardId| {
            Box::new(TcFast::new(tree, TcConfig::new(ALPHA, capacity))) as Box<dyn CachePolicy>
        };
        let (secs, cost) = time_best(
            || run_fib_sharded(&rules, &factory, &events, ALPHA, shards, shards).total.total_cost(),
            iters,
        );
        let eps = events.len() as f64 / secs;
        println!(
            "sharded engine, {shards} shard(s): {eps:>12.0} events/s  (cost {cost}, {:>5.2}x \
             single-thread)",
            eps / baseline_eps
        );
        write!(
            results,
            ",\n    {{ \"pipeline\": \"run_fib_sharded\", \"shards\": {shards}, \
             \"threads\": {shards}, \"events_per_sec\": {eps:.0}, \"total_cost\": {cost} }}"
        )
        .unwrap();
    }

    let host = otc_bench::HostInfo::capture();
    // When exp_e7_fib has recorded its windowed telemetry in this
    // directory, fold a summary into the baseline: the timeline's totals
    // are deterministic, so they double as a semantic cross-check next to
    // the throughput numbers.
    let timeline_note = match std::fs::read_to_string("TIMELINE_e7.json")
        .ok()
        .map(|text| otc_sim::Timeline::from_json(&text))
    {
        Some(Ok(tl)) => {
            let reorg: u64 = tl.sum(|w| w.reorg_cost(tl.alpha));
            let paid: u64 = tl.sum(|w| w.paid_rounds);
            println!(
                "found TIMELINE_e7.json: {} windows, paid {paid}, reorg {reorg}",
                tl.windows.len()
            );
            format!(
                "{{ \"windows\": {}, \"window_rounds\": {}, \"shards\": {}, \
                 \"paid_rounds\": {paid}, \"reorg_cost\": {reorg} }}",
                tl.windows.len(),
                tl.window_rounds,
                tl.shards
            )
        }
        Some(Err(e)) => {
            eprintln!("warning: TIMELINE_e7.json present but unreadable: {e}");
            "null".to_string()
        }
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"benchmark\": \"sharded FIB pipeline (otc-sdn over otc-sim::engine)\",\n  \
         \"command\": \"cargo run --release -p otc-bench --bin bench_engine\",\n  \
         \"host\": {},\n  \
         \"note\": \"shard-level parallelism needs host.nproc > 1 to show; on a single core \
         the sharded rows measure engine overhead only\",\n  \
         \"workload\": {{ \"rules\": {RULES}, \"events\": {EVENTS}, \"theta\": 1.0, \
         \"update_p\": 0.02, \"alpha\": {ALPHA}, \"total_capacity\": {TOTAL_CAPACITY} }},\n  \
         \"timeline_e7\": {timeline_note},\n  \
         \"timing\": \"best of {iters} runs per point\",\n  \"results\": [\n{results}\n  ]\n}}\n",
        host.to_json()
    );
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("\nrecorded BENCH_engine.json");
}
