//! Records the sharded-engine throughput baseline into `BENCH_engine.json`.
//!
//! ```text
//! cargo run --release -p otc-bench --bin bench_engine
//! ```
//!
//! One fixed FIB workload (4096-rule synthetic table, 200k events, 2%
//! update churn, α = 4); the sharded pipeline is timed at shard counts
//! 1/2/4/8 (one worker thread per shard, total TCAM capacity split
//! evenly) next to the classic single-threaded `run_fib`. Costs are
//! deterministic and recorded alongside the timings so a semantic drift
//! is as visible as a throughput one. The workload definition lives in
//! [`otc_bench::fib_baseline`], shared with `bench_regress` which replays
//! it against this file's committed numbers.

use std::fmt::Write as _;
use std::sync::Arc;

use otc_bench::fib_baseline::{
    self, measure_run_fib, measure_sharded, ALPHA, EVENTS, RULES, SHARD_COUNTS, TOTAL_CAPACITY,
};
use otc_core::tc::{TcConfig, TcFast};

fn main() {
    let (rules, events) = fib_baseline::build();
    let iters = 3;

    // Memory accounting on the workload's own tree: arena navigation bytes
    // and the TcFast SoA counter state, both per node.
    let fib_tree = Arc::new(rules.tree().clone());
    let nodes = fib_tree.len();
    let probe = TcFast::new(Arc::clone(&fib_tree), TcConfig::new(ALPHA, TOTAL_CAPACITY));
    let tree_bpn = fib_tree.heap_bytes() as f64 / nodes as f64;
    let policy_bpn = probe.state_heap_bytes() as f64 / nodes as f64;
    println!(
        "memory: {nodes} nodes, tree {tree_bpn:.1} B/node, TcFast state {policy_bpn:.1} B/node"
    );
    drop(probe);

    let mut results = String::new();
    let (baseline_eps, cost) = measure_run_fib(&rules, &events, iters);
    println!("single-thread run_fib: {baseline_eps:>12.0} events/s  (cost {cost})");
    write!(
        results,
        "    {{ \"pipeline\": \"run_fib\", \"shards\": 1, \"threads\": 1, \
         \"events_per_sec\": {baseline_eps:.0}, \"total_cost\": {cost} }}"
    )
    .unwrap();

    for shards in SHARD_COUNTS {
        let (eps, cost) = measure_sharded(&rules, &events, shards, iters);
        println!(
            "sharded engine, {shards} shard(s): {eps:>12.0} events/s  (cost {cost}, {:>5.2}x \
             single-thread)",
            eps / baseline_eps
        );
        write!(
            results,
            ",\n    {{ \"pipeline\": \"run_fib_sharded\", \"shards\": {shards}, \
             \"threads\": {shards}, \"events_per_sec\": {eps:.0}, \"total_cost\": {cost} }}"
        )
        .unwrap();
    }

    let host = otc_bench::HostInfo::capture();
    // When exp_e7_fib has recorded its windowed telemetry in this
    // directory, fold a summary into the baseline: the timeline's totals
    // are deterministic, so they double as a semantic cross-check next to
    // the throughput numbers.
    let timeline_note = match std::fs::read_to_string("TIMELINE_e7.json")
        .ok()
        .map(|text| otc_sim::Timeline::from_json(&text))
    {
        Some(Ok(tl)) => {
            let reorg: u64 = tl.sum(|w| w.reorg_cost(tl.alpha));
            let paid: u64 = tl.sum(|w| w.paid_rounds);
            println!(
                "found TIMELINE_e7.json: {} windows, paid {paid}, reorg {reorg}",
                tl.windows.len()
            );
            format!(
                "{{ \"windows\": {}, \"window_rounds\": {}, \"shards\": {}, \
                 \"paid_rounds\": {paid}, \"reorg_cost\": {reorg} }}",
                tl.windows.len(),
                tl.window_rounds,
                tl.shards
            )
        }
        Some(Err(e)) => {
            eprintln!("warning: TIMELINE_e7.json present but unreadable: {e}");
            "null".to_string()
        }
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"benchmark\": \"sharded FIB pipeline (otc-sdn over otc-sim::engine)\",\n  \
         \"command\": \"cargo run --release -p otc-bench --bin bench_engine\",\n  \
         \"host\": {},\n  \
         \"note\": \"shard-level parallelism needs host.nproc > 1 to show; on a single core \
         the sharded rows measure engine overhead only\",\n  \
         \"workload\": {{ \"rules\": {RULES}, \"events\": {EVENTS}, \"theta\": 1.0, \
         \"update_p\": 0.02, \"alpha\": {ALPHA}, \"total_capacity\": {TOTAL_CAPACITY} }},\n  \
         \"memory\": {{ \"nodes\": {nodes}, \"tree_bytes_per_node\": {tree_bpn:.1}, \
         \"policy_bytes_per_node\": {policy_bpn:.1} }},\n  \
         \"timeline_e7\": {timeline_note},\n  \
         \"timing\": \"best of {iters} runs per point\",\n  \"results\": [\n{results}\n  ]\n}}\n",
        host.to_json()
    );
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("\nrecorded BENCH_engine.json");
}
