//! End-to-end throughput: the FIB application (E7's engine), the verified
//! simulator's overhead, and the batched `run_stream` driver against the
//! per-round `run_policy` driver.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use otc_baselines::DependentSetPolicy;
use otc_core::tc::{TcConfig, TcFast};
use otc_sdn::{generate_events, run_fib, FibWorkloadConfig};
use otc_sim::{run_policy, run_stream, SimConfig};
use otc_trie::{hierarchical_table, HierarchicalConfig, RuleTree};
use otc_util::SplitMix64;
use otc_workloads::uniform_mixed;

fn bench_fib(c: &mut Criterion) {
    let mut rng = SplitMix64::new(0xEE);
    let rules = Arc::new(RuleTree::build(&hierarchical_table(
        HierarchicalConfig { n: 4096, subdivide_p: 0.7, max_len: 28 },
        &mut rng,
    )));
    let tree = Arc::new(rules.tree().clone());
    let events = generate_events(
        &rules,
        FibWorkloadConfig { events: 50_000, theta: 1.0, update_p: 0.02, addr_attempts: 16 },
        &mut rng,
    );
    let mut group = c.benchmark_group("fib_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("tc", |b| {
        b.iter(|| {
            let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(4, 256));
            run_fib(&rules, &mut tc, &events, 4).total_cost()
        });
    });
    group.bench_function("subtree_lru", |b| {
        b.iter(|| {
            let mut lru = DependentSetPolicy::lru(Arc::clone(&tree), 256);
            run_fib(&rules, &mut lru, &events, 4).total_cost()
        });
    });
    group.finish();
}

fn bench_simulator_overhead(c: &mut Criterion) {
    let mut rng = SplitMix64::new(0xEF);
    let tree = Arc::new(otc_workloads::random_attachment(4096, &mut rng));
    let reqs = uniform_mixed(&tree, 40_000, 0.4, &mut rng);
    let mut group = c.benchmark_group("simulator_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reqs.len() as u64));
    for (label, cfg) in [("validated", SimConfig::new(4)), ("bare", SimConfig::bare(4))] {
        group.bench_function(BenchmarkId::new("run_policy", label), |b| {
            b.iter(|| {
                let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(4, 512));
                run_policy(&tree, &mut tc, &reqs, cfg).expect("valid").total()
            });
        });
    }
    group.finish();
}

/// The batched driver on a long stream, in both configurations. Chunked
/// accounting plus buffer reuse is what every future scaling experiment
/// (sharding, async, multi-tenant) sits on top of.
fn bench_run_stream(c: &mut Criterion) {
    let mut rng = SplitMix64::new(0xF0);
    let tree = Arc::new(otc_workloads::random_attachment(4096, &mut rng));
    let reqs = uniform_mixed(&tree, 200_000, 0.4, &mut rng);
    let mut group = c.benchmark_group("run_stream");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reqs.len() as u64));
    for (label, cfg) in [("validated", SimConfig::new(4)), ("bare", SimConfig::bare(4))] {
        group.bench_function(BenchmarkId::new("chunk_4096", label), |b| {
            b.iter(|| {
                let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(4, 512));
                run_stream(&tree, &mut tc, &reqs, cfg, 4096).expect("valid").total()
            });
        });
    }
    group.bench_function(BenchmarkId::new("run_policy", "bare"), |b| {
        b.iter(|| {
            let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(4, 512));
            run_policy(&tree, &mut tc, &reqs, SimConfig::bare(4)).expect("valid").total()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fib, bench_simulator_overhead, bench_run_stream);
criterion_main!(benches);
