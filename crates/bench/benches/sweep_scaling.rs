//! Parallel sweep runner scaling: speedup of `parallel_map_threads` on an
//! embarrassingly parallel competitive-ratio workload.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use otc_core::policy::{ActionBuffer, CachePolicy};
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::Tree;
use otc_util::{parallel_map_threads, SplitMix64};
use otc_workloads::uniform_mixed;

fn bench_sweep(c: &mut Criterion) {
    let tree = Arc::new(Tree::kary(2, 7));
    let mut group = c.benchmark_group("sweep_scaling");
    group.sample_size(10);
    let cells: Vec<u64> = (0..64).collect();
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| {
                let out = parallel_map_threads(cells.clone(), threads, |&seed| {
                    let mut rng = SplitMix64::new(seed);
                    let reqs = uniform_mixed(&tree, 20_000, 0.4, &mut rng);
                    let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(4, 24));
                    let mut buf = ActionBuffer::new();
                    let mut acc = 0u64;
                    for &r in &reqs {
                        tc.step(r, &mut buf);
                        acc += u64::from(buf.paid_service());
                    }
                    acc
                });
                out.iter().sum::<u64>()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
