//! Per-decision cost of TC (Theorem 6.1), with statistical rigour.
//!
//! Series mirror experiment E6: request throughput of the fast
//! implementation across height/degree-extremal shapes and sizes, plus the
//! fast-vs-reference comparison that shows the O(n)-per-round oracle
//! falling behind.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use otc_core::policy::CachePolicy;
use otc_core::tc::{TcConfig, TcFast, TcReference};
use otc_core::tree::Tree;
use otc_util::SplitMix64;
use otc_workloads::{random_attachment, uniform_mixed};

fn bench_shapes(c: &mut Criterion) {
    let mut rng = SplitMix64::new(0xBE);
    let mut group = c.benchmark_group("tc_fast_shapes");
    group.sample_size(20);
    let shapes: Vec<(&str, Tree)> = vec![
        ("path_4k", Tree::path(4096)),
        ("star_4k", Tree::star(4096)),
        ("kary2_12", Tree::kary(2, 12)),
        ("random_16k", random_attachment(16_384, &mut rng)),
    ];
    for (name, tree) in shapes {
        let tree = Arc::new(tree);
        let reqs = uniform_mixed(&tree, 50_000, 0.4, &mut rng);
        group.throughput(Throughput::Elements(reqs.len() as u64));
        group.bench_function(BenchmarkId::new("requests", name), |b| {
            b.iter(|| {
                let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(4, tree.len() / 4));
                let mut acc = 0u64;
                for &r in &reqs {
                    acc += tc.step(r).nodes_touched() as u64;
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut rng = SplitMix64::new(0xBF);
    let mut group = c.benchmark_group("tc_fast_scaling");
    group.sample_size(15);
    for n in [1_000usize, 10_000, 100_000] {
        let tree = Arc::new(random_attachment(n, &mut rng));
        let reqs = uniform_mixed(&tree, 30_000, 0.4, &mut rng);
        group.throughput(Throughput::Elements(reqs.len() as u64));
        group.bench_function(BenchmarkId::new("random_tree", n), |b| {
            b.iter(|| {
                let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(4, n / 4));
                let mut acc = 0u64;
                for &r in &reqs {
                    acc += u64::from(tc.step(r).paid_service);
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_fast_vs_reference(c: &mut Criterion) {
    let mut rng = SplitMix64::new(0xC0);
    let mut group = c.benchmark_group("tc_fast_vs_reference");
    group.sample_size(10);
    let tree = Arc::new(random_attachment(1_500, &mut rng));
    let reqs = uniform_mixed(&tree, 8_000, 0.4, &mut rng);
    group.throughput(Throughput::Elements(reqs.len() as u64));
    group.bench_function("fast", |b| {
        b.iter(|| {
            let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(4, 400));
            for &r in &reqs {
                let _ = tc.step(r);
            }
        });
    });
    group.bench_function("reference", |b| {
        b.iter(|| {
            let mut tc = TcReference::new(Arc::clone(&tree), TcConfig::new(4, 400));
            for &r in &reqs {
                let _ = tc.step(r);
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_shapes, bench_scaling, bench_fast_vs_reference);
criterion_main!(benches);
