//! Per-decision cost of TC (Theorem 6.1), with statistical rigour.
//!
//! Series mirror experiment E6: request throughput of the fast
//! implementation across height/degree-extremal shapes and sizes, plus the
//! fast-vs-reference comparison that shows the O(n)-per-round oracle
//! falling behind. All hot loops drive the zero-allocation buffered step
//! pipeline (`CachePolicy::step` into a reused `ActionBuffer`); the
//! `buffered_pipeline` group pins the before/after comparison between the
//! owned-outcome convenience path (`step_owned`, one allocation per round)
//! and the buffered path (zero allocations per non-flush round — asserted
//! by the counting-allocator test in `crates/bench/tests/alloc_counter.rs`).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use otc_core::policy::{ActionBuffer, CachePolicy};
use otc_core::tc::{TcConfig, TcFast, TcReference};
use otc_core::tree::Tree;
use otc_util::SplitMix64;
use otc_workloads::{random_attachment, uniform_mixed};

fn bench_shapes(c: &mut Criterion) {
    let mut rng = SplitMix64::new(0xBE);
    let mut group = c.benchmark_group("tc_fast_shapes");
    group.sample_size(20);
    let shapes: Vec<(&str, Tree)> = vec![
        ("path_4k", Tree::path(4096)),
        ("star_4k", Tree::star(4096)),
        ("kary2_12", Tree::kary(2, 12)),
        ("random_16k", random_attachment(16_384, &mut rng)),
    ];
    for (name, tree) in shapes {
        let tree = Arc::new(tree);
        let reqs = uniform_mixed(&tree, 50_000, 0.4, &mut rng);
        group.throughput(Throughput::Elements(reqs.len() as u64));
        group.bench_function(BenchmarkId::new("requests", name), |b| {
            b.iter(|| {
                let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(4, tree.len() / 4));
                let mut buf = ActionBuffer::new();
                let mut acc = 0u64;
                for &r in &reqs {
                    tc.step(r, &mut buf);
                    acc += buf.nodes_touched() as u64;
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut rng = SplitMix64::new(0xBF);
    let mut group = c.benchmark_group("tc_fast_scaling");
    group.sample_size(15);
    for n in [1_000usize, 10_000, 100_000] {
        let tree = Arc::new(random_attachment(n, &mut rng));
        let reqs = uniform_mixed(&tree, 30_000, 0.4, &mut rng);
        group.throughput(Throughput::Elements(reqs.len() as u64));
        group.bench_function(BenchmarkId::new("random_tree", n), |b| {
            b.iter(|| {
                let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(4, n / 4));
                let mut buf = ActionBuffer::new();
                let mut acc = 0u64;
                for &r in &reqs {
                    tc.step(r, &mut buf);
                    acc += u64::from(buf.paid_service());
                }
                acc
            });
        });
    }
    group.finish();
}

/// Before/after proxy for the refactor: the owned-outcome convenience
/// path (`step_owned` — a fresh buffer plus a `StepOutcome` snapshot per
/// round, somewhat heavier than the old `step() -> StepOutcome` API it
/// stands in for) against the buffered path on the same workload.
fn bench_buffered_pipeline(c: &mut Criterion) {
    let mut rng = SplitMix64::new(0xC1);
    let tree = Arc::new(random_attachment(16_384, &mut rng));
    let reqs = uniform_mixed(&tree, 50_000, 0.4, &mut rng);
    let mut group = c.benchmark_group("buffered_pipeline");
    group.sample_size(20);
    group.throughput(Throughput::Elements(reqs.len() as u64));
    group.bench_function("step_owned", |b| {
        b.iter(|| {
            let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(4, tree.len() / 4));
            let mut acc = 0u64;
            for &r in &reqs {
                acc += tc.step_owned(r).nodes_touched() as u64;
            }
            acc
        });
    });
    group.bench_function("step_buffered", |b| {
        b.iter(|| {
            let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(4, tree.len() / 4));
            let mut buf = ActionBuffer::new();
            let mut acc = 0u64;
            for &r in &reqs {
                tc.step(r, &mut buf);
                acc += buf.nodes_touched() as u64;
            }
            acc
        });
    });
    group.finish();
}

fn bench_fast_vs_reference(c: &mut Criterion) {
    let mut rng = SplitMix64::new(0xC0);
    let mut group = c.benchmark_group("tc_fast_vs_reference");
    group.sample_size(10);
    let tree = Arc::new(random_attachment(1_500, &mut rng));
    let reqs = uniform_mixed(&tree, 8_000, 0.4, &mut rng);
    group.throughput(Throughput::Elements(reqs.len() as u64));
    group.bench_function("fast", |b| {
        b.iter(|| {
            let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(4, 400));
            let mut buf = ActionBuffer::new();
            for &r in &reqs {
                tc.step(r, &mut buf);
            }
        });
    });
    group.bench_function("reference", |b| {
        b.iter(|| {
            let mut tc = TcReference::new(Arc::clone(&tree), TcConfig::new(4, 400));
            let mut buf = ActionBuffer::new();
            for &r in &reqs {
                tc.step(r, &mut buf);
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_shapes,
    bench_scaling,
    bench_buffered_pipeline,
    bench_fast_vs_reference
);
criterion_main!(benches);
