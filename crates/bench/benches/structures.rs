//! Substrate benchmarks: tree construction, prefix-trie build, LMP lookup
//! and workload sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use otc_trie::{hierarchical_table, HierarchicalConfig, RuleTree};
use otc_util::{SplitMix64, Zipf};
use otc_workloads::random_attachment;

fn bench_tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_build");
    group.sample_size(20);
    for n in [10_000usize, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::new("random_attachment", n), |b| {
            b.iter(|| {
                let mut rng = SplitMix64::new(7);
                random_attachment(n, &mut rng).len()
            });
        });
    }
    group.finish();
}

fn bench_rule_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("rule_tree");
    group.sample_size(15);
    let mut rng = SplitMix64::new(9);
    for n in [4_096usize, 32_768] {
        let prefixes =
            hierarchical_table(HierarchicalConfig { n, subdivide_p: 0.7, max_len: 28 }, &mut rng);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::new("build", n), |b| {
            b.iter(|| RuleTree::build(&prefixes).len());
        });
        let rt = RuleTree::build(&prefixes);
        let addrs: Vec<u32> = (0..10_000).map(|_| rng.next_u64() as u32).collect();
        group.throughput(Throughput::Elements(addrs.len() as u64));
        group.bench_function(BenchmarkId::new("lmp_lookup", n), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for &a in &addrs {
                    acc = acc.wrapping_add(rt.lmp(a).0);
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let mut group = c.benchmark_group("zipf_sampling");
    group.sample_size(20);
    for n in [1_000usize, 100_000] {
        let zipf = Zipf::new(n, 1.0);
        group.throughput(Throughput::Elements(10_000));
        group.bench_function(BenchmarkId::new("sample", n), |b| {
            b.iter(|| {
                let mut rng = SplitMix64::new(5);
                let mut acc = 0usize;
                for _ in 0..10_000 {
                    acc = acc.wrapping_add(zipf.sample(&mut rng));
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree_build, bench_rule_tree, bench_zipf);
criterion_main!(benches);
