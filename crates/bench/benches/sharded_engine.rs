//! Sharded-engine throughput: the FIB pipeline across shard counts.
//!
//! One routing table, one event stream; the trie is partitioned at the
//! default route into 1/2/4/8 shards, each with its own TC instance and a
//! proportional slice of the total TCAM capacity, driven in parallel on
//! one worker thread per shard. The `shards_1` point doubles as the
//! engine-overhead baseline against the classic single-threaded
//! `run_fib`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use otc_core::forest::ShardId;
use otc_core::policy::CachePolicy;
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::Tree;
use otc_sdn::{generate_events, run_fib, run_fib_sharded, FibEvent, FibWorkloadConfig};
use otc_trie::{hierarchical_table, HierarchicalConfig, RuleTree};
use otc_util::SplitMix64;

const ALPHA: u64 = 4;
const TOTAL_CAPACITY: usize = 256;

fn workload() -> (Arc<RuleTree>, Vec<FibEvent>) {
    let mut rng = SplitMix64::new(0x5AD);
    let rules = Arc::new(RuleTree::build(&hierarchical_table(
        HierarchicalConfig { n: 4096, subdivide_p: 0.7, max_len: 28 },
        &mut rng,
    )));
    let events = generate_events(
        &rules,
        FibWorkloadConfig { events: 50_000, theta: 1.0, update_p: 0.02, addr_attempts: 16 },
        &mut rng,
    );
    (rules, events)
}

fn tc_factory(capacity: usize) -> impl Fn(Arc<Tree>, ShardId) -> Box<dyn CachePolicy> {
    move |tree, _| Box::new(TcFast::new(tree, TcConfig::new(ALPHA, capacity)))
}

fn bench_sharded_fib(c: &mut Criterion) {
    let (rules, events) = workload();
    let mut group = c.benchmark_group("sharded_fib");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("single_thread_run_fib", |b| {
        b.iter(|| {
            let mut tc =
                TcFast::new(Arc::new(rules.tree().clone()), TcConfig::new(ALPHA, TOTAL_CAPACITY));
            run_fib(&rules, &mut tc, &events, ALPHA).total_cost()
        });
    });
    for shards in [1usize, 2, 4, 8] {
        let factory = tc_factory((TOTAL_CAPACITY / shards).max(1));
        group.bench_function(BenchmarkId::new("shards", shards), |b| {
            b.iter(|| {
                run_fib_sharded(&rules, &factory, &events, ALPHA, shards, shards).total.total_cost()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_fib);
criterion_main!(benches);
