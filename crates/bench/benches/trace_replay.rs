//! Binary-trace replay throughput: the persistence seam under load.
//!
//! One bursty stream over a 4-shard forest, recorded to the binary format
//! once; each point replays it through the engine — plain, and with
//! windowed telemetry on — against the in-memory `submit_batch` baseline.
//! The deltas are the price of streaming decode and of observation.

use std::io::Cursor;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use otc_bench::trace_replay_workload;
use otc_core::forest::{Forest, ShardId};
use otc_core::policy::CachePolicy;
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::Tree;
use otc_sim::engine::{EngineConfig, ShardedEngine};
use otc_workloads::trace::{Trace, TraceReader};

const ALPHA: u64 = 4;
const LEN: usize = 50_000;

fn workload() -> (Forest, Trace) {
    // The same construction the JSON recorder times, at criterion scale.
    trace_replay_workload(4, 1024, LEN, ALPHA, 0x7ACE)
}

fn factory(tree: Arc<Tree>, _s: ShardId) -> Box<dyn CachePolicy> {
    Box::new(TcFast::new(tree, TcConfig::new(ALPHA, 96)))
}

fn bench_trace_replay(c: &mut Criterion) {
    let (forest, trace) = workload();
    let bytes = trace.to_bytes();
    let mut group = c.benchmark_group("trace_replay");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.requests.len() as u64));
    group.bench_function("in_memory_submit_batch", |b| {
        b.iter(|| {
            let mut engine =
                ShardedEngine::new(forest.clone(), &factory, EngineConfig::bare(ALPHA));
            engine.submit_batch(&trace.requests).expect("valid");
            engine.into_report().expect("valid").cost.total()
        });
    });
    group.bench_function("binary_replay", |b| {
        b.iter(|| {
            let mut engine =
                ShardedEngine::new(forest.clone(), &factory, EngineConfig::bare(ALPHA));
            let mut reader = TraceReader::new(Cursor::new(bytes.as_slice())).expect("valid");
            let mut chunk = Vec::with_capacity(16 * 1024);
            engine.replay_trace(&mut reader, &mut chunk).expect("valid");
            engine.into_report().expect("valid").cost.total()
        });
    });
    group.bench_function("binary_replay_with_telemetry", |b| {
        b.iter(|| {
            let cfg = EngineConfig::bare(ALPHA).audit_every(4096).telemetry(true);
            let mut engine = ShardedEngine::new(forest.clone(), &factory, cfg);
            let mut reader = TraceReader::new(Cursor::new(bytes.as_slice())).expect("valid");
            let mut chunk = Vec::with_capacity(16 * 1024);
            engine.replay_trace(&mut reader, &mut chunk).expect("valid");
            let windows = engine.timeline().windows.len() as u64;
            engine.into_report().expect("valid").cost.total() + windows
        });
    });
    group.finish();
}

criterion_group!(benches, bench_trace_replay);
criterion_main!(benches);
