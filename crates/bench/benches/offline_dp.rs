//! Offline algorithms: the static tree-sparsity knapsack (E10) and the
//! exact subforest-state OPT DP (E1's denominator).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use otc_baselines::{best_static_cache, opt_cost};
use otc_core::tree::Tree;
use otc_util::SplitMix64;
use otc_workloads::{random_attachment, uniform_mixed};

fn bench_static_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_knapsack");
    group.sample_size(10);
    let mut rng = SplitMix64::new(0xD0);
    for (n, k) in [(10_000usize, 128usize), (40_000, 128), (40_000, 1024)] {
        let tree = random_attachment(n, &mut rng);
        let wpos: Vec<u64> = (0..n).map(|_| rng.next_below(50)).collect();
        let wneg: Vec<u64> = (0..n).map(|_| rng.next_below(12)).collect();
        group.bench_function(BenchmarkId::new("best_static", format!("n{n}_k{k}")), |b| {
            b.iter(|| best_static_cache(&tree, &wpos, &wneg, 4, k).cost);
        });
    }
    group.finish();
}

fn bench_opt_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_opt_dp");
    group.sample_size(10);
    let mut rng = SplitMix64::new(0xD1);
    for (n, k, rounds) in [(8usize, 3usize, 300usize), (12, 4, 300), (14, 5, 200)] {
        let tree = random_attachment(n, &mut rng);
        let reqs = uniform_mixed(&tree, rounds, 0.35, &mut rng);
        group.bench_function(BenchmarkId::new("opt_cost", format!("n{n}_k{k}_r{rounds}")), |b| {
            b.iter(|| opt_cost(&tree, &reqs, 2, k));
        });
    }
    let _ = Tree::path(2);
    group.finish();
}

criterion_group!(benches, bench_static_dp, bench_opt_dp);
criterion_main!(benches);
