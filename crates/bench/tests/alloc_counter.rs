//! Counting-allocator harness: proves the buffered step pipeline performs
//! **zero heap allocations per non-flush round** in steady state, and that
//! the verified drivers (`run_policy` / `run_stream`) allocate O(1) per
//! run — not per round — in bare mode.
//!
//! The global allocator is wrapped in a counter; each assertion warms a
//! policy/driver up to its high-water mark, snapshots the counter, replays
//! a long request stream, and checks the counter did not move (or moved by
//! a small run-constant only).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use otc_baselines::{DependentSetPolicy, InvalidateOnUpdate};
use otc_core::forest::{Forest, ShardId};
use otc_core::policy::{ActionBuffer, CachePolicy};
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::Tree;
use otc_core::Request;
use otc_sim::engine::{EngineConfig, ShardedEngine};
use otc_sim::{run_policy, run_stream, SimConfig};
use otc_util::SplitMix64;
use otc_workloads::{random_attachment, uniform_mixed};

/// A [`System`] wrapper that counts allocation calls (reallocs included —
/// a growing `Vec` shows up here).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates everything to `System`; the counter is a relaxed
// atomic side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A workload whose rounds include fetches and evictions but no flushes
/// (capacity = |T|, so no overflow is possible).
fn flushless_workload(seed: u64, n: usize, len: usize) -> (Arc<Tree>, Vec<Request>) {
    let mut rng = SplitMix64::new(seed);
    let tree = Arc::new(random_attachment(n, &mut rng));
    let reqs = uniform_mixed(&tree, len, 0.4, &mut rng);
    (tree, reqs)
}

#[test]
fn tc_fast_steady_state_steps_do_not_allocate() {
    let (tree, reqs) = flushless_workload(0xA110C, 2048, 60_000);
    let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(4, tree.len()));
    let mut buf = ActionBuffer::new();
    // Warm-up: replay the whole stream once so every buffer reaches the
    // workload's exact high-water mark, then reset the policy (scratch
    // capacity survives reset) and replay the identical stream.
    for &r in &reqs {
        tc.step(r, &mut buf);
    }
    tc.reset();
    let before = allocs();
    for &r in &reqs {
        tc.step(r, &mut buf);
    }
    assert_eq!(
        allocs() - before,
        0,
        "TcFast::step allocated in steady state over 60k non-flush rounds"
    );
}

#[test]
fn tc_fast_flush_rounds_do_not_allocate_after_warmup() {
    // Tiny capacity forces frequent flushes; the flush path writes into
    // the same arena, so even flush rounds are allocation-free once the
    // buffer has grown.
    let (tree, reqs) = flushless_workload(0xF1005, 512, 40_000);
    let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(2, 16));
    let mut buf = ActionBuffer::new();
    for &r in &reqs {
        tc.step(r, &mut buf);
    }
    assert!(tc.stats().phases_restarted > 0, "workload must actually flush");
    tc.reset();
    let before = allocs();
    for &r in &reqs {
        tc.step(r, &mut buf);
    }
    assert_eq!(allocs() - before, 0, "flush rounds allocated after warm-up");
}

#[test]
fn baseline_policies_steady_state_steps_do_not_allocate() {
    let (tree, reqs) = flushless_workload(0xBA5E, 1024, 40_000);
    let mut lru = DependentSetPolicy::lru(Arc::clone(&tree), 64);
    let mut inval = InvalidateOnUpdate::new(Arc::clone(&tree), 64);
    for policy in [&mut lru as &mut dyn CachePolicy, &mut inval] {
        let mut buf = ActionBuffer::new();
        for &r in &reqs {
            policy.step(r, &mut buf);
        }
        policy.reset();
        let before = allocs();
        for &r in &reqs {
            policy.step(r, &mut buf);
        }
        assert_eq!(allocs() - before, 0, "{} allocated in steady state", policy.name());
    }
}

#[test]
fn bare_drivers_allocate_per_run_not_per_round() {
    // The whole verified pipeline in bare mode: one Report (name string),
    // the driver's mirrors/scratch, and buffer growth — a small constant
    // regardless of stream length. 50k rounds, budget far below one
    // allocation per hundred rounds.
    let (tree, reqs) = flushless_workload(0xD01, 1024, 50_000);
    let budget = 50u64;

    let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(4, 128));
    let before = allocs();
    run_policy(&tree, &mut tc, &reqs, SimConfig::bare(4)).expect("valid");
    let used = allocs() - before;
    assert!(used <= budget, "run_policy (bare) allocated {used} times for 50k rounds");

    // run_stream: debug builds add one O(|T|) audit per chunk — still a
    // per-chunk constant, never per-round. Measure in chunks of 8192.
    let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(4, 128));
    let before = allocs();
    run_stream(&tree, &mut tc, &reqs, SimConfig::bare(4), 8192).expect("valid");
    let used = allocs() - before;
    let chunks = reqs.len().div_ceil(8192) as u64;
    let audit_budget = if cfg!(debug_assertions) { chunks * 16 } else { 0 };
    assert!(
        used <= budget + audit_budget,
        "run_stream (bare) allocated {used} times for 50k rounds ({chunks} chunks)"
    );
}

/// A 4-shard forest of flushless universes plus a globally-addressed
/// mixed stream for it.
fn sharded_workload(seed: u64, per_shard_n: usize, len: usize) -> (Forest, Vec<Request>) {
    let mut rng = SplitMix64::new(seed);
    let trees = (0..4)
        .map(|_| std::sync::Arc::new(random_attachment(per_shard_n, &mut rng)))
        .collect::<Vec<_>>();
    let forest = Forest::from_trees(trees);
    let reqs: Vec<Request> = (0..len)
        .map(|_| {
            let v = otc_core::tree::NodeId(rng.index(forest.global_len()) as u32);
            if rng.chance(0.4) {
                Request::neg(v)
            } else {
                Request::pos(v)
            }
        })
        .collect();
    (forest, reqs)
}

/// Per-shard TC sized to its whole tree (no flushes possible).
fn flushless_factory(alpha: u64) -> impl Fn(std::sync::Arc<Tree>, ShardId) -> Box<dyn CachePolicy> {
    move |tree, _| {
        let capacity = tree.len();
        Box::new(TcFast::new(tree, TcConfig::new(alpha, capacity)))
    }
}

#[test]
fn sharded_engine_steady_state_rounds_do_not_allocate_per_shard() {
    // The PR-2 contract, per shard: once every shard's buffers (action
    // buffer, validation scratch, staging queue) reach their high-water
    // mark, a steady-state batch performs zero heap allocations — across
    // routing, queueing, and every round of every shard.
    let (forest, reqs) = sharded_workload(0x5AA5, 512, 40_000);
    let factory = flushless_factory(4);
    let mut engine = ShardedEngine::new(forest, &factory, EngineConfig::bare(4).threads(1));
    // Two warm-up batches: the first grows the engine's own buffers to the
    // workload's high-water mark; the second lets the policies' internal
    // spans (whose sizes depend on the evolving cache state, not the
    // stream) reach theirs.
    engine.submit_batch(&reqs).expect("valid");
    engine.submit_batch(&reqs).expect("valid");
    let before = allocs();
    engine.submit_batch(&reqs).expect("valid");
    assert_eq!(
        allocs() - before,
        0,
        "4-shard engine allocated in steady state over 40k rounds (10k/shard)"
    );
}

#[test]
fn sharded_engine_allocates_o_shards_per_run() {
    // A full engine lifecycle — construction, one parallel batch, report
    // aggregation — allocates O(shards), never O(rounds). The budget is a
    // per-shard constant (policy + driver + queue growth) plus a flat
    // allowance for the scoped worker threads of the parallel drain.
    let (forest, reqs) = sharded_workload(0x5AB7, 512, 40_000);
    let shards = forest.num_shards() as u64;
    let factory = flushless_factory(4);
    let before = allocs();
    let mut engine = ShardedEngine::new(forest, &factory, EngineConfig::bare(4).threads(4));
    engine.submit_batch(&reqs).expect("valid");
    let report = engine.into_report().expect("valid");
    let used = allocs() - before;
    assert!(report.rounds == 40_000);
    let budget = 200 * shards + 100;
    assert!(used <= budget, "sharded run allocated {used} times for 40k rounds (budget {budget})");
}

#[test]
fn trace_replay_steady_state_rounds_do_not_allocate() {
    // The replay path of the trace subsystem: once the replay chunk
    // buffer, the shard queues and the policies' internal spans are warm,
    // streaming a binary trace through the engine allocates only the
    // per-replay constants (the reader's BufReader + header strings),
    // never per round — the same contract as the in-memory pipeline.
    use otc_workloads::trace::{Trace, TraceHeader, TraceReader};
    use std::io::Cursor;

    let (forest, reqs) = sharded_workload(0x7E9A, 512, 40_000);
    let trace = Trace {
        header: TraceHeader {
            universe: forest.global_len() as u32,
            shard_map: (0..4).map(|s| forest.tree(ShardId(s)).len() as u32).collect(),
            seed: 0x7E9A,
            generator: "uniform-mixed".to_string(),
        },
        requests: reqs,
    };
    let bytes = trace.to_bytes();
    let factory = flushless_factory(4);
    let mut engine = ShardedEngine::new(forest, &factory, EngineConfig::bare(4).threads(1));
    let mut chunk: Vec<Request> = Vec::with_capacity(8 * 1024);
    // Two warm-up replays (chunk buffer, queues, then policy spans).
    for _ in 0..2 {
        let mut reader = TraceReader::new(Cursor::new(bytes.as_slice())).expect("valid");
        engine.replay_trace(&mut reader, &mut chunk).expect("valid");
    }
    let before = allocs();
    let mut reader = TraceReader::new(Cursor::new(bytes.as_slice())).expect("valid");
    engine.replay_trace(&mut reader, &mut chunk).expect("valid");
    let used = allocs() - before;
    // Reader construction allocates a run-constant (BufReader buffer,
    // shard map, generator string) — budget well below one allocation per
    // thousand rounds, and nothing grows with trace length.
    assert!(used <= 12, "steady-state replay allocated {used} times for 40k rounds");
}

#[test]
fn snapshot_emission_keeps_the_request_path_allocation_free() {
    // The PR-6 durability contract: emitting OTCS snapshots between
    // batches must not disturb the zero-allocation steady state of the
    // request path. Rounds stay at exactly zero allocations; each
    // snapshot itself may allocate only a small per-shard constant
    // (policy blobs, section scratch) — never anything per round.
    use otc_sim::snapshot::LogPosition;

    let (forest, reqs) = sharded_workload(0x5AC5, 512, 40_000);
    let shards = forest.num_shards() as u64;
    let factory = flushless_factory(4);
    let mut engine = ShardedEngine::new(forest, &factory, EngineConfig::bare(4).threads(1));
    let mut snap: Vec<u8> = Vec::new();
    let pos = |records: u64| LogPosition { offset: 64 + 2 * records, records };

    // Warm-up passes at the measured cadence: the first grows the
    // engine's buffers and the snapshot arena, the rest let the
    // policies' internal spans (which track the evolving cache state)
    // reach their high-water mark.
    for _ in 0..3 {
        let mut records = 0u64;
        for chunk in reqs.chunks(4096) {
            engine.submit_batch(chunk).expect("valid");
            records += chunk.len() as u64;
            engine.write_snapshot(pos(records), &mut snap).expect("snapshot");
        }
    }

    let mut round_allocs = 0u64;
    let mut snap_allocs = 0u64;
    let mut snapshots = 0u64;
    let mut records = 0u64;
    for chunk in reqs.chunks(4096) {
        let before = allocs();
        engine.submit_batch(chunk).expect("valid");
        round_allocs += allocs() - before;
        records += chunk.len() as u64;
        let before = allocs();
        engine.write_snapshot(pos(records), &mut snap).expect("snapshot");
        snap_allocs += allocs() - before;
        snapshots += 1;
    }
    assert_eq!(
        round_allocs, 0,
        "interleaved snapshots broke the zero-allocation request path over 40k rounds"
    );
    // Per-snapshot budget: a warmed output buffer never regrows, so all
    // that remains is the per-shard section scratch — O(shards) per
    // snapshot, independent of how many rounds each snapshot covers.
    let budget = snapshots * (16 * shards + 16);
    assert!(
        snap_allocs <= budget,
        "{snapshots} snapshots allocated {snap_allocs} times (budget {budget})"
    );
}

#[test]
fn arena_snapshot_sections_allocate_o1_per_section() {
    // The arena snapshot contract: `save_state` writes every SoA counter
    // section (`cnt`/`slack`/`psize`/hot-values) as one length-prefixed
    // flat slice straight into the output buffer — zero allocations once
    // the buffer holds `state_len` bytes. `restore_state` builds one slab
    // per section: a small per-section constant, never O(rounds) and
    // never growing with how much history the policy has seen.
    let (tree, reqs) = flushless_workload(0x5EC7, 2048, 30_000);
    let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(4, tree.len()));
    let mut buf = ActionBuffer::new();
    for &r in &reqs {
        tc.step(r, &mut buf);
    }

    let mut blob = Vec::new();
    tc.save_state(&mut blob).expect("snapshots");
    assert_eq!(blob.len(), TcFast::state_len(tree.len()));
    let before = allocs();
    for _ in 0..32 {
        blob.clear();
        tc.save_state(&mut blob).expect("snapshots");
    }
    assert_eq!(allocs() - before, 0, "warmed save_state allocated (sections must stream)");

    // Restores: each of the 32 round-trips may allocate only the
    // per-section constant (one slab per u64 section, the cache bitmap,
    // the stats tail) — budget 32 allocations per restore, no growth term.
    let mut fresh = TcFast::new(Arc::clone(&tree), TcConfig::new(4, tree.len()));
    fresh.restore_state(&blob).expect("valid blob");
    let before = allocs();
    for _ in 0..32 {
        fresh.restore_state(&blob).expect("valid blob");
    }
    let used = allocs() - before;
    assert!(used <= 32 * 32, "32 restores allocated {used} times (O(1) per section violated)");
}

#[test]
fn recover_of_arena_engine_does_not_grow_allocations() {
    // Crash-recovery on the arena core: once a recovered engine's buffers
    // are warm, another full `recover` (snapshot restore + tail replay of
    // 10k rounds) allocates only the run constants — reader, per-section
    // slabs per shard — independent of replay length. A per-round or
    // per-recover growth term fails the budget immediately.
    use otc_sim::snapshot::{EngineSnapshot, LogPosition};
    use otc_workloads::trace::{Trace, TraceHeader, TraceReader};
    use std::io::Cursor;

    let mut rng = SplitMix64::new(0x2EC0);
    let trees =
        (0..4).map(|_| std::sync::Arc::new(random_attachment(512, &mut rng))).collect::<Vec<_>>();
    let mk_forest = || Forest::from_trees(trees.clone());
    let forest = mk_forest();
    let reqs: Vec<Request> = (0..20_000)
        .map(|_| {
            let v = otc_core::tree::NodeId(rng.index(forest.global_len()) as u32);
            if rng.chance(0.4) {
                Request::neg(v)
            } else {
                Request::pos(v)
            }
        })
        .collect();
    let trace = Trace {
        header: TraceHeader {
            universe: forest.global_len() as u32,
            shard_map: (0..4).map(|s| forest.tree(ShardId(s)).len() as u32).collect(),
            seed: 0x2EC0,
            generator: "uniform-mixed".to_string(),
        },
        requests: reqs.clone(),
    };
    let bytes = trace.to_bytes();

    // Live run to the half-way cut, snapshotted there.
    let cut = reqs.len() / 2;
    let mut pre = TraceReader::new(Cursor::new(bytes.as_slice())).expect("valid");
    for _ in 0..cut {
        pre.next().expect("has record").expect("valid");
    }
    let log = LogPosition { offset: pre.byte_pos(), records: pre.records_read() };
    let factory = flushless_factory(4);
    let cfg = EngineConfig::bare(4).threads(1);
    let mut live = ShardedEngine::new(forest, &factory, cfg);
    live.submit_batch(&reqs[..cut]).expect("valid");
    let mut snap_bytes = Vec::new();
    live.write_snapshot(log, &mut snap_bytes).expect("snapshot");
    let snap = EngineSnapshot::parse(&snap_bytes).expect("valid");

    // Recover repeatedly into the same engine: warm-ups grow every buffer
    // to its high-water mark, then one more full recover is measured.
    let shards = 4u64;
    let mut rec = ShardedEngine::new(mk_forest(), &factory, cfg);
    let mut chunk: Vec<Request> = Vec::with_capacity(8 * 1024);
    for _ in 0..2 {
        let mut reader = TraceReader::new(Cursor::new(bytes.as_slice())).expect("valid");
        let stats = rec.recover(&snap, &mut reader, &mut chunk).expect("recovers");
        assert_eq!(stats.replayed as usize, reqs.len() - cut);
        assert!(!stats.torn_tail);
    }
    let before = allocs();
    let mut reader = TraceReader::new(Cursor::new(bytes.as_slice())).expect("valid");
    rec.recover(&snap, &mut reader, &mut chunk).expect("recovers");
    let used = allocs() - before;
    // Budget: reader constants + O(sections) per shard for the policy
    // restore. 10k replayed rounds contribute nothing.
    let budget = 48 * shards + 32;
    assert!(used <= budget, "warm recover allocated {used} times (budget {budget}, no growth)");
}

#[test]
fn obs_histogram_and_counter_records_do_not_allocate() {
    // The invariant-#8 performance half: once a series is registered,
    // the serving hot path's recording sites (`Histogram::record`,
    // `Counter::inc/add`, `Gauge::set`) are pure atomic RMWs — zero heap
    // allocations per sample, at any value magnitude, forever. Snapshots
    // and JSON allocate; steady-state recording must not.
    let registry = otc_obs::Registry::new();
    let hist = registry.histogram("otc_bench_record_nanos", &[("cell", "0007")]);
    let counter = registry.counter("otc_bench_records_total", &[]);
    let gauge = registry.gauge("otc_bench_depth", &[]);
    let mut rng = SplitMix64::new(0x0B5);
    let before = allocs();
    for i in 0..100_000u64 {
        hist.record(rng.next_u64() >> (i % 64));
        counter.inc();
        gauge.set(i);
    }
    counter.add(7);
    assert_eq!(allocs() - before, 0, "metric recording allocated in steady state");
    let snap = hist.snapshot();
    assert_eq!(snap.count, 100_000);
}

#[test]
fn validated_driver_allocates_per_run_not_per_round() {
    // Even with full validation on (the satellite fix: in-place flush
    // comparison + epoch-marked changeset scratch), the per-round cost is
    // allocation-free; instrumentation is off to keep the field-size log
    // out of the picture.
    let (tree, reqs) = flushless_workload(0x7A11, 512, 30_000);
    let cfg = SimConfig { alpha: 2, validate: true, instrument: false };
    let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(2, 24));
    let before = allocs();
    let report = run_policy(&tree, &mut tc, &reqs, cfg).expect("valid");
    let used = allocs() - before;
    assert!(report.flush_events > 0, "workload must exercise the flush-validation path");
    assert!(used <= 50, "validated run_policy allocated {used} times for 30k rounds");
}
