//! Property tests for the prefix/trie substrate.

use otc_trie::{Prefix, RuleTree};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Prefix::new(addr, len))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fast LMP (length-indexed hash probes) equals the linear-scan oracle.
    #[test]
    fn lmp_equals_linear(
        rules in prop::collection::vec(arb_prefix(), 0..60),
        addrs in prop::collection::vec(any::<u32>(), 1..40),
    ) {
        let rt = RuleTree::build(&rules);
        for a in addrs {
            prop_assert_eq!(rt.lmp(a), rt.lmp_linear(a), "addr {:#x}", a);
        }
    }

    /// Dependency-tree parents are the longest proper prefix in the table.
    #[test]
    fn parent_is_longest_proper_prefix(rules in prop::collection::vec(arb_prefix(), 1..60)) {
        let rt = RuleTree::build(&rules);
        let tree = rt.tree();
        for v in tree.nodes() {
            let p = rt.prefix(v);
            match tree.parent(v) {
                None => prop_assert_eq!(p, Prefix::ROOT),
                Some(parent) => {
                    let q = rt.prefix(parent);
                    prop_assert!(q.properly_contains(p));
                    // No rule strictly between q and p.
                    for w in tree.nodes() {
                        let r = rt.prefix(w);
                        if r.properly_contains(p) && q.properly_contains(r) {
                            return Err(TestCaseError::fail(format!(
                                "{r} lies strictly between parent {q} and child {p}"
                            )));
                        }
                    }
                }
            }
        }
    }

    /// Tree ancestry coincides with prefix containment.
    #[test]
    fn ancestry_is_containment(rules in prop::collection::vec(arb_prefix(), 1..40)) {
        let rt = RuleTree::build(&rules);
        let tree = rt.tree();
        for a in tree.nodes() {
            for b in tree.nodes() {
                let by_tree = tree.is_ancestor_or_self(a, b);
                let by_prefix = rt.prefix(a).contains(rt.prefix(b));
                prop_assert_eq!(by_tree, by_prefix, "nodes {:?} {:?}", a, b);
            }
        }
    }

    /// Containment algebra: transitivity and antisymmetry.
    #[test]
    fn containment_partial_order(a in arb_prefix(), b in arb_prefix(), c in arb_prefix()) {
        if a.contains(b) && b.contains(c) {
            prop_assert!(a.contains(c));
        }
        if a.contains(b) && b.contains(a) {
            prop_assert_eq!(a, b);
        }
    }

    /// An address is contained in a prefix iff truncating the address to
    /// the prefix length yields the prefix.
    #[test]
    fn contains_addr_consistent(p in arb_prefix(), addr in any::<u32>()) {
        let truncated = Prefix::new(addr, p.len());
        prop_assert_eq!(p.contains_addr(addr), truncated == p);
    }

    /// Split children partition the parent's address space.
    #[test]
    fn split_partitions(p in (any::<u32>(), 0u8..=31).prop_map(|(a, l)| Prefix::new(a, l))) {
        let (lo, hi) = p.split().expect("len < 32 splits");
        prop_assert_eq!(lo.address_count() + hi.address_count(), p.address_count());
        prop_assert!(p.contains(lo) && p.contains(hi));
        prop_assert!(!lo.contains(hi) && !hi.contains(lo));
    }
}
