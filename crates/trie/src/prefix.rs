//! IPv4 prefixes (the forwarding rules of the paper's Section 2).
//!
//! A rule is a bit-string prefix of an IP address. Rule `p` *depends on*
//! rule `q` when `q` is a proper prefix of `p` — exactly the tree
//! dependency the paper models: evicting the more-specific `p` while
//! keeping `q` would misroute `p`'s packets through `q`'s port.

use std::fmt;

/// An IPv4 prefix: `addr/len` with the host bits zeroed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    /// Prefix length in bits (0 ..= 32). Ordering field first so that the
    /// derived `Ord` sorts by length, then address — parents before
    /// children, which is what tree construction needs.
    len: u8,
    /// The network address with bits beyond `len` cleared.
    addr: u32,
}

impl Prefix {
    /// The default route `0.0.0.0/0` — the root of every dependency tree.
    pub const ROOT: Prefix = Prefix { addr: 0, len: 0 };

    /// Creates a prefix, masking the host bits of `addr`.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    #[must_use]
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "IPv4 prefix length is at most 32");
        Self { addr: addr & mask(len), len }
    }

    /// The (masked) network address.
    #[inline]
    #[must_use]
    pub fn addr(self) -> u32 {
        self.addr
    }

    /// The prefix length.
    #[inline]
    #[must_use]
    pub fn len(self) -> u8 {
        self.len
    }

    /// True only for the default route.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Does this prefix match (contain) the address?
    #[inline]
    #[must_use]
    pub fn contains_addr(self, a: u32) -> bool {
        (a & mask(self.len)) == self.addr
    }

    /// Is `self` a prefix of `other` (including equality)?
    #[inline]
    #[must_use]
    pub fn contains(self, other: Prefix) -> bool {
        self.len <= other.len && (other.addr & mask(self.len)) == self.addr
    }

    /// Is `self` a **proper** prefix of `other`?
    #[inline]
    #[must_use]
    pub fn properly_contains(self, other: Prefix) -> bool {
        self.len < other.len && self.contains(other)
    }

    /// The prefix one bit shorter, or `None` for the default route.
    #[must_use]
    pub fn shorten(self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Prefix::new(self.addr, self.len - 1))
        }
    }

    /// Truncates to exactly `len` bits (`len ≤ self.len()`).
    #[must_use]
    pub fn truncate(self, len: u8) -> Prefix {
        assert!(len <= self.len, "can only truncate to a shorter length");
        Prefix::new(self.addr, len)
    }

    /// The two one-bit-longer children, or `None` at `/32`.
    #[must_use]
    pub fn split(self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let bit = 1u32 << (31 - self.len);
        Some((Prefix::new(self.addr, self.len + 1), Prefix::new(self.addr | bit, self.len + 1)))
    }

    /// Number of addresses covered: `2^(32 − len)`.
    #[must_use]
    pub fn address_count(self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// The lowest address in the covered range.
    #[must_use]
    pub fn range_start(self) -> u32 {
        self.addr
    }
}

#[inline]
fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.addr;
        write!(
            f,
            "{}.{}.{}.{}/{}",
            (a >> 24) & 0xFF,
            (a >> 16) & 0xFF,
            (a >> 8) & 0xFF,
            a & 0xFF,
            self.len
        )
    }
}

/// Parses dotted-quad `a.b.c.d/len` notation (test/tooling convenience).
///
/// # Errors
/// Returns a description of the first malformed component.
pub fn parse_prefix(s: &str) -> Result<Prefix, String> {
    let (quad, len) = s.split_once('/').ok_or_else(|| format!("missing '/' in {s:?}"))?;
    let len: u8 = len.parse().map_err(|e| format!("bad length in {s:?}: {e}"))?;
    if len > 32 {
        return Err(format!("length {len} > 32 in {s:?}"));
    }
    let mut addr: u32 = 0;
    let mut parts = 0;
    for part in quad.split('.') {
        let octet: u8 = part.parse().map_err(|e| format!("bad octet in {s:?}: {e}"))?;
        addr = (addr << 8) | u32::from(octet);
        parts += 1;
    }
    if parts != 4 {
        return Err(format!("expected 4 octets in {s:?}, found {parts}"));
    }
    Ok(Prefix::new(addr, len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking() {
        let p = Prefix::new(0x0A0B_0C0D, 8);
        assert_eq!(p.addr(), 0x0A00_0000);
        assert_eq!(p.to_string(), "10.0.0.0/8");
    }

    #[test]
    fn containment() {
        let p8 = parse_prefix("10.0.0.0/8").unwrap();
        let p16 = parse_prefix("10.1.0.0/16").unwrap();
        let q16 = parse_prefix("11.1.0.0/16").unwrap();
        assert!(p8.contains(p16));
        assert!(p8.properly_contains(p16));
        assert!(!p8.contains(q16));
        assert!(p8.contains(p8));
        assert!(!p8.properly_contains(p8));
        assert!(!p16.contains(p8));
        assert!(Prefix::ROOT.contains(p8));
    }

    #[test]
    fn contains_addr() {
        let p = parse_prefix("192.168.0.0/16").unwrap();
        assert!(p.contains_addr(0xC0A8_1234));
        assert!(!p.contains_addr(0xC0A9_0000));
        assert!(Prefix::ROOT.contains_addr(0));
        assert!(Prefix::ROOT.contains_addr(u32::MAX));
    }

    #[test]
    fn shorten_chain_reaches_root() {
        let mut p = parse_prefix("10.1.2.3/32").unwrap();
        let mut steps = 0;
        while let Some(q) = p.shorten() {
            assert!(q.contains(p));
            p = q;
            steps += 1;
        }
        assert_eq!(steps, 32);
        assert_eq!(p, Prefix::ROOT);
    }

    #[test]
    fn split_children() {
        let p = parse_prefix("10.0.0.0/8").unwrap();
        let (lo, hi) = p.split().unwrap();
        assert_eq!(lo.to_string(), "10.0.0.0/9");
        assert_eq!(hi.to_string(), "10.128.0.0/9");
        assert!(p.properly_contains(lo));
        assert!(p.properly_contains(hi));
        assert!(parse_prefix("1.2.3.4/32").unwrap().split().is_none());
    }

    #[test]
    fn address_counts() {
        assert_eq!(Prefix::ROOT.address_count(), 1u64 << 32);
        assert_eq!(parse_prefix("10.0.0.0/24").unwrap().address_count(), 256);
        assert_eq!(parse_prefix("10.0.0.1/32").unwrap().address_count(), 1);
    }

    #[test]
    fn ordering_sorts_parents_first() {
        let mut v = [
            parse_prefix("10.0.0.0/24").unwrap(),
            Prefix::ROOT,
            parse_prefix("10.0.0.0/8").unwrap(),
            parse_prefix("9.0.0.0/8").unwrap(),
        ];
        v.sort();
        assert_eq!(v[0], Prefix::ROOT);
        assert_eq!(v[1].to_string(), "9.0.0.0/8");
        assert_eq!(v[2].to_string(), "10.0.0.0/8");
        assert_eq!(v[3].to_string(), "10.0.0.0/24");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_prefix("10.0.0.0").is_err());
        assert!(parse_prefix("10.0.0/8").is_err());
        assert!(parse_prefix("10.0.0.0/33").is_err());
        assert!(parse_prefix("10.0.0.256/8").is_err());
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24", "1.2.3.4/32"] {
            assert_eq!(parse_prefix(s).unwrap().to_string(), s);
        }
    }

    #[test]
    #[should_panic(expected = "at most 32")]
    fn overlong_panics() {
        let _ = Prefix::new(0, 33);
    }
}
