//! The rule-dependency tree and longest-matching-prefix lookup.
//!
//! Given a set of forwarding rules (prefixes), the dependency tree has an
//! edge from rule `q` to rule `p` when `q` is the *longest proper prefix*
//! of `p` among the rules. This is exactly the implicit tree of the paper's
//! Section 2 ("we do not have to assume that they are actually stored in a
//! real tree; this tree is implicit in the LMP scheme"). The default route
//! `0.0.0.0/0` is added as the root if absent, mirroring the artificial
//! root rule the paper installs to bounce unmatched packets to the
//! controller.
//!
//! Node `i` of the produced [`otc_core::Tree`] corresponds to
//! `RuleTree::prefixes()[i]`; the root is node 0 (the default route).

use std::collections::BTreeMap;

use otc_core::tree::{NodeId, Tree};

use crate::prefix::Prefix;

/// A routing table materialised as a dependency tree with LMP lookup.
///
/// ```
/// use otc_trie::{parse_prefix, RuleTree};
///
/// let rules = RuleTree::build(&[
///     parse_prefix("10.0.0.0/8").unwrap(),
///     parse_prefix("10.1.0.0/16").unwrap(),
/// ]);
/// // 10.1.2.3 matches the /16; 10.9.9.9 falls back to the /8.
/// let hit16 = rules.lmp(0x0A01_0203);
/// let hit8 = rules.lmp(0x0A09_0909);
/// assert_eq!(rules.prefix(hit16).to_string(), "10.1.0.0/16");
/// assert_eq!(rules.prefix(hit8).to_string(), "10.0.0.0/8");
/// // The dependency tree nests the /16 under the /8.
/// assert_eq!(rules.tree().parent(hit16), Some(hit8));
/// ```
#[derive(Debug, Clone)]
pub struct RuleTree {
    tree: Tree,
    prefixes: Vec<Prefix>,
    /// Prefix → node id, for exact-prefix lookups ([`Self::node_of`]).
    /// Ordered map: membership-only today, but keeping it un-iterable-in-
    /// hash-order means no future change can leak RandomState into costs.
    by_prefix: BTreeMap<Prefix, NodeId>,
    /// Flat binary LMP trie: per trie node, the two children (`TRIE_NONE`
    /// when absent). Trie node 0 is the `/0` root; an address walk follows
    /// its bits MSB-first through this array.
    trie_child: Vec<[u32; 2]>,
    /// Per trie node, the rule at exactly this prefix (`TRIE_NONE` for
    /// pure branch nodes).
    trie_rule: Vec<u32>,
}

/// Absent child / no rule marker of the flat LMP trie.
const TRIE_NONE: u32 = u32::MAX;

impl RuleTree {
    /// Builds the dependency tree from a rule set. Duplicates are removed;
    /// the default route is added if missing.
    #[must_use]
    pub fn build(rules: &[Prefix]) -> Self {
        let mut prefixes: Vec<Prefix> = rules.to_vec();
        prefixes.push(Prefix::ROOT);
        prefixes.sort();
        prefixes.dedup();
        // Sorted by (len, addr): parents (strictly shorter) precede children,
        // and the default route is node 0.
        debug_assert_eq!(prefixes[0], Prefix::ROOT);

        let by_prefix: BTreeMap<Prefix, NodeId> =
            prefixes.iter().enumerate().map(|(i, &p)| (p, NodeId(i as u32))).collect();

        let parents: Vec<Option<usize>> = prefixes
            .iter()
            .map(|&p| {
                if p == Prefix::ROOT {
                    return None;
                }
                // Longest proper prefix present in the table: walk shorter
                // lengths until a hit; the default route guarantees
                // termination.
                let mut q = p.shorten().expect("non-root has a shorter form");
                loop {
                    if let Some(id) = by_prefix.get(&q) {
                        return Some(id.index());
                    }
                    q = q.shorten().expect("default route terminates the walk");
                }
            })
            .collect();

        let tree = Tree::from_parents(&parents);

        // Flat binary LMP trie: insert every rule's bit path, creating
        // branch nodes on demand. Contiguous arrays (no per-node boxes), so
        // a lookup is a short run of indexed loads.
        let mut trie_child: Vec<[u32; 2]> = vec![[TRIE_NONE; 2]];
        let mut trie_rule: Vec<u32> = vec![TRIE_NONE];
        for (i, p) in prefixes.iter().enumerate() {
            let mut node = 0usize;
            for b in 0..p.len() {
                let bit = ((p.addr() >> (31 - b)) & 1) as usize;
                let next = trie_child[node][bit];
                let next = if next == TRIE_NONE {
                    let id = trie_child.len() as u32;
                    trie_child.push([TRIE_NONE; 2]);
                    trie_rule.push(TRIE_NONE);
                    trie_child[node][bit] = id;
                    id
                } else {
                    next
                };
                node = next as usize;
            }
            trie_rule[node] = i as u32;
        }

        Self { tree, prefixes, by_prefix, trie_child, trie_rule }
    }

    /// The dependency tree (node 0 = default route).
    #[must_use]
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Consumes self, returning the tree.
    #[must_use]
    pub fn into_tree(self) -> Tree {
        self.tree
    }

    /// Rules by node id.
    #[must_use]
    pub fn prefixes(&self) -> &[Prefix] {
        &self.prefixes
    }

    /// The prefix of a node.
    #[must_use]
    pub fn prefix(&self, v: NodeId) -> Prefix {
        self.prefixes[v.index()]
    }

    /// Node id of an exact prefix, if present.
    #[must_use]
    pub fn node_of(&self, p: Prefix) -> Option<NodeId> {
        self.by_prefix.get(&p).copied()
    }

    /// Number of rules (including the default route).
    #[must_use]
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// Never true — the default route is always present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Longest-matching-prefix lookup: the most specific rule containing
    /// `addr`. One MSB-first walk down the flat binary trie — at most 32
    /// indexed loads, no map probes — remembering the last rule passed.
    #[must_use]
    pub fn lmp(&self, addr: u32) -> NodeId {
        let mut node = 0usize;
        let mut best = 0u32; // the default route matches every address
        for b in 0..32 {
            let bit = ((addr >> (31 - b)) & 1) as usize;
            let next = self.trie_child[node][bit];
            if next == TRIE_NONE {
                break;
            }
            node = next as usize;
            let rule = self.trie_rule[node];
            if rule != TRIE_NONE {
                best = rule;
            }
        }
        NodeId(best)
    }

    /// Reference LMP by linear scan — O(n), used to validate [`Self::lmp`].
    #[must_use]
    pub fn lmp_linear(&self, addr: u32) -> NodeId {
        let mut best = NodeId(0);
        let mut best_len = 0u8;
        for (i, p) in self.prefixes.iter().enumerate() {
            if p.contains_addr(addr) && (p.len() >= best_len) {
                best = NodeId(i as u32);
                best_len = p.len();
            }
        }
        best
    }

    /// Draws an address whose LMP is exactly `rule`, by rejection sampling
    /// inside the rule's range. Returns `None` when the children cover the
    /// rule's whole range (or nearly so) and `attempts` draws all failed.
    #[must_use]
    pub fn sample_addr_for(
        &self,
        rule: NodeId,
        rng: &mut otc_util::SplitMix64,
        attempts: u32,
    ) -> Option<u32> {
        let p = self.prefix(rule);
        for _ in 0..attempts {
            let offset = rng.next_below(p.address_count());
            let addr = p.range_start().wrapping_add(offset as u32);
            if self.lmp(addr) == rule {
                return Some(addr);
            }
        }
        None
    }

    /// Depth histogram of the dependency tree (index = depth, value =
    /// number of rules at that depth). Useful to report how "tree-like" a
    /// synthetic table is.
    #[must_use]
    pub fn depth_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.tree.height() as usize];
        for v in self.tree.nodes() {
            hist[self.tree.depth(v) as usize] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::parse_prefix;

    #[test]
    fn build_is_deterministic_across_seeds_and_input_order() {
        // Two seeds; for each, build from the generated table and from the
        // same table reversed: node numbering, parents and LMP answers must
        // be byte-identical (build sorts, so input order must not matter,
        // and no hash iteration may leak into the structure).
        for seed in [21u64, 22] {
            let mut rng = otc_util::SplitMix64::new(seed);
            let table = crate::synth::flat_table(400, &mut rng);
            let mut reversed = table.clone();
            reversed.reverse();
            let a = RuleTree::build(&table);
            let b = RuleTree::build(&reversed);
            assert_eq!(a.prefixes(), b.prefixes(), "seed {seed}: numbering must match");
            let mut addr_rng = otc_util::SplitMix64::new(seed ^ 0xABCD);
            for _ in 0..200 {
                let addr = addr_rng.next_u64() as u32;
                assert_eq!(a.lmp(addr), b.lmp(addr), "seed {seed}: LMP must match");
            }
        }
    }

    fn p(s: &str) -> Prefix {
        parse_prefix(s).unwrap()
    }

    fn sample_table() -> Vec<Prefix> {
        vec![
            p("10.0.0.0/8"),
            p("10.1.0.0/16"),
            p("10.1.2.0/24"),
            p("10.2.0.0/16"),
            p("192.168.0.0/16"),
            p("192.168.1.0/24"),
        ]
    }

    #[test]
    fn build_adds_root_and_links_longest_prefix() {
        let rt = RuleTree::build(&sample_table());
        assert_eq!(rt.len(), 7);
        assert_eq!(rt.prefix(NodeId(0)), Prefix::ROOT);
        let t = rt.tree();
        // 10.1.2.0/24 hangs under 10.1.0.0/16 which hangs under 10.0.0.0/8.
        let n24 = rt.node_of(p("10.1.2.0/24")).unwrap();
        let n16 = rt.node_of(p("10.1.0.0/16")).unwrap();
        let n8 = rt.node_of(p("10.0.0.0/8")).unwrap();
        assert_eq!(t.parent(n24), Some(n16));
        assert_eq!(t.parent(n16), Some(n8));
        assert_eq!(t.parent(n8), Some(NodeId(0)));
        // 192.168.0.0/16 attaches directly to the default route.
        let m16 = rt.node_of(p("192.168.0.0/16")).unwrap();
        assert_eq!(t.parent(m16), Some(NodeId(0)));
    }

    #[test]
    fn gaps_are_skipped() {
        // 10.1.2.0/24 with only /8 present: parent skips the absent /16.
        let rt = RuleTree::build(&[p("10.0.0.0/8"), p("10.1.2.0/24")]);
        let n24 = rt.node_of(p("10.1.2.0/24")).unwrap();
        let n8 = rt.node_of(p("10.0.0.0/8")).unwrap();
        assert_eq!(rt.tree().parent(n24), Some(n8));
    }

    #[test]
    fn duplicates_removed() {
        let rt = RuleTree::build(&[p("10.0.0.0/8"), p("10.0.0.0/8"), Prefix::ROOT]);
        assert_eq!(rt.len(), 2);
    }

    #[test]
    fn lmp_matches_linear_scan() {
        let rt = RuleTree::build(&sample_table());
        let addrs = [
            0x0A01_0203u32, // 10.1.2.3   -> 10.1.2.0/24
            0x0A01_0503,    // 10.1.5.3   -> 10.1.0.0/16
            0x0A05_0000,    // 10.5.0.0   -> 10.0.0.0/8
            0xC0A8_0105,    // 192.168.1.5 -> 192.168.1.0/24
            0xC0A8_0505,    // 192.168.5.5 -> 192.168.0.0/16
            0x0800_0000,    // 8.0.0.0    -> default
        ];
        for a in addrs {
            assert_eq!(rt.lmp(a), rt.lmp_linear(a), "addr {a:#x}");
        }
        assert_eq!(rt.prefix(rt.lmp(0x0A01_0203)), p("10.1.2.0/24"));
        assert_eq!(rt.lmp(0x0800_0000), NodeId(0));
    }

    #[test]
    fn lmp_exhaustive_small_universe() {
        // Dense rules inside 10.0.0.0/28: check every address in the block.
        let rules = vec![
            p("10.0.0.0/28"),
            p("10.0.0.0/30"),
            p("10.0.0.4/30"),
            p("10.0.0.0/31"),
            p("10.0.0.8/29"),
        ];
        let rt = RuleTree::build(&rules);
        for a in 0x0A00_0000u32..0x0A00_0010 {
            assert_eq!(rt.lmp(a), rt.lmp_linear(a), "addr {a:#x}");
        }
    }

    #[test]
    fn sample_addr_targets_rule() {
        let rt = RuleTree::build(&sample_table());
        let mut rng = otc_util::SplitMix64::new(7);
        for v in rt.tree().nodes() {
            if let Some(addr) = rt.sample_addr_for(v, &mut rng, 64) {
                assert_eq!(rt.lmp(addr), v, "sampled address must LMP to the rule");
            }
        }
    }

    #[test]
    fn sample_addr_none_when_children_cover() {
        // Parent /30 fully covered by two /31 children → no address maps to
        // the parent.
        let rt = RuleTree::build(&[p("10.0.0.0/30"), p("10.0.0.0/31"), p("10.0.0.2/31")]);
        let parent = rt.node_of(p("10.0.0.0/30")).unwrap();
        let mut rng = otc_util::SplitMix64::new(3);
        assert_eq!(rt.sample_addr_for(parent, &mut rng, 256), None);
    }

    #[test]
    fn depth_histogram_sums_to_len() {
        let rt = RuleTree::build(&sample_table());
        let hist = rt.depth_histogram();
        assert_eq!(hist.iter().sum::<usize>(), rt.len());
        assert_eq!(hist[0], 1, "only the default route at depth 0");
    }

    #[test]
    fn empty_input_gives_root_only() {
        let rt = RuleTree::build(&[]);
        assert_eq!(rt.len(), 1);
        assert_eq!(rt.lmp(12345), NodeId(0));
    }
}
