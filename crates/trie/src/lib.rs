//! # otc-trie — IP prefix substrate for the FIB-caching application
//!
//! The paper's motivating application (Section 2) caches IP forwarding
//! rules on a router while an SDN controller keeps the full table. Rules
//! are address prefixes; the longest-matching-prefix (LMP) scheme induces
//! the dependency tree that makes this a *tree* caching problem.
//!
//! This crate provides:
//! * [`prefix::Prefix`] — IPv4 prefixes with containment algebra;
//! * [`rule_tree::RuleTree`] — the rule-dependency tree (an
//!   [`otc_core::Tree`]) plus fast LMP lookup and targeted address
//!   sampling;
//! * [`synth`] — synthetic routing tables with realistic prefix-length
//!   histograms and controllable dependency depth (our substitute for
//!   proprietary BGP snapshots; see DESIGN.md).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod prefix;
pub mod rule_tree;
pub mod synth;

pub use prefix::{parse_prefix, Prefix};
pub use rule_tree::RuleTree;
pub use synth::{flat_table, hierarchical_table, HierarchicalConfig};
