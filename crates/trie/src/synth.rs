//! Synthetic routing tables.
//!
//! The paper's application is motivated by real FIBs (BGP route tables,
//! \[1\]/\[11\] in the paper), which we cannot redistribute. These generators
//! produce tables with the two structural properties that matter for tree
//! caching (see DESIGN.md, substitutions):
//!
//! * a realistic **prefix-length histogram** (mass concentrated at /24 and
//!   /16, as in public BGP snapshots), and
//! * controllable **dependency depth** — chains of more/less specific
//!   rules, which is what makes the problem a *tree* caching problem
//!   rather than plain paging.
//!
//! [`flat_table`] draws independent prefixes (shallow dependency trees,
//! like the non-overlapping assumption of prior work [20–22]);
//! [`hierarchical_table`] explicitly grows subdivision chains (deep trees,
//! the regime where TC's dependency handling pays off).

use std::collections::BTreeSet;

use otc_util::SplitMix64;

use crate::prefix::Prefix;

/// Approximate BGP prefix-length histogram: `(length, weight)`.
/// Shape follows public route-collector statistics: a /24 spike, a /16
/// bump, and a tail of short prefixes.
const LENGTH_WEIGHTS: &[(u8, u32)] = &[
    (8, 2),
    (10, 1),
    (12, 2),
    (14, 3),
    (16, 12),
    (18, 5),
    (19, 6),
    (20, 8),
    (21, 7),
    (22, 12),
    (23, 10),
    (24, 55),
    (26, 2),
    (28, 1),
];

fn sample_length(rng: &mut SplitMix64) -> u8 {
    let total: u32 = LENGTH_WEIGHTS.iter().map(|&(_, w)| w).sum();
    let mut x = rng.next_below(u64::from(total)) as u32;
    for &(len, w) in LENGTH_WEIGHTS {
        if x < w {
            return len;
        }
        x -= w;
    }
    unreachable!("weights exhausted")
}

/// Draws `n` distinct prefixes independently from the length histogram.
/// Containment (and hence tree depth) arises only by chance, giving
/// shallow dependency trees — the "rules do not overlap much" regime.
#[must_use]
pub fn flat_table(n: usize, rng: &mut SplitMix64) -> Vec<Prefix> {
    // BTreeSet: the old HashSet version returned the *same prefixes in a
    // process-random order* (`set.into_iter().collect()` exposes the
    // RandomState), which silently broke seed-reproducibility of every
    // downstream trace built from a flat table. Ordered iteration makes
    // the output a pure function of (n, seed).
    let mut set: BTreeSet<Prefix> = BTreeSet::new();
    while set.len() < n {
        let len = sample_length(rng);
        // Confine to 1.0.0.0 – 223.255.255.255-ish unicast space for
        // cosmetic realism; correctness doesn't depend on it.
        let addr = rng.next_u64() as u32;
        set.insert(Prefix::new(addr, len));
    }
    set.into_iter().collect()
}

/// Configuration for [`hierarchical_table`].
#[derive(Debug, Clone, Copy)]
pub struct HierarchicalConfig {
    /// Total number of rules to generate.
    pub n: usize,
    /// Probability that a new rule subdivides an existing rule (vs being
    /// drawn fresh at the top level). Higher → deeper dependency trees.
    pub subdivide_p: f64,
    /// Maximum prefix length for subdivisions.
    pub max_len: u8,
}

impl Default for HierarchicalConfig {
    fn default() -> Self {
        Self { n: 1024, subdivide_p: 0.7, max_len: 28 }
    }
}

/// Grows a table by repeatedly either subdividing an existing rule (adding
/// a strictly more specific rule 1–4 bits longer) or inserting a fresh
/// top-level rule. Produces dependency trees whose height grows with
/// `subdivide_p` — the regime the paper's `h(T)` factor is about.
#[must_use]
pub fn hierarchical_table(cfg: HierarchicalConfig, rng: &mut SplitMix64) -> Vec<Prefix> {
    assert!(cfg.n >= 1);
    assert!((0.0..=1.0).contains(&cfg.subdivide_p));
    assert!(cfg.max_len <= 32);
    // Membership-only (output order comes from `list`), but BTreeSet
    // keeps the whole module free of hash iteration by construction.
    let mut set: BTreeSet<Prefix> = BTreeSet::new();
    let mut list: Vec<Prefix> = Vec::with_capacity(cfg.n);
    let mut guard = 0u64;
    while list.len() < cfg.n {
        guard += 1;
        assert!(guard < 200 * cfg.n as u64 + 10_000, "generator failed to converge");
        let candidate = if !list.is_empty() && rng.chance(cfg.subdivide_p) {
            // Subdivide a random existing rule.
            let base = list[rng.index(list.len())];
            if base.len() >= cfg.max_len {
                continue;
            }
            let extra = 1 + rng.next_below(4) as u8;
            let new_len = (base.len() + extra).min(cfg.max_len);
            let offset = rng.next_below(base.address_count()) as u32;
            Prefix::new(base.range_start().wrapping_add(offset), new_len)
        } else {
            let len = sample_length(rng).min(cfg.max_len);
            Prefix::new(rng.next_u64() as u32, len)
        };
        if set.insert(candidate) {
            list.push(candidate);
        }
    }
    list
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule_tree::RuleTree;

    #[test]
    fn flat_table_size_and_uniqueness() {
        let mut rng = SplitMix64::new(1);
        let t = flat_table(500, &mut rng);
        assert_eq!(t.len(), 500);
        let set: BTreeSet<_> = t.iter().collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn generators_are_seed_deterministic() {
        // Same seed → byte-identical table, including *order* (the old
        // HashSet-backed flat_table violated this); different seed →
        // different table.
        for seed in [7u64, 8] {
            let a = flat_table(300, &mut SplitMix64::new(seed));
            let b = flat_table(300, &mut SplitMix64::new(seed));
            assert_eq!(a, b, "flat_table must be a pure function of (n, seed)");
            let cfg = HierarchicalConfig { n: 300, ..HierarchicalConfig::default() };
            let ha = hierarchical_table(cfg, &mut SplitMix64::new(seed));
            let hb = hierarchical_table(cfg, &mut SplitMix64::new(seed));
            assert_eq!(ha, hb, "hierarchical_table must be a pure function of (cfg, seed)");
        }
        assert_ne!(
            flat_table(300, &mut SplitMix64::new(7)),
            flat_table(300, &mut SplitMix64::new(8)),
            "different seeds must give different tables"
        );
    }

    #[test]
    fn flat_table_is_mostly_slash24() {
        let mut rng = SplitMix64::new(2);
        let t = flat_table(2000, &mut rng);
        let s24 = t.iter().filter(|p| p.len() == 24).count();
        let frac = s24 as f64 / t.len() as f64;
        assert!((0.3..0.8).contains(&frac), "expected /24 spike, got {frac}");
    }

    #[test]
    fn flat_table_is_shallow() {
        let mut rng = SplitMix64::new(3);
        let rt = RuleTree::build(&flat_table(2000, &mut rng));
        // Random independent prefixes rarely nest deeper than a few levels.
        assert!(rt.tree().height() <= 6, "height {}", rt.tree().height());
    }

    #[test]
    fn hierarchical_table_is_deeper() {
        let mut rng = SplitMix64::new(4);
        let cfg = HierarchicalConfig { n: 2000, subdivide_p: 0.8, max_len: 28 };
        let rt = RuleTree::build(&hierarchical_table(cfg, &mut rng));
        let mut rng2 = SplitMix64::new(4);
        let flat = RuleTree::build(&flat_table(2000, &mut rng2));
        assert!(
            rt.tree().height() > flat.tree().height(),
            "hierarchical {} vs flat {}",
            rt.tree().height(),
            flat.tree().height()
        );
        assert!(rt.tree().height() >= 4);
    }

    #[test]
    fn hierarchical_respects_max_len() {
        let mut rng = SplitMix64::new(5);
        let cfg = HierarchicalConfig { n: 500, subdivide_p: 0.9, max_len: 20 };
        for p in hierarchical_table(cfg, &mut rng) {
            assert!(p.len() <= 20);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = hierarchical_table(HierarchicalConfig::default(), &mut SplitMix64::new(9));
        let b = hierarchical_table(HierarchicalConfig::default(), &mut SplitMix64::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn single_rule_table() {
        let mut rng = SplitMix64::new(6);
        let t = hierarchical_table(
            HierarchicalConfig { n: 1, subdivide_p: 0.5, max_len: 24 },
            &mut rng,
        );
        assert_eq!(t.len(), 1);
    }
}
