//! Dependency-respecting reactive caching baselines.
//!
//! These are the "classic paging heuristics lifted to trees", the natural
//! competitors the paper's application section implies (the dependent-set
//! algorithm of CacheFlow \[19\] restricted to tree dependencies):
//!
//! * on a paying positive request to `v`, immediately fetch the *dependent
//!   set* — the non-cached part of `T(v)` (the minimal valid fetch that
//!   makes `v` cached);
//! * when space is needed, evict whole cached-tree roots chosen by an
//!   eviction strategy (LRU / FIFO / random); evicting a root keeps the
//!   cache a subforest (its children become new roots);
//! * negative requests are paid but trigger no reaction (rule churn is the
//!   regime where these baselines bleed — exactly what E7 measures).
//!
//! Unlike TC these fetch *eagerly* (no rent-or-buy counters), so a single
//! cold request to a large subtree costs `α·|T(v)|` immediately.

use std::sync::Arc;

use otc_core::cache::CacheSet;
use otc_core::policy::{
    dependent_fetch_set_into, request_pays, ActionBuffer, ActionKind, CachePolicy,
};
use otc_core::request::{Request, Sign};
use otc_core::tree::{NodeId, Tree};
use otc_util::SplitMix64;

/// Which cached-tree root to evict when space is needed.
#[derive(Debug, Clone)]
pub enum EvictStrategy {
    /// Evict the root whose subtree was least recently accessed.
    Lru,
    /// Evict the root that was fetched earliest.
    Fifo,
    /// Evict a uniformly random root.
    Random(SplitMix64),
}

impl EvictStrategy {
    fn name(&self) -> &'static str {
        match self {
            EvictStrategy::Lru => "subtree-lru",
            EvictStrategy::Fifo => "subtree-fifo",
            EvictStrategy::Random(_) => "subtree-random",
        }
    }
}

/// The dependent-set caching policy with pluggable eviction.
#[derive(Debug, Clone)]
pub struct DependentSetPolicy {
    tree: Arc<Tree>,
    capacity: usize,
    cache: CacheSet,
    strategy: EvictStrategy,
    /// Logical clock advanced every step.
    clock: u64,
    /// For LRU: last access time bubbled to every cached ancestor, so a
    /// cached root's stamp is the most recent access anywhere in its tree.
    /// For FIFO: the fetch time (never refreshed).
    stamp: Vec<u64>,
    /// Scratch for the dependent fetch set of the current miss.
    need: Vec<NodeId>,
    /// Scratch for the cached-root victim candidates.
    roots: Vec<NodeId>,
    /// Debug-build scratch for re-verifying `need` across evictions.
    #[cfg(debug_assertions)]
    need_check: Vec<NodeId>,
}

impl DependentSetPolicy {
    /// Creates the policy.
    #[must_use]
    pub fn new(tree: Arc<Tree>, capacity: usize, strategy: EvictStrategy) -> Self {
        assert!(capacity >= 1);
        let n = tree.len();
        Self {
            tree,
            capacity,
            cache: CacheSet::empty(n),
            strategy,
            clock: 0,
            stamp: vec![0; n],
            need: Vec::new(),
            roots: Vec::new(),
            #[cfg(debug_assertions)]
            need_check: Vec::new(),
        }
    }

    /// Debug tripwire: the pre-computed fetch set must be unaffected by an
    /// eviction (victims are outside `T(v)`). Allocation-free in steady
    /// state so the counting-allocator harness stays green in debug builds.
    #[cfg(debug_assertions)]
    fn assert_need_stable(&mut self, v: NodeId, need: &[NodeId]) {
        let mut check = std::mem::take(&mut self.need_check);
        check.clear();
        dependent_fetch_set_into(&self.tree, &self.cache, v, &mut check);
        debug_assert_eq!(need, &check[..], "eviction changed the dependent fetch set");
        self.need_check = check;
    }

    /// Convenience constructor for LRU.
    #[must_use]
    pub fn lru(tree: Arc<Tree>, capacity: usize) -> Self {
        Self::new(tree, capacity, EvictStrategy::Lru)
    }

    /// Convenience constructor for FIFO.
    #[must_use]
    pub fn fifo(tree: Arc<Tree>, capacity: usize) -> Self {
        Self::new(tree, capacity, EvictStrategy::Fifo)
    }

    /// Convenience constructor for random eviction with a fixed seed.
    #[must_use]
    pub fn random(tree: Arc<Tree>, capacity: usize, seed: u64) -> Self {
        Self::new(tree, capacity, EvictStrategy::Random(SplitMix64::new(seed)))
    }

    /// Evicts an externally chosen valid negative changeset. Used by
    /// wrapper policies (e.g. invalidate-on-update) that add their own
    /// eviction triggers on top of the dependent-set machinery.
    pub fn evict_raw(&mut self, set: &[NodeId]) {
        self.cache.evict(set);
    }

    /// Bubble an access stamp from `v` through its cached ancestors.
    fn touch(&mut self, v: NodeId) {
        let now = self.clock;
        let mut x = v;
        loop {
            self.stamp[x.index()] = now;
            match self.tree.parent(x) {
                Some(p) if self.cache.contains(p) => x = p,
                _ => break,
            }
        }
    }

    /// Picks the eviction victim among cached roots outside `T(protect)`.
    /// Reuses the `roots` scratch — allocation-free in steady state.
    fn pick_victim(&mut self, protect: NodeId) -> Option<NodeId> {
        let mut roots = std::mem::take(&mut self.roots);
        roots.clear();
        roots.extend(
            self.cache
                .cached_roots_iter(&self.tree)
                .filter(|&r| !self.tree.is_ancestor_or_self(protect, r)),
        );
        let victim = if roots.is_empty() {
            None
        } else {
            Some(match &mut self.strategy {
                EvictStrategy::Lru | EvictStrategy::Fifo => roots
                    .iter()
                    .copied()
                    .min_by_key(|r| (self.stamp[r.index()], r.index()))
                    .expect("non-empty roots"),
                EvictStrategy::Random(rng) => roots[rng.index(roots.len())],
            })
        };
        self.roots = roots;
        victim
    }
}

impl CachePolicy for DependentSetPolicy {
    fn name(&self) -> &'static str {
        self.strategy.name()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn cache(&self) -> &CacheSet {
        &self.cache
    }

    fn reset(&mut self) {
        self.cache = CacheSet::empty(self.tree.len());
        self.clock = 0;
        self.stamp.fill(0);
        if let EvictStrategy::Random(rng) = &mut self.strategy {
            *rng = SplitMix64::new(0xD5);
        }
    }

    fn step(&mut self, req: Request, out: &mut ActionBuffer) {
        out.clear();
        self.clock += 1;
        let pays = request_pays(&self.cache, req);
        let v = req.node;
        out.set_paid(pays);

        if req.sign == Sign::Negative {
            // Pay if cached; no reaction either way.
            return;
        }
        if !pays {
            // Hit: refresh recency (LRU only; FIFO stamps are fetch times).
            if matches!(self.strategy, EvictStrategy::Lru) {
                self.touch(v);
            }
            return;
        }

        // Miss: try to make room for the dependent set, then fetch it.
        let mut need = std::mem::take(&mut self.need);
        need.clear();
        dependent_fetch_set_into(&self.tree, &self.cache, v, &mut need);
        if need.len() > self.capacity {
            // Can never fit — bypass.
            self.need = need;
            return;
        }
        let mut evict_open = false;
        while self.cache.len() + need.len() > self.capacity {
            let Some(victim) = self.pick_victim(v) else {
                // Only roots inside T(v) remain; evicting them would just
                // re-enter the fetch set. Bypass instead (keeping any
                // evictions already performed).
                self.need = need;
                return;
            };
            self.cache.remove(victim);
            if !evict_open {
                out.begin(ActionKind::Evict);
                evict_open = true;
            }
            out.push_node(victim);
            // The victim might have been an ancestor context for `need`?
            // No: victims are outside T(v); `need` only grows if a cached
            // subtree inside T(v) were evicted, which pick_victim forbids.
            #[cfg(debug_assertions)]
            self.assert_need_stable(v, &need);
        }
        self.cache.fetch(&need);
        let now = self.clock;
        for &x in &need {
            self.stamp[x.index()] = now;
        }
        if matches!(self.strategy, EvictStrategy::Lru) {
            self.touch(v);
        }
        out.begin(ActionKind::Fetch).extend_from_slice(&need);
        self.need = need;
    }
}

/// A policy that never caches anything: every positive request is bounced
/// to the controller. The "no TCAM cache at all" floor for E7.
#[derive(Debug, Clone)]
pub struct BypassAll {
    cache: CacheSet,
    capacity: usize,
}

impl BypassAll {
    /// Creates the policy (capacity is nominal — nothing is ever cached).
    #[must_use]
    pub fn new(tree: &Tree, capacity: usize) -> Self {
        Self { cache: CacheSet::empty(tree.len()), capacity }
    }
}

impl CachePolicy for BypassAll {
    fn name(&self) -> &'static str {
        "bypass-all"
    }
    fn capacity(&self) -> usize {
        self.capacity
    }
    fn cache(&self) -> &CacheSet {
        &self.cache
    }
    fn reset(&mut self) {}
    fn step(&mut self, req: Request, out: &mut ActionBuffer) {
        out.clear();
        out.set_paid(req.sign == Sign::Positive);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otc_core::policy::{Action, StepOutcome};

    fn tree() -> Arc<Tree> {
        //      0
        //     / \
        //    1   4
        //   / \   \
        //  2   3   5
        Arc::new(Tree::from_parents(&[None, Some(0), Some(1), Some(1), Some(0), Some(4)]))
    }

    #[test]
    fn miss_fetches_dependent_set() {
        let mut p = DependentSetPolicy::lru(tree(), 6);
        let out = p.step_owned(Request::pos(NodeId(1)));
        assert!(out.paid_service);
        assert_eq!(out.actions, vec![Action::Fetch(vec![NodeId(1), NodeId(2), NodeId(3)])]);
        assert_eq!(p.cache().len(), 3);
    }

    #[test]
    fn hit_is_free() {
        let mut p = DependentSetPolicy::lru(tree(), 6);
        p.step_owned(Request::pos(NodeId(2)));
        let out = p.step_owned(Request::pos(NodeId(2)));
        assert_eq!(out, StepOutcome::idle());
    }

    #[test]
    fn lru_evicts_coldest_root() {
        let mut p = DependentSetPolicy::lru(tree(), 2);
        p.step_owned(Request::pos(NodeId(2))); // cache {2}
        p.step_owned(Request::pos(NodeId(3))); // cache {2,3}
        p.step_owned(Request::pos(NodeId(2))); // touch 2
        let out = p.step_owned(Request::pos(NodeId(5))); // must evict 3 (coldest)
        assert!(out.actions.contains(&Action::Evict(vec![NodeId(3)])));
        assert!(p.cache().contains(NodeId(2)));
        assert!(p.cache().contains(NodeId(5)));
        assert!(!p.cache().contains(NodeId(3)));
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut p = DependentSetPolicy::fifo(tree(), 2);
        p.step_owned(Request::pos(NodeId(2))); // fetch order: 2 first
        p.step_owned(Request::pos(NodeId(3)));
        p.step_owned(Request::pos(NodeId(2))); // hit; FIFO doesn't care
        let out = p.step_owned(Request::pos(NodeId(5)));
        assert!(out.actions.contains(&Action::Evict(vec![NodeId(2)])));
    }

    #[test]
    fn oversized_dependent_set_bypasses() {
        let mut p = DependentSetPolicy::lru(tree(), 2);
        // T(0) has 6 nodes > capacity 2 → bypass, nothing fetched.
        let out = p.step_owned(Request::pos(NodeId(0)));
        assert!(out.paid_service);
        assert!(out.actions.is_empty());
        assert!(p.cache().is_empty());
    }

    #[test]
    fn cache_stays_valid_subforest() {
        let t = tree();
        let mut p = DependentSetPolicy::lru(Arc::clone(&t), 3);
        let mut rng = SplitMix64::new(11);
        for _ in 0..2000 {
            let node = NodeId(rng.index(t.len()) as u32);
            let req = if rng.chance(0.3) { Request::neg(node) } else { Request::pos(node) };
            p.step_owned(req);
            p.cache().validate(&t).expect("subforest invariant");
            assert!(p.cache().len() <= 3);
        }
    }

    #[test]
    fn random_eviction_stays_valid() {
        let t = tree();
        let mut p = DependentSetPolicy::random(Arc::clone(&t), 2, 7);
        let mut rng = SplitMix64::new(13);
        for _ in 0..1000 {
            let node = NodeId(rng.index(t.len()) as u32);
            p.step_owned(Request::pos(node));
            p.cache().validate(&t).expect("subforest invariant");
        }
    }

    #[test]
    fn negative_requests_cost_but_do_not_react() {
        let mut p = DependentSetPolicy::lru(tree(), 6);
        p.step_owned(Request::pos(NodeId(2)));
        let out = p.step_owned(Request::neg(NodeId(2)));
        assert!(out.paid_service);
        assert!(out.actions.is_empty());
        assert!(p.cache().contains(NodeId(2)), "LRU ignores churn — that's its weakness");
        let out = p.step_owned(Request::neg(NodeId(5)));
        assert!(!out.paid_service);
    }

    #[test]
    fn bypass_all_costs_every_positive() {
        let t = tree();
        let mut p = BypassAll::new(&t, 4);
        assert!(p.step_owned(Request::pos(NodeId(0))).paid_service);
        assert!(!p.step_owned(Request::neg(NodeId(0))).paid_service);
        assert!(p.cache().is_empty());
    }

    #[test]
    fn reset_clears_state() {
        let t = tree();
        let mut p = DependentSetPolicy::lru(Arc::clone(&t), 4);
        p.step_owned(Request::pos(NodeId(2)));
        p.reset();
        assert!(p.cache().is_empty());
        let out = p.step_owned(Request::pos(NodeId(2)));
        assert!(out.paid_service);
    }
}
