//! The optimal **static** cache: the best fixed subforest of size ≤ k.
//!
//! The paper's conclusion points out that with only positive requests this
//! is the *tree sparsity* problem \[4\]. The key structural fact: a cache
//! (downward-closed set) is exactly a union of **full** subtrees — its
//! complement is a tree cap at the root. Choosing the best static cache is
//! therefore a knapsack over antichains of subtree roots, solvable by a
//! classic tree knapsack DP in `O(n·k)` time.
//!
//! With request weights `wpos(v)` (positive requests to `v`) and `wneg(v)`
//! (negative requests), a static cache `S` costs
//! `Σ_{v∉S} wpos(v) + Σ_{v∈S} wneg(v) + α·|S|` (the one-time fetch).
//! Equivalently it *saves* `gain(v) = wpos(v) − wneg(v) − α` per cached
//! node relative to the empty cache, so we maximise `Σ_{v∈S} gain(v)`.

use otc_core::tree::{NodeId, Tree};

/// Result of the static-cache optimisation.
#[derive(Debug, Clone)]
pub struct StaticPlan {
    /// The chosen cache (preorder), a valid subforest, `|set| ≤ k`.
    pub set: Vec<NodeId>,
    /// Total cost of serving the weighted workload with that fixed cache,
    /// including the initial fetch `α·|set|`.
    pub cost: u64,
}

/// Computes the best static cache for node weights `wpos`/`wneg` and the
/// one-time fetch cost `α` per node. `O(n·min(k, n))` time.
///
/// ```
/// use otc_baselines::best_static_cache;
/// use otc_core::{NodeId, Tree};
///
/// let tree = Tree::star(2);
/// // Leaf 1 is hot, leaf 2 churns.
/// let plan = best_static_cache(&tree, &[0, 100, 50], &[0, 0, 90], 2, 1);
/// assert_eq!(plan.set, vec![NodeId(1)]);
/// ```
///
/// # Panics
/// Panics if weight slices don't match the tree size.
#[must_use]
pub fn best_static_cache(
    tree: &Tree,
    wpos: &[u64],
    wneg: &[u64],
    alpha: u64,
    k: usize,
) -> StaticPlan {
    assert_eq!(wpos.len(), tree.len());
    assert_eq!(wneg.len(), tree.len());
    let n = tree.len();
    let k = k.min(n);
    // gain of caching v (may be negative).
    let gain = |v: NodeId| wpos[v.index()] as i64 - wneg[v.index()] as i64 - alpha as i64;

    // f[v] = table over sizes 0..=min(k, |T(v)|): the best total gain of a
    // downward-closed subset of T(v) of exactly that size. Children tables
    // are knapsack-merged; additionally v may take its whole subtree.
    // Reverse preorder gives children before parents; tables are dropped as
    // soon as they're merged into the parent (bounded live memory).
    let mut tables: Vec<Option<Vec<i64>>> = vec![None; n];
    // subtree_gain[v] = Σ_{u ∈ T(v)} gain(u), for the "take all" case.
    let mut subtree_gain: Vec<i64> = vec![0; n];
    const NEG: i64 = i64::MIN / 4;

    for &v in tree.preorder().iter().rev() {
        let size_v = tree.subtree_size(v) as usize;
        let cap = size_v.min(k);
        // Start with the empty selection inside T(v) \ children-subtrees.
        let mut table = vec![NEG; cap + 1];
        table[0] = 0;
        let mut own_gain = gain(v);
        let mut merged = 1usize; // nodes available so far (just v — but v
                                 // alone cannot be selected without its
                                 // subtree; the running bound uses child
                                 // subtree sizes only).
        let mut selectable = 0usize;
        for &c in tree.children(v) {
            own_gain += subtree_gain[c.index()];
            let child = tables[c.index()].take().expect("children computed first");
            let child_max = child.len() - 1;
            selectable = (selectable + child_max).min(cap);
            // Knapsack merge, iterating sizes downward.
            let upto = selectable;
            let mut next = vec![NEG; upto + 1];
            for (j, &base) in table.iter().enumerate().take(upto + 1) {
                if base == NEG {
                    continue;
                }
                for (cj, &cv) in child.iter().enumerate() {
                    if cv == NEG || j + cj > upto {
                        continue;
                    }
                    let cand = base + cv;
                    if cand > next[j + cj] {
                        next[j + cj] = cand;
                    }
                }
            }
            // Grow table to the new reachable size bound.
            table = next;
            merged += tree.subtree_size(c) as usize;
        }
        let _ = merged;
        subtree_gain[v.index()] = own_gain;
        // Option: take the whole subtree T(v) (the only way to include v).
        if size_v <= k {
            if table.len() <= size_v {
                table.resize(size_v + 1, NEG);
            }
            if own_gain > table[size_v] {
                table[size_v] = own_gain;
            }
        }
        tables[v.index()] = Some(table);
    }

    let root_table = tables[tree.root().index()].take().expect("root table");
    let (_best_size, best_gain) = root_table
        .iter()
        .enumerate()
        .filter(|&(_, &g)| g != NEG)
        .map(|(j, &g)| (j, g))
        .max_by_key(|&(j, g)| (g, std::cmp::Reverse(j)))
        .expect("size 0 always feasible");

    // Recover the set greedily: a second pass re-runs the DP decisions.
    // For simplicity and verifiability we recover by marking: recompute
    // per-node tables was destroyed, so instead recover via a top-down
    // search over "take whole subtree vs recurse" using a fresh DP — for
    // the sizes used in experiments the clean way is to recompute tables
    // with kept memory. To stay O(n·k) time but avoid O(n·k) permanent
    // memory in the common no-recovery path, recovery runs only here.
    let set = recover_set(tree, wpos, wneg, alpha, k, best_gain);

    let total_pos: u64 = wpos.iter().sum();
    let in_set_pos: u64 = set.iter().map(|&v| wpos[v.index()]).sum();
    let in_set_neg: u64 = set.iter().map(|&v| wneg[v.index()]).sum();
    let cost = total_pos - in_set_pos + in_set_neg + alpha * set.len() as u64;
    debug_assert_eq!(
        total_pos as i64 - best_gain,
        cost as i64,
        "recovered set must realise the DP optimum"
    );
    StaticPlan { set, cost }
}

/// Recomputes the DP keeping all tables, then walks decisions top-down.
fn recover_set(
    tree: &Tree,
    wpos: &[u64],
    wneg: &[u64],
    alpha: u64,
    k: usize,
    target_gain: i64,
) -> Vec<NodeId> {
    let n = tree.len();
    let k = k.min(n);
    const NEG: i64 = i64::MIN / 4;
    let gain = |v: NodeId| wpos[v.index()] as i64 - wneg[v.index()] as i64 - alpha as i64;

    let mut subtree_gain: Vec<i64> = vec![0; n];
    // For each node: the sequence of per-child merge prefixes, so the
    // decision walk can split sizes among children. prefix[i] = table after
    // merging children 0..i (prefix[0] = empty-selection table).
    let mut prefixes: Vec<Vec<Vec<i64>>> = vec![Vec::new(); n];
    let mut finals: Vec<Vec<i64>> = vec![Vec::new(); n];

    for &v in tree.preorder().iter().rev() {
        let size_v = tree.subtree_size(v) as usize;
        let cap = size_v.min(k);
        let mut steps: Vec<Vec<i64>> = Vec::with_capacity(tree.children(v).len() + 1);
        let mut table = vec![NEG; 1];
        table[0] = 0;
        steps.push(table.clone());
        let mut own_gain = gain(v);
        let mut selectable = 0usize;
        for &c in tree.children(v) {
            own_gain += subtree_gain[c.index()];
            let child = &finals[c.index()];
            selectable = (selectable + child.len() - 1).min(cap);
            let mut next = vec![NEG; selectable + 1];
            for (j, &base) in table.iter().enumerate() {
                if base == NEG {
                    continue;
                }
                for (cj, &cv) in child.iter().enumerate() {
                    if cv == NEG || j + cj > selectable {
                        continue;
                    }
                    let cand = base + cv;
                    if cand > next[j + cj] {
                        next[j + cj] = cand;
                    }
                }
            }
            table = next;
            steps.push(table.clone());
        }
        subtree_gain[v.index()] = own_gain;
        let mut fin = table;
        if size_v <= k {
            if fin.len() <= size_v {
                fin.resize(size_v + 1, NEG);
            }
            if own_gain > fin[size_v] {
                fin[size_v] = own_gain;
            }
        }
        prefixes[v.index()] = steps;
        finals[v.index()] = fin;
    }

    // Pick the smallest size achieving the target gain at the root.
    let root = tree.root();
    let size = finals[root.index()]
        .iter()
        .position(|&g| g == target_gain)
        .expect("target gain achievable at root");

    let mut set = Vec::new();
    // Decision walk: (node, size inside T(node)).
    let mut stack = vec![(root, size)];
    while let Some((v, j)) = stack.pop() {
        if j == 0 {
            continue;
        }
        let size_v = tree.subtree_size(v) as usize;
        let fin = &finals[v.index()];
        // "Take whole subtree" decision?
        if j == size_v && fin[j] == subtree_gain[v.index()] {
            set.extend_from_slice(tree.subtree(v));
            continue;
        }
        // Otherwise split j among children, walking merge prefixes
        // backwards.
        let steps = &prefixes[v.index()];
        let mut remaining = j;
        debug_assert_eq!(steps.len(), tree.children(v).len() + 1);
        debug_assert_eq!(steps[steps.len() - 1][j], fin[j], "split must come from the merge");
        let mut need: i64 = steps[steps.len() - 1][remaining];
        for (i, &c) in tree.children(v).iter().enumerate().rev() {
            let before = &steps[i];
            let child = &finals[c.index()];
            let mut found = false;
            for (cj, &cval) in child.iter().enumerate().take(remaining + 1) {
                let bj = remaining - cj;
                if bj < before.len()
                    && before[bj] != NEG
                    && cval != NEG
                    && before[bj] + cval == need
                {
                    if cj > 0 {
                        stack.push((c, cj));
                    }
                    remaining = bj;
                    need = before[bj];
                    found = true;
                    break;
                }
            }
            debug_assert!(found, "decision walk must find a split");
            if remaining == 0 {
                break;
            }
        }
        debug_assert_eq!(remaining, 0);
    }
    set.sort_unstable_by_key(|v| tree.preorder_rank(*v));
    set
}

/// Cost of serving weights with a **given** static cache (sanity helper).
#[must_use]
pub fn static_cost(tree: &Tree, wpos: &[u64], wneg: &[u64], alpha: u64, set: &[NodeId]) -> u64 {
    let mut cached = vec![false; tree.len()];
    for &v in set {
        cached[v.index()] = true;
    }
    let mut cost = alpha * set.len() as u64;
    for v in tree.nodes() {
        if cached[v.index()] {
            cost += wneg[v.index()];
        } else {
            cost += wpos[v.index()];
        }
    }
    cost
}

/// Brute-force best static cache by enumerating all subforests — tiny trees
/// only; the test oracle for [`best_static_cache`].
#[must_use]
pub fn best_static_cache_bruteforce(
    tree: &Tree,
    wpos: &[u64],
    wneg: &[u64],
    alpha: u64,
    k: usize,
) -> u64 {
    let n = tree.len();
    assert!(n <= 20, "brute force is for tiny trees");
    let mut best = u64::MAX;
    'mask: for mask in 0u32..(1 << n) {
        if (mask.count_ones() as usize) > k {
            continue;
        }
        let cached = |v: NodeId| mask & (1 << v.index()) != 0;
        for v in tree.nodes() {
            if cached(v) {
                for &c in tree.children(v) {
                    if !cached(c) {
                        continue 'mask;
                    }
                }
            }
        }
        let set: Vec<NodeId> = tree.nodes().filter(|&v| cached(v)).collect();
        best = best.min(static_cost(tree, wpos, wneg, alpha, &set));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use otc_util::SplitMix64;

    fn check_tree(tree: &Tree, wpos: &[u64], wneg: &[u64], alpha: u64, k: usize) {
        let plan = best_static_cache(tree, wpos, wneg, alpha, k);
        // Valid subforest, within budget.
        assert!(plan.set.len() <= k);
        let mut cached = vec![false; tree.len()];
        for &v in &plan.set {
            cached[v.index()] = true;
        }
        for &v in &plan.set {
            for &c in tree.children(v) {
                assert!(cached[c.index()], "DP set must be downward-closed");
            }
        }
        // Cost matches direct evaluation and the brute-force optimum.
        assert_eq!(plan.cost, static_cost(tree, wpos, wneg, alpha, &plan.set));
        let brute = best_static_cache_bruteforce(tree, wpos, wneg, alpha, k);
        assert_eq!(plan.cost, brute, "DP must equal brute force");
    }

    #[test]
    fn hand_example() {
        //      0
        //     / \
        //    1   4
        //   / \
        //  2   3
        let tree = Tree::from_parents(&[None, Some(0), Some(1), Some(1), Some(0)]);
        // Node 4 is hot, node 2 warm, others cold.
        let wpos = [1, 1, 5, 0, 20];
        let wneg = [0, 0, 0, 0, 0];
        let plan = best_static_cache(&tree, &wpos, &wneg, 2, 2);
        // Caching {4} saves 20−2 = 18; adding {2} saves 5−2 = 3 more.
        let mut set = plan.set.clone();
        set.sort_unstable();
        assert_eq!(set, vec![NodeId(2), NodeId(4)]);
        // misses on nodes 0, 1 (one each) + fetch of two nodes at α = 2.
        assert_eq!(plan.cost, 1 + 1 + 4);
    }

    #[test]
    fn negative_weights_discourage_caching() {
        let tree = Tree::star(2);
        let wpos = [0, 10, 10];
        let wneg = [0, 0, 50];
        // Node 2 is hot but churns heavily: caching it costs 50.
        let plan = best_static_cache(&tree, &wpos, &wneg, 1, 3);
        let mut set = plan.set;
        set.sort_unstable();
        assert_eq!(set, vec![NodeId(1)]);
    }

    #[test]
    fn zero_budget_means_empty() {
        let tree = Tree::kary(2, 3);
        let wpos = vec![100; tree.len()];
        let wneg = vec![0; tree.len()];
        let plan = best_static_cache(&tree, &wpos, &wneg, 1, 0);
        assert!(plan.set.is_empty());
        assert_eq!(plan.cost, 100 * tree.len() as u64);
    }

    #[test]
    fn whole_tree_when_everything_hot() {
        let tree = Tree::kary(2, 3);
        let wpos = vec![1000; tree.len()];
        let wneg = vec![0; tree.len()];
        let plan = best_static_cache(&tree, &wpos, &wneg, 1, tree.len());
        assert_eq!(plan.set.len(), tree.len());
    }

    #[test]
    fn matches_bruteforce_on_random_instances() {
        let mut rng = SplitMix64::new(42);
        for trial in 0..60 {
            let n = 1 + rng.index(10);
            let mut parents: Vec<Option<usize>> = vec![None];
            for i in 1..n {
                parents.push(Some(rng.index(i)));
            }
            let tree = Tree::from_parents(&parents);
            let wpos: Vec<u64> = (0..n).map(|_| rng.next_below(30)).collect();
            let wneg: Vec<u64> = (0..n).map(|_| rng.next_below(10)).collect();
            let alpha = 1 + rng.next_below(5);
            let k = rng.index(n + 1);
            check_tree(&tree, &wpos, &wneg, alpha, k);
            let _ = trial;
        }
    }

    #[test]
    fn large_instance_runs_fast() {
        // O(n·k) scalability smoke test: 20k nodes, k = 500.
        let mut rng = SplitMix64::new(7);
        let n = 20_000;
        let mut parents: Vec<Option<usize>> = vec![None];
        for i in 1..n {
            parents.push(Some(rng.index(i)));
        }
        let tree = Tree::from_parents(&parents);
        let wpos: Vec<u64> = (0..n).map(|_| rng.next_below(100)).collect();
        let wneg: Vec<u64> = (0..n).map(|_| rng.next_below(20)).collect();
        let plan = best_static_cache(&tree, &wpos, &wneg, 4, 500);
        assert!(plan.set.len() <= 500);
        assert_eq!(plan.cost, static_cost(&tree, &wpos, &wneg, 4, &plan.set));
    }
}
