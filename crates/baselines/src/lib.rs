//! # otc-baselines — comparison algorithms for the experiments
//!
//! * [`dependent_set`] — reactive dependency-respecting caching
//!   (LRU / FIFO / random eviction), the CacheFlow-style dependent-set
//!   heuristic restricted to tree dependencies, plus the bypass-all floor;
//! * [`static_opt`] — the optimal **static** cache via an `O(n·k)` tree
//!   knapsack (the tree-sparsity connection from the paper's conclusion);
//! * [`opt_dp`] — the exact offline optimum over subforest states (small
//!   instances; the denominator of every measured competitive ratio);
//! * [`lfd`] — offline star paging (Belady/LFD replay), the OPT
//!   upper-bound proxy of the lower-bound experiment E2;
//! * [`tc_variants`] — ablations of TC's design choices (maximality,
//!   phase restarts).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod dependent_set;
pub mod invalidate;
pub mod lfd;
pub mod opt_dp;
pub mod opt_path;
pub mod static_opt;
pub mod tc_variants;

pub use dependent_set::{BypassAll, DependentSetPolicy, EvictStrategy};
pub use invalidate::InvalidateOnUpdate;
pub use lfd::{chunks_of, lfd_replay_cost, offline_star_upper_bound, Chunk};
pub use opt_dp::{opt_cost, opt_cost_free_start};
pub use opt_path::{opt_cost_path, opt_cost_path_free_start};
pub use static_opt::{best_static_cache, static_cost, StaticPlan};
pub use tc_variants::{FetchScan, OverflowRule, TcVariant};
