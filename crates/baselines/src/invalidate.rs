//! Invalidate-on-update caching: a realistic router heuristic that evicts
//! a rule the moment an update touches it.
//!
//! On a paying negative request to `v` the policy immediately evicts the
//! minimal valid negative changeset containing `v` — the path from `v` up
//! to its cached-tree root (a tree cap; the siblings' subtrees stay
//! cached). Positives behave like dependent-set LRU.
//!
//! Two roles in the experiments:
//! * a churn-robust reactive baseline for E7 (unlike plain LRU it stops
//!   paying after the first negative of an update chunk — at the price of
//!   α per evicted node and re-fetch churn);
//! * the policy that genuinely reorganises **inside** update chunks, so
//!   the Appendix-B canonicalization (E8) has something to transform: TC
//!   itself provably only acts at chunk boundaries when all negative mass
//!   arrives in α-chunks.

use std::sync::Arc;

use otc_core::cache::CacheSet;
use otc_core::policy::{request_pays, ActionBuffer, ActionKind, CachePolicy};
use otc_core::request::{Request, Sign};
use otc_core::tree::{NodeId, Tree};

use crate::dependent_set::{DependentSetPolicy, EvictStrategy};

/// Dependent-set LRU that also evicts on the first paying negative.
#[derive(Debug, Clone)]
pub struct InvalidateOnUpdate {
    inner: DependentSetPolicy,
    tree: Arc<Tree>,
}

impl InvalidateOnUpdate {
    /// Creates the policy with LRU eviction for capacity pressure.
    #[must_use]
    pub fn new(tree: Arc<Tree>, capacity: usize) -> Self {
        Self {
            inner: DependentSetPolicy::new(Arc::clone(&tree), capacity, EvictStrategy::Lru),
            tree,
        }
    }

    /// Appends the minimal valid negative changeset containing `v` — the
    /// cached path from `v` up to its cached-tree root, root-first — to
    /// `out`. Allocation-free once `out` has capacity.
    fn invalidation_path_into(&self, v: NodeId, out: &mut Vec<NodeId>) {
        let cache = self.inner.cache();
        debug_assert!(cache.contains(v));
        let start = out.len();
        let mut x = v;
        loop {
            out.push(x);
            match self.tree.parent(x) {
                Some(p) if cache.contains(p) => x = p,
                _ => break,
            }
        }
        out[start..].reverse(); // root of the cached tree first
    }
}

impl CachePolicy for InvalidateOnUpdate {
    fn name(&self) -> &'static str {
        "invalidate-on-update"
    }

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn cache(&self) -> &CacheSet {
        self.inner.cache()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn step(&mut self, req: Request, out: &mut ActionBuffer) {
        if req.sign == Sign::Negative && request_pays(self.inner.cache(), req) {
            out.clear();
            out.set_paid(true);
            self.invalidation_path_into(req.node, out.begin(ActionKind::Evict));
            self.inner.evict_raw(out.last_nodes());
            return;
        }
        self.inner.step(req, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otc_core::policy::Action;

    fn tree() -> Arc<Tree> {
        //      0
        //     / \
        //    1   4
        //   / \
        //  2   3
        Arc::new(Tree::from_parents(&[None, Some(0), Some(1), Some(1), Some(0)]))
    }

    #[test]
    fn update_evicts_path_keeps_siblings() {
        let t = tree();
        let mut p = InvalidateOnUpdate::new(Arc::clone(&t), 5);
        // Fetch the whole tree via a root miss.
        p.step_owned(Request::pos(NodeId(0)));
        assert_eq!(p.cache().len(), 5);
        // Update node 2: evict the path {0, 1, 2}, keep {3, 4}.
        let out = p.step_owned(Request::neg(NodeId(2)));
        assert!(out.paid_service);
        assert_eq!(out.actions, vec![Action::Evict(vec![NodeId(0), NodeId(1), NodeId(2)])]);
        assert!(!p.cache().contains(NodeId(0)));
        assert!(p.cache().contains(NodeId(3)));
        assert!(p.cache().contains(NodeId(4)));
        p.cache().validate(&t).expect("subforest");
    }

    #[test]
    fn second_negative_is_free() {
        let t = tree();
        let mut p = InvalidateOnUpdate::new(Arc::clone(&t), 5);
        p.step_owned(Request::pos(NodeId(2)));
        assert!(p.cache().contains(NodeId(2)));
        let out = p.step_owned(Request::neg(NodeId(2)));
        assert!(out.paid_service);
        let out = p.step_owned(Request::neg(NodeId(2)));
        assert!(!out.paid_service, "already evicted — rest of the chunk is free");
        assert!(out.actions.is_empty());
    }

    #[test]
    fn positive_behaviour_is_lru() {
        let t = tree();
        let mut p = InvalidateOnUpdate::new(Arc::clone(&t), 2);
        p.step_owned(Request::pos(NodeId(2)));
        p.step_owned(Request::pos(NodeId(3)));
        assert_eq!(p.cache().len(), 2);
        p.cache().validate(&t).expect("subforest");
    }

    #[test]
    fn random_stream_invariants() {
        let t = tree();
        let mut p = InvalidateOnUpdate::new(Arc::clone(&t), 3);
        let mut rng = otc_util::SplitMix64::new(3);
        for _ in 0..2000 {
            let node = NodeId(rng.index(t.len()) as u32);
            let req = if rng.chance(0.4) { Request::neg(node) } else { Request::pos(node) };
            p.step_owned(req);
            p.cache().validate(&t).expect("subforest invariant");
            assert!(p.cache().len() <= 3);
        }
    }
}
