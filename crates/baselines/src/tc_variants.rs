//! Ablation variants of TC (DESIGN.md experiments A1/A2).
//!
//! The paper's algorithm makes two design choices whose necessity the
//! ablation experiments probe:
//!
//! * **Maximality** (A1): TC fetches the *maximal* saturated tree cap.
//!   [`TcVariant`] with [`FetchScan::BottomUp`] fetches the *minimal* one
//!   instead (first saturated cap scanning from the requested node up).
//!   Without maximality, Lemma 5.12's bound on the open field breaks: the
//!   cache absorbs less of the request mass per α spent.
//! * **Phase restarts** (A2): on a fetch that would overflow the cache TC
//!   flushes everything and restarts the phase. [`OverflowRule::Ignore`]
//!   instead cancels the fetch and resets the candidate's counters,
//!   keeping the cache as-is. This can strand a stale cache forever.
//!
//! The variant is implemented from-scratch-per-round (like
//! `otc_core::tc::TcReference`), which keeps it transparently faithful to
//! its description; the experiments run it on moderate instances.

use std::sync::Arc;

use otc_core::cache::CacheSet;
use otc_core::policy::{request_pays, ActionBuffer, ActionKind, CachePolicy};
use otc_core::request::{Request, Sign};
use otc_core::tree::{NodeId, Tree};

/// Direction of the saturated-cap scan for fetches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchScan {
    /// Root → node: first saturated cap is maximal (the paper's TC).
    TopDown,
    /// Node → root: first saturated cap is minimal (ablation A1).
    BottomUp,
}

/// What to do when a fetch would exceed the capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowRule {
    /// Evict everything and restart the phase (the paper's TC).
    Flush,
    /// Cancel the fetch and zero the candidate's counters (ablation A2).
    Ignore,
}

/// A configurable TC-like policy for ablations.
#[derive(Debug, Clone)]
pub struct TcVariant {
    tree: Arc<Tree>,
    alpha: u64,
    capacity: usize,
    scan: FetchScan,
    overflow: OverflowRule,
    cache: CacheSet,
    cnt: Vec<u64>,
    name: &'static str,
}

impl TcVariant {
    /// Creates a variant policy.
    #[must_use]
    pub fn new(
        tree: Arc<Tree>,
        alpha: u64,
        capacity: usize,
        scan: FetchScan,
        overflow: OverflowRule,
    ) -> Self {
        assert!(alpha >= 1 && capacity >= 1);
        let n = tree.len();
        let name = match (scan, overflow) {
            (FetchScan::TopDown, OverflowRule::Flush) => "tc-variant-paper",
            (FetchScan::BottomUp, OverflowRule::Flush) => "tc-minfetch",
            (FetchScan::TopDown, OverflowRule::Ignore) => "tc-noflush",
            (FetchScan::BottomUp, OverflowRule::Ignore) => "tc-minfetch-noflush",
        };
        Self {
            tree,
            alpha,
            capacity,
            scan,
            overflow,
            cache: CacheSet::empty(n),
            cnt: vec![0; n],
            name,
        }
    }

    /// `P_t(u)` with its counter sum (recomputed from scratch).
    fn positive_candidate(&self, u: NodeId) -> (Vec<NodeId>, u64) {
        let mut set = Vec::new();
        let mut sum = 0;
        let slice = self.tree.subtree(u);
        let mut i = 0;
        while i < slice.len() {
            let x = slice[i];
            if self.cache.contains(x) {
                i += self.tree.subtree_size(x) as usize;
            } else {
                set.push(x);
                sum += self.cnt[x.index()];
                i += 1;
            }
        }
        (set, sum)
    }

    fn hvals_under(&self, u: NodeId) -> Vec<(i64, i64)> {
        let mut val: Vec<(i64, i64)> = vec![(0, 0); self.tree.len()];
        for &x in self.tree.subtree(u).iter().rev() {
            if self.cache.contains(x) {
                let mut v = (self.cnt[x.index()] as i64 - self.alpha as i64, 1i64);
                for &c in self.tree.children(x) {
                    let cv = val[c.index()];
                    if cv.0 >= 0 && cv.1 > 0 {
                        v.0 += cv.0;
                        v.1 += cv.1;
                    }
                }
                val[x.index()] = v;
            }
        }
        val
    }
}

impl CachePolicy for TcVariant {
    fn name(&self) -> &'static str {
        self.name
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn cache(&self) -> &CacheSet {
        &self.cache
    }

    fn reset(&mut self) {
        self.cache = CacheSet::empty(self.tree.len());
        self.cnt.fill(0);
    }

    fn step(&mut self, req: Request, out: &mut ActionBuffer) {
        out.clear();
        let v = req.node;
        if !request_pays(&self.cache, req) {
            return;
        }
        out.set_paid(true);
        self.cnt[v.index()] += 1;
        match req.sign {
            Sign::Positive => {
                let mut path = self.tree.root_path(v);
                if self.scan == FetchScan::BottomUp {
                    path.reverse();
                }
                for u in path {
                    let (set, sum) = self.positive_candidate(u);
                    if sum >= set.len() as u64 * self.alpha {
                        if self.cache.len() + set.len() > self.capacity {
                            match self.overflow {
                                OverflowRule::Flush => {
                                    self.cache.flush_into(out.begin(ActionKind::Flush));
                                    self.cnt.fill(0);
                                }
                                OverflowRule::Ignore => {
                                    for &x in &set {
                                        self.cnt[x.index()] = 0;
                                    }
                                }
                            }
                            return;
                        }
                        self.cache.fetch(&set);
                        for &x in &set {
                            self.cnt[x.index()] = 0;
                        }
                        out.begin(ActionKind::Fetch).extend_from_slice(&set);
                        return;
                    }
                }
            }
            Sign::Negative => {
                let u = self
                    .cache
                    .cached_tree_root(&self.tree, v)
                    .expect("paying negative request targets a cached node");
                let vals = self.hvals_under(u);
                if vals[u.index()].0 >= 0 {
                    // Materialise H(u).
                    let mut set = Vec::new();
                    let mut stack = vec![u];
                    while let Some(x) = stack.pop() {
                        set.push(x);
                        for &c in self.tree.children(x) {
                            if self.cache.contains(c)
                                && vals[c.index()].0 >= 0
                                && vals[c.index()].1 > 0
                            {
                                stack.push(c);
                            }
                        }
                    }
                    self.cache.evict(&set);
                    for &x in &set {
                        self.cnt[x.index()] = 0;
                    }
                    out.begin(ActionKind::Evict).extend_from_slice(&set);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otc_core::policy::Action;
    use otc_core::tc::{TcConfig, TcReference};

    /// The TopDown+Flush variant must coincide with the real TC.
    #[test]
    fn paper_config_matches_reference() {
        let tree = Arc::new(Tree::kary(2, 4));
        let mut variant =
            TcVariant::new(Arc::clone(&tree), 3, 6, FetchScan::TopDown, OverflowRule::Flush);
        let mut reference = TcReference::new(Arc::clone(&tree), TcConfig::new(3, 6));
        let mut rng = otc_util::SplitMix64::new(17);
        for i in 0..3000 {
            let node = NodeId(rng.index(tree.len()) as u32);
            let req = if rng.chance(0.4) { Request::neg(node) } else { Request::pos(node) };
            let a = variant.step_owned(req);
            let b = reference.step_owned(req);
            assert_eq!(a, b, "divergence at step {i}");
        }
    }

    #[test]
    fn minfetch_diverges_from_maximal_fetch() {
        // Nested caps CAN saturate simultaneously, so the scan direction is
        // a real ablation. Star(2), α = 2: park one count on leaf 2, three
        // on the root, one on leaf 1, then request leaf 1 again. At that
        // round cnt = {r: 3, l1: 2, l2: 1}: P(l1) = {l1} needs 2 ✓ and
        // P(r) = {r, l1, l2} needs 6 ✓ — both saturated at once. The
        // maximal (paper) scan fetches the whole tree; the minimal scan
        // fetches just {l1}.
        let tree = Arc::new(Tree::star(2));
        let script = [
            Request::pos(NodeId(2)),
            Request::pos(NodeId(0)),
            Request::pos(NodeId(0)),
            Request::pos(NodeId(0)),
            Request::pos(NodeId(1)),
            Request::pos(NodeId(1)),
        ];
        let mut top =
            TcVariant::new(Arc::clone(&tree), 2, 3, FetchScan::TopDown, OverflowRule::Flush);
        let mut bottom =
            TcVariant::new(Arc::clone(&tree), 2, 3, FetchScan::BottomUp, OverflowRule::Flush);
        for &req in &script[..5] {
            assert!(top.step_owned(req).actions.is_empty());
            assert!(bottom.step_owned(req).actions.is_empty());
        }
        let out_top = top.step_owned(script[5]);
        let out_bottom = bottom.step_owned(script[5]);
        match &out_top.actions[..] {
            [Action::Fetch(set)] => assert_eq!(set.len(), 3, "maximal scan fetches everything"),
            other => panic!("expected full fetch, got {other:?}"),
        }
        match &out_bottom.actions[..] {
            [Action::Fetch(set)] => {
                assert_eq!(set, &vec![NodeId(1)], "minimal scan fetches the leaf");
            }
            other => panic!("expected leaf fetch, got {other:?}"),
        }
    }

    #[test]
    fn noflush_keeps_cache_on_overflow() {
        let tree = Arc::new(Tree::star(2));
        let mut p =
            TcVariant::new(Arc::clone(&tree), 1, 1, FetchScan::TopDown, OverflowRule::Ignore);
        p.step_owned(Request::pos(NodeId(1)));
        assert!(p.cache().contains(NodeId(1)));
        // Leaf 2 saturates; fetch would overflow; Ignore keeps the cache.
        let out = p.step_owned(Request::pos(NodeId(2)));
        assert!(out.actions.is_empty());
        assert!(p.cache().contains(NodeId(1)), "no flush under Ignore");
        // And the candidate's counters were reset: the next request starts
        // the count over.
        let out = p.step_owned(Request::pos(NodeId(2)));
        assert!(out.actions.is_empty());
    }

    #[test]
    fn variants_maintain_subforest() {
        let tree = Arc::new(Tree::kary(3, 3));
        let mut rng = otc_util::SplitMix64::new(31);
        for overflow in [OverflowRule::Flush, OverflowRule::Ignore] {
            let mut p = TcVariant::new(Arc::clone(&tree), 2, 4, FetchScan::BottomUp, overflow);
            for _ in 0..2000 {
                let node = NodeId(rng.index(tree.len()) as u32);
                let req = if rng.chance(0.35) { Request::neg(node) } else { Request::pos(node) };
                p.step_owned(req);
                p.cache().validate(&tree).expect("subforest invariant");
                assert!(p.cache().len() <= 4);
            }
        }
    }
}
