//! Exact offline OPT specialised to **path** trees.
//!
//! On a path rooted at node 0 (node `i`'s parent is `i − 1`), the
//! downward-closed sets are exactly the suffixes `{j, …, n−1}` (plus the
//! empty set), so the state space collapses from "all subforests" to the
//! `k + 1` feasible suffix starts. That turns the exact-OPT DP from
//! exponential-in-`n` to `O(rounds · k)` — which is what lets the
//! height-conjecture experiment (C1) probe deep paths with exact OPT in
//! the search loop.

use otc_core::request::{Request, Sign};
use otc_core::tree::Tree;

/// Exact offline optimal cost on a path tree, empty initial cache.
///
/// # Panics
/// Panics if `tree` is not a path rooted at node 0 (every node's parent
/// must be its predecessor).
#[must_use]
pub fn opt_cost_path(tree: &Tree, requests: &[Request], alpha: u64, k: usize) -> u64 {
    opt_cost_path_impl(tree, requests, alpha, k, false)
}

/// Exact offline optimal cost on a path tree when OPT may pick any start
/// state for free (the per-phase convention of Lemma 5.11).
#[must_use]
pub fn opt_cost_path_free_start(tree: &Tree, requests: &[Request], alpha: u64, k: usize) -> u64 {
    opt_cost_path_impl(tree, requests, alpha, k, true)
}

fn opt_cost_path_impl(
    tree: &Tree,
    requests: &[Request],
    alpha: u64,
    k: usize,
    free_start: bool,
) -> u64 {
    let n = tree.len();
    for v in tree.nodes() {
        let expect = if v.index() == 0 { None } else { Some(otc_core::tree::NodeId(v.0 - 1)) };
        assert_eq!(tree.parent(v), expect, "opt_cost_path requires a path rooted at node 0");
    }
    // State: suffix start j — the cache is {j, …, n−1}; j = n is empty.
    // Feasible: n − j ≤ k  ⟺  j ≥ n − k.
    let j_min = n.saturating_sub(k);
    let states = n - j_min + 1; // j ∈ [j_min, n]
    const INF: u64 = u64::MAX / 4;
    let mut dp = vec![INF; states];
    if free_start {
        dp.fill(0);
    } else {
        dp[states - 1] = 0; // j = n: empty cache
    }

    let mut next = vec![INF; states];
    for &req in requests {
        // Movement relaxation: j → j ± 1 at α each. On a line, one left
        // sweep and one right sweep reach the fixpoint.
        next.copy_from_slice(&dp);
        for i in (0..states - 1).rev() {
            let cand = next[i + 1].saturating_add(alpha);
            if cand < next[i] {
                next[i] = cand; // fetch node j−1 (extend the suffix upward)
            }
        }
        for i in 1..states {
            let cand = next[i - 1].saturating_add(alpha);
            if cand < next[i] {
                next[i] = cand; // evict the suffix head
            }
        }
        // Service.
        let v = req.node.index();
        for (i, slot) in next.iter_mut().enumerate() {
            if *slot >= INF {
                continue;
            }
            let j = j_min + i;
            let cached = v >= j;
            let pays = match req.sign {
                Sign::Positive => !cached,
                Sign::Negative => cached,
            };
            if pays {
                *slot += 1;
            }
        }
        std::mem::swap(&mut dp, &mut next);
    }
    dp.iter().copied().min().expect("state space non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt_dp::{opt_cost, opt_cost_free_start};
    use otc_core::tree::NodeId;
    use otc_util::SplitMix64;

    fn random_reqs(n: usize, len: usize, rng: &mut SplitMix64) -> Vec<Request> {
        (0..len)
            .map(|_| {
                let node = NodeId(rng.index(n) as u32);
                if rng.chance(0.4) {
                    Request::neg(node)
                } else {
                    Request::pos(node)
                }
            })
            .collect()
    }

    #[test]
    fn matches_generic_dp_on_small_paths() {
        let mut rng = SplitMix64::new(0x7A);
        for n in [1usize, 2, 3, 5, 8, 12] {
            let tree = Tree::path(n);
            for k in 0..=n {
                for alpha in [1u64, 2, 3] {
                    let reqs = random_reqs(n, 150, &mut rng);
                    assert_eq!(
                        opt_cost_path(&tree, &reqs, alpha, k),
                        opt_cost(&tree, &reqs, alpha, k),
                        "n={n} k={k} α={alpha}"
                    );
                    assert_eq!(
                        opt_cost_path_free_start(&tree, &reqs, alpha, k),
                        opt_cost_free_start(&tree, &reqs, alpha, k),
                        "free start n={n} k={k} α={alpha}"
                    );
                }
            }
        }
    }

    #[test]
    fn deep_path_is_fast() {
        let n = 2_000;
        let tree = Tree::path(n);
        let mut rng = SplitMix64::new(0x7B);
        let reqs = random_reqs(n, 5_000, &mut rng);
        // Just exercise it — the generic DP could never enumerate 2^2000
        // subsets; the specialised one runs in milliseconds.
        let cost = opt_cost_path(&tree, &reqs, 2, 16);
        assert!(cost > 0);
        assert!(cost <= reqs.len() as u64, "never worse than paying every request");
    }

    #[test]
    #[should_panic(expected = "requires a path")]
    fn rejects_non_paths() {
        let tree = Tree::star(3);
        let _ = opt_cost_path(&tree, &[], 2, 2);
    }
}
