//! Exact offline optimum by dynamic programming over subforest states.
//!
//! For small trees the full state space — every downward-closed set of at
//! most `k` nodes — is enumerable, and OPT is a shortest path through the
//! layered graph (states × rounds). Reorganisation decomposes into
//! single-node moves: evicting cap-first and fetching children-first keeps
//! every intermediate set a subforest without exceeding
//! `max(|S|, |S'|) ≤ k`, so charging `α` per single-node move is exact.
//!
//! Movement is allowed before every round (including round 1), matching
//! the paper's "reorganise at any time t" with an optional head start —
//! this can only *lower* OPT, so competitive ratios measured against it
//! are conservative (never inflated).

use std::collections::VecDeque;

use otc_core::request::{Request, Sign};
use otc_core::tree::Tree;

/// Exact offline optimal cost for the request sequence with cache size `k`,
/// starting from the empty cache (the problem's initial condition).
///
/// ```
/// use otc_baselines::opt_cost;
/// use otc_core::{Request, Tree, NodeId};
///
/// let tree = Tree::star(2);
/// let reqs: Vec<Request> = (0..10).map(|_| Request::pos(NodeId(1))).collect();
/// // Bypass all (10) vs fetch the leaf up front (α = 4): OPT fetches.
/// assert_eq!(opt_cost(&tree, &reqs, 4, 1), 4);
/// ```
///
/// # Panics
/// Panics if the tree has more than 20 nodes (the state space is
/// enumerated as bitmasks) or if the state count explodes past 2^20.
#[must_use]
pub fn opt_cost(tree: &Tree, requests: &[Request], alpha: u64, k: usize) -> u64 {
    opt_cost_impl(tree, requests, alpha, k, false)
}

/// Exact offline optimal cost when OPT may start in **any** cache state at
/// no charge — the per-phase setting of Lemma 5.11/5.12 ("Opt may start
/// the phase with an arbitrary state of the cache"). Always ≤ [`opt_cost`].
#[must_use]
pub fn opt_cost_free_start(tree: &Tree, requests: &[Request], alpha: u64, k: usize) -> u64 {
    opt_cost_impl(tree, requests, alpha, k, true)
}

fn opt_cost_impl(tree: &Tree, requests: &[Request], alpha: u64, k: usize, free_start: bool) -> u64 {
    let n = tree.len();
    assert!(n <= 20, "exact OPT enumerates subforests of tiny trees only");
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };

    // child_mask[v] = bitmask of v's children.
    let mut child_mask = vec![0u32; n];
    for v in tree.nodes() {
        for &c in tree.children(v) {
            child_mask[v.index()] |= 1 << c.index();
        }
    }
    let is_subforest = |mask: u32| -> bool {
        let mut m = mask;
        while m != 0 {
            let v = m.trailing_zeros() as usize;
            if child_mask[v] & !mask != 0 {
                return false;
            }
            m &= m - 1;
        }
        true
    };

    // Enumerate states.
    let mut states: Vec<u32> = Vec::new();
    let mut index_of: Vec<u32> = vec![u32::MAX; (full as usize) + 1];
    for mask in 0..=full {
        if (mask.count_ones() as usize) <= k && is_subforest(mask) {
            index_of[mask as usize] = states.len() as u32;
            states.push(mask);
        }
    }
    let s = states.len();
    assert!(s <= 1 << 20, "state space too large");

    // Single-node moves (each costs α).
    let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); s];
    for (i, &mask) in states.iter().enumerate() {
        for (v, &cmask) in child_mask.iter().enumerate() {
            let bit = 1u32 << v;
            if mask & bit == 0 {
                // Fetch v: children must be present, capacity respected.
                if cmask & !mask == 0 && (mask.count_ones() as usize) < k {
                    let idx = index_of[(mask | bit) as usize];
                    debug_assert_ne!(idx, u32::MAX);
                    neighbors[i].push(idx);
                }
            } else {
                // Evict v: its parent must not stay cached.
                let parent_cached = tree
                    .parent(otc_core::tree::NodeId(v as u32))
                    .is_some_and(|p| mask & (1 << p.index()) != 0);
                if !parent_cached {
                    let idx = index_of[(mask & !bit) as usize];
                    debug_assert_ne!(idx, u32::MAX);
                    neighbors[i].push(idx);
                }
            }
        }
    }

    const INF: u64 = u64::MAX / 4;
    let mut dp = vec![INF; s];
    if free_start {
        dp.fill(0); // any subforest of size ≤ k, free of charge
    } else {
        dp[index_of[0] as usize] = 0; // empty cache
    }

    let mut in_queue = vec![false; s];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &req in requests {
        // Relax movement: label-correcting shortest paths with uniform
        // edge weight α over the move graph.
        queue.clear();
        in_queue.fill(false);
        for i in 0..s {
            if dp[i] < INF {
                queue.push_back(i);
                in_queue[i] = true;
            }
        }
        while let Some(i) = queue.pop_front() {
            in_queue[i] = false;
            let base = dp[i] + alpha;
            for &j in &neighbors[i] {
                let j = j as usize;
                if base < dp[j] {
                    dp[j] = base;
                    if !in_queue[j] {
                        queue.push_back(j);
                        in_queue[j] = true;
                    }
                }
            }
        }
        // Serve the request on each state.
        let bit = 1u32 << req.node.index();
        for (i, &mask) in states.iter().enumerate() {
            if dp[i] >= INF {
                continue;
            }
            let cached = mask & bit != 0;
            let pays = match req.sign {
                Sign::Positive => !cached,
                Sign::Negative => cached,
            };
            if pays {
                dp[i] += 1;
            }
        }
    }
    dp.iter().copied().min().expect("at least the empty state exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use otc_core::tree::NodeId;

    #[test]
    fn empty_sequence_is_free() {
        let tree = Tree::star(3);
        assert_eq!(opt_cost(&tree, &[], 2, 2), 0);
    }

    #[test]
    fn repeated_leaf_is_min_of_bypass_and_fetch() {
        let tree = Tree::star(3);
        let leaf = NodeId(1);
        for m in [1usize, 2, 3, 5, 10] {
            let reqs: Vec<Request> = (0..m).map(|_| Request::pos(leaf)).collect();
            // Either bypass all (m) or fetch the leaf up front (α = 3).
            assert_eq!(opt_cost(&tree, &reqs, 3, 2), (m as u64).min(3), "m = {m}");
        }
    }

    #[test]
    fn negatives_to_uncached_are_free() {
        let tree = Tree::star(3);
        let reqs: Vec<Request> = (0..20).map(|_| Request::neg(NodeId(2))).collect();
        assert_eq!(opt_cost(&tree, &reqs, 2, 2), 0);
    }

    #[test]
    fn fetching_subtree_requires_descendants() {
        // Path 0-1-2: caching the root means caching everything (3 nodes),
        // impossible with k = 2 → requests to the root can never be free.
        let tree = Tree::path(3);
        let reqs: Vec<Request> = (0..50).map(|_| Request::pos(NodeId(0))).collect();
        assert_eq!(opt_cost(&tree, &reqs, 1, 2), 50);
        // With k = 3 OPT fetches all three for 3α = 3 and serves free.
        assert_eq!(opt_cost(&tree, &reqs, 1, 3), 3);
    }

    #[test]
    fn opt_switches_working_sets() {
        // Star with leaves 1, 2; capacity 1; α = 2. Phase A hammers leaf 1,
        // phase B hammers leaf 2. OPT fetches 1 (2), evicts 1 and fetches 2
        // (4) — total 6 — or bypasses one of the phases (10).
        let tree = Tree::star(2);
        let mut reqs = Vec::new();
        for _ in 0..10 {
            reqs.push(Request::pos(NodeId(1)));
        }
        for _ in 0..10 {
            reqs.push(Request::pos(NodeId(2)));
        }
        assert_eq!(opt_cost(&tree, &reqs, 2, 1), 2 + 2 + 2);
    }

    #[test]
    fn update_churn_forces_choice() {
        // One leaf, alternating bursts: m positives then m negatives.
        // Keeping it cached: pay negatives; not caching: pay positives.
        // OPT with enough capacity: fetch before positives (α), evict
        // before negatives (α) — or just eat one side.
        let tree = Tree::star(1);
        let leaf = NodeId(1);
        let mut reqs = Vec::new();
        for _ in 0..6 {
            reqs.push(Request::pos(leaf));
        }
        for _ in 0..6 {
            reqs.push(Request::neg(leaf));
        }
        // α = 2: fetch (2) + evict (2) = 4 beats 6 either way.
        assert_eq!(opt_cost(&tree, &reqs, 2, 2), 4);
        // α = 4: fetch + evict = 8 > serving the cheaper side (6).
        assert_eq!(opt_cost(&tree, &reqs, 4, 2), 6);
    }

    #[test]
    fn monotone_in_capacity() {
        let tree = Tree::kary(2, 3);
        let mut rng = otc_util::SplitMix64::new(3);
        let reqs: Vec<Request> = (0..120)
            .map(|_| {
                let v = NodeId(rng.index(tree.len()) as u32);
                if rng.chance(0.3) {
                    Request::neg(v)
                } else {
                    Request::pos(v)
                }
            })
            .collect();
        let mut prev = u64::MAX;
        for k in 0..=tree.len() {
            let c = opt_cost(&tree, &reqs, 2, k);
            assert!(c <= prev, "OPT must not increase with capacity");
            prev = c;
        }
    }

    #[test]
    fn free_start_never_exceeds_empty_start() {
        let tree = Tree::kary(2, 3);
        let mut rng = otc_util::SplitMix64::new(17);
        let reqs: Vec<Request> = (0..100)
            .map(|_| {
                let v = NodeId(rng.index(tree.len()) as u32);
                if rng.chance(0.4) {
                    Request::neg(v)
                } else {
                    Request::pos(v)
                }
            })
            .collect();
        for k in [1usize, 3, 5] {
            assert!(
                opt_cost_free_start(&tree, &reqs, 2, k) <= opt_cost(&tree, &reqs, 2, k),
                "free start can only help"
            );
        }
    }

    #[test]
    fn free_start_serves_first_burst_free() {
        // A burst of positives to one leaf: free start pre-caches it.
        let tree = Tree::star(2);
        let reqs: Vec<Request> = (0..10).map(|_| Request::pos(NodeId(1))).collect();
        assert_eq!(opt_cost_free_start(&tree, &reqs, 5, 1), 0);
        // But negatives to a pre-cached node are not free: the best start
        // here is an empty cache.
        let reqs: Vec<Request> = (0..10).map(|_| Request::neg(NodeId(1))).collect();
        assert_eq!(opt_cost_free_start(&tree, &reqs, 5, 1), 0);
    }

    #[test]
    fn opt_never_exceeds_bypass_everything() {
        let tree = Tree::kary(2, 3);
        let mut rng = otc_util::SplitMix64::new(5);
        let reqs: Vec<Request> = (0..150)
            .map(|_| {
                let v = NodeId(rng.index(tree.len()) as u32);
                if rng.chance(0.5) {
                    Request::neg(v)
                } else {
                    Request::pos(v)
                }
            })
            .collect();
        let positives = reqs.iter().filter(|r| r.is_positive()).count() as u64;
        assert!(opt_cost(&tree, &reqs, 3, 4) <= positives);
    }
}
