//! Offline paging on a star: the OPT upper-bound proxy for the Appendix-C
//! lower-bound experiment (E2).
//!
//! The adversarial trace consists of α-request chunks to star leaves
//! ("pages"). Any feasible offline solution upper-bounds OPT, which is the
//! sound direction when *certifying* a lower bound on the competitive
//! ratio: `TC / feasible ≤ TC / OPT`. We replay Belady's LFD (evict the
//! page whose next use is furthest) adapted to the tree-caching cost model
//! where **both** fetching and evicting cost α, and take the minimum with
//! bypass-everything.

use std::collections::BTreeMap;

use otc_core::request::Request;
use otc_core::tree::NodeId;

/// One page round: a leaf and the number of consecutive requests to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// The requested leaf (page).
    pub page: NodeId,
    /// Number of consecutive positive requests.
    pub len: u64,
}

/// Groups a trace of positive requests into maximal runs.
///
/// # Panics
/// Panics on negative requests (the adversary emits only positives).
#[must_use]
pub fn chunks_of(trace: &[Request]) -> Vec<Chunk> {
    let mut out: Vec<Chunk> = Vec::new();
    for &r in trace {
        assert!(r.is_positive(), "paging traces contain only positive requests");
        match out.last_mut() {
            Some(c) if c.page == r.node => c.len += 1,
            _ => out.push(Chunk { page: r.node, len: 1 }),
        }
    }
    out
}

/// Cost of the LFD replay with `k` page slots, in the tree-caching cost
/// model (fetch α, evict α, miss 1). Fetches happen *before* a missed
/// chunk, so a fetched chunk is served free; a bypassed chunk pays its
/// length.
#[must_use]
pub fn lfd_replay_cost(chunks: &[Chunk], alpha: u64, k: usize) -> u64 {
    if k == 0 {
        return chunks.iter().map(|c| c.len).sum();
    }
    // next_use[i] = next index with the same page, or usize::MAX.
    let mut next_use = vec![usize::MAX; chunks.len()];
    let mut last_seen: BTreeMap<NodeId, usize> = BTreeMap::new();
    for (i, c) in chunks.iter().enumerate().rev() {
        if let Some(&j) = last_seen.get(&c.page) {
            next_use[i] = j;
        }
        last_seen.insert(c.page, i);
    }

    // BTreeMap, not HashMap: `max_by_key` ties are broken by `p.index()`
    // so the result was already order-independent, but the linter's R1
    // bans hash iteration in cost paths outright — ordered iteration
    // makes the determinism argument local instead of global.
    let mut cached: BTreeMap<NodeId, usize> = BTreeMap::new(); // page → its next use
    let mut cost = 0u64;
    for (i, c) in chunks.iter().enumerate() {
        if let Some(nu) = cached.get_mut(&c.page) {
            *nu = next_use[i]; // hit: free, refresh the next-use horizon
            continue;
        }
        if next_use[i] == usize::MAX && c.len <= alpha {
            // Never used again and short: bypassing beats fetching.
            cost += c.len;
            continue;
        }
        if cached.len() < k {
            cost += alpha; // fetch into a free slot
            cached.insert(c.page, next_use[i]);
        } else {
            // Belady: consider evicting the page with the furthest next use.
            let (&victim, &victim_next) =
                cached.iter().max_by_key(|&(p, &nu)| (nu, p.index())).expect("cache non-empty");
            if victim_next > next_use[i] {
                cost += 2 * alpha; // evict + fetch
                cached.remove(&victim);
                cached.insert(c.page, next_use[i]);
            } else {
                cost += c.len; // bypass this chunk
            }
        }
    }
    cost
}

/// The offline upper bound used by E2: min(LFD replay, bypass everything).
#[must_use]
pub fn offline_star_upper_bound(trace: &[Request], alpha: u64, k: usize) -> u64 {
    let chunks = chunks_of(trace);
    let bypass: u64 = chunks.iter().map(|c| c.len).sum();
    lfd_replay_cost(&chunks, alpha, k).min(bypass)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(i: u32) -> Request {
        Request::pos(NodeId(i))
    }

    #[test]
    fn chunk_grouping() {
        let trace = [pos(1), pos(1), pos(2), pos(1), pos(1), pos(1)];
        let chunks = chunks_of(&trace);
        assert_eq!(
            chunks,
            vec![
                Chunk { page: NodeId(1), len: 2 },
                Chunk { page: NodeId(2), len: 1 },
                Chunk { page: NodeId(1), len: 3 },
            ]
        );
    }

    #[test]
    fn single_hot_page_is_fetched_once() {
        let trace: Vec<Request> = (0..10).flat_map(|_| [pos(1), pos(1)]).collect();
        // One fetch (α = 2) serves all 10 chunks.
        assert_eq!(offline_star_upper_bound(&trace, 2, 1), 2);
    }

    #[test]
    fn cold_single_use_pages_are_bypassed() {
        let trace = [pos(1), pos(2), pos(3), pos(4)];
        // Each page used once for 1 request < α: bypass each.
        assert_eq!(offline_star_upper_bound(&trace, 4, 2), 4);
    }

    #[test]
    fn alternating_two_pages_one_slot() {
        // a a b b a a b b ... with k = 1, α = 2: every chunk has len = α;
        // keeping either page and bypassing the other costs α per foreign
        // chunk; LFD or bypass-all both land at 2 per chunk-miss.
        let trace: Vec<Request> = (0..8)
            .flat_map(|i| {
                let p = 1 + (i % 2);
                [pos(p), pos(p)]
            })
            .collect();
        let ub = offline_star_upper_bound(&trace, 2, 1);
        // 8 chunks; at least half miss; each miss costs 2 one way or the
        // other → ub in [8, 16].
        assert!((8..=16).contains(&ub), "ub = {ub}");
    }

    #[test]
    fn bypass_beats_thrashing() {
        // k = 1 and three pages in round-robin: replacement would churn;
        // the bound must not exceed bypass-all.
        let trace: Vec<Request> = (0..9).map(|i| pos(1 + (i % 3))).collect();
        let ub = offline_star_upper_bound(&trace, 10, 1);
        assert!(ub <= 9);
    }

    #[test]
    fn zero_capacity_bypasses_everything() {
        let trace = [pos(1), pos(1), pos(2)];
        assert_eq!(offline_star_upper_bound(&trace, 2, 0), 3);
    }

    #[test]
    fn replay_cost_is_run_deterministic() {
        // Two seeds, and for each seed two independent replays: the cost
        // must be identical across runs (no container iteration order may
        // reach it) and the two seeds must exercise different traces.
        let mut traces = Vec::new();
        for seed in [11u64, 12] {
            let mut rng = otc_util::SplitMix64::new(seed);
            let trace: Vec<Request> = (0..600).map(|_| pos(1 + rng.index(9) as u32)).collect();
            let a = offline_star_upper_bound(&trace, 3, 4);
            let b = offline_star_upper_bound(&trace, 3, 4);
            assert_eq!(a, b, "seed {seed}: replay cost must be run-deterministic");
            traces.push(trace);
        }
        assert_ne!(traces[0], traces[1], "the two seeds must give distinct traces");
    }

    #[test]
    fn feasibility_sanity() {
        // The replay is a heuristic (not provably monotone in k), but it is
        // always a feasible solution: bounded by bypass-all, and with a
        // slot per page it degenerates to one fetch per page.
        let mut rng = otc_util::SplitMix64::new(8);
        let trace: Vec<Request> = (0..400).map(|_| pos(1 + rng.index(6) as u32)).collect();
        let bypass = trace.len() as u64;
        for k in 0..=6 {
            let ub = offline_star_upper_bound(&trace, 3, k);
            assert!(ub <= bypass, "k = {k}: ub {ub} must not exceed bypass-all");
        }
        let roomy = offline_star_upper_bound(&trace, 3, 6);
        assert_eq!(roomy, 6 * 3, "with a slot per page, one fetch each");
    }
}
