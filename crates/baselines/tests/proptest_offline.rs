//! Property tests for the offline machinery.
//!
//! * The static-cache DP equals brute force and returns valid subforests.
//! * Exact OPT lower-bounds every online policy and the static plan.
//! * OPT is monotone in capacity; free-start OPT never exceeds empty-start.

use std::sync::Arc;

use otc_baselines::{
    best_static_cache, opt_cost, opt_cost_free_start, static_cost,
    static_opt::best_static_cache_bruteforce, DependentSetPolicy,
};
use otc_core::policy::CachePolicy;
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::{NodeId, Tree};
use otc_core::{Request, Sign};
use proptest::prelude::*;

fn tree_from_seeds(seeds: &[u64]) -> Tree {
    let mut parents: Vec<Option<usize>> = vec![None];
    for (i, &s) in seeds.iter().enumerate() {
        parents.push(Some((s % (i as u64 + 1)) as usize));
    }
    Tree::from_parents(&parents)
}

fn reqs_from(tree: &Tree, seeds: &[(u64, bool)]) -> Vec<Request> {
    seeds
        .iter()
        .map(|&(s, pos)| Request {
            node: NodeId((s % tree.len() as u64) as u32),
            sign: if pos { Sign::Positive } else { Sign::Negative },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn static_dp_equals_bruteforce(
        tree_seeds in prop::collection::vec(any::<u64>(), 0..10),
        weight_seeds in prop::collection::vec((0u64..40, 0u64..15), 1..11),
        alpha in 1u64..5,
        k in 0usize..11,
    ) {
        let tree = tree_from_seeds(&tree_seeds);
        let n = tree.len();
        let wpos: Vec<u64> = (0..n).map(|i| weight_seeds[i % weight_seeds.len()].0).collect();
        let wneg: Vec<u64> = (0..n).map(|i| weight_seeds[i % weight_seeds.len()].1).collect();
        let plan = best_static_cache(&tree, &wpos, &wneg, alpha, k);
        prop_assert!(plan.set.len() <= k.min(n));
        // Downward closure.
        let mut cached = vec![false; n];
        for &v in &plan.set {
            cached[v.index()] = true;
        }
        for &v in &plan.set {
            for &c in tree.children(v) {
                prop_assert!(cached[c.index()], "static plan must be a subforest");
            }
        }
        prop_assert_eq!(plan.cost, static_cost(&tree, &wpos, &wneg, alpha, &plan.set));
        prop_assert_eq!(plan.cost, best_static_cache_bruteforce(&tree, &wpos, &wneg, alpha, k));
    }

    #[test]
    fn opt_is_a_true_lower_bound(
        tree_seeds in prop::collection::vec(any::<u64>(), 0..9),
        req_seeds in prop::collection::vec((any::<u64>(), any::<bool>()), 1..250),
        alpha in 1u64..4,
        k in 1usize..6,
    ) {
        let tree = Arc::new(tree_from_seeds(&tree_seeds));
        let reqs = reqs_from(&tree, &req_seeds);
        let opt = opt_cost(&tree, &reqs, alpha, k);

        // Never above any online policy.
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, k));
        let mut lru = DependentSetPolicy::lru(Arc::clone(&tree), k);
        for policy in [&mut tc as &mut dyn CachePolicy, &mut lru] {
            let (service, touched) = otc_core::policy::run_raw(policy, &reqs);
            let cost = service + alpha * touched;
            prop_assert!(opt <= cost, "{}: OPT {} > cost {}", policy.name(), opt, cost);
        }

        // Never above the optimal *static* solution for the same workload.
        let mut wpos = vec![0u64; tree.len()];
        let mut wneg = vec![0u64; tree.len()];
        for r in &reqs {
            match r.sign {
                Sign::Positive => wpos[r.node.index()] += 1,
                Sign::Negative => wneg[r.node.index()] += 1,
            }
        }
        let plan = best_static_cache(&tree, &wpos, &wneg, alpha, k);
        prop_assert!(opt <= plan.cost, "OPT {} > static plan {}", opt, plan.cost);

        // Monotonicity and the free-start relaxation.
        prop_assert!(opt_cost(&tree, &reqs, alpha, k + 1) <= opt);
        prop_assert!(opt_cost_free_start(&tree, &reqs, alpha, k) <= opt);
    }
}
