//! Property tests for the bounded ring and its blocking MPSC channel —
//! the hand-off the serving runtime (`otc-serve`) relies on. Three
//! guarantees are pinned: FIFO order per producer, the capacity bound is
//! never exceeded, and no value is ever lost or duplicated under
//! contention.

use otc_util::ring::{channel, Ring, TrySendError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An arbitrary interleaving of pushes and pops behaves exactly like a
    /// capacity-clamped VecDeque model.
    #[test]
    fn ring_matches_fifo_model(
        capacity in 1usize..16,
        ops in prop::collection::vec((any::<bool>(), any::<u32>()), 0..200),
    ) {
        let mut ring = Ring::with_capacity(capacity);
        let mut model: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        for (is_push, v) in ops {
            if is_push {
                let accepted = ring.push(v).is_ok();
                prop_assert_eq!(accepted, model.len() < capacity, "push accepted iff not full");
                if accepted {
                    model.push_back(v);
                }
            } else {
                prop_assert_eq!(ring.pop(), model.pop_front(), "pop order matches the model");
            }
            prop_assert!(ring.len() <= capacity, "capacity bound holds at every step");
            prop_assert_eq!(ring.len(), model.len());
            prop_assert_eq!(ring.is_empty(), model.is_empty());
            prop_assert_eq!(ring.is_full(), model.len() == capacity);
        }
    }

    /// `pop_into` drains exactly `min(max, len)` items in FIFO order.
    #[test]
    fn ring_batch_drain_matches_singles(
        capacity in 1usize..32,
        values in prop::collection::vec(any::<u16>(), 0..64),
        max in 0usize..40,
    ) {
        let mut a = Ring::with_capacity(capacity);
        let mut b = Ring::with_capacity(capacity);
        for &v in &values {
            let _ = a.push(v);
            let _ = b.push(v);
        }
        let mut batched = Vec::new();
        let moved = a.pop_into(&mut batched, max);
        let mut singles = Vec::new();
        for _ in 0..max {
            match b.pop() {
                Some(v) => singles.push(v),
                None => break,
            }
        }
        prop_assert_eq!(moved, batched.len());
        prop_assert_eq!(batched, singles);
        prop_assert_eq!(a.len(), b.len(), "both drains leave the same tail");
    }

    /// Single producer, single consumer, threaded: everything arrives, in
    /// order, regardless of capacity (backpressure) and batch size.
    #[test]
    fn spsc_channel_is_order_preserving(
        capacity in 1usize..32,
        count in 0usize..400,
        batch in 1usize..64,
    ) {
        let (tx, rx) = channel(capacity);
        let producer = std::thread::spawn(move || {
            for i in 0..count {
                tx.send(i).expect("receiver lives until fully drained");
            }
        });
        let mut got = Vec::with_capacity(count);
        while rx.recv_batch(&mut got, batch).is_ok() {}
        producer.join().expect("producer panicked");
        prop_assert_eq!(got, (0..count).collect::<Vec<_>>());
    }

    /// Many producers under contention: nothing is lost, nothing is
    /// duplicated, and each producer's own sequence stays in order.
    #[test]
    fn mpsc_fan_in_is_lossless_and_per_producer_ordered(
        capacity in 1usize..16,
        producers in 1usize..5,
        per_producer in 0usize..120,
    ) {
        let (tx, rx) = channel::<(usize, usize)>(capacity);
        let mut handles = Vec::new();
        for p in 0..producers {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    tx.send((p, i)).expect("receiver lives until fully drained");
                }
            }));
        }
        drop(tx);
        let got: Vec<(usize, usize)> = rx.iter().collect();
        for h in handles {
            h.join().expect("producer panicked");
        }
        prop_assert_eq!(got.len(), producers * per_producer, "no loss, no duplication");
        let mut next = vec![0usize; producers];
        for (p, i) in got {
            prop_assert_eq!(i, next[p], "producer {}'s items arrive in send order", p);
            next[p] += 1;
        }
        for (p, n) in next.iter().enumerate() {
            prop_assert_eq!(*n, per_producer, "producer {} fully delivered", p);
        }
    }

    /// `try_send` refuses exactly when the ring is at capacity, and the
    /// refusal hands the value back intact.
    #[test]
    fn try_send_full_signals_are_exact(
        capacity in 1usize..8,
        extra in 1usize..8,
    ) {
        let (tx, rx) = channel(capacity);
        for i in 0..capacity {
            prop_assert!(tx.try_send(i).is_ok(), "under capacity never refuses");
        }
        for i in 0..extra {
            prop_assert_eq!(tx.try_send(capacity + i), Err(TrySendError::Full(capacity + i)));
        }
        // Draining one slot re-admits exactly one value.
        prop_assert_eq!(rx.recv(), Ok(0));
        prop_assert!(tx.try_send(999).is_ok());
        prop_assert_eq!(tx.try_send(1000), Err(TrySendError::Full(1000)));
    }
}
