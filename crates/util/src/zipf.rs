//! Zipf-distributed sampling over ranked items.
//!
//! The FIB-caching application (paper Section 2) is motivated by the heavy
//! skew of real packet traffic: a small number of forwarding rules carries
//! most packets (Sarrar et al., "Leveraging Zipf's law for traffic
//! offloading"). We model rule popularity as Zipf with exponent `theta`:
//! rank-`i` item has probability proportional to `1 / i^theta`.
//!
//! The sampler precomputes the CDF once (`O(n)`) and draws by binary search
//! (`O(log n)`), which is plenty fast for the sequence lengths the
//! experiments use and keeps the implementation obviously correct.

use crate::rng::SplitMix64;

/// Zipf(θ) sampler over ranks `0..n` (rank 0 is the most popular).
///
/// ```
/// use otc_util::{SplitMix64, Zipf};
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = SplitMix64::new(7);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 100);
/// // Rank 0 carries the most probability mass.
/// assert!(zipf.pmf(0) > zipf.pmf(99));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` items with exponent `theta ≥ 0`.
    ///
    /// `theta == 0` degenerates to the uniform distribution; `theta ≈ 1` is
    /// the classic web/traffic skew.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative/non-finite.
    #[must_use]
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf requires at least one item");
        assert!(theta.is_finite() && theta >= 0.0, "theta must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        // Guard against floating point drift: the last entry must be exactly
        // 1.0 so binary search can never fall off the end.
        *cdf.last_mut().expect("non-empty cdf") = 1.0;
        Self { cdf }
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has zero items (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `[0, n)`.
    #[inline]
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        // First index whose cdf value exceeds u.
        self.cdf.partition_point(|&p| p <= u)
    }

    /// Probability mass of a given rank.
    #[must_use]
    pub fn pmf(&self, rank: usize) -> f64 {
        assert!(rank < self.cdf.len(), "rank out of range");
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn monotone_decreasing_mass() {
        let z = Zipf::new(100, 1.0);
        for r in 1..100 {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-15, "pmf must be non-increasing in rank");
        }
    }

    #[test]
    fn samples_in_range_and_skewed() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = SplitMix64::new(21);
        let mut head = 0usize;
        let draws = 50_000;
        for _ in 0..draws {
            let r = z.sample(&mut rng);
            assert!(r < 1000);
            if r < 10 {
                head += 1;
            }
        }
        // With theta = 1.1 and n = 1000 the top-10 ranks carry ~40% of mass.
        let frac = head as f64 / f64::from(draws);
        assert!(frac > 0.30, "expected heavy head, got {frac}");
    }

    #[test]
    fn empirical_matches_pmf() {
        let z = Zipf::new(8, 0.9);
        let mut rng = SplitMix64::new(33);
        let mut counts = [0u32; 8];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let emp = f64::from(count) / f64::from(draws);
            assert!((emp - z.pmf(r)).abs() < 0.01, "rank {r}: empirical {emp} vs pmf {}", z.pmf(r));
        }
    }

    #[test]
    fn single_item() {
        let z = Zipf::new(1, 1.0);
        let mut rng = SplitMix64::new(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert!((z.pmf(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
