//! Shared utilities for the online-tree-caching workspace.
//!
//! This crate is deliberately small and dependency-light; it provides the
//! plumbing that every other crate needs:
//!
//! * [`rng`] — a tiny, fully deterministic `SplitMix64` generator plus seed
//!   derivation helpers, so every experiment is reproducible from a single
//!   `u64` seed.
//! * [`zipf`] — a Zipf(θ) sampler over ranked items (the traffic model the
//!   paper's application section motivates, cf. Sarrar et al. \[29\]).
//! * [`stats`] — Welford online moments, percentile summaries and ratio
//!   helpers used by the experiment harness.
//! * [`par`] — a scoped-thread parallel sweep runner built on
//!   `std::thread::scope` with an atomic work index (self-balancing, no
//!   work stealing needed for our embarrassingly parallel parameter
//!   sweeps).
//! * [`ring`] — bounded FIFO queues: a fixed-capacity [`ring::Ring`] core
//!   plus a blocking MPSC [`ring::channel`] with backpressure, the
//!   ingress→worker hand-off of the `otc-serve` serving runtime.
//! * [`table`] — minimal markdown/CSV table rendering for experiment output.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod par;
pub mod ring;
pub mod rng;
pub mod stats;
pub mod table;
pub mod zipf;

pub use par::{parallel_map, parallel_map_mut, parallel_map_threads};
pub use rng::SplitMix64;
pub use stats::{OnlineStats, Summary};
pub use table::Table;
pub use zipf::Zipf;
