//! Deterministic pseudo-random number generation.
//!
//! All stochastic components in the workspace draw their randomness from
//! [`SplitMix64`], either directly or by seeding `rand::rngs::SmallRng`
//! through [`SplitMix64::fork`]. A single `u64` seed therefore pins down an
//! entire experiment, which is essential for reproducing the tables in
//! `EXPERIMENTS.md` bit-for-bit.

/// A `SplitMix64` generator (Steele, Lea & Flood, OOPSLA 2014).
///
/// Small state, excellent statistical quality for simulation purposes, and
/// trivially seedable. Not cryptographically secure — none of our use cases
/// need that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds give independent-ish
    /// streams; equal seeds give identical streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a non-zero bound");
        // Lemire 2019: unbiased bounded integers without division in the
        // common case.
        let mut x = self.next_u64();
        let mut m = u128::from(x).wrapping_mul(u128::from(bound));
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = u128::from(x).wrapping_mul(u128::from(bound));
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` index in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent child generator; `label` separates streams
    /// drawn from the same parent (e.g. one stream per experiment cell).
    #[must_use]
    pub fn fork(&self, label: u64) -> Self {
        let mut mixer = Self::new(self.state ^ label.rotate_left(17) ^ 0xA076_1D64_78BD_642F);
        Self::new(mixer.next_u64())
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k ≤ n), in arbitrary order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        // Partial Fisher–Yates over an index vector; O(n) memory, fine for
        // the workload sizes we generate.
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn bounded_values_in_range() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn bounded_roughly_uniform() {
        let mut rng = SplitMix64::new(9);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.index(8)] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow 5% deviation.
            assert!((9_500..=10_500).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let parent = SplitMix64::new(5);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_stable() {
        let parent = SplitMix64::new(5);
        assert_eq!(parent.fork(9), parent.fork(9));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = SplitMix64::new(13);
        let sample = rng.sample_indices(100, 30);
        assert_eq!(sample.len(), 30);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
        assert!(sample.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_all() {
        let mut rng = SplitMix64::new(13);
        let mut sample = rng.sample_indices(10, 10);
        sample.sort_unstable();
        assert_eq!(sample, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "non-zero bound")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
