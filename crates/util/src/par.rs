//! Minimal parallel sweep runner.
//!
//! The experiment harness evaluates hundreds of independent (tree, workload,
//! algorithm, parameter) cells. Each cell is pure CPU work with no shared
//! mutable state, so the classic pattern from *Rust Atomics and Locks*
//! applies: spawn scoped threads (`std::thread::scope`), hand out work
//! items through a single `AtomicUsize` ticket counter (self-balancing —
//! fast cells simply grab more tickets), and collect results into
//! pre-sized slots guarded by a `Mutex` only at the cheap hand-back
//! moment.
//!
//! We deliberately do not pull in a full work-stealing runtime: the sweep
//! granularity is coarse (milliseconds to seconds per cell), so a ticket
//! counter achieves the same utilisation with a fraction of the machinery.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on `threads` worker threads and returns the
/// results in input order.
///
/// Falls back to a plain sequential map when `threads <= 1` or the input has
/// at most one element, so callers never pay thread spawn cost for trivial
/// sweeps.
///
/// # Panics
/// Propagates panics from `f` (the scope joins all workers first).
pub fn parallel_map_threads<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let n = items.len();
    let next = AtomicUsize::new(0);
    // Result slots, filled exactly once each; Mutex<Vec<Option<R>>> keeps the
    // code safe-and-simple — contention is negligible because workers hold
    // the lock only to move a finished result into its slot.
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let items_ref = &items;
    let f_ref = &f;
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f_ref(&items_ref[i]);
                results.lock().expect("sweep worker panicked")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("sweep worker panicked")
        .into_iter()
        .map(|slot| slot.expect("every ticket produces a result"))
        .collect()
}

/// Applies `f` to every item **in place** on `threads` worker threads and
/// returns the results in input order. The mutable sibling of
/// [`parallel_map_threads`]: each worker owns a contiguous chunk of the
/// slice, so `f` gets `(index, &mut T)` with no locking on the items
/// themselves (results are handed back through a mutex exactly once per
/// item).
///
/// This is the execution primitive of the sharded engine
/// (`otc-sim::engine`): shards are independent `&mut` states driven in
/// parallel during batch ingestion. Static chunking (not a ticket counter)
/// keeps the item count's worth of spawns down — shard counts are small
/// and per-shard work is balanced by construction.
///
/// Falls back to a plain sequential loop when `threads <= 1` or the input
/// has at most one element.
///
/// # Panics
/// Propagates panics from `f` (the scope joins all workers first).
pub fn parallel_map_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = n.div_ceil(threads.min(n));
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let f_ref = &f;
    let results_ref = &results;
    std::thread::scope(|scope| {
        for (w, slice) in items.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                for (off, item) in slice.iter_mut().enumerate() {
                    let i = w * chunk + off;
                    let r = f_ref(i, item);
                    results_ref.lock().expect("parallel worker panicked")[i] = Some(r);
                }
            });
        }
    });
    results
        .into_inner()
        .expect("parallel worker panicked")
        .into_iter()
        .map(|slot| slot.expect("every item produces a result"))
        .collect()
}

/// [`parallel_map_threads`] with `threads = available_parallelism()`.
///
/// ```
/// let squares = otc_util::parallel_map((0u64..100).collect(), |&x| x * x);
/// assert_eq!(squares[9], 81);
/// ```
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    parallel_map_threads(items, threads, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = parallel_map_threads(items, 8, |&x| x * x);
        for (i, &y) in out.iter().enumerate() {
            assert_eq!(y, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn sequential_fallback_matches() {
        let items: Vec<u64> = (0..100).collect();
        let seq = parallel_map_threads(items.clone(), 1, |&x| x + 1);
        let par = parallel_map_threads(items, 7, |&x| x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map_threads(Vec::<u32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = parallel_map_threads(vec![41], 4, |&x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs must still all complete.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map_threads(items, 4, |&x| {
            let mut acc = 0u64;
            let rounds = if x % 8 == 0 { 200_000 } else { 10 };
            for i in 0..rounds {
                acc = acc.wrapping_add(i ^ x);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map_threads(vec![1, 2, 3], 64, |&x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn default_thread_count_runs() {
        let out = parallel_map((0..32).collect::<Vec<u64>>(), |&x| x % 3);
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn map_mut_mutates_and_preserves_order() {
        let mut items: Vec<u64> = (0..100).collect();
        let out = parallel_map_mut(&mut items, 4, |i, x| {
            *x += 1;
            (i as u64) * 2
        });
        for (i, &x) in items.iter().enumerate() {
            assert_eq!(x, i as u64 + 1);
        }
        for (i, &r) in out.iter().enumerate() {
            assert_eq!(r, (i as u64) * 2);
        }
    }

    #[test]
    fn map_mut_sequential_fallback_matches() {
        let mut a: Vec<u64> = (0..37).collect();
        let mut b = a.clone();
        let ra = parallel_map_mut(&mut a, 1, |i, x| *x + i as u64);
        let rb = parallel_map_mut(&mut b, 8, |i, x| *x + i as u64);
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }

    #[test]
    fn map_mut_empty_and_more_threads_than_items() {
        let mut empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = parallel_map_mut(&mut empty, 4, |_, &mut x| x);
        assert!(out.is_empty());
        let mut small = vec![1u32, 2, 3];
        let out = parallel_map_mut(&mut small, 64, |_, x| *x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }
}
