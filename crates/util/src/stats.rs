//! Streaming statistics and summaries for experiment output.

/// Welford-style online accumulator for mean and variance.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0 for fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`NaN` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel-sweep friendly).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A batch summary: mean, stddev, min, max and selected percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples summarized.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample set. Returns a zeroed summary for empty input.
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                median: 0.0,
                p90: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in summaries"));
        let mut acc = OnlineStats::new();
        for &x in samples {
            acc.push(x);
        }
        Self {
            count: samples.len(),
            mean: acc.mean(),
            stddev: acc.stddev(),
            min: sorted[0],
            median: percentile_sorted(&sorted, 0.50),
            p90: percentile_sorted(&sorted, 0.90),
            p99: percentile_sorted(&sorted, 0.99),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Percentile (nearest-rank with linear interpolation) of a pre-sorted slice.
///
/// # Panics
/// Panics if the slice is empty or `q` is outside `[0, 1]`.
#[must_use]
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile must lie in [0, 1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Safe ratio: `a / b`, or `f64::INFINITY` when `b == 0 && a > 0`, or 1.0
/// when both are zero (both algorithms did nothing — they tie).
#[must_use]
pub fn cost_ratio(a: u64, b: u64) -> f64 {
    match (a, b) {
        (0, 0) => 1.0,
        (_, 0) => f64::INFINITY,
        (a, b) => a as f64 / b as f64,
    }
}

/// Linear least-squares slope of `y` against `x` (used by scaling
/// experiments to report empirical exponents on log-log data).
///
/// Returns `None` for fewer than two points or degenerate `x`.
#[must_use]
pub fn linreg_slope(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        sxx += (xi - mx) * (xi - mx);
        sxy += (xi - mx) * (yi - my);
    }
    if sxx == 0.0 {
        None
    } else {
        Some(sxy / sxx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Naive sample variance of that classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| f64::from(i).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        let b = OnlineStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = OnlineStats::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn percentiles() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert!((percentile_sorted(&sorted, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile_sorted(&sorted, 1.0) - 100.0).abs() < 1e-12);
        assert!((percentile_sorted(&sorted, 0.5) - 50.5).abs() < 1e-12);
    }

    #[test]
    fn summary_of_constant() {
        let s = Summary::of(&[3.0; 10]);
        assert_eq!(s.count, 10);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p99, 3.0);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn ratios() {
        assert_eq!(cost_ratio(0, 0), 1.0);
        assert_eq!(cost_ratio(5, 0), f64::INFINITY);
        assert!((cost_ratio(3, 2) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn slope_of_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((linreg_slope(&x, &y).expect("slope") - 2.0).abs() < 1e-12);
    }

    #[test]
    fn slope_degenerate() {
        assert!(linreg_slope(&[1.0], &[1.0]).is_none());
        assert!(linreg_slope(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }
}
