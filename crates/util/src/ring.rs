//! Bounded FIFO queues for the serving runtime.
//!
//! Two layers, both allocation-free after construction:
//!
//! * [`Ring`] — a fixed-capacity single-threaded ring buffer, the storage
//!   core. It has no interior synchronisation at all, which makes it the
//!   right building block for a single-producer/single-consumer hand-off
//!   where the caller owns the locking discipline.
//! * [`channel`] — a bounded **blocking MPSC fan-in** over one [`Ring`]:
//!   any number of [`Sender`] clones feed one [`Receiver`]. A full ring
//!   applies *backpressure* ([`Sender::send`] blocks until the consumer
//!   makes room) instead of growing, so a slow worker throttles its
//!   producers rather than letting the queue eat the heap. This is the
//!   queue between `otc-serve`'s ingress threads (one per client
//!   connection) and its pinned per-shard workers.
//!
//! The workspace forbids `unsafe`, so the channel serialises access with a
//! `Mutex` + two `Condvar`s rather than atomics-over-`UnsafeCell`. The
//! critical sections are O(1) pushes/pops (or `memcpy`-ish batch drains),
//! which at serving batch sizes is far from the bottleneck — the engine
//! round itself is. FIFO order per producer and loss-freedom are pinned by
//! `crates/util/tests/proptest_ring.rs`.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// A fixed-capacity FIFO ring buffer. Never reallocates after
/// construction: [`Ring::push`] on a full ring hands the value back
/// instead of growing.
#[derive(Debug)]
pub struct Ring<T> {
    /// Backing storage. `VecDeque` with a pinned capacity: we guard every
    /// `push_back` with an explicit length check so it can never grow.
    slots: VecDeque<T>,
    capacity: usize,
}

impl<T> Ring<T> {
    /// A ring holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0` — a zero-capacity queue can never move an
    /// item and would deadlock any blocking wrapper built on top.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Self { slots: VecDeque::with_capacity(capacity), capacity }
    }

    /// Items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the ring holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether the ring is at capacity (the next push would be refused).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.capacity
    }

    /// The fixed capacity this ring was built with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends `value` at the tail, or returns it when the ring is full.
    ///
    /// # Errors
    /// The rejected value itself, so the caller can retry without a clone.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        if self.is_full() {
            return Err(value);
        }
        self.slots.push_back(value);
        Ok(())
    }

    /// Removes and returns the head item, oldest first.
    pub fn pop(&mut self) -> Option<T> {
        self.slots.pop_front()
    }

    /// Moves up to `max` items from the head into `out` (appending),
    /// oldest first, and returns how many moved. The batch sibling of
    /// [`Ring::pop`]: one lock acquisition drains a worker's whole next
    /// batch.
    pub fn pop_into(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let take = max.min(self.slots.len());
        for _ in 0..take {
            out.push(self.slots.pop_front().expect("len checked"));
        }
        take
    }
}

/// Why a [`Sender`] could not deliver a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError<T> {
    /// The receiver was dropped; the channel can never drain. Carries the
    /// undelivered value back.
    Disconnected(T),
}

impl<T> SendError<T> {
    /// The value that could not be delivered.
    pub fn into_inner(self) -> T {
        match self {
            SendError::Disconnected(v) => v,
        }
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Why a non-blocking [`Sender::try_send`] refused a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The ring is at capacity right now; a blocking send would wait.
    Full(T),
    /// The receiver was dropped.
    Disconnected(T),
}

/// Why a [`Receiver`] returned no value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// Every sender was dropped and the ring is empty: the stream is over.
    Disconnected,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Shared state of one bounded channel.
#[derive(Debug)]
struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when an item is popped (senders blocked on a full ring).
    not_full: Condvar,
    /// Signalled when an item is pushed or the last sender leaves
    /// (receivers blocked on an empty ring).
    not_empty: Condvar,
}

#[derive(Debug)]
struct Inner<T> {
    ring: Ring<T>,
    senders: usize,
    receiver_alive: bool,
}

/// Creates a bounded blocking MPSC channel of the given capacity.
///
/// Clone the [`Sender`] freely (fan-in); there is exactly one
/// [`Receiver`]. A full channel blocks senders (backpressure); an empty
/// channel blocks the receiver until a value or final disconnect arrives.
///
/// ```
/// let (tx, rx) = otc_util::ring::channel(4);
/// let producer = std::thread::spawn(move || {
///     for i in 0..100u32 {
///         tx.send(i).unwrap(); // blocks whenever the consumer lags 4 behind
///     }
/// });
/// let got: Vec<u32> = rx.iter().collect();
/// producer.join().unwrap();
/// assert_eq!(got, (0..100).collect::<Vec<_>>());
/// ```
///
/// # Panics
/// Panics if `capacity == 0` (see [`Ring::with_capacity`]).
#[must_use]
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            ring: Ring::with_capacity(capacity),
            senders: 1,
            receiver_alive: true,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

/// The producing half of a [`channel`]. Cloneable: many producers fan in
/// to the single consumer.
#[derive(Debug)]
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Delivers `value`, blocking while the ring is full (backpressure).
    ///
    /// # Errors
    /// [`SendError::Disconnected`] (returning the value) once the receiver
    /// is gone — including when it is dropped mid-wait.
    pub fn send(&self, mut value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel lock poisoned");
        loop {
            if !inner.receiver_alive {
                return Err(SendError::Disconnected(value));
            }
            match inner.ring.push(value) {
                Ok(()) => {
                    drop(inner);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                Err(v) => {
                    value = v;
                    inner = self.shared.not_full.wait(inner).expect("channel lock poisoned");
                }
            }
        }
    }

    /// Attempts delivery without blocking.
    ///
    /// # Errors
    /// [`TrySendError::Full`] when backpressure would block,
    /// [`TrySendError::Disconnected`] when the receiver is gone; both hand
    /// the value back.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel lock poisoned");
        if !inner.receiver_alive {
            return Err(TrySendError::Disconnected(value));
        }
        match inner.ring.push(value) {
            Ok(()) => {
                drop(inner);
                self.shared.not_empty.notify_one();
                Ok(())
            }
            Err(v) => Err(TrySendError::Full(v)),
        }
    }

    /// Items queued right now (a racy snapshot; useful for monitoring).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.shared.inner.lock().expect("channel lock poisoned").ring.len()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().expect("channel lock poisoned").senders += 1;
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let senders = {
            let mut inner = self.shared.inner.lock().expect("channel lock poisoned");
            inner.senders -= 1;
            inner.senders
        };
        if senders == 0 {
            // Wake a receiver blocked on an empty ring so it can observe
            // the disconnect and finish.
            self.shared.not_empty.notify_all();
        }
    }
}

/// The consuming half of a [`channel`]. Exactly one exists per channel.
#[derive(Debug)]
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Takes the next value, blocking while the channel is empty.
    ///
    /// # Errors
    /// [`RecvError::Disconnected`] once every sender is gone *and* the
    /// ring has fully drained — queued values are never lost.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().expect("channel lock poisoned");
        loop {
            if let Some(v) = inner.ring.pop() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError::Disconnected);
            }
            inner = self.shared.not_empty.wait(inner).expect("channel lock poisoned");
        }
    }

    /// Takes the next value only if one is already queued (`Ok(None)`
    /// means "empty but still connected").
    ///
    /// # Errors
    /// [`RecvError::Disconnected`] once every sender is gone and the ring
    /// is empty.
    pub fn try_recv(&self) -> Result<Option<T>, RecvError> {
        let mut inner = self.shared.inner.lock().expect("channel lock poisoned");
        if let Some(v) = inner.ring.pop() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(Some(v));
        }
        if inner.senders == 0 {
            return Err(RecvError::Disconnected);
        }
        Ok(None)
    }

    /// Blocks for at least one value, then moves up to `max` queued values
    /// into `out` (appending) in FIFO order and returns how many arrived —
    /// the worker-loop primitive: one blocking wait amortises a whole
    /// batch of lock-free processing.
    ///
    /// # Errors
    /// [`RecvError::Disconnected`] once every sender is gone and the ring
    /// has fully drained.
    pub fn recv_batch(&self, out: &mut Vec<T>, max: usize) -> Result<usize, RecvError> {
        let mut inner = self.shared.inner.lock().expect("channel lock poisoned");
        loop {
            let moved = inner.ring.pop_into(out, max);
            if moved > 0 {
                drop(inner);
                // Potentially many slots freed: wake every blocked sender.
                self.shared.not_full.notify_all();
                return Ok(moved);
            }
            if inner.senders == 0 {
                return Err(RecvError::Disconnected);
            }
            inner = self.shared.not_empty.wait(inner).expect("channel lock poisoned");
        }
    }

    /// A blocking iterator over the remaining values; ends when every
    /// sender is gone and the ring has drained.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.recv().ok())
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.inner.lock().expect("channel lock poisoned").receiver_alive = false;
        // Wake senders blocked on a full ring so they can observe the
        // disconnect instead of waiting forever.
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_fifo_and_bounded() {
        let mut ring = Ring::with_capacity(3);
        assert!(ring.is_empty());
        ring.push(1).unwrap();
        ring.push(2).unwrap();
        ring.push(3).unwrap();
        assert!(ring.is_full());
        assert_eq!(ring.push(4), Err(4));
        assert_eq!(ring.pop(), Some(1));
        ring.push(4).unwrap();
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.pop(), Some(3));
        assert_eq!(ring.pop(), Some(4));
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn ring_pop_into_drains_in_order() {
        let mut ring = Ring::with_capacity(8);
        for i in 0..5 {
            ring.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(ring.pop_into(&mut out, 3), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(ring.pop_into(&mut out, 10), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(ring.pop_into(&mut out, 10), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_refused() {
        let _ = Ring::<u8>::with_capacity(0);
    }

    #[test]
    fn channel_round_trips_in_order() {
        let (tx, rx) = channel(4);
        let handle = std::thread::spawn(move || {
            for i in 0..1000u32 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        handle.join().unwrap();
        assert_eq!(got.len(), 1000);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "single-producer order preserved");
    }

    #[test]
    fn try_send_reports_backpressure() {
        let (tx, rx) = channel(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(tx.queued(), 2);
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn drop_of_all_senders_ends_the_stream_after_draining() {
        let (tx, rx) = channel(8);
        let tx2 = tx.clone();
        tx.send(10).unwrap();
        tx2.send(20).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(10));
        assert_eq!(rx.try_recv(), Ok(Some(20)));
        assert_eq!(rx.recv(), Err(RecvError::Disconnected));
        assert_eq!(rx.try_recv(), Err(RecvError::Disconnected));
    }

    #[test]
    fn drop_of_receiver_unblocks_full_senders() {
        let (tx, rx) = channel(1);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(handle.join().unwrap(), Err(SendError::Disconnected(2)));
    }

    #[test]
    fn recv_batch_moves_a_bounded_prefix() {
        let (tx, rx) = channel(16);
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.recv_batch(&mut out, 4), Ok(4));
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(rx.recv_batch(&mut out, 100), Ok(6));
        assert_eq!(out.len(), 10);
        drop(tx);
        assert_eq!(rx.recv_batch(&mut out, 4), Err(RecvError::Disconnected));
    }

    #[test]
    fn mpsc_fan_in_loses_nothing() {
        const PRODUCERS: u64 = 4;
        const PER: u64 = 500;
        let (tx, rx) = channel(8);
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..PER {
                    tx.send(p * PER + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        let want: Vec<u64> = (0..PRODUCERS * PER).collect();
        assert_eq!(got, want, "every sent value arrives exactly once");
    }
}
