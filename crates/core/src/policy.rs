//! The online-algorithm interface shared by TC and all baselines.
//!
//! The simulator (`otc-sim`) drives any [`CachePolicy`] through a request
//! sequence: each round it presents one request, the policy reports whether
//! it paid the service cost and which cache actions it took at the end of
//! the round. The simulator mirrors the cache, verifies validity of every
//! action against the problem's rules, and does all cost accounting — so a
//! buggy policy cannot misreport its own cost.
//!
//! # The zero-allocation step pipeline
//!
//! [`CachePolicy::step`] writes into a caller-provided [`ActionBuffer`] — a
//! reusable arena of [`NodeId`] spans plus an action-kind tag list — instead
//! of returning an owned value. In steady state (buffer capacity reached) a
//! round performs **no heap allocation** anywhere on the request path, which
//! is what makes 10⁶–10⁸-request streams affordable. The owned
//! [`StepOutcome`]/[`Action`] types remain as a convenience snapshot
//! ([`CachePolicy::step_owned`], [`ActionBuffer::to_outcome`]) for tests and
//! diagnostics, where clarity beats throughput.

use crate::cache::CacheSet;
use crate::request::Request;
use crate::tree::{NodeId, Tree};

/// One cache modification taken at the end of a round (owned snapshot form;
/// the hot path uses [`ActionBuffer`] spans instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Fetch these nodes (must form a valid positive changeset).
    Fetch(Vec<NodeId>),
    /// Evict these nodes (must form a valid negative changeset).
    Evict(Vec<NodeId>),
    /// Evict the entire cache (TC's phase restart). The payload is the set
    /// evicted, possibly empty.
    Flush(Vec<NodeId>),
}

impl Action {
    /// Number of nodes touched (each costs α).
    #[must_use]
    pub fn nodes_touched(&self) -> usize {
        match self {
            Action::Fetch(v) | Action::Evict(v) | Action::Flush(v) => v.len(),
        }
    }
}

/// Tag of one action recorded in an [`ActionBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionKind {
    /// The span is fetched (must form a valid positive changeset).
    Fetch,
    /// The span is evicted (must form a valid negative changeset).
    Evict,
    /// The entire cache is evicted (TC's phase restart); the span is the
    /// set evicted, possibly empty.
    Flush,
}

/// A reusable record of what a policy did in one round.
///
/// Node lists of all actions live contiguously in one arena; each action is
/// a `(kind, start)` tag whose span ends where the next action starts. Once
/// the vectors have grown to the workload's high-water mark, recording a
/// round allocates nothing.
///
/// ```
/// use otc_core::policy::{ActionBuffer, ActionKind};
/// use otc_core::tree::NodeId;
///
/// let mut buf = ActionBuffer::new();
/// buf.clear();
/// buf.set_paid(true);
/// buf.begin(ActionKind::Fetch).extend([NodeId(1), NodeId(2)]);
/// assert_eq!(buf.nodes_touched(), 2);
/// let (kind, nodes) = buf.actions().next().unwrap();
/// assert_eq!(kind, ActionKind::Fetch);
/// assert_eq!(nodes, &[NodeId(1), NodeId(2)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ActionBuffer {
    paid_service: bool,
    /// `(kind, offset of the action's first node in `nodes`)`.
    kinds: Vec<(ActionKind, usize)>,
    /// Arena holding every action's nodes back to back.
    nodes: Vec<NodeId>,
}

impl ActionBuffer {
    /// An empty buffer. Reuse one per driver loop, not one per round.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets all recorded actions and the paid flag, keeping capacity.
    /// Every [`CachePolicy::step`] implementation calls this first.
    pub fn clear(&mut self) {
        self.paid_service = false;
        self.kinds.clear();
        self.nodes.clear();
    }

    /// Records whether the round paid the service cost.
    pub fn set_paid(&mut self, paid: bool) {
        self.paid_service = paid;
    }

    /// Whether the round paid the service cost.
    #[must_use]
    pub fn paid_service(&self) -> bool {
        self.paid_service
    }

    /// Starts a new action of `kind` and returns the arena to push its
    /// nodes into. The action's span is everything appended before the next
    /// `begin` (do not truncate below the returned start).
    pub fn begin(&mut self, kind: ActionKind) -> &mut Vec<NodeId> {
        self.kinds.push((kind, self.nodes.len()));
        &mut self.nodes
    }

    /// Appends one node to the most recently begun action.
    ///
    /// # Panics
    /// Panics in debug builds if no action was begun.
    pub fn push_node(&mut self, v: NodeId) {
        debug_assert!(!self.kinds.is_empty(), "push_node before begin");
        self.nodes.push(v);
    }

    /// Number of recorded actions.
    #[must_use]
    pub fn num_actions(&self) -> usize {
        self.kinds.len()
    }

    /// True if no action was recorded.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.kinds.is_empty() && !self.paid_service
    }

    /// Total nodes touched across all actions (each costs α).
    #[must_use]
    pub fn nodes_touched(&self) -> usize {
        self.nodes.len()
    }

    /// The `i`-th action as `(kind, nodes)`.
    ///
    /// # Panics
    /// Panics if `i >= num_actions()`.
    #[must_use]
    pub fn action(&self, i: usize) -> (ActionKind, &[NodeId]) {
        let (kind, start) = self.kinds[i];
        let end = self.kinds.get(i + 1).map_or(self.nodes.len(), |&(_, s)| s);
        (kind, &self.nodes[start..end])
    }

    /// Iterator over recorded actions in application order.
    pub fn actions(&self) -> impl Iterator<Item = (ActionKind, &[NodeId])> + '_ {
        (0..self.kinds.len()).map(move |i| self.action(i))
    }

    /// Nodes of the most recently begun action (empty slice if none).
    #[must_use]
    pub fn last_nodes(&self) -> &[NodeId] {
        match self.kinds.last() {
            Some(&(_, start)) => &self.nodes[start..],
            None => &[],
        }
    }

    /// Mutable view of the most recently begun action's nodes (empty slice
    /// if none). For in-place reordering, e.g. root-first normalisation.
    pub fn last_nodes_mut(&mut self) -> &mut [NodeId] {
        match self.kinds.last() {
            Some(&(_, start)) => &mut self.nodes[start..],
            None => &mut [],
        }
    }

    /// Owned snapshot for tests and diagnostics (allocates).
    #[must_use]
    pub fn to_outcome(&self) -> StepOutcome {
        StepOutcome {
            paid_service: self.paid_service,
            actions: self
                .actions()
                .map(|(kind, nodes)| match kind {
                    ActionKind::Fetch => Action::Fetch(nodes.to_vec()),
                    ActionKind::Evict => Action::Evict(nodes.to_vec()),
                    ActionKind::Flush => Action::Flush(nodes.to_vec()),
                })
                .collect(),
        }
    }
}

/// What a policy did in one round (owned snapshot; see [`ActionBuffer`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepOutcome {
    /// Whether the request cost 1 to serve (positive+non-cached or
    /// negative+cached at the time the request arrived).
    pub paid_service: bool,
    /// Cache modifications applied after serving, in order. Most policies
    /// emit zero or one action; eviction-then-fetch emits two.
    pub actions: Vec<Action>,
}

impl StepOutcome {
    /// A round with no payment and no cache change.
    #[must_use]
    pub fn idle() -> Self {
        Self::default()
    }

    /// Total nodes touched across all actions.
    #[must_use]
    pub fn nodes_touched(&self) -> usize {
        self.actions.iter().map(Action::nodes_touched).sum()
    }
}

/// An online tree-caching algorithm.
///
/// Implementations own their cache state; `cache()` exposes it read-only so
/// the simulator can cross-check its mirror.
///
/// `Send` is a supertrait so the sharded engine (`otc-sim::engine`) can
/// drive per-shard policies from scoped worker threads; every policy is
/// plain owned data, so this costs implementors nothing.
pub trait CachePolicy: Send {
    /// Short stable identifier used in experiment tables.
    fn name(&self) -> &'static str;

    /// The cache capacity `k` this policy was configured with.
    fn capacity(&self) -> usize;

    /// Serves one request, recording the outcome in `out`.
    ///
    /// The implementation clears `out` first; after the call `out` holds
    /// exactly this round's outcome. In steady state (buffer capacity
    /// reached) the call must not allocate.
    fn step(&mut self, req: Request, out: &mut ActionBuffer);

    /// Read-only view of the current cache contents.
    fn cache(&self) -> &CacheSet;

    /// Resets to the initial (empty-cache) state, keeping configuration.
    fn reset(&mut self);

    /// Expensive internal-consistency check (O(|T|) or worse). Policies
    /// with redundant incremental state override this; the simulator's
    /// batched driver calls it between chunks in debug builds so unchecked
    /// benchmark configurations cannot silently drift.
    fn audit(&self) -> Result<(), String> {
        Ok(())
    }

    /// Convenience wrapper allocating a fresh buffer and an owned
    /// [`StepOutcome`]. For tests and diagnostics — not the hot path.
    fn step_owned(&mut self, req: Request) -> StepOutcome {
        let mut buf = ActionBuffer::new();
        self.step(req, &mut buf);
        buf.to_outcome()
    }

    /// Appends the policy's complete mutable state to `out` so a later
    /// [`CachePolicy::restore_state`] on a freshly built instance (same
    /// tree, same configuration) continues bit-identically.
    ///
    /// Must not allocate once `out` has capacity — the snapshot cadence of
    /// `otc-sim` runs this on the steady-state request path. The default
    /// refuses, so policies without durability support fail loudly instead
    /// of silently recovering into a wrong state.
    ///
    /// # Errors
    /// A human-readable reason when the policy does not support snapshots.
    fn save_state(&self, _out: &mut Vec<u8>) -> Result<(), String> {
        Err(format!("policy '{}' does not support snapshots", self.name()))
    }

    /// Replaces the policy's mutable state with one written by
    /// [`CachePolicy::save_state`] on an identically configured instance.
    ///
    /// Must be atomic: on any error the policy is left exactly as it was
    /// (no partial restore). Implementations validate the decoded state
    /// (e.g. via [`CachePolicy::audit`]) before committing it.
    ///
    /// # Errors
    /// A human-readable reason when `bytes` does not decode to a
    /// consistent state for this configuration.
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let _ = bytes;
        Err(format!("policy '{}' does not support snapshots", self.name()))
    }
}

/// Mutable references forward the whole policy interface, so a borrowed
/// policy can be handed to engines that normally own their policies (the
/// single-shard adapter path of `otc-sim::engine`).
impl<P: CachePolicy + ?Sized> CachePolicy for &mut P {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn capacity(&self) -> usize {
        (**self).capacity()
    }
    fn step(&mut self, req: Request, out: &mut ActionBuffer) {
        (**self).step(req, out);
    }
    fn cache(&self) -> &CacheSet {
        (**self).cache()
    }
    fn reset(&mut self) {
        (**self).reset();
    }
    fn audit(&self) -> Result<(), String> {
        (**self).audit()
    }
    fn step_owned(&mut self, req: Request) -> StepOutcome {
        (**self).step_owned(req)
    }
    fn save_state(&self, out: &mut Vec<u8>) -> Result<(), String> {
        (**self).save_state(out)
    }
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        (**self).restore_state(bytes)
    }
}

/// Builds one [`CachePolicy`] instance per shard of a forest.
///
/// The sharded engine asks the factory once per shard at construction
/// time, passing the shard's tree and id; the factory decides the
/// algorithm and its per-shard parameters (e.g. splitting a total cache
/// capacity across shards). Implemented for free by any matching closure:
///
/// ```
/// use std::sync::Arc;
/// use otc_core::forest::ShardId;
/// use otc_core::policy::{CachePolicy, PolicyFactory};
/// use otc_core::tc::{TcConfig, TcFast};
/// use otc_core::tree::Tree;
///
/// let factory = |tree: Arc<Tree>, _shard: ShardId| {
///     Box::new(TcFast::new(tree, TcConfig::new(2, 8))) as Box<dyn CachePolicy>
/// };
/// let built = factory.build(Arc::new(Tree::star(3)), ShardId(0));
/// assert_eq!(built.name(), "tc");
/// ```
pub trait PolicyFactory {
    /// Builds the policy for `shard`, which owns `tree`.
    fn build(
        &self,
        tree: std::sync::Arc<Tree>,
        shard: crate::forest::ShardId,
    ) -> Box<dyn CachePolicy>;
}

impl<F> PolicyFactory for F
where
    F: Fn(std::sync::Arc<Tree>, crate::forest::ShardId) -> Box<dyn CachePolicy>,
{
    fn build(
        &self,
        tree: std::sync::Arc<Tree>,
        shard: crate::forest::ShardId,
    ) -> Box<dyn CachePolicy> {
        self(tree, shard)
    }
}

/// Convenience: run a policy over a sequence without simulation services
/// (no validity checking, no instrumentation). Returns
/// `(service_cost, reorg_nodes)` where the monetary reorganisation cost is
/// `alpha * reorg_nodes`. Reuses one [`ActionBuffer`] across all rounds.
pub fn run_raw(policy: &mut dyn CachePolicy, requests: &[Request]) -> (u64, u64) {
    let mut buf = ActionBuffer::new();
    let mut service = 0u64;
    let mut touched = 0u64;
    for &r in requests {
        policy.step(r, &mut buf);
        service += u64::from(buf.paid_service());
        touched += buf.nodes_touched() as u64;
    }
    (service, touched)
}

/// Helper shared by policies: whether a request pays, given a cache.
#[must_use]
pub fn request_pays(cache: &CacheSet, req: Request) -> bool {
    match req.sign {
        crate::request::Sign::Positive => !cache.contains(req.node),
        crate::request::Sign::Negative => cache.contains(req.node),
    }
}

/// Helper shared by policies: appends the minimal fetch making `v` cached —
/// the non-cached part of `T(v)`, in preorder (parents before children) —
/// to `out`. Appends nothing when `v` is already cached.
pub fn dependent_fetch_set_into(tree: &Tree, cache: &CacheSet, v: NodeId, out: &mut Vec<NodeId>) {
    if cache.contains(v) {
        return;
    }
    // Walk the preorder slice of T(v); skip cached subtrees wholesale.
    let slice = tree.subtree(v);
    let mut i = 0;
    while i < slice.len() {
        let u = slice[i];
        if cache.contains(u) {
            i += tree.subtree_size(u) as usize;
        } else {
            out.push(u);
            i += 1;
        }
    }
}

/// Helper shared by policies: the minimal fetch making `v` cached — the
/// non-cached part of `T(v)`, in preorder (parents before children).
///
/// Returns an empty vector when `v` is already cached. Allocating
/// convenience over [`dependent_fetch_set_into`].
#[must_use]
pub fn dependent_fetch_set(tree: &Tree, cache: &CacheSet, v: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    dependent_fetch_set_into(tree, cache, v, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Sign;

    fn tree() -> Tree {
        Tree::from_parents(&[None, Some(0), Some(1), Some(1), Some(0)])
    }

    #[test]
    fn pays_logic() {
        let t = tree();
        let mut c = CacheSet::empty(t.len());
        c.fetch(&[NodeId(2)]);
        assert!(request_pays(&c, Request { node: NodeId(3), sign: Sign::Positive }));
        assert!(!request_pays(&c, Request { node: NodeId(2), sign: Sign::Positive }));
        assert!(request_pays(&c, Request { node: NodeId(2), sign: Sign::Negative }));
        assert!(!request_pays(&c, Request { node: NodeId(3), sign: Sign::Negative }));
    }

    #[test]
    fn dependent_set_from_empty_cache() {
        let t = tree();
        let c = CacheSet::empty(t.len());
        assert_eq!(dependent_fetch_set(&t, &c, NodeId(1)), vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(dependent_fetch_set(&t, &c, NodeId(4)), vec![NodeId(4)]);
    }

    #[test]
    fn dependent_set_skips_cached() {
        let t = tree();
        let mut c = CacheSet::empty(t.len());
        c.fetch(&[NodeId(2)]);
        assert_eq!(dependent_fetch_set(&t, &c, NodeId(1)), vec![NodeId(1), NodeId(3)]);
        c.fetch(&[NodeId(1), NodeId(3)]);
        assert!(dependent_fetch_set(&t, &c, NodeId(1)).is_empty());
    }

    #[test]
    fn dependent_set_is_valid_positive() {
        let t = tree();
        let mut c = CacheSet::empty(t.len());
        c.fetch(&[NodeId(3)]);
        let set = dependent_fetch_set(&t, &c, NodeId(0));
        assert!(crate::changeset::is_valid_positive(&t, &c, &set));
        assert_eq!(set.len(), 4); // 0, 1, 2, 4 (3 already cached)
    }

    #[test]
    fn outcome_accounting() {
        let out = StepOutcome {
            paid_service: true,
            actions: vec![
                Action::Evict(vec![NodeId(1)]),
                Action::Fetch(vec![NodeId(2), NodeId(3)]),
            ],
        };
        assert_eq!(out.nodes_touched(), 3);
        assert_eq!(StepOutcome::idle().nodes_touched(), 0);
    }

    #[test]
    fn buffer_spans_and_snapshot() {
        let mut buf = ActionBuffer::new();
        buf.clear();
        buf.set_paid(true);
        buf.begin(ActionKind::Evict).push(NodeId(1));
        buf.begin(ActionKind::Fetch).extend([NodeId(2), NodeId(3)]);
        assert_eq!(buf.num_actions(), 2);
        assert_eq!(buf.nodes_touched(), 3);
        assert_eq!(buf.action(0), (ActionKind::Evict, &[NodeId(1)][..]));
        assert_eq!(buf.action(1), (ActionKind::Fetch, &[NodeId(2), NodeId(3)][..]));
        assert_eq!(buf.last_nodes(), &[NodeId(2), NodeId(3)]);
        let out = buf.to_outcome();
        assert_eq!(
            out.actions,
            vec![Action::Evict(vec![NodeId(1)]), Action::Fetch(vec![NodeId(2), NodeId(3)])]
        );
        // Clearing keeps capacity but forgets content.
        buf.clear();
        assert!(buf.is_idle());
        assert_eq!(buf.nodes_touched(), 0);
        assert_eq!(buf.last_nodes(), &[] as &[NodeId]);
    }

    #[test]
    fn empty_flush_is_recorded() {
        let mut buf = ActionBuffer::new();
        buf.clear();
        buf.set_paid(true);
        buf.begin(ActionKind::Flush);
        assert_eq!(buf.num_actions(), 1);
        assert_eq!(buf.nodes_touched(), 0);
        assert_eq!(buf.action(0), (ActionKind::Flush, &[] as &[NodeId]));
        assert_eq!(buf.to_outcome().actions, vec![Action::Flush(vec![])]);
    }
}
