//! The online-algorithm interface shared by TC and all baselines.
//!
//! The simulator (`otc-sim`) drives any [`CachePolicy`] through a request
//! sequence: each round it presents one request, the policy reports whether
//! it paid the service cost and which cache actions it took at the end of
//! the round. The simulator mirrors the cache, verifies validity of every
//! action against the problem's rules, and does all cost accounting — so a
//! buggy policy cannot misreport its own cost.

use crate::cache::CacheSet;
use crate::request::Request;
use crate::tree::{NodeId, Tree};

/// One cache modification taken at the end of a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Fetch these nodes (must form a valid positive changeset).
    Fetch(Vec<NodeId>),
    /// Evict these nodes (must form a valid negative changeset).
    Evict(Vec<NodeId>),
    /// Evict the entire cache (TC's phase restart). The payload is the set
    /// evicted, possibly empty.
    Flush(Vec<NodeId>),
}

impl Action {
    /// Number of nodes touched (each costs α).
    #[must_use]
    pub fn nodes_touched(&self) -> usize {
        match self {
            Action::Fetch(v) | Action::Evict(v) | Action::Flush(v) => v.len(),
        }
    }
}

/// What a policy did in one round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepOutcome {
    /// Whether the request cost 1 to serve (positive+non-cached or
    /// negative+cached at the time the request arrived).
    pub paid_service: bool,
    /// Cache modifications applied after serving, in order. Most policies
    /// emit zero or one action; eviction-then-fetch emits two.
    pub actions: Vec<Action>,
}

impl StepOutcome {
    /// A round with no payment and no cache change.
    #[must_use]
    pub fn idle() -> Self {
        Self::default()
    }

    /// Total nodes touched across all actions.
    #[must_use]
    pub fn nodes_touched(&self) -> usize {
        self.actions.iter().map(Action::nodes_touched).sum()
    }
}

/// An online tree-caching algorithm.
///
/// Implementations own their cache state; `cache()` exposes it read-only so
/// the simulator can cross-check its mirror.
pub trait CachePolicy {
    /// Short stable identifier used in experiment tables.
    fn name(&self) -> &'static str;

    /// The cache capacity `k` this policy was configured with.
    fn capacity(&self) -> usize;

    /// Serves one request and returns what happened.
    fn step(&mut self, req: Request) -> StepOutcome;

    /// Read-only view of the current cache contents.
    fn cache(&self) -> &CacheSet;

    /// Resets to the initial (empty-cache) state, keeping configuration.
    fn reset(&mut self);
}

/// Convenience: run a policy over a sequence without simulation services
/// (no validity checking, no instrumentation). Returns
/// `(service_cost, reorg_nodes)` where the monetary reorganisation cost is
/// `alpha * reorg_nodes`.
pub fn run_raw(policy: &mut dyn CachePolicy, requests: &[Request]) -> (u64, u64) {
    let mut service = 0u64;
    let mut touched = 0u64;
    for &r in requests {
        let out = policy.step(r);
        service += u64::from(out.paid_service);
        touched += out.nodes_touched() as u64;
    }
    (service, touched)
}

/// Helper shared by policies: whether a request pays, given a cache.
#[must_use]
pub fn request_pays(cache: &CacheSet, req: Request) -> bool {
    match req.sign {
        crate::request::Sign::Positive => !cache.contains(req.node),
        crate::request::Sign::Negative => cache.contains(req.node),
    }
}

/// Helper shared by policies: the minimal fetch making `v` cached — the
/// non-cached part of `T(v)`, in preorder (parents before children).
///
/// Returns an empty vector when `v` is already cached.
#[must_use]
pub fn dependent_fetch_set(tree: &Tree, cache: &CacheSet, v: NodeId) -> Vec<NodeId> {
    if cache.contains(v) {
        return Vec::new();
    }
    let mut out = Vec::new();
    // Walk the preorder slice of T(v); skip cached subtrees wholesale.
    let slice = tree.subtree(v);
    let mut i = 0;
    while i < slice.len() {
        let u = slice[i];
        if cache.contains(u) {
            i += tree.subtree_size(u) as usize;
        } else {
            out.push(u);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Sign;

    fn tree() -> Tree {
        Tree::from_parents(&[None, Some(0), Some(1), Some(1), Some(0)])
    }

    #[test]
    fn pays_logic() {
        let t = tree();
        let mut c = CacheSet::empty(t.len());
        c.fetch(&[NodeId(2)]);
        assert!(request_pays(&c, Request { node: NodeId(3), sign: Sign::Positive }));
        assert!(!request_pays(&c, Request { node: NodeId(2), sign: Sign::Positive }));
        assert!(request_pays(&c, Request { node: NodeId(2), sign: Sign::Negative }));
        assert!(!request_pays(&c, Request { node: NodeId(3), sign: Sign::Negative }));
    }

    #[test]
    fn dependent_set_from_empty_cache() {
        let t = tree();
        let c = CacheSet::empty(t.len());
        assert_eq!(dependent_fetch_set(&t, &c, NodeId(1)), vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(dependent_fetch_set(&t, &c, NodeId(4)), vec![NodeId(4)]);
    }

    #[test]
    fn dependent_set_skips_cached() {
        let t = tree();
        let mut c = CacheSet::empty(t.len());
        c.fetch(&[NodeId(2)]);
        assert_eq!(dependent_fetch_set(&t, &c, NodeId(1)), vec![NodeId(1), NodeId(3)]);
        c.fetch(&[NodeId(1), NodeId(3)]);
        assert!(dependent_fetch_set(&t, &c, NodeId(1)).is_empty());
    }

    #[test]
    fn dependent_set_is_valid_positive() {
        let t = tree();
        let mut c = CacheSet::empty(t.len());
        c.fetch(&[NodeId(3)]);
        let set = dependent_fetch_set(&t, &c, NodeId(0));
        assert!(crate::changeset::is_valid_positive(&t, &c, &set));
        assert_eq!(set.len(), 4); // 0, 1, 2, 4 (3 already cached)
    }

    #[test]
    fn outcome_accounting() {
        let out = StepOutcome {
            paid_service: true,
            actions: vec![
                Action::Evict(vec![NodeId(1)]),
                Action::Fetch(vec![NodeId(2), NodeId(3)]),
            ],
        };
        assert_eq!(out.nodes_touched(), 3);
        assert_eq!(StepOutcome::idle().nodes_touched(), 0);
    }
}
