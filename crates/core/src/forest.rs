//! Forests of trees and shard routing.
//!
//! The paper's motivating application (Section 2, FIB caching) is naturally
//! a *forest*: an IP rule trie decomposes at the default route into many
//! independent subtries, each cacheable by its own TC instance. A
//! [`Forest`] is a partition of one or more [`Tree`]s into **shards**: each
//! shard is a complete rooted tree of its own, and a routing table maps
//! every node of a *global* id space to its `(shard, local node)` home.
//!
//! Three ways to build one:
//!
//! * [`Forest::single`] — one tree, one shard, identity routing (how the
//!   classic single-tree drivers present themselves to the engine);
//! * [`Forest::from_trees`] — independent trees side by side (multi-tenant
//!   universes); global ids are the trees concatenated in order;
//! * [`Forest::partition`] — split one tree at its root into
//!   size-balanced shards (longest-processing-time binning of the root's
//!   child subtrees). Every shard tree replicates the original root as its
//!   own root, so each shard remains a well-formed rooted tree and the
//!   global id space is exactly the original tree's; requests to the
//!   original root route to shard 0.
//!
//! The routing table is a flat `Vec` indexed by global node id — O(1) per
//! request, no hashing on the hot path.

use std::sync::Arc;

use crate::request::Request;
use crate::tree::{NodeId, Tree};

/// Identifier of a shard in a [`Forest`]; a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The index as `usize`, for direct vector indexing.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A partition of one or more trees into shards, with O(1) global-to-local
/// request routing.
///
/// ```
/// use std::sync::Arc;
/// use otc_core::forest::{Forest, ShardId};
/// use otc_core::tree::{NodeId, Tree};
///
/// //        0
/// //     /  |  \
/// //    1   3   5       three subtries under the root
/// //    |   |
/// //    2   4
/// let tree = Tree::from_parents(&[None, Some(0), Some(1), Some(0), Some(3), Some(0)]);
/// let forest = Forest::partition(&tree, 2);
/// assert_eq!(forest.num_shards(), 2);
/// // Every non-root node keeps its identity: route there and back.
/// for v in tree.nodes().skip(1) {
///     let (shard, local) = forest.route(v);
///     assert_eq!(forest.to_global(shard, local), v);
/// }
/// // The original root routes to shard 0 and is the root of every shard.
/// assert_eq!(forest.route(NodeId(0)), (ShardId(0), NodeId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct Forest {
    trees: Vec<Arc<Tree>>,
    /// Global node id → `(shard, local node)`.
    route: Vec<(ShardId, NodeId)>,
    /// Per shard: local node id → global node id.
    globals: Vec<Vec<NodeId>>,
}

impl Forest {
    /// A single-shard forest: one tree, identity routing.
    #[must_use]
    pub fn single(tree: Arc<Tree>) -> Self {
        Self::from_trees(vec![tree])
    }

    /// Independent trees side by side, one shard each. The global id space
    /// is the concatenation: tree `s`'s node `i` has global id
    /// `offset(s) + i`.
    ///
    /// # Panics
    /// Panics if `trees` is empty.
    #[must_use]
    pub fn from_trees(trees: Vec<Arc<Tree>>) -> Self {
        assert!(!trees.is_empty(), "a forest has at least one shard");
        let total: usize = trees.iter().map(|t| t.len()).sum();
        let mut route = Vec::with_capacity(total);
        let mut globals = Vec::with_capacity(trees.len());
        let mut offset = 0u32;
        for (s, tree) in trees.iter().enumerate() {
            let sid = ShardId(s as u32);
            let mut global_of = Vec::with_capacity(tree.len());
            for local in 0..tree.len() as u32 {
                route.push((sid, NodeId(local)));
                global_of.push(NodeId(offset + local));
            }
            globals.push(global_of);
            offset += tree.len() as u32;
        }
        Self { trees, route, globals }
    }

    /// Splits `tree` at its root into (up to) `shards` size-balanced
    /// shards. The root's child subtrees are binned by
    /// longest-processing-time (largest subtree to the currently lightest
    /// bin), then each bin becomes one shard tree: a replica of the
    /// original root with the bin's subtrees attached in original preorder.
    ///
    /// The global id space is the original tree's node ids. The original
    /// root routes to shard 0 (its replicas in other shards are structural
    /// only and have no global id of their own). The effective shard count
    /// is `min(shards, #children of the root)`, at least 1 — a single-node
    /// tree yields one single-node shard.
    ///
    /// Note that a partitioned forest is a *different* caching universe
    /// from the unsharded tree: each shard has its own policy, capacity
    /// and phase structure. Sharded totals are comparable to the sum of
    /// independent per-shard runs (and the engine's differential tests pin
    /// exactly that), not to a single run over the whole tree.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn partition(tree: &Tree, shards: usize) -> Self {
        assert!(shards >= 1, "a forest has at least one shard");
        let root = tree.root();
        let kids = tree.children(root);
        let bins_n = shards.min(kids.len().max(1));

        // LPT binning: biggest subtree first, always into the lightest bin.
        let mut order: Vec<NodeId> = kids.to_vec();
        order.sort_by_key(|&c| (std::cmp::Reverse(tree.subtree_size(c)), c.0));
        let mut bins: Vec<Vec<NodeId>> = vec![Vec::new(); bins_n];
        let mut load = vec![0u64; bins_n];
        for c in order {
            let lightest = (0..bins_n).min_by_key(|&b| (load[b], b)).expect("bins_n >= 1");
            bins[lightest].push(c);
            load[lightest] += u64::from(tree.subtree_size(c));
        }
        // Original preorder within each bin keeps layouts deterministic and
        // readable regardless of the binning order.
        for bin in &mut bins {
            bin.sort_by_key(|&c| tree.preorder_rank(c));
        }

        let mut route = vec![(ShardId(0), NodeId(0)); tree.len()];
        let mut trees = Vec::with_capacity(bins_n);
        let mut globals = Vec::with_capacity(bins_n);
        for (s, bin) in bins.iter().enumerate() {
            let sid = ShardId(s as u32);
            let mut parents: Vec<Option<usize>> = vec![None]; // local 0: root replica
            let mut global_of = vec![root];
            for &c in bin {
                for &v in tree.subtree(c) {
                    let local = NodeId(parents.len() as u32);
                    let p = tree.parent(v).expect("only the root has no parent");
                    // Parents precede children in preorder, so a non-root
                    // parent's local id is already recorded in the route.
                    let p_local = if p == root { NodeId(0) } else { route[p.index()].1 };
                    parents.push(Some(p_local.index()));
                    route[v.index()] = (sid, local);
                    global_of.push(v);
                }
            }
            trees.push(Arc::new(Tree::from_parents(&parents)));
            globals.push(global_of);
        }
        Self { trees, route, globals }
    }

    /// Number of shards.
    #[inline]
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.trees.len()
    }

    /// The shard trees, indexed by [`ShardId`].
    #[must_use]
    pub fn trees(&self) -> &[Arc<Tree>] {
        &self.trees
    }

    /// The tree of one shard.
    #[must_use]
    pub fn tree(&self, shard: ShardId) -> &Arc<Tree> {
        &self.trees[shard.index()]
    }

    /// Size of the global node id space (valid request targets are
    /// `0..global_len()`).
    #[inline]
    #[must_use]
    pub fn global_len(&self) -> usize {
        self.route.len()
    }

    /// Routes a global node id to its `(shard, local node)` home.
    ///
    /// # Panics
    /// Panics if `v` is outside the global id space.
    #[inline]
    #[must_use]
    pub fn route(&self, v: NodeId) -> (ShardId, NodeId) {
        self.route[v.index()]
    }

    /// Routes a globally-addressed request to `(shard, local request)`.
    ///
    /// # Panics
    /// Panics if the request targets a node outside the global id space.
    #[inline]
    #[must_use]
    pub fn route_request(&self, r: Request) -> (ShardId, Request) {
        let (shard, local) = self.route(r.node);
        (shard, Request { node: local, sign: r.sign })
    }

    /// The global id of a shard-local node. For partitioned forests the
    /// root replica of every shard maps back to the original root.
    ///
    /// # Panics
    /// Panics if `shard` or `local` is out of range.
    #[inline]
    #[must_use]
    pub fn to_global(&self, shard: ShardId, local: NodeId) -> NodeId {
        self.globals[shard.index()][local.index()]
    }

    /// True if routing is the identity: one shard whose local ids equal
    /// the global ids. [`Forest::single`] always is; a 1-shard
    /// [`Forest::partition`] need **not** be (it renumbers nodes in
    /// preorder). Consumers use this to decide whether requests can skip
    /// the routing table.
    #[must_use]
    pub fn is_identity_routing(&self) -> bool {
        self.trees.len() == 1
            && self
                .route
                .iter()
                .enumerate()
                .all(|(i, &(s, local))| s == ShardId(0) && local.index() == i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_is_identity() {
        let tree = Arc::new(Tree::kary(2, 3));
        let forest = Forest::single(Arc::clone(&tree));
        assert_eq!(forest.num_shards(), 1);
        assert_eq!(forest.global_len(), tree.len());
        for v in tree.nodes() {
            assert_eq!(forest.route(v), (ShardId(0), v));
            assert_eq!(forest.to_global(ShardId(0), v), v);
        }
    }

    #[test]
    fn from_trees_concatenates() {
        let a = Arc::new(Tree::star(2)); // 3 nodes
        let b = Arc::new(Tree::path(4)); // 4 nodes
        let forest = Forest::from_trees(vec![a, b]);
        assert_eq!(forest.num_shards(), 2);
        assert_eq!(forest.global_len(), 7);
        assert_eq!(forest.route(NodeId(0)), (ShardId(0), NodeId(0)));
        assert_eq!(forest.route(NodeId(2)), (ShardId(0), NodeId(2)));
        assert_eq!(forest.route(NodeId(3)), (ShardId(1), NodeId(0)));
        assert_eq!(forest.route(NodeId(6)), (ShardId(1), NodeId(3)));
        assert_eq!(forest.to_global(ShardId(1), NodeId(2)), NodeId(5));
    }

    #[test]
    fn partition_preserves_structure() {
        // Random-ish tree: check every non-root node keeps its parent
        // relation inside its shard tree.
        let tree = Tree::from_parents(&[
            None,
            Some(0),
            Some(1),
            Some(1),
            Some(0),
            Some(4),
            Some(4),
            Some(0),
            Some(2),
        ]);
        for shards in 1..=4 {
            let forest = Forest::partition(&tree, shards);
            assert!(forest.num_shards() <= shards);
            let mut seen = 0usize;
            for v in tree.nodes().skip(1) {
                let (s, local) = forest.route(v);
                assert_eq!(forest.to_global(s, local), v);
                seen += 1;
                let shard_tree = forest.tree(s);
                let p = tree.parent(v).unwrap();
                let p_local = if p == tree.root() { NodeId(0) } else { forest.route(p).1 };
                if p != tree.root() {
                    assert_eq!(forest.route(p).0, s, "parent of {v:?} lives in another shard");
                }
                assert_eq!(shard_tree.parent(local), Some(p_local));
            }
            assert_eq!(seen, tree.len() - 1);
            // Shard trees partition the non-root nodes (each adds 1 root).
            let total: usize = forest.trees().iter().map(|t| t.len() - 1).sum();
            assert_eq!(total, tree.len() - 1);
        }
    }

    #[test]
    fn partition_balances_sizes() {
        // A star of 64 leaves splits 16/16/16/16 under LPT.
        let tree = Tree::star(64);
        let forest = Forest::partition(&tree, 4);
        assert_eq!(forest.num_shards(), 4);
        for t in forest.trees() {
            assert_eq!(t.len(), 17); // root replica + 16 leaves
        }
    }

    #[test]
    fn partition_clamps_to_child_count() {
        let tree = Tree::star(2);
        let forest = Forest::partition(&tree, 8);
        assert_eq!(forest.num_shards(), 2);
        let single = Forest::partition(&Tree::from_parents(&[None]), 8);
        assert_eq!(single.num_shards(), 1);
        assert_eq!(single.tree(ShardId(0)).len(), 1);
    }

    #[test]
    fn partition_is_deterministic() {
        let tree = Tree::kary(3, 4);
        let a = Forest::partition(&tree, 3);
        let b = Forest::partition(&tree, 3);
        for v in tree.nodes() {
            assert_eq!(a.route(v), b.route(v));
        }
    }

    #[test]
    fn route_request_keeps_sign() {
        let tree = Tree::star(4);
        let forest = Forest::partition(&tree, 2);
        let (s, r) = forest.route_request(Request::neg(NodeId(3)));
        assert!(!r.is_positive());
        assert_eq!(forest.to_global(s, r.node), NodeId(3));
    }
}
