//! Forests of trees and shard routing.
//!
//! The paper's motivating application (Section 2, FIB caching) is naturally
//! a *forest*: an IP rule trie decomposes at the default route into many
//! independent subtries, each cacheable by its own TC instance. A
//! [`Forest`] is a partition of one or more [`Tree`]s into **shards**: each
//! shard is a complete rooted tree of its own, and a routing table maps
//! every node of a *global* id space to its `(shard, local node)` home.
//!
//! Three ways to build one:
//!
//! * [`Forest::single`] — one tree, one shard, identity routing (how the
//!   classic single-tree drivers present themselves to the engine);
//! * [`Forest::from_trees`] — independent trees side by side (multi-tenant
//!   universes); global ids are the trees concatenated in order;
//! * [`Forest::partition`] — split one tree at its root into
//!   size-balanced shards (longest-processing-time binning of the root's
//!   child subtrees). Every shard tree replicates the original root as its
//!   own root, so each shard remains a well-formed rooted tree and the
//!   global id space is exactly the original tree's; requests to the
//!   original root route to shard 0.
//!
//! The routing table is a flat `Vec` indexed by global node id — O(1) per
//! request, no hashing on the hot path.

use std::sync::Arc;

use crate::request::Request;
use crate::tree::{NodeId, Tree};

/// Identifier of a shard in a [`Forest`]; a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The index as `usize`, for direct vector indexing.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A partition of one or more trees into shards, with O(1) global-to-local
/// request routing.
///
/// ```
/// use std::sync::Arc;
/// use otc_core::forest::{Forest, ShardId};
/// use otc_core::tree::{NodeId, Tree};
///
/// //        0
/// //     /  |  \
/// //    1   3   5       three subtries under the root
/// //    |   |
/// //    2   4
/// let tree = Tree::from_parents(&[None, Some(0), Some(1), Some(0), Some(3), Some(0)]);
/// let forest = Forest::partition(&tree, 2);
/// assert_eq!(forest.num_shards(), 2);
/// // Every non-root node keeps its identity: route there and back.
/// for v in tree.nodes().skip(1) {
///     let (shard, local) = forest.route(v);
///     assert_eq!(forest.to_global(shard, local), v);
/// }
/// // The original root routes to shard 0 and is the root of every shard.
/// assert_eq!(forest.route(NodeId(0)), (ShardId(0), NodeId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct Forest {
    trees: Vec<Arc<Tree>>,
    /// Global node id → `(shard, local node)`.
    route: Vec<(ShardId, NodeId)>,
    /// Per shard: local node id → global node id.
    globals: Vec<Vec<NodeId>>,
}

impl Forest {
    /// A single-shard forest: one tree, identity routing.
    #[must_use]
    pub fn single(tree: Arc<Tree>) -> Self {
        Self::from_trees(vec![tree])
    }

    /// Independent trees side by side, one shard each. The global id space
    /// is the concatenation: tree `s`'s node `i` has global id
    /// `offset(s) + i`.
    ///
    /// # Panics
    /// Panics if `trees` is empty.
    #[must_use]
    pub fn from_trees(trees: Vec<Arc<Tree>>) -> Self {
        assert!(!trees.is_empty(), "a forest has at least one shard");
        let total: usize = trees.iter().map(|t| t.len()).sum();
        let mut route = Vec::with_capacity(total);
        let mut globals = Vec::with_capacity(trees.len());
        let mut offset = 0u32;
        for (s, tree) in trees.iter().enumerate() {
            let sid = ShardId(s as u32);
            let mut global_of = Vec::with_capacity(tree.len());
            for local in 0..tree.len() as u32 {
                route.push((sid, NodeId(local)));
                global_of.push(NodeId(offset + local));
            }
            globals.push(global_of);
            offset += tree.len() as u32;
        }
        Self { trees, route, globals }
    }

    /// Splits `tree` at its root into (up to) `shards` size-balanced
    /// shards. The root's child subtrees are binned by
    /// longest-processing-time (largest subtree to the currently lightest
    /// bin), then each bin becomes one shard tree: a replica of the
    /// original root with the bin's subtrees attached in original preorder.
    ///
    /// The global id space is the original tree's node ids. The original
    /// root routes to shard 0 (its replicas in other shards are structural
    /// only and have no global id of their own). The effective shard count
    /// is `min(shards, #children of the root)`, at least 1 — a single-node
    /// tree yields one single-node shard.
    ///
    /// Note that a partitioned forest is a *different* caching universe
    /// from the unsharded tree: each shard has its own policy, capacity
    /// and phase structure. Sharded totals are comparable to the sum of
    /// independent per-shard runs (and the engine's differential tests pin
    /// exactly that), not to a single run over the whole tree.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn partition(tree: &Tree, shards: usize) -> Self {
        assert!(shards >= 1, "a forest has at least one shard");
        let root = tree.root();
        let kids = tree.children(root);
        let bins_n = shards.min(kids.len().max(1));

        // LPT binning: biggest subtree first, always into the lightest bin.
        let mut order: Vec<NodeId> = kids.to_vec();
        order.sort_by_key(|&c| (std::cmp::Reverse(tree.subtree_size(c)), c.0));
        let mut bins: Vec<Vec<NodeId>> = vec![Vec::new(); bins_n];
        let mut load = vec![0u64; bins_n];
        for c in order {
            let lightest = (0..bins_n).min_by_key(|&b| (load[b], b)).expect("bins_n >= 1");
            bins[lightest].push(c);
            load[lightest] += u64::from(tree.subtree_size(c));
        }
        // Original preorder within each bin keeps layouts deterministic and
        // readable regardless of the binning order.
        for bin in &mut bins {
            bin.sort_by_key(|&c| tree.preorder_rank(c));
        }

        let mut route = vec![(ShardId(0), NodeId(0)); tree.len()];
        let mut trees = Vec::with_capacity(bins_n);
        let mut globals = Vec::with_capacity(bins_n);
        for (s, bin) in bins.iter().enumerate() {
            let sid = ShardId(s as u32);
            let mut parents: Vec<Option<usize>> = vec![None]; // local 0: root replica
            let mut global_of = vec![root];
            for &c in bin {
                for &v in tree.subtree(c) {
                    let local = NodeId(parents.len() as u32);
                    let p = tree.parent(v).expect("only the root has no parent");
                    // Parents precede children in preorder, so a non-root
                    // parent's local id is already recorded in the route.
                    let p_local = if p == root { NodeId(0) } else { route[p.index()].1 };
                    parents.push(Some(p_local.index()));
                    route[v.index()] = (sid, local);
                    global_of.push(v);
                }
            }
            trees.push(Arc::new(Tree::from_parents(&parents)));
            globals.push(global_of);
        }
        Self { trees, route, globals }
    }

    /// Number of shards.
    #[inline]
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.trees.len()
    }

    /// The shard trees, indexed by [`ShardId`].
    #[must_use]
    pub fn trees(&self) -> &[Arc<Tree>] {
        &self.trees
    }

    /// The tree of one shard.
    #[must_use]
    pub fn tree(&self, shard: ShardId) -> &Arc<Tree> {
        &self.trees[shard.index()]
    }

    /// Size of the global node id space (valid request targets are
    /// `0..global_len()`).
    #[inline]
    #[must_use]
    pub fn global_len(&self) -> usize {
        self.route.len()
    }

    /// Routes a global node id to its `(shard, local node)` home.
    ///
    /// # Panics
    /// Panics if `v` is outside the global id space.
    #[inline]
    #[must_use]
    pub fn route(&self, v: NodeId) -> (ShardId, NodeId) {
        self.route[v.index()]
    }

    /// Routes a globally-addressed request to `(shard, local request)`.
    ///
    /// # Panics
    /// Panics if the request targets a node outside the global id space.
    #[inline]
    #[must_use]
    pub fn route_request(&self, r: Request) -> (ShardId, Request) {
        let (shard, local) = self.route(r.node);
        (shard, Request { node: local, sign: r.sign })
    }

    /// The global id of a shard-local node. For partitioned forests the
    /// root replica of every shard maps back to the original root.
    ///
    /// # Panics
    /// Panics if `shard` or `local` is out of range.
    #[inline]
    #[must_use]
    pub fn to_global(&self, shard: ShardId, local: NodeId) -> NodeId {
        self.globals[shard.index()][local.index()]
    }

    /// True if routing is the identity: one shard whose local ids equal
    /// the global ids. [`Forest::single`] always is; a 1-shard
    /// [`Forest::partition`] need **not** be (it renumbers nodes in
    /// preorder). Consumers use this to decide whether requests can skip
    /// the routing table.
    #[must_use]
    pub fn is_identity_routing(&self) -> bool {
        self.trees.len() == 1
            && self
                .route
                .iter()
                .enumerate()
                .all(|(i, &(s, local))| s == ShardId(0) && local.index() == i)
    }

    /// Splits `tree` at its root into **cells**: the finest root partition,
    /// one shard per root-child subtree. Cells are the migration unit of
    /// dynamic rebalancing — each cell carries its own policy, capacity and
    /// phase structure, so *where* a cell executes can never change what it
    /// costs. Equivalent to `Forest::partition(tree, #root children)`.
    #[must_use]
    pub fn cells(tree: &Tree) -> Self {
        let kids = tree.children(tree.root()).len().max(1);
        Self::partition(tree, kids)
    }
}

/// Why an epoch-stamped routing lookup or table update was refused.
/// Stale routing is always a typed refusal, never a silent misroute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// The lookup was stamped with an epoch older than the table's: the
    /// caller routed against a table that has since been republished.
    StaleEpoch {
        /// Epoch the lookup was stamped with.
        stamped: u64,
        /// The table's current epoch.
        current: u64,
    },
    /// The lookup was stamped with an epoch the table has not reached —
    /// the stamp cannot have come from this table.
    FutureEpoch {
        /// Epoch the lookup was stamped with.
        stamped: u64,
        /// The table's current epoch.
        current: u64,
    },
    /// The cell id is outside the table.
    UnknownCell {
        /// The offending cell.
        cell: ShardId,
        /// Number of cells the table covers.
        cells: usize,
    },
    /// A move names a destination group outside the table.
    UnknownGroup {
        /// The offending group.
        group: u32,
        /// Number of groups the table covers.
        groups: u32,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::StaleEpoch { stamped, current } => {
                write!(f, "routing stamped with stale epoch {stamped} (table is at {current})")
            }
            Self::FutureEpoch { stamped, current } => {
                write!(f, "routing stamped with future epoch {stamped} (table is at {current})")
            }
            Self::UnknownCell { cell, cells } => {
                write!(f, "cell {cell} outside the routing table ({cells} cells)")
            }
            Self::UnknownGroup { group, groups } => {
                write!(f, "group {group} outside the routing table ({groups} groups)")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// An epoch-versioned cell → group placement table.
///
/// Placement is an *execution* concept: a [`Forest`] of cells fixes what
/// every request costs, and the `RoutingTable` only says which worker
/// group currently executes each cell. Rebalancing republishes the table
/// with a bumped epoch; lookups stamped with an old epoch are refused
/// ([`RouteError::StaleEpoch`]) instead of silently routing to a group
/// that may no longer own the cell.
///
/// ```
/// use otc_core::forest::{RouteError, RoutingTable, ShardId};
///
/// let mut table = RoutingTable::new(vec![0, 0, 1], 2).unwrap();
/// let stamp = table.epoch();
/// assert_eq!(table.route_at(ShardId(2), stamp), Ok(1));
/// table.apply(&[(ShardId(2), 0)]).unwrap();
/// // The pre-publication stamp is now refused, not misrouted.
/// assert_eq!(
///     table.route_at(ShardId(2), stamp),
///     Err(RouteError::StaleEpoch { stamped: stamp, current: stamp + 1 })
/// );
/// assert_eq!(table.owner_of(ShardId(2)), Some(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTable {
    /// Cell index → owning group. Flat and dense: O(1) lookups.
    owner: Vec<u32>,
    groups: u32,
    epoch: u64,
}

impl RoutingTable {
    /// Builds a table from an explicit placement (cell index → group), at
    /// epoch 0.
    ///
    /// # Errors
    /// [`RouteError::UnknownGroup`] if any owner is `>= groups`;
    /// [`RouteError::UnknownCell`] if `owner` is empty or `groups == 0`.
    pub fn new(owner: Vec<u32>, groups: u32) -> Result<Self, RouteError> {
        if owner.is_empty() || groups == 0 {
            return Err(RouteError::UnknownCell { cell: ShardId(0), cells: 0 });
        }
        if let Some(&g) = owner.iter().find(|&&g| g >= groups) {
            return Err(RouteError::UnknownGroup { group: g, groups });
        }
        Ok(Self { owner, groups, epoch: 0 })
    }

    /// The deterministic static placement: longest-processing-time binning
    /// of `cell_weights` (largest weight to the currently lightest group,
    /// ties to the lower index), at epoch 0. This is the same discipline
    /// [`Forest::partition`] uses for subtree sizes, so "static LPT" means
    /// the same thing for cells as it does for shards.
    ///
    /// # Panics
    /// Panics if `cell_weights` is empty or `groups == 0`.
    #[must_use]
    pub fn lpt(cell_weights: &[u64], groups: u32) -> Self {
        assert!(!cell_weights.is_empty(), "a routing table covers at least one cell");
        assert!(groups >= 1, "a routing table covers at least one group");
        let mut order: Vec<usize> = (0..cell_weights.len()).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(cell_weights[c]), c));
        let mut owner = vec![0u32; cell_weights.len()];
        let mut load = vec![0u64; groups as usize];
        for c in order {
            let lightest = (0..groups as usize).min_by_key(|&g| (load[g], g)).expect("groups >= 1");
            owner[c] = lightest as u32;
            load[lightest] += cell_weights[c];
        }
        Self { owner, groups, epoch: 0 }
    }

    /// The table's current epoch (0 at construction; `+1` per
    /// [`RoutingTable::apply`]).
    #[inline]
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of cells the table covers.
    #[inline]
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.owner.len()
    }

    /// Number of worker groups the table places cells onto.
    #[inline]
    #[must_use]
    pub fn num_groups(&self) -> u32 {
        self.groups
    }

    /// The group currently owning `cell` — the O(1) fast path for callers
    /// already serialized against republication. `None` if the cell is
    /// outside the table.
    #[inline]
    #[must_use]
    pub fn owner_of(&self, cell: ShardId) -> Option<u32> {
        self.owner.get(cell.index()).copied()
    }

    /// The full placement, cell index → group.
    #[must_use]
    pub fn owners(&self) -> &[u32] {
        &self.owner
    }

    /// Routes `cell` under a lookup stamped with `epoch`. The stamp must
    /// equal the table's current epoch: a stale stamp means the table was
    /// republished since the caller read it, and the caller must re-route
    /// — silently returning the *new* owner would hide exactly the race
    /// the epoch exists to surface.
    ///
    /// # Errors
    /// [`RouteError::StaleEpoch`] / [`RouteError::FutureEpoch`] on a stamp
    /// mismatch, [`RouteError::UnknownCell`] for an out-of-range cell.
    #[inline]
    pub fn route_at(&self, cell: ShardId, epoch: u64) -> Result<u32, RouteError> {
        if epoch < self.epoch {
            return Err(RouteError::StaleEpoch { stamped: epoch, current: self.epoch });
        }
        if epoch > self.epoch {
            return Err(RouteError::FutureEpoch { stamped: epoch, current: self.epoch });
        }
        self.owner_of(cell).ok_or(RouteError::UnknownCell { cell, cells: self.owner.len() })
    }

    /// Publishes a new table version: re-homes every `(cell, group)` in
    /// `moves` and bumps the epoch (also for an empty `moves`, so callers
    /// that republish once per decision boundary get one epoch per
    /// boundary). All moves are validated before any is applied.
    ///
    /// # Errors
    /// [`RouteError::UnknownCell`] / [`RouteError::UnknownGroup`] if a move
    /// names a cell or group outside the table; nothing is applied.
    pub fn apply(&mut self, moves: &[(ShardId, u32)]) -> Result<u64, RouteError> {
        for &(cell, group) in moves {
            if cell.index() >= self.owner.len() {
                return Err(RouteError::UnknownCell { cell, cells: self.owner.len() });
            }
            if group >= self.groups {
                return Err(RouteError::UnknownGroup { group, groups: self.groups });
            }
        }
        for &(cell, group) in moves {
            if let Some(slot) = self.owner.get_mut(cell.index()) {
                *slot = group;
            }
        }
        self.epoch += 1;
        Ok(self.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_is_identity() {
        let tree = Arc::new(Tree::kary(2, 3));
        let forest = Forest::single(Arc::clone(&tree));
        assert_eq!(forest.num_shards(), 1);
        assert_eq!(forest.global_len(), tree.len());
        for v in tree.nodes() {
            assert_eq!(forest.route(v), (ShardId(0), v));
            assert_eq!(forest.to_global(ShardId(0), v), v);
        }
    }

    #[test]
    fn from_trees_concatenates() {
        let a = Arc::new(Tree::star(2)); // 3 nodes
        let b = Arc::new(Tree::path(4)); // 4 nodes
        let forest = Forest::from_trees(vec![a, b]);
        assert_eq!(forest.num_shards(), 2);
        assert_eq!(forest.global_len(), 7);
        assert_eq!(forest.route(NodeId(0)), (ShardId(0), NodeId(0)));
        assert_eq!(forest.route(NodeId(2)), (ShardId(0), NodeId(2)));
        assert_eq!(forest.route(NodeId(3)), (ShardId(1), NodeId(0)));
        assert_eq!(forest.route(NodeId(6)), (ShardId(1), NodeId(3)));
        assert_eq!(forest.to_global(ShardId(1), NodeId(2)), NodeId(5));
    }

    #[test]
    fn partition_preserves_structure() {
        // Random-ish tree: check every non-root node keeps its parent
        // relation inside its shard tree.
        let tree = Tree::from_parents(&[
            None,
            Some(0),
            Some(1),
            Some(1),
            Some(0),
            Some(4),
            Some(4),
            Some(0),
            Some(2),
        ]);
        for shards in 1..=4 {
            let forest = Forest::partition(&tree, shards);
            assert!(forest.num_shards() <= shards);
            let mut seen = 0usize;
            for v in tree.nodes().skip(1) {
                let (s, local) = forest.route(v);
                assert_eq!(forest.to_global(s, local), v);
                seen += 1;
                let shard_tree = forest.tree(s);
                let p = tree.parent(v).unwrap();
                let p_local = if p == tree.root() { NodeId(0) } else { forest.route(p).1 };
                if p != tree.root() {
                    assert_eq!(forest.route(p).0, s, "parent of {v:?} lives in another shard");
                }
                assert_eq!(shard_tree.parent(local), Some(p_local));
            }
            assert_eq!(seen, tree.len() - 1);
            // Shard trees partition the non-root nodes (each adds 1 root).
            let total: usize = forest.trees().iter().map(|t| t.len() - 1).sum();
            assert_eq!(total, tree.len() - 1);
        }
    }

    #[test]
    fn partition_balances_sizes() {
        // A star of 64 leaves splits 16/16/16/16 under LPT.
        let tree = Tree::star(64);
        let forest = Forest::partition(&tree, 4);
        assert_eq!(forest.num_shards(), 4);
        for t in forest.trees() {
            assert_eq!(t.len(), 17); // root replica + 16 leaves
        }
    }

    #[test]
    fn partition_clamps_to_child_count() {
        let tree = Tree::star(2);
        let forest = Forest::partition(&tree, 8);
        assert_eq!(forest.num_shards(), 2);
        let single = Forest::partition(&Tree::from_parents(&[None]), 8);
        assert_eq!(single.num_shards(), 1);
        assert_eq!(single.tree(ShardId(0)).len(), 1);
    }

    #[test]
    fn partition_is_deterministic() {
        let tree = Tree::kary(3, 4);
        let a = Forest::partition(&tree, 3);
        let b = Forest::partition(&tree, 3);
        for v in tree.nodes() {
            assert_eq!(a.route(v), b.route(v));
        }
    }

    #[test]
    fn route_request_keeps_sign() {
        let tree = Tree::star(4);
        let forest = Forest::partition(&tree, 2);
        let (s, r) = forest.route_request(Request::neg(NodeId(3)));
        assert!(!r.is_positive());
        assert_eq!(forest.to_global(s, r.node), NodeId(3));
    }

    #[test]
    fn cells_is_the_finest_root_partition() {
        //        0
        //     /  |  \
        //    1   3   5
        //    |   |
        //    2   4
        let tree = Tree::from_parents(&[None, Some(0), Some(1), Some(0), Some(3), Some(0)]);
        let forest = Forest::cells(&tree);
        assert_eq!(forest.num_shards(), 3, "one cell per root child");
        // Each cell tree is the root replica plus exactly one subtrie.
        let mut sizes: Vec<usize> = forest.trees().iter().map(|t| t.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 3, 3]);
        // Degenerate trees still yield one cell.
        assert_eq!(Forest::cells(&Tree::from_parents(&[None])).num_shards(), 1);
    }

    #[test]
    fn routing_table_fast_path_and_validation() {
        let table = RoutingTable::new(vec![1, 0, 1, 2], 3).expect("valid placement");
        assert_eq!(table.epoch(), 0);
        assert_eq!(table.num_cells(), 4);
        assert_eq!(table.num_groups(), 3);
        assert_eq!(table.owner_of(ShardId(0)), Some(1));
        assert_eq!(table.owner_of(ShardId(3)), Some(2));
        assert_eq!(table.owner_of(ShardId(4)), None);
        assert_eq!(
            RoutingTable::new(vec![0, 3], 3),
            Err(RouteError::UnknownGroup { group: 3, groups: 3 })
        );
        assert!(RoutingTable::new(vec![], 3).is_err());
        assert!(RoutingTable::new(vec![0], 0).is_err());
    }

    #[test]
    fn stale_epoch_routing_is_refused_not_misrouted() {
        let mut table = RoutingTable::new(vec![0, 0, 1, 1], 2).expect("valid");
        let stamp = table.epoch();
        assert_eq!(table.route_at(ShardId(2), stamp), Ok(1));

        // Republish: cell 2 moves to group 0.
        let new_epoch = table.apply(&[(ShardId(2), 0)]).expect("valid move");
        assert_eq!(new_epoch, 1);
        assert_eq!(table.owner_of(ShardId(2)), Some(0), "fast path sees the new owner");

        // The pre-publication stamp must be refused with a typed error —
        // never silently resolved to either the old or the new owner.
        assert_eq!(
            table.route_at(ShardId(2), stamp),
            Err(RouteError::StaleEpoch { stamped: 0, current: 1 })
        );
        // A stamp from the future is equally refused.
        assert_eq!(
            table.route_at(ShardId(2), 7),
            Err(RouteError::FutureEpoch { stamped: 7, current: 1 })
        );
        // Re-routing at the current epoch succeeds.
        assert_eq!(table.route_at(ShardId(2), table.epoch()), Ok(0));
        assert_eq!(
            table.route_at(ShardId(9), table.epoch()),
            Err(RouteError::UnknownCell { cell: ShardId(9), cells: 4 })
        );
    }

    #[test]
    fn apply_validates_before_mutating_and_bumps_on_empty() {
        let mut table = RoutingTable::new(vec![0, 1], 2).expect("valid");
        let before = table.clone();
        let err = table.apply(&[(ShardId(0), 1), (ShardId(5), 0)]).unwrap_err();
        assert_eq!(err, RouteError::UnknownCell { cell: ShardId(5), cells: 2 });
        assert_eq!(table, before, "a refused apply changes nothing, including the epoch");
        // An empty decision still publishes a new version: one epoch per
        // decision boundary, moves or not.
        assert_eq!(table.apply(&[]), Ok(1));
        assert_eq!(table.owners(), &[0, 1]);
    }

    #[test]
    fn lpt_placement_is_deterministic_and_balanced() {
        // Weights 8,7,2,2,1 over 2 groups: LPT gives {8,2} and {7,2,1}.
        let a = RoutingTable::lpt(&[8, 7, 2, 2, 1], 2);
        let b = RoutingTable::lpt(&[8, 7, 2, 2, 1], 2);
        assert_eq!(a, b);
        assert_eq!(a.owners(), &[0, 1, 1, 0, 1]);
        let mut load = [0u64; 2];
        for (c, &g) in a.owners().iter().enumerate() {
            load[g as usize] += [8u64, 7, 2, 2, 1][c];
        }
        assert_eq!(load, [10, 10]);
        // More groups than cells: every cell gets its own group.
        let solo = RoutingTable::lpt(&[3, 1], 4);
        assert_eq!(solo.owners(), &[0, 1]);
    }
}
