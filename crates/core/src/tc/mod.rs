//! The TC (Tree Caching) algorithm of the paper, in two interchangeable
//! implementations.
//!
//! * [`TcReference`] — a direct transcription of the
//!   algorithm's definition (Section 4): at every paying round it recomputes
//!   counter sums of candidate changesets from scratch. O(|T|) per round,
//!   obviously correct; used as the differential-testing oracle.
//! * [`TcFast`] — the efficient implementation of Section 6:
//!   `O(h(T) + max{h(T), deg(T)}·|Xt|)` operations per decision with
//!   `O(|T|)` auxiliary memory (Theorem 6.1), maintaining
//!   `(cnt(P_t(u)), |P_t(u)|)` at non-cached nodes and `val_t(H_t(u))` at
//!   cached nodes.
//!
//! Both implement [`crate::policy::CachePolicy`] and are step-for-step
//! equivalent (a property test in this module drives them in lockstep).
//!
//! # Algorithm recap (Section 4)
//!
//! TC runs in phases, each starting with an empty cache and all counters
//! zero. A node's counter increments whenever TC pays 1 for a request to it,
//! and resets whenever the node is fetched or evicted. At the end of round
//! `t`, TC looks for a valid changeset `X` with
//!
//! * saturation: `cnt_t(X) ≥ |X| · α`, and
//! * maximality: no valid superset `Y ⊋ X` is saturated,
//!
//! and applies it (fetching if positive, evicting if negative). If a fetch
//! would overflow the capacity `kONL`, TC instead evicts everything and
//! starts a new phase.

pub mod fast;
pub mod reference;
pub mod val;

pub use fast::TcFast;
pub use reference::TcReference;

use crate::request::CostModel;

/// Configuration shared by both TC implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcConfig {
    /// Per-node fetch/evict cost `α ≥ 1`.
    pub alpha: u64,
    /// Cache capacity `kONL ≥ 1`.
    pub capacity: usize,
}

impl TcConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    /// Panics if `alpha == 0` or `capacity == 0`.
    #[must_use]
    pub fn new(alpha: u64, capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        let _ = CostModel::new(alpha); // validates alpha >= 1
        Self { alpha, capacity }
    }
}

/// Counters the implementations expose for experiments (phase anatomy,
/// E9) and sanity checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcStats {
    /// Completed phases (phase restarts triggered by capacity overflow).
    pub phases_restarted: u64,
    /// Changesets fetched.
    pub fetches: u64,
    /// Changesets evicted (not counting flushes).
    pub evictions: u64,
    /// Total nodes fetched.
    pub nodes_fetched: u64,
    /// Total nodes evicted (including flush evictions).
    pub nodes_evicted: u64,
    /// Paying requests served.
    pub paid_requests: u64,
}

#[cfg(test)]
mod equivalence_tests {
    use std::sync::Arc;

    use super::*;
    use crate::policy::{ActionBuffer, CachePolicy};
    use crate::request::{Request, Sign};
    use crate::tree::{NodeId, Tree};

    /// Drives both implementations in lockstep through reused
    /// [`ActionBuffer`]s and asserts identical outcomes and cache states
    /// after every round (this also catches buffer-staleness bugs: a
    /// policy forgetting to clear would leak the previous round's actions).
    fn check_lockstep(tree: Tree, cfg: TcConfig, requests: &[Request]) {
        let tree = Arc::new(tree);
        let mut fast = super::fast::TcFast::new(Arc::clone(&tree), cfg);
        let mut refr = super::reference::TcReference::new(Arc::clone(&tree), cfg);
        let mut a = ActionBuffer::new();
        let mut b = ActionBuffer::new();
        for (i, &req) in requests.iter().enumerate() {
            fast.step(req, &mut a);
            refr.step(req, &mut b);
            assert_eq!(a, b, "step {i} diverged on {req:?}");
            assert_eq!(fast.cache(), refr.cache(), "cache diverged after step {i}");
            fast.audit().unwrap_or_else(|e| panic!("fast audit failed at step {i}: {e}"));
        }
    }

    /// Deterministic pseudo-random request stream without external deps.
    fn stream(tree: &Tree, len: usize, seed: u64) -> Vec<Request> {
        let mut rng = otc_util::SplitMix64::new(seed);
        (0..len)
            .map(|_| {
                let node = NodeId(rng.index(tree.len()) as u32);
                let sign = if rng.chance(0.4) { Sign::Negative } else { Sign::Positive };
                Request { node, sign }
            })
            .collect()
    }

    #[test]
    fn lockstep_on_path() {
        let tree = Tree::path(9);
        let reqs = stream(&tree, 3000, 1);
        check_lockstep(tree, TcConfig::new(4, 5), &reqs);
    }

    #[test]
    fn lockstep_on_star() {
        let tree = Tree::star(12);
        let reqs = stream(&tree, 3000, 2);
        check_lockstep(tree, TcConfig::new(3, 6), &reqs);
    }

    #[test]
    fn lockstep_on_binary() {
        let tree = Tree::kary(2, 4);
        let reqs = stream(&tree, 4000, 3);
        check_lockstep(tree, TcConfig::new(2, 7), &reqs);
    }

    #[test]
    fn lockstep_on_caterpillar_odd_alpha() {
        let tree = Tree::caterpillar(6, 2);
        let reqs = stream(&tree, 4000, 4);
        check_lockstep(tree, TcConfig::new(5, 4), &reqs);
    }

    #[test]
    fn lockstep_tiny_capacity() {
        let tree = Tree::kary(3, 3);
        let reqs = stream(&tree, 2500, 5);
        check_lockstep(tree, TcConfig::new(2, 1), &reqs);
    }

    #[test]
    fn lockstep_alpha_one() {
        let tree = Tree::kary(2, 3);
        let reqs = stream(&tree, 2500, 6);
        check_lockstep(tree, TcConfig::new(1, 4), &reqs);
    }

    #[test]
    fn lockstep_capacity_larger_than_tree() {
        let tree = Tree::kary(2, 3);
        let reqs = stream(&tree, 2500, 7);
        check_lockstep(tree, TcConfig::new(4, 64), &reqs);
    }
}
