//! Exact arithmetic for the paper's `val` potential (Section 6.2).
//!
//! For a set of cached nodes `A` at time `t`,
//!
//! ```text
//! val_t(A) = cnt_t(A) − |A|·α + |A| / (|T| + 1)
//! ```
//!
//! The first two terms are integers and the third lies strictly in `(0, 1)`
//! for non-empty `A`, so `val` is never zero and comparisons reduce to
//! lexicographic comparison on the exact pair
//! `(cnt(A) − |A|·α, |A|)`. We store exactly that pair — no floating point,
//! so the tie-breaking the paper relies on is exact at any scale.

/// The exact value `val(A)` as (integer part, set size).
///
/// Semantics: the represented rational is `int + size/(|T|+1)` with
/// `0 ≤ size ≤ |T|`. For non-empty sets `size ≥ 1`, hence:
///
/// * `val(A) > 0  ⟺  int ≥ 0`
/// * `val(A) < 0  ⟺  int ≤ −1`
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ValPair {
    /// `cnt(A) − |A|·α`.
    pub int: i64,
    /// `|A|`.
    pub size: i64,
}

impl ValPair {
    /// The value of an empty set (exactly zero).
    #[must_use]
    pub fn zero() -> Self {
        Self { int: 0, size: 0 }
    }

    /// The base value of a single cached node with counter `cnt`:
    /// `cnt − α + 1/(|T|+1)`.
    #[must_use]
    pub fn single(cnt: u64, alpha: u64) -> Self {
        Self { int: cnt as i64 - alpha as i64, size: 1 }
    }

    /// `val > 0` (only meaningful for sets; exact per the module docs).
    #[inline]
    #[must_use]
    pub fn is_positive(self) -> bool {
        debug_assert!(self.size >= 0);
        // int ≥ 0 and non-empty, or (int > 0 would imply non-empty anyway —
        // an empty set always has int == 0 by construction).
        self.int > 0 || (self.int == 0 && self.size > 0)
    }

    /// Additivity: `val(A ⊔ B) = val(A) + val(B)` for disjoint sets.
    #[inline]
    #[must_use]
    pub fn plus(self, other: ValPair) -> ValPair {
        ValPair { int: self.int + other.int, size: self.size + other.size }
    }

    /// Difference (for delta propagation up the tree).
    #[inline]
    #[must_use]
    pub fn minus(self, other: ValPair) -> ValPair {
        ValPair { int: self.int - other.int, size: self.size - other.size }
    }

    /// The contribution of this set under the `H'` rule (Section 6.2):
    /// itself if `val > 0`, else the empty set.
    #[inline]
    #[must_use]
    pub fn contribution(self) -> ValPair {
        if self.is_positive() {
            self
        } else {
            ValPair::zero()
        }
    }

    /// True exactly when the two pairs denote equal rationals (they encode
    /// `int + size/(T+1)` with the same implicit denominator).
    #[must_use]
    pub fn same_value(self, other: ValPair) -> bool {
        self == other
    }
}

impl std::cmp::PartialOrd for ValPair {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl std::cmp::Ord for ValPair {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // int dominates; size/(|T|+1) < 1 breaks ties.
        (self.int, self.size).cmp(&(other.int, other.size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_zero_for_nonempty() {
        // A freshly cached node with cnt = 0 and α = 2 has val = −2 + ε < 0.
        let v = ValPair::single(0, 2);
        assert!(!v.is_positive());
        // A node with cnt = α has val = 0 + ε > 0 — saturated.
        let v = ValPair::single(2, 2);
        assert!(v.is_positive());
    }

    #[test]
    fn additivity() {
        let a = ValPair::single(3, 2);
        let b = ValPair::single(0, 2);
        let sum = a.plus(b);
        // (3 − α) + (0 − α) with α = 2.
        assert_eq!(sum.int, -1);
        assert_eq!(sum.size, 2);
        assert_eq!(sum.minus(b), a);
    }

    #[test]
    fn contribution_rule() {
        let neg = ValPair::single(0, 4);
        assert_eq!(neg.contribution(), ValPair::zero());
        let pos = ValPair::single(9, 4);
        assert_eq!(pos.contribution(), pos);
    }

    #[test]
    fn ordering_breaks_ties_by_size() {
        let small = ValPair { int: 0, size: 1 };
        let big = ValPair { int: 0, size: 3 };
        assert!(big > small);
        let negative = ValPair { int: -1, size: 10 };
        assert!(negative < small);
    }

    #[test]
    fn empty_is_not_positive() {
        assert!(!ValPair::zero().is_positive());
    }
}
