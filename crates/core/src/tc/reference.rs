//! Reference implementation of TC: recompute everything from scratch.
//!
//! This is a literal transcription of the algorithm's definition
//! (Section 4), with candidate changesets restricted by Lemma 5.1: a
//! positive changeset applied at time `t` is `P_t(u)` (the non-cached part
//! of `T(u)`) for some ancestor `u` of the requested node; a negative
//! changeset is the maximum-`val` tree cap `H_t(u)` at the root `u` of the
//! cached tree containing the requested node. Unlike [`super::fast::TcFast`]
//! no state is maintained across rounds beyond the counters themselves, so
//! every decision is recomputed in O(|T|) — slow, but transparently
//! faithful to the paper. It is the oracle for differential tests.

use std::sync::Arc;

use crate::cache::CacheSet;
use crate::policy::{ActionBuffer, ActionKind, CachePolicy};
use crate::request::{Request, Sign};
use crate::tree::{NodeId, Tree};

use super::val::ValPair;
use super::{TcConfig, TcStats};

/// The from-scratch TC implementation (differential-testing oracle).
#[derive(Debug, Clone)]
pub struct TcReference {
    tree: Arc<Tree>,
    cfg: TcConfig,
    cache: CacheSet,
    cnt: Vec<u64>,
    stats: TcStats,
}

impl TcReference {
    /// Creates the policy with an empty cache.
    #[must_use]
    pub fn new(tree: Arc<Tree>, cfg: TcConfig) -> Self {
        let n = tree.len();
        Self { tree, cfg, cache: CacheSet::empty(n), cnt: vec![0; n], stats: TcStats::default() }
    }

    /// Phase/step statistics.
    #[must_use]
    pub fn stats(&self) -> TcStats {
        self.stats
    }

    /// Current counter of a node (test/instrumentation hook).
    #[must_use]
    pub fn counter(&self, v: NodeId) -> u64 {
        self.cnt[v.index()]
    }

    /// `P_t(u)`: the non-cached part of `T(u)` (a tree cap rooted at `u`),
    /// in preorder, together with its counter sum.
    fn positive_candidate(&self, u: NodeId) -> (Vec<NodeId>, u64) {
        let mut set = Vec::new();
        let mut sum = 0u64;
        let slice = self.tree.subtree(u);
        let mut i = 0;
        while i < slice.len() {
            let x = slice[i];
            if self.cache.contains(x) {
                i += self.tree.subtree_size(x) as usize;
            } else {
                set.push(x);
                sum += self.cnt[x.index()];
                i += 1;
            }
        }
        (set, sum)
    }

    /// `val(H_t(x))` for every cached node in `T(u)`, computed in a single
    /// reverse-preorder pass (children before parents). Entries outside the
    /// cache stay zero and are never read, because every child of a cached
    /// node is cached.
    fn hvals_under(&self, u: NodeId) -> Vec<ValPair> {
        let mut val = vec![ValPair::zero(); self.tree.len()];
        for &x in self.tree.subtree(u).iter().rev() {
            if self.cache.contains(x) {
                let mut v = ValPair::single(self.cnt[x.index()], self.cfg.alpha);
                for &c in self.tree.children(x) {
                    v = v.plus(val[c.index()].contribution());
                }
                val[x.index()] = v;
            }
        }
        val
    }

    /// Materializes `H_t(u)` (parents before children) given the vals.
    fn hset(&self, u: NodeId, vals: &[ValPair]) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![u];
        while let Some(x) = stack.pop() {
            out.push(x);
            for &c in self.tree.children(x) {
                if self.cache.contains(c) && vals[c.index()].is_positive() {
                    stack.push(c);
                }
            }
        }
        out
    }

    fn apply_fetch(&mut self, set: &[NodeId]) {
        self.cache.fetch(set);
        for &x in set {
            self.cnt[x.index()] = 0;
        }
        self.stats.fetches += 1;
        self.stats.nodes_fetched += set.len() as u64;
    }

    fn apply_evict(&mut self, set: &[NodeId]) {
        self.cache.evict(set);
        for &x in set {
            self.cnt[x.index()] = 0;
        }
        self.stats.evictions += 1;
        self.stats.nodes_evicted += set.len() as u64;
    }

    fn flush_phase_into(&mut self, out: &mut Vec<NodeId>) {
        let before = out.len();
        self.cache.flush_into(out);
        self.cnt.fill(0);
        self.stats.phases_restarted += 1;
        self.stats.nodes_evicted += (out.len() - before) as u64;
    }
}

impl CachePolicy for TcReference {
    fn name(&self) -> &'static str {
        "tc-reference"
    }

    fn capacity(&self) -> usize {
        self.cfg.capacity
    }

    fn cache(&self) -> &CacheSet {
        &self.cache
    }

    fn reset(&mut self) {
        self.cache = CacheSet::empty(self.tree.len());
        self.cnt.fill(0);
        self.stats = TcStats::default();
    }

    fn step(&mut self, req: Request, out: &mut ActionBuffer) {
        out.clear();
        let v = req.node;
        let pays = crate::policy::request_pays(&self.cache, req);
        if !pays {
            // Counters unchanged — TC provably takes no action (Section 6).
            return;
        }
        out.set_paid(true);
        self.stats.paid_requests += 1;
        self.cnt[v.index()] += 1;

        match req.sign {
            Sign::Positive => {
                // Scan tree caps P_t(u) for ancestors u of v, root first;
                // the first saturated one is the maximal candidate.
                for u in self.tree.root_path(v) {
                    let (set, sum) = self.positive_candidate(u);
                    debug_assert!(!set.is_empty(), "v itself is non-cached");
                    if sum >= set.len() as u64 * self.cfg.alpha {
                        debug_assert_eq!(
                            sum,
                            set.len() as u64 * self.cfg.alpha,
                            "Lemma 5.1: counters never exceed |X|·α on valid changesets"
                        );
                        if self.cache.len() + set.len() > self.cfg.capacity {
                            self.flush_phase_into(out.begin(ActionKind::Flush));
                            return;
                        }
                        self.apply_fetch(&set);
                        out.begin(ActionKind::Fetch).extend_from_slice(&set);
                        return;
                    }
                }
            }
            Sign::Negative => {
                let u = self
                    .cache
                    .cached_tree_root(&self.tree, v)
                    .expect("negative request paid, so v is cached");
                let vals = self.hvals_under(u);
                if vals[u.index()].is_positive() {
                    let set = self.hset(u, &vals);
                    debug_assert_eq!(
                        set.iter().map(|x| self.cnt[x.index()]).sum::<u64>(),
                        set.len() as u64 * self.cfg.alpha,
                        "evicted H_t(u) must be exactly saturated"
                    );
                    self.apply_evict(&set);
                    out.begin(ActionKind::Evict).extend_from_slice(&set);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Action;

    fn policy(tree: Tree, alpha: u64, capacity: usize) -> TcReference {
        TcReference::new(Arc::new(tree), TcConfig::new(alpha, capacity))
    }

    #[test]
    fn single_leaf_fetch_after_alpha_requests() {
        // A leaf of a star becomes saturated after α positive requests and
        // is fetched alone.
        let mut tc = policy(Tree::star(3), 2, 4);
        let leaf = NodeId(1);
        let out1 = tc.step_owned(Request::pos(leaf));
        assert!(out1.paid_service);
        assert!(out1.actions.is_empty());
        let out2 = tc.step_owned(Request::pos(leaf));
        assert_eq!(out2.actions, vec![Action::Fetch(vec![leaf])]);
        assert!(tc.cache().contains(leaf));
        // Counter was reset on fetch.
        assert_eq!(tc.counter(leaf), 0);
    }

    #[test]
    fn cached_positive_requests_are_free() {
        let mut tc = policy(Tree::star(3), 1, 4);
        let leaf = NodeId(2);
        tc.step_owned(Request::pos(leaf)); // α = 1: fetch immediately
        assert!(tc.cache().contains(leaf));
        let out = tc.step_owned(Request::pos(leaf));
        assert!(!out.paid_service);
        assert!(out.actions.is_empty());
    }

    #[test]
    fn root_fetch_requires_whole_tree_saturation() {
        // Path 0-1-2: requests to the root count towards P(0) = {0,1,2};
        // a fetch of the root happens only when cnt(P(0)) ≥ 3α.
        let mut tc = policy(Tree::path(3), 2, 8);
        let root = NodeId(0);
        for _ in 0..5 {
            let out = tc.step_owned(Request::pos(root));
            assert!(out.actions.is_empty(), "no candidate is saturated yet");
        }
        let out = tc.step_owned(Request::pos(root));
        assert_eq!(out.actions, vec![Action::Fetch(vec![NodeId(0), NodeId(1), NodeId(2)])]);
    }

    #[test]
    fn maximality_prefers_higher_cap() {
        // Star with 2 leaves, α = 2. Request leaf1 twice (fetch {leaf1}),
        // then root twice: P(root) = {root, leaf2} has cnt = 2 + 2 = 4 = 2α
        // — wait, leaf2 got no requests; cnt(P(root)) = cnt(root) = 2 < 2·2.
        // So after two root requests nothing happens; two more root requests
        // are needed... but the counter bound caps cnt at |X|α for valid X:
        // {root} alone is not valid (leaf2 outside). Let's check the actual
        // trace: root requested 4 times → cnt(P(root)) = 4 = 2·α → fetch
        // {root, leaf2}.
        let mut tc = policy(Tree::star(2), 2, 4);
        let l1 = NodeId(1);
        tc.step_owned(Request::pos(l1));
        let out = tc.step_owned(Request::pos(l1));
        assert_eq!(out.actions, vec![Action::Fetch(vec![l1])]);
        let root = NodeId(0);
        for _ in 0..3 {
            let out = tc.step_owned(Request::pos(root));
            assert!(out.actions.is_empty());
        }
        let out = tc.step_owned(Request::pos(root));
        match &out.actions[..] {
            [Action::Fetch(set)] => {
                let mut s = set.clone();
                s.sort_unstable();
                assert_eq!(s, vec![NodeId(0), NodeId(2)]);
            }
            other => panic!("expected fetch, got {other:?}"),
        }
    }

    #[test]
    fn eviction_after_alpha_negative_requests() {
        let mut tc = policy(Tree::star(2), 2, 4);
        let l1 = NodeId(1);
        tc.step_owned(Request::pos(l1));
        tc.step_owned(Request::pos(l1)); // fetched
        assert!(tc.cache().contains(l1));
        let out = tc.step_owned(Request::neg(l1));
        assert!(out.paid_service);
        assert!(out.actions.is_empty());
        let out = tc.step_owned(Request::neg(l1));
        assert_eq!(out.actions, vec![Action::Evict(vec![l1])]);
        assert!(!tc.cache().contains(l1));
    }

    #[test]
    fn negative_to_uncached_is_free() {
        let mut tc = policy(Tree::star(2), 2, 4);
        let out = tc.step_owned(Request::neg(NodeId(1)));
        assert!(!out.paid_service);
        assert!(out.actions.is_empty());
    }

    #[test]
    fn phase_restart_on_overflow() {
        // Capacity 1, star with 2 leaves, α = 1: fetch leaf1; then leaf2
        // saturates but fetching would exceed capacity → flush, new phase.
        let mut tc = policy(Tree::star(2), 1, 1);
        let l1 = NodeId(1);
        let l2 = NodeId(2);
        tc.step_owned(Request::pos(l1));
        assert!(tc.cache().contains(l1));
        let out = tc.step_owned(Request::pos(l2));
        assert_eq!(out.actions, vec![Action::Flush(vec![l1])]);
        assert!(tc.cache().is_empty());
        assert_eq!(tc.stats().phases_restarted, 1);
        // Counters were reset: next request to l2 must start from zero.
        assert_eq!(tc.counter(l2), 0);
        let out = tc.step_owned(Request::pos(l2));
        assert_eq!(out.actions, vec![Action::Fetch(vec![l2])]);
    }

    #[test]
    fn partial_eviction_keeps_subtrees() {
        // Path 0-1-2, α = 2, capacity 3. Fetch everything, then hammer the
        // root with negative requests: TC evicts a cap containing the root
        // but keeps the rest when only the root's counter is hot.
        let mut tc = policy(Tree::path(3), 2, 3);
        let root = NodeId(0);
        for _ in 0..6 {
            tc.step_owned(Request::pos(root));
        }
        assert_eq!(tc.cache().len(), 3, "whole path fetched");
        tc.step_owned(Request::neg(root));
        let out = tc.step_owned(Request::neg(root));
        assert_eq!(out.actions, vec![Action::Evict(vec![root])]);
        assert!(tc.cache().contains(NodeId(1)));
        assert!(tc.cache().contains(NodeId(2)));
    }

    #[test]
    fn eviction_set_is_max_val_cap() {
        // Path 0-1-2 fully cached; negative requests to node 1 (middle).
        // After 2α = 4 paying rounds... the cap {0,1} saturates when
        // cnt{0,1} = 2α; cnt(1) alone reaches 2α only if {1} were valid —
        // it is not (0 stays cached). H(0) = {0,1} once cnt(1) = 4? val:
        // cnt(0)=0, cnt(1)=t. val(H(0)) > 0 iff cnt{0,1} ≥ 2α = 8? No —
        // saturation means cnt ≥ |X|α = 2·2 = 4.
        let mut tc = policy(Tree::path(3), 2, 3);
        let root = NodeId(0);
        for _ in 0..6 {
            tc.step_owned(Request::pos(root));
        }
        let mid = NodeId(1);
        for _ in 0..3 {
            let out = tc.step_owned(Request::neg(mid));
            assert!(out.actions.is_empty(), "not yet saturated");
        }
        let out = tc.step_owned(Request::neg(mid));
        match &out.actions[..] {
            [Action::Evict(set)] => {
                let mut s = set.clone();
                s.sort_unstable();
                assert_eq!(s, vec![NodeId(0), NodeId(1)], "cap {{0,1}} is the saturated set");
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(tc.cache().contains(NodeId(2)));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut tc = policy(Tree::star(4), 1, 4);
        tc.step_owned(Request::pos(NodeId(1)));
        tc.step_owned(Request::pos(NodeId(2)));
        assert!(!tc.cache().is_empty());
        tc.reset();
        assert!(tc.cache().is_empty());
        assert_eq!(tc.stats(), TcStats::default());
        assert_eq!(tc.counter(NodeId(1)), 0);
    }
}
