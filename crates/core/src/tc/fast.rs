//! Efficient implementation of TC (paper, Section 6 / Theorem 6.1).
//!
//! Per decision at time `t` this implementation performs
//! `O(h(T) + max{h(T), deg(T)} · |Xt|)` elementary operations with `O(|T|)`
//! auxiliary memory, where `Xt` is the changeset applied (if any). All hot
//! per-node state lives in structure-of-arrays [`crate::arena::NodeSlab`]
//! arenas (see DESIGN.md "Memory layout"), and the positive path carries a
//! single fused aggregate:
//!
//! * **Positive requests / fetches** (Section 6.1): every non-cached node
//!   `u` conceptually carries `(cnt_t(P_t(u)), |P_t(u)|)` where `P_t(u)` is
//!   the tree cap of non-cached nodes of `T(u)`; the cap is saturated when
//!   `cnt_t(P_t(u)) ≥ |P_t(u)|·α`. We store the *slack*
//!   `|P_t(u)|·α − cnt_t(P_t(u))` instead: a paying positive request to `v`
//!   decrements the slack of every ancestor of `v` in one upward walk, and
//!   the **topmost** ancestor whose slack hits zero is exactly the first
//!   saturated cap of the paper's root→`v` scan — no second scan needed.
//!   Lemma 5.1(2) (applied changesets are *exactly* saturated) keeps the
//!   slack non-negative: a fetch removes `|X|·α` counter units and `|X|`
//!   cap nodes from every strict ancestor, leaving its slack unchanged,
//!   and an eviction adds `|X|` zero-counter nodes, raising it by `|X|·α`.
//! * **Negative requests / evictions** (Section 6.2): every cached node `u`
//!   carries `val_t(H_t(u))`, the maximum of the exact potential
//!   `val_t(A) = cnt_t(A) − |A|·α + |A|/(|T|+1)` over tree caps `A` of the
//!   cached tree rooted at `u` ([`ValPair`] keeps it exact, one arena slot
//!   per node). The recursion `H_t(u) = {u} ⊔ ⊔_{w child} H'_t(w)` lets one
//!   propagate counter increments upward with O(1) work per level (delta
//!   propagation), and `val_t(H_t(u)) > 0` at the cached-tree root `u`
//!   holds iff `H_t(u)` is the saturated, maximal negative changeset.

#![warn(clippy::indexing_slicing)]

use std::sync::Arc;

use crate::arena::{
    put_byte_section_header, put_u64_section, take_byte_section, take_u64_section, NodeSlab,
};
use crate::cache::CacheSet;
use crate::policy::{ActionBuffer, ActionKind, CachePolicy};
use crate::request::{Request, Sign};
use crate::tree::{NodeId, Tree};

use super::val::ValPair;
use super::{TcConfig, TcStats};

/// The efficient TC implementation (Theorem 6.1), on arena/SoA state.
#[derive(Debug, Clone)]
pub struct TcFast {
    tree: Arc<Tree>,
    cfg: TcConfig,
    cache: CacheSet,
    /// Per-node counter (resets on state change and at phase start).
    cnt: NodeSlab<u64>,
    /// For non-cached `u`: `|P_t(u)|·α − cnt_t(P_t(u))`, the units left
    /// before the cap saturates. Stale for cached nodes.
    slack: NodeSlab<u64>,
    /// For non-cached `u`: `|P_t(u)|`. Stale for cached nodes.
    psize: NodeSlab<u64>,
    /// For cached `u`: `val_t(H_t(u))` as an exact pair. Stale otherwise.
    hval: NodeSlab<ValPair>,
    stats: TcStats,
    /// Elementary operations in the most recent `step` (experiment E6).
    last_ops: u64,
    /// Total elementary operations across all steps.
    total_ops: u64,
    /// Scratch stack for H-set materialisation, reused to avoid allocation.
    stack_buf: Vec<NodeId>,
}

impl TcFast {
    /// Creates the policy with an empty cache.
    #[must_use]
    pub fn new(tree: Arc<Tree>, cfg: TcConfig) -> Self {
        let n = tree.len();
        let psize: Vec<u64> = tree.subtree_sizes().iter().map(|&s| u64::from(s)).collect();
        let slack: Vec<u64> = psize.iter().map(|&p| p * cfg.alpha).collect();
        Self {
            tree,
            cfg,
            cache: CacheSet::empty(n),
            cnt: NodeSlab::filled(n, 0),
            slack: NodeSlab::from_vec(slack),
            psize: NodeSlab::from_vec(psize),
            hval: NodeSlab::filled(n, ValPair::zero()),
            stats: TcStats::default(),
            last_ops: 0,
            total_ops: 0,
            stack_buf: Vec::new(),
        }
    }

    /// Phase/step statistics.
    #[must_use]
    pub fn stats(&self) -> TcStats {
        self.stats
    }

    /// Elementary operations spent in the most recent step (E6 metric:
    /// ancestors visited + changeset nodes touched + children scanned).
    #[must_use]
    pub fn last_step_ops(&self) -> u64 {
        self.last_ops
    }

    /// Total elementary operations across the run.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Current counter of a node (test/instrumentation hook).
    #[must_use]
    pub fn counter(&self, v: NodeId) -> u64 {
        *self.cnt.get(v)
    }

    /// Heap bytes of the per-node policy state (cache bitset plus the four
    /// SoA counter arenas) — the policy share of the bytes/node accounting
    /// reported by the benches. The shared tree arena is accounted
    /// separately by [`Tree::heap_bytes`].
    #[must_use]
    pub fn state_heap_bytes(&self) -> usize {
        self.cache.heap_bytes()
            + self.cnt.heap_bytes()
            + self.slack.heap_bytes()
            + self.psize.heap_bytes()
            + self.hval.heap_bytes()
    }

    #[inline]
    fn contrib(&self, x: NodeId) -> ValPair {
        self.hval.get(x).contribution()
    }

    /// Appends `P_t(u)` — the non-cached part of `T(u)` — to `out`, in
    /// preorder. Allocation-free once `out` has capacity.
    fn collect_positive_into(&mut self, u: NodeId, out: &mut Vec<NodeId>) {
        let before = out.len();
        let slice = self.tree.subtree(u);
        let mut i = 0;
        while let Some(&x) = slice.get(i) {
            if self.cache.contains(x) {
                i += self.tree.subtree_size(x) as usize;
            } else {
                out.push(x);
                i += 1;
            }
        }
        self.last_ops += (out.len() - before) as u64;
    }

    /// Appends `H_t(u)` to `out` using the stored `val` pairs, parents
    /// first. Allocation-free once the scratch stack has capacity.
    fn collect_hset_into(&mut self, u: NodeId, out: &mut Vec<NodeId>) {
        let mut stack = std::mem::take(&mut self.stack_buf);
        stack.clear();
        stack.push(u);
        while let Some(x) = stack.pop() {
            out.push(x);
            for &c in self.tree.children(x) {
                self.last_ops += 1;
                if self.cache.contains(c) && self.contrib(c) != ValPair::zero() {
                    stack.push(c);
                }
            }
        }
        self.stack_buf = stack;
    }

    /// Applies the fetch of `set == P_t(u)`; maintains every aggregate.
    fn apply_fetch(&mut self, u: NodeId, set: &[NodeId]) {
        debug_assert_eq!(set.len() as u64, *self.psize.get(u));
        let mut sum_cnt = 0u64;
        for &x in set {
            sum_cnt += *self.cnt.get(x);
            *self.cnt.get_mut(x) = 0;
        }
        debug_assert_eq!(
            sum_cnt,
            set.len() as u64 * self.cfg.alpha,
            "Lemma 5.1(2): an applied changeset is exactly saturated"
        );
        self.cache.fetch(set);

        // Ancestors of u (strictly above; all non-cached) lose the fetched
        // nodes from their P-caps. Exact saturation means the counter units
        // removed are |set|·α, so each ancestor's slack is unchanged — only
        // the cap size shrinks.
        let mut a = self.tree.parent(u);
        while let Some(p) = a {
            self.last_ops += 1;
            debug_assert!(!self.cache.contains(p));
            *self.psize.get_mut(p) -= set.len() as u64;
            a = self.tree.parent(p);
        }

        // Initialise val(H) bottom-up over the fetched cap: reverse preorder
        // puts every node after its descendants. Children of a fetched node
        // are now all cached: either fetched (already initialised) or
        // previously cached (their H-values are unchanged by the fetch —
        // Section 6.2 processes only the changeset).
        for &x in set.iter().rev() {
            // cnt was just reset, so the base value is (−α, 1).
            let mut v = ValPair::single(0, self.cfg.alpha);
            for &c in self.tree.children(x) {
                self.last_ops += 1;
                v = v.plus(self.contrib(c));
            }
            *self.hval.get_mut(x) = v;
        }

        self.stats.fetches += 1;
        self.stats.nodes_fetched += set.len() as u64;
    }

    /// Applies the eviction of `set == H_t(u)` (parents-first order);
    /// maintains every aggregate.
    fn apply_evict(&mut self, u: NodeId, set: &[NodeId]) {
        let mut sum_cnt = 0u64;
        for &x in set {
            sum_cnt += *self.cnt.get(x);
            *self.cnt.get_mut(x) = 0;
        }
        debug_assert_eq!(
            sum_cnt,
            set.len() as u64 * self.cfg.alpha,
            "evicted H_t(u) is exactly saturated"
        );
        self.cache.evict(set);

        // Rebuild P-aggregates bottom-up over the evicted cap (reverse of
        // the parents-first collection order): after the eviction a child of
        // an evicted node is non-cached iff it was evicted too, and all
        // evicted counters are zero, so every cap counter here is 0 and the
        // slack is the full |P|·α.
        for &x in set.iter().rev() {
            let mut size = 1u64;
            for &c in self.tree.children(x) {
                self.last_ops += 1;
                if !self.cache.contains(c) {
                    size += *self.psize.get(c);
                    debug_assert_eq!(*self.slack.get(c), *self.psize.get(c) * self.cfg.alpha);
                }
            }
            *self.psize.get_mut(x) = size;
            *self.slack.get_mut(x) = size * self.cfg.alpha;
        }

        // Ancestors of u (strictly above; u was a cached-tree root so they
        // are all non-cached) gain the evicted nodes in their P-caps, with
        // zero counters — their slack grows by the full |set|·α.
        let mut a = self.tree.parent(u);
        while let Some(p) = a {
            self.last_ops += 1;
            debug_assert!(!self.cache.contains(p));
            *self.psize.get_mut(p) += set.len() as u64;
            *self.slack.get_mut(p) += set.len() as u64 * self.cfg.alpha;
            a = self.tree.parent(p);
        }

        self.stats.evictions += 1;
        self.stats.nodes_evicted += set.len() as u64;
    }

    /// Phase restart: evict everything (appending the evicted set to
    /// `out`), reset all counters and aggregates. One fused pass over the
    /// id-ordered arenas, re-seeded from the tree's subtree-size slice.
    fn flush_phase_into(&mut self, out: &mut Vec<NodeId>) {
        let before = out.len();
        self.cache.flush_into(out);
        self.cnt.fill(0);
        let alpha = self.cfg.alpha;
        for ((s, p), &sz) in
            self.slack.iter_mut().zip(self.psize.iter_mut()).zip(self.tree.subtree_sizes())
        {
            let size = u64::from(sz);
            *p = size;
            *s = size * alpha;
        }
        self.last_ops += self.tree.len() as u64;
        self.stats.phases_restarted += 1;
        self.stats.nodes_evicted += (out.len() - before) as u64;
    }

    /// Recomputes every aggregate from scratch and compares with the
    /// maintained values. Test/diagnostic hook (O(|T|)).
    pub fn audit(&self) -> Result<(), String> {
        self.cache.validate(&self.tree)?;
        let n = self.tree.len();
        let mut psize_ref = NodeSlab::filled(n, 0u64);
        let mut pcnt_ref = NodeSlab::filled(n, 0u64);
        let mut hval_ref = NodeSlab::filled(n, ValPair::zero());
        for &v in self.tree.preorder().iter().rev() {
            if self.cache.contains(v) {
                let mut val = ValPair::single(*self.cnt.get(v), self.cfg.alpha);
                for &c in self.tree.children(v) {
                    debug_assert!(self.cache.contains(c));
                    val = val.plus(hval_ref.get(c).contribution());
                }
                *hval_ref.get_mut(v) = val;
                let stored = *self.hval.get(v);
                if stored != val {
                    return Err(format!(
                        "hval mismatch at {v:?}: stored {stored:?}, actual {val:?}"
                    ));
                }
            } else {
                let mut size = 1u64;
                let mut cnt = *self.cnt.get(v);
                for &c in self.tree.children(v) {
                    if !self.cache.contains(c) {
                        size += *psize_ref.get(c);
                        cnt += *pcnt_ref.get(c);
                    }
                }
                *psize_ref.get_mut(v) = size;
                *pcnt_ref.get_mut(v) = cnt;
                // slack == |P|·α − cnt(P), compared without subtraction so a
                // corrupt restored slack can never underflow the check.
                let slack_ok = u128::from(*self.slack.get(v)) + u128::from(cnt)
                    == u128::from(size) * u128::from(self.cfg.alpha);
                if *self.psize.get(v) != size || !slack_ok {
                    return Err(format!(
                        "P aggregate mismatch at {v:?}: stored (slack {}, size {}), actual (cnt {cnt}, size {size})",
                        self.slack.get(v),
                        self.psize.get(v),
                    ));
                }
            }
        }
        Ok(())
    }
}

impl TcFast {
    /// Exact byte length of the state blob [`TcFast::save_state`] appends
    /// for an `n`-node tree: the length-prefixed cache bitmap section, five
    /// length-prefixed per-node `u64` sections (cnt, slack, psize and the
    /// two halves of the `val` pairs), and one eight-element tail section
    /// (the six [`TcStats`] counters and the two op counters).
    #[must_use]
    pub fn state_len(n: usize) -> usize {
        (8 + CacheSet::bitmap_len(n)) + 5 * (8 + 8 * n) + (8 + 8 * 8)
    }

    /// Parses a state blob into `(cache, cnt, slack, psize, hval, stats,
    /// last_ops, total_ops)` without touching `self`.
    #[allow(
        clippy::type_complexity,
        reason = "the tuple mirrors the flat state-blob layout section for section; a named struct would exist only to be destructured once at the single call site"
    )]
    fn parse_state(
        &self,
        bytes: &[u8],
    ) -> Result<
        (
            CacheSet,
            NodeSlab<u64>,
            NodeSlab<u64>,
            NodeSlab<u64>,
            NodeSlab<ValPair>,
            TcStats,
            u64,
            u64,
        ),
        String,
    > {
        let n = self.tree.len();
        if bytes.len() != Self::state_len(n) {
            return Err(format!(
                "tc state blob is {} bytes but an {n}-node tree needs {}",
                bytes.len(),
                Self::state_len(n)
            ));
        }
        let mut pos = 0;
        let bitmap = take_byte_section(bytes, &mut pos, CacheSet::bitmap_len(n))?;
        let cache = CacheSet::from_bitmap(n, bitmap)?;
        let cnt = NodeSlab::from_vec(take_u64_section(bytes, &mut pos, n)?);
        let slack = NodeSlab::from_vec(take_u64_section(bytes, &mut pos, n)?);
        let psize = NodeSlab::from_vec(take_u64_section(bytes, &mut pos, n)?);
        let hv = take_u64_section(bytes, &mut pos, n)?;
        let hsz = take_u64_section(bytes, &mut pos, n)?;
        let hval = NodeSlab::from_vec(
            hv.into_iter()
                .zip(hsz)
                .map(|(int, size)| ValPair { int: int as i64, size: size as i64 })
                .collect(),
        );
        let tail = take_u64_section(bytes, &mut pos, 8)?;
        debug_assert_eq!(pos, bytes.len());
        let &[phases_restarted, fetches, evictions, nodes_fetched, nodes_evicted, paid_requests, last_ops, total_ops] =
            tail.as_slice()
        else {
            return Err("tc state tail section malformed".to_string());
        };
        let stats = TcStats {
            phases_restarted,
            fetches,
            evictions,
            nodes_fetched,
            nodes_evicted,
            paid_requests,
        };
        Ok((cache, cnt, slack, psize, hval, stats, last_ops, total_ops))
    }
}

impl CachePolicy for TcFast {
    fn name(&self) -> &'static str {
        "tc"
    }

    fn capacity(&self) -> usize {
        self.cfg.capacity
    }

    fn cache(&self) -> &CacheSet {
        &self.cache
    }

    fn reset(&mut self) {
        let n = self.tree.len();
        self.cache = CacheSet::empty(n);
        self.cnt.fill(0);
        let alpha = self.cfg.alpha;
        for ((s, p), &sz) in
            self.slack.iter_mut().zip(self.psize.iter_mut()).zip(self.tree.subtree_sizes())
        {
            let size = u64::from(sz);
            *p = size;
            *s = size * alpha;
        }
        self.stats = TcStats::default();
        self.last_ops = 0;
        self.total_ops = 0;
    }

    fn audit(&self) -> Result<(), String> {
        TcFast::audit(self)
    }

    fn step(&mut self, req: Request, out: &mut ActionBuffer) {
        out.clear();
        self.last_ops = 0;
        let v = req.node;
        let pays = crate::policy::request_pays(&self.cache, req);
        if !pays {
            // No counter change ⇒ no changeset can newly saturate
            // (Section 6), so TC provably idles.
            return;
        }
        out.set_paid(true);
        self.stats.paid_requests += 1;
        *self.cnt.get_mut(v) += 1;

        match req.sign {
            Sign::Positive => self.step_positive(v, out),
            Sign::Negative => self.step_negative(v, out),
        }
        self.total_ops += self.last_ops;
    }

    fn save_state(&self, out: &mut Vec<u8>) -> Result<(), String> {
        put_byte_section_header(out, CacheSet::bitmap_len(self.tree.len()));
        self.cache.write_bitmap(out);
        put_u64_section(out, self.cnt.iter().copied());
        put_u64_section(out, self.slack.iter().copied());
        put_u64_section(out, self.psize.iter().copied());
        put_u64_section(out, self.hval.iter().map(|v| v.int as u64));
        put_u64_section(out, self.hval.iter().map(|v| v.size as u64));
        let s = self.stats;
        put_u64_section(
            out,
            [
                s.phases_restarted,
                s.fetches,
                s.evictions,
                s.nodes_fetched,
                s.nodes_evicted,
                s.paid_requests,
                self.last_ops,
                self.total_ops,
            ]
            .into_iter(),
        );
        Ok(())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        // Parse into a candidate, prove it consistent via the full audit,
        // and only then commit — a rejected blob leaves `self` untouched.
        let (cache, cnt, slack, psize, hval, stats, last_ops, total_ops) =
            self.parse_state(bytes)?;
        let mut candidate = Self {
            tree: Arc::clone(&self.tree),
            cfg: self.cfg,
            cache,
            cnt,
            slack,
            psize,
            hval,
            stats,
            last_ops,
            total_ops,
            stack_buf: Vec::new(),
        };
        candidate.audit().map_err(|e| format!("restored tc state fails audit: {e}"))?;
        candidate.stack_buf = std::mem::take(&mut self.stack_buf);
        *self = candidate;
        Ok(())
    }
}

impl TcFast {
    fn step_positive(&mut self, v: NodeId, out: &mut ActionBuffer) {
        // All ancestors of a non-cached node are non-cached: one upward walk
        // decrements every ancestor's slack, and the topmost slack that hits
        // zero is the first saturated cap of the paper's root→v scan
        // (saturation is exact by Lemma 5.1(2), so a slack never underflows).
        let mut chosen = None;
        let mut x = Some(v);
        while let Some(u) = x {
            debug_assert!(!self.cache.contains(u));
            let s = self.slack.get_mut(u);
            debug_assert!(*s >= 1, "unapplied caps are strictly unsaturated between steps");
            *s -= 1;
            if *s == 0 {
                chosen = Some(u);
            }
            self.last_ops += 1;
            x = self.tree.parent(u);
        }
        let Some(u) = chosen else {
            return;
        };
        if self.cache.len() as u64 + *self.psize.get(u) > self.cfg.capacity as u64 {
            // The flush's payload is the whole cache — possibly empty, when
            // the saturated cap alone exceeds the capacity. A zero-payload
            // flush still restarts the phase at zero reorganisation cost.
            self.flush_phase_into(out.begin(ActionKind::Flush));
            return;
        }
        self.collect_positive_into(u, out.begin(ActionKind::Fetch));
        let set = out.last_nodes();
        self.apply_fetch(u, set);
    }

    fn step_negative(&mut self, v: NodeId, out: &mut ActionBuffer) {
        // Propagate the counter increment up the cached chain with O(1)
        // work per level, locating the cached-tree root on the way.
        let old = self.contrib(v);
        self.hval.get_mut(v).int += 1;
        let mut delta = self.contrib(v).minus(old);
        let mut x = v;
        loop {
            self.last_ops += 1;
            match self.tree.parent(x) {
                Some(p) if self.cache.contains(p) => {
                    if delta != ValPair::zero() {
                        let old_p = self.contrib(p);
                        let hp = self.hval.get_mut(p);
                        hp.int += delta.int;
                        hp.size += delta.size;
                        delta = self.contrib(p).minus(old_p);
                    }
                    x = p;
                }
                _ => break,
            }
        }
        let u = x; // root of the cached tree containing v
        let root_val = *self.hval.get(u);
        if !root_val.is_positive() {
            return;
        }
        self.collect_hset_into(u, out.begin(ActionKind::Evict));
        let set = out.last_nodes();
        debug_assert_eq!(set.len() as i64, root_val.size, "H materialisation matches stored size");
        self.apply_evict(u, set);
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing, reason = "tests index fixtures freely")]
mod tests {
    use super::*;
    use crate::policy::{Action, StepOutcome};

    fn policy(tree: Tree, alpha: u64, capacity: usize) -> TcFast {
        TcFast::new(Arc::new(tree), TcConfig::new(alpha, capacity))
    }

    #[test]
    fn audit_passes_fresh() {
        let tc = policy(Tree::kary(3, 3), 2, 5);
        tc.audit().expect("fresh state is consistent");
    }

    #[test]
    fn fetch_and_audit() {
        let mut tc = policy(Tree::star(4), 2, 5);
        let leaf = NodeId(2);
        tc.step_owned(Request::pos(leaf));
        tc.audit().expect("consistent after non-applying step");
        let out = tc.step_owned(Request::pos(leaf));
        assert_eq!(out.actions, vec![Action::Fetch(vec![leaf])]);
        tc.audit().expect("consistent after fetch");
    }

    #[test]
    fn eviction_and_audit() {
        let mut tc = policy(Tree::path(3), 2, 3);
        for _ in 0..6 {
            tc.step_owned(Request::pos(NodeId(0)));
        }
        tc.audit().expect("after full fetch");
        assert_eq!(tc.cache().len(), 3);
        for _ in 0..4 {
            tc.step_owned(Request::neg(NodeId(1)));
        }
        tc.audit().expect("after eviction");
        assert!(!tc.cache().contains(NodeId(0)));
        assert!(!tc.cache().contains(NodeId(1)));
        assert!(tc.cache().contains(NodeId(2)));
    }

    #[test]
    fn flush_resets_aggregates() {
        let mut tc = policy(Tree::star(2), 1, 1);
        tc.step_owned(Request::pos(NodeId(1)));
        let out = tc.step_owned(Request::pos(NodeId(2)));
        assert!(matches!(out.actions[..], [Action::Flush(_)]));
        tc.audit().expect("after flush");
        assert_eq!(tc.stats().phases_restarted, 1);
    }

    #[test]
    fn ops_bounded_by_theorem() {
        // Theorem 6.1: O(h + max{h, deg}·|Xt|) per decision. Check the
        // concrete constant stays small on a deep path.
        let n = 200;
        let mut tc = policy(Tree::path(n), 2, n);
        let deepest = NodeId(n as u32 - 1);
        for _ in 0..2 * n as u64 {
            tc.step_owned(Request::pos(deepest));
        }
        // Root fetch eventually happens; the per-step op count must stay
        // within a small multiple of h + h·|X|.
        assert!(!tc.cache().is_empty());
        let h = n as u64;
        assert!(
            tc.last_step_ops() <= 6 * h + 6 * h, // crude but binding envelope
            "ops {} too large",
            tc.last_step_ops()
        );
        tc.audit().expect("consistent");
    }

    #[test]
    fn non_paying_steps_cost_nothing() {
        let mut tc = policy(Tree::star(2), 1, 3);
        tc.step_owned(Request::pos(NodeId(1)));
        assert!(tc.cache().contains(NodeId(1)));
        let before = tc.total_ops();
        let out = tc.step_owned(Request::pos(NodeId(1)));
        assert_eq!(out, StepOutcome::idle());
        assert_eq!(tc.total_ops(), before);
        let out = tc.step_owned(Request::neg(NodeId(2)));
        assert_eq!(out, StepOutcome::idle());
    }

    #[test]
    fn deep_negative_delta_propagation() {
        // Fully cache a path, then alternate negative requests between two
        // deep nodes; delta propagation must keep hval exact throughout.
        let n = 12;
        let mut tc = policy(Tree::path(n), 3, n);
        // Hammering the root saturates P(root) = the whole path after
        // 3·n paying requests (nothing below gets cached on the way because
        // only the root's counter grows).
        for _ in 0..3 * n as u64 {
            tc.step_owned(Request::pos(NodeId(0)));
        }
        assert_eq!(tc.cache().len(), n);
        for i in 0..20 {
            let node = if i % 2 == 0 { NodeId(4) } else { NodeId(9) };
            tc.step_owned(Request::neg(node));
            tc.audit().unwrap_or_else(|e| panic!("audit failed at negative step {i}: {e}"));
        }
    }

    #[test]
    fn merge_of_cached_subtrees_on_fetch() {
        // Cache two sibling leaves, then saturate the root cap: the fetch
        // merges previously cached subtrees into one cached tree and hval
        // initialisation must account for their existing counters.
        let mut tc = policy(Tree::star(2), 2, 4);
        for leaf in [NodeId(1), NodeId(2)] {
            tc.step_owned(Request::pos(leaf));
            tc.step_owned(Request::pos(leaf));
            assert!(tc.cache().contains(leaf));
        }
        // Give leaf 1 a negative counter before the merge.
        tc.step_owned(Request::neg(NodeId(1)));
        tc.audit().expect("pre-merge");
        // Saturate P(root) = {root}: needs α = 2 paying requests.
        tc.step_owned(Request::pos(NodeId(0)));
        let out = tc.step_owned(Request::pos(NodeId(0)));
        assert_eq!(out.actions, vec![Action::Fetch(vec![NodeId(0)])]);
        tc.audit().expect("post-merge: hval must include leaf counters");
        // One more negative request to leaf 1 saturates the cap {0, 1}? No:
        // cnt(1) = 2 after it, cnt(0) = 0; val(H(0)) = (0+2-2-2, 2) < 0.
        // The saturated set is {1} alone — but {1} is not a valid negative
        // changeset (its parent 0 stays cached), so nothing happens.
        let out = tc.step_owned(Request::neg(NodeId(1)));
        assert!(out.actions.is_empty());
        tc.audit().expect("still consistent");
        // Hammering the root itself: val(H(0)) turns positive once the
        // total reaches |H|·α for the best cap.
        let out = tc.step_owned(Request::neg(NodeId(0)));
        match &out.actions[..] {
            [Action::Evict(set)] => {
                let mut s = set.clone();
                s.sort_unstable();
                // cnt(0)=1, cnt(1)=2, cnt(2)=0, α=2: val{0,1} = 3−4+2ε < 0,
                // val{0,1,2} = 3−6+3ε < 0, val{0} = 1−2+ε < 0 → actually no
                // eviction should happen. See assertion below instead.
                panic!("unexpected eviction of {s:?}");
            }
            [] => {}
            other => panic!("unexpected actions {other:?}"),
        }
        let out = tc.step_owned(Request::neg(NodeId(0)));
        // Now cnt(0)=2, cnt(1)=2: val{0,1} = 4−4+2ε > 0 → evict {0,1}.
        match &out.actions[..] {
            [Action::Evict(set)] => {
                let mut s = set.clone();
                s.sort_unstable();
                assert_eq!(s, vec![NodeId(0), NodeId(1)]);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        tc.audit().expect("post-eviction");
        assert!(tc.cache().contains(NodeId(2)));
    }

    #[test]
    fn save_restore_round_trips_mid_phase() {
        let mut tc = policy(Tree::kary(2, 3), 2, 7);
        let mut rng = otc_util::SplitMix64::new(7);
        for _ in 0..300 {
            let node = NodeId(rng.index(7) as u32);
            let req = if rng.chance(0.5) { Request::pos(node) } else { Request::neg(node) };
            tc.step_owned(req);
        }
        let mut blob = Vec::new();
        tc.save_state(&mut blob).expect("tc supports snapshots");
        assert_eq!(blob.len(), TcFast::state_len(7));

        let mut fresh = policy(Tree::kary(2, 3), 2, 7);
        fresh.restore_state(&blob).expect("round trip");
        assert_eq!(fresh.cache(), tc.cache());
        assert_eq!(fresh.stats(), tc.stats());
        assert_eq!(fresh.total_ops(), tc.total_ops());
        // The restored policy continues bit-identically.
        for _ in 0..100 {
            let node = NodeId(rng.index(7) as u32);
            let req = if rng.chance(0.5) { Request::pos(node) } else { Request::neg(node) };
            assert_eq!(fresh.step_owned(req), tc.step_owned(req));
        }
        fresh.audit().expect("restored state consistent");
    }

    #[test]
    fn restore_rejects_bad_blobs_atomically() {
        let mut tc = policy(Tree::path(4), 2, 4);
        for _ in 0..8 {
            tc.step_owned(Request::pos(NodeId(3)));
        }
        let mut blob = Vec::new();
        tc.save_state(&mut blob).unwrap();
        let cache_before = tc.cache().clone();
        let stats_before = tc.stats();
        // Wrong length.
        assert!(tc.restore_state(&blob[..blob.len() - 1]).is_err());
        // Inconsistent aggregates: corrupt the root's counter so the stored
        // slack no longer matches; the audit in restore must catch it. Byte
        // offset: the bitmap section (8-byte header + 1 payload byte for a
        // 4-node tree), then the cnt section's 8-byte count prefix, then
        // cnt[0] little-endian.
        let mut bad = blob.clone();
        bad[8 + CacheSet::bitmap_len(4) + 8] ^= 0x01;
        let err = tc.restore_state(&bad).expect_err("audit must reject");
        assert!(err.contains("audit"), "got: {err}");
        // A shifted section boundary is a parse error, not a shifted read:
        // corrupting the cnt section's count prefix must fail cleanly.
        let mut drift = blob.clone();
        drift[8 + CacheSet::bitmap_len(4)] ^= 0xFF;
        assert!(tc.restore_state(&drift).is_err());
        // Atomicity: the failed restores left the policy untouched.
        assert_eq!(tc.cache(), &cache_before);
        assert_eq!(tc.stats(), stats_before);
        tc.audit().expect("original state intact");
        // The unmodified blob still restores.
        tc.restore_state(&blob).expect("clean blob restores");
    }

    #[test]
    fn reset_is_complete() {
        let mut tc = policy(Tree::kary(2, 3), 2, 7);
        let mut rng = otc_util::SplitMix64::new(99);
        for _ in 0..500 {
            let node = NodeId(rng.index(7) as u32);
            let req = if rng.chance(0.5) { Request::pos(node) } else { Request::neg(node) };
            tc.step_owned(req);
        }
        tc.reset();
        tc.audit().expect("reset state consistent");
        assert!(tc.cache().is_empty());
        assert_eq!(tc.stats(), TcStats::default());
    }
}
