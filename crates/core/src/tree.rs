//! Arena-based rooted trees.
//!
//! The universe of the tree caching problem is an arbitrary rooted tree `T`
//! (paper, Section 1). This module provides an immutable, cache-friendly
//! arena representation with the derived data every algorithm needs:
//! depths, subtree sizes, preorder intervals (for O(1) ancestor tests and
//! O(|subtree|) subtree iteration), height and maximum degree.
//!
//! Node identifiers are dense `u32` indices, so per-node algorithm state
//! lives in flat `Vec`s — the pattern the Rust Performance Book recommends
//! for hot tree workloads (no pointer chasing, no per-node allocation).

use std::fmt;

/// Identifier of a tree node; a dense index into the tree arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as `usize`, for direct vector indexing.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An immutable rooted tree with precomputed navigation data.
#[derive(Debug, Clone)]
pub struct Tree {
    parent: Vec<Option<NodeId>>,
    /// Children lists; order is the insertion order of the builder.
    children_flat: Vec<NodeId>,
    children_start: Vec<u32>,
    depth: Vec<u32>,
    /// Preorder rank of each node.
    tin: Vec<u32>,
    /// `order[tin[v]] == v`; subtree of `v` is the contiguous slice
    /// `order[tin[v] .. tin[v] + subtree_size[v]]`.
    order: Vec<NodeId>,
    subtree_size: Vec<u32>,
    height: u32,
    max_degree: u32,
}

impl Tree {
    /// Builds a tree from a parent array: `parents[i]` is the parent of node
    /// `i`, and exactly one entry (the root) is `None`.
    ///
    /// ```
    /// use otc_core::tree::{NodeId, Tree};
    /// //    0
    /// //   / \
    /// //  1   2
    /// //  |
    /// //  3
    /// let t = Tree::from_parents(&[None, Some(0), Some(0), Some(1)]);
    /// assert_eq!(t.len(), 4);
    /// assert_eq!(t.height(), 3);
    /// assert_eq!(t.subtree(NodeId(1)), &[NodeId(1), NodeId(3)]);
    /// assert!(t.is_ancestor_or_self(NodeId(0), NodeId(3)));
    /// ```
    ///
    /// # Panics
    /// Panics if the array is empty, has zero or multiple roots, contains an
    /// out-of-range parent, or contains a cycle.
    #[must_use]
    pub fn from_parents(parents: &[Option<usize>]) -> Self {
        assert!(!parents.is_empty(), "a tree has at least one node");
        let n = parents.len();
        let mut root = None;
        for (i, p) in parents.iter().enumerate() {
            match p {
                None => {
                    assert!(root.is_none(), "multiple roots: {root:?} and {i}");
                    root = Some(i);
                }
                Some(p) => {
                    assert!(*p < n, "parent {p} of node {i} out of range");
                    assert!(*p != i, "node {i} is its own parent");
                }
            }
        }
        let root = root.expect("a tree needs exactly one root");
        assert_eq!(root, 0, "the root must be node 0 (canonical arena layout)");

        let mut child_count = vec![0u32; n];
        for p in parents.iter().flatten() {
            child_count[*p] += 1;
        }
        let mut children_start = vec![0u32; n + 1];
        for i in 0..n {
            children_start[i + 1] = children_start[i] + child_count[i];
        }
        let mut cursor = children_start[..n].to_vec();
        let mut children_flat = vec![NodeId(0); n - 1];
        for (i, p) in parents.iter().enumerate() {
            if let Some(p) = p {
                children_flat[cursor[*p] as usize] = NodeId(i as u32);
                cursor[*p] += 1;
            }
        }

        let mut tree = Self {
            parent: parents.iter().map(|p| p.map(|p| NodeId(p as u32))).collect(),
            children_flat,
            children_start,
            depth: vec![0; n],
            tin: vec![0; n],
            order: Vec::with_capacity(n),
            subtree_size: vec![1; n],
            height: 0,
            max_degree: 0,
        };
        tree.compute_derived(NodeId(root as u32), n);
        tree
    }

    fn compute_derived(&mut self, root: NodeId, n: usize) {
        // Iterative preorder DFS that also detects cycles/disconnected nodes
        // (any node not reached means the parent array was not a tree).
        let mut stack = vec![root];
        let mut seen = 0usize;
        while let Some(v) = stack.pop() {
            self.tin[v.index()] = seen as u32;
            self.order.push(v);
            seen += 1;
            let d = self.depth[v.index()];
            self.height = self.height.max(d + 1);
            let lo = self.children_start[v.index()] as usize;
            let hi = self.children_start[v.index() + 1] as usize;
            self.max_degree = self.max_degree.max((hi - lo) as u32);
            // Push in reverse so preorder visits children in builder order.
            for idx in (lo..hi).rev() {
                let c = self.children_flat[idx];
                self.depth[c.index()] = d + 1;
                stack.push(c);
            }
        }
        assert_eq!(seen, n, "parent array is not a connected tree (cycle or orphan)");
        // Subtree sizes in reverse preorder (children complete before parents).
        for i in (0..n).rev() {
            let v = self.order[i];
            if let Some(p) = self.parent[v.index()] {
                self.subtree_size[p.index()] += self.subtree_size[v.index()];
            }
        }
    }

    fn children_slice(&self, v: NodeId) -> &[NodeId] {
        let lo = self.children_start[v.index()] as usize;
        let hi = self.children_start[v.index() + 1] as usize;
        &self.children_flat[lo..hi]
    }

    /// Number of nodes, `|T|`.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Always false: trees have at least one node.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The root node (always `NodeId(0)` in the canonical layout).
    #[inline]
    #[must_use]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Parent of `v`, or `None` for the root.
    #[inline]
    #[must_use]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// Children of `v`.
    #[inline]
    #[must_use]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        self.children_slice(v)
    }

    /// True if `v` is a leaf.
    #[must_use]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.children(v).is_empty()
    }

    /// Depth of `v` (root has depth 0).
    #[inline]
    #[must_use]
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v.index()]
    }

    /// Height `h(T)`: the number of levels, i.e. `1 + max depth`. A
    /// single-node tree has height 1. This is the `h(T)` of the paper's
    /// layer-partition argument (Lemma 5.10 partitions nodes into `h(T)`
    /// layers by distance to the root).
    #[inline]
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Maximum number of children of any node, `deg(T)`.
    #[inline]
    #[must_use]
    pub fn max_degree(&self) -> u32 {
        self.max_degree
    }

    /// Size of the subtree `T(v)` rooted at `v` (including `v`).
    #[inline]
    #[must_use]
    pub fn subtree_size(&self, v: NodeId) -> u32 {
        self.subtree_size[v.index()]
    }

    /// True if `a` is an ancestor of `d` **or equal to it** (O(1)).
    #[inline]
    #[must_use]
    pub fn is_ancestor_or_self(&self, a: NodeId, d: NodeId) -> bool {
        let ta = self.tin[a.index()];
        let td = self.tin[d.index()];
        td >= ta && td < ta + self.subtree_size[a.index()]
    }

    /// Preorder rank of `v`.
    #[inline]
    #[must_use]
    pub fn preorder_rank(&self, v: NodeId) -> u32 {
        self.tin[v.index()]
    }

    /// All nodes in preorder (root first).
    #[must_use]
    pub fn preorder(&self) -> &[NodeId] {
        &self.order
    }

    /// The subtree `T(v)` as a contiguous preorder slice (includes `v`).
    #[must_use]
    pub fn subtree(&self, v: NodeId) -> &[NodeId] {
        let lo = self.tin[v.index()] as usize;
        let hi = lo + self.subtree_size[v.index()] as usize;
        &self.order[lo..hi]
    }

    /// Iterator over all node ids, `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len() as u32).map(NodeId)
    }

    /// Iterator over `v` and its ancestors up to the root.
    pub fn ancestors_inclusive(&self, v: NodeId) -> Ancestors<'_> {
        Ancestors { tree: self, next: Some(v) }
    }

    /// The path from the root down to `v` (inclusive both ends).
    #[must_use]
    pub fn root_path(&self, v: NodeId) -> Vec<NodeId> {
        let mut path: Vec<NodeId> = self.ancestors_inclusive(v).collect();
        path.reverse();
        path
    }

    /// Leaves of the tree, in preorder.
    #[must_use]
    pub fn leaves(&self) -> Vec<NodeId> {
        self.preorder().iter().copied().filter(|&v| self.is_leaf(v)).collect()
    }

    // --- Canonical shape constructors (richer generators live in
    // `otc-workloads`; these are the shapes the paper's bounds are extremal
    // for and the shapes core tests exercise). ---

    /// A path (line) with `n ≥ 1` nodes; node 0 is the root, node `i`'s
    /// parent is `i − 1`. Height = n. This is the "tree with no branches" of
    /// the paper's Figure 2.
    #[must_use]
    pub fn path(n: usize) -> Self {
        assert!(n >= 1);
        let parents: Vec<Option<usize>> =
            (0..n).map(|i| if i == 0 { None } else { Some(i - 1) }).collect();
        Self::from_parents(&parents)
    }

    /// A star: a root with `leaves` children. Height = 2 (or 1 when
    /// `leaves == 0`). This is the shape of the lower-bound reduction
    /// (Appendix C: leaves play the role of pages).
    #[must_use]
    pub fn star(leaves: usize) -> Self {
        let parents: Vec<Option<usize>> =
            std::iter::once(None).chain((0..leaves).map(|_| Some(0))).collect();
        Self::from_parents(&parents)
    }

    /// A complete `k`-ary tree with the given number of levels (`levels ≥ 1`,
    /// `k ≥ 1`). A `k = 1` tree degenerates to a path.
    #[must_use]
    pub fn kary(k: usize, levels: usize) -> Self {
        assert!(levels >= 1 && k >= 1);
        let mut parents: Vec<Option<usize>> = vec![None];
        let mut level_start = 0usize;
        let mut level_len = 1usize;
        for _ in 1..levels {
            let next_start = parents.len();
            for p in level_start..level_start + level_len {
                for _ in 0..k {
                    parents.push(Some(p));
                }
            }
            level_start = next_start;
            level_len *= k;
        }
        Self::from_parents(&parents)
    }

    /// A caterpillar: a spine path of `spine` nodes, each spine node with
    /// `legs` leaf children. Mixes large height with branching.
    #[must_use]
    pub fn caterpillar(spine: usize, legs: usize) -> Self {
        assert!(spine >= 1);
        let mut parents: Vec<Option<usize>> = Vec::with_capacity(spine * (legs + 1));
        let mut prev_spine = None;
        for _ in 0..spine {
            let id = parents.len();
            parents.push(prev_spine);
            prev_spine = Some(id);
            for _ in 0..legs {
                parents.push(Some(id));
            }
        }
        Self::from_parents(&parents)
    }
}

/// Iterator from a node up to the root (inclusive).
pub struct Ancestors<'a> {
    tree: &'a Tree,
    next: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let v = self.next?;
        self.next = self.tree.parent(v);
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node() {
        let t = Tree::from_parents(&[None]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        assert_eq!(t.max_degree(), 0);
        assert!(t.is_leaf(t.root()));
        assert_eq!(t.subtree(t.root()), &[NodeId(0)]);
    }

    #[test]
    fn path_shape() {
        let t = Tree::path(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.height(), 5);
        assert_eq!(t.max_degree(), 1);
        assert_eq!(t.depth(NodeId(4)), 4);
        assert_eq!(t.subtree_size(NodeId(2)), 3);
        assert!(t.is_ancestor_or_self(NodeId(1), NodeId(4)));
        assert!(!t.is_ancestor_or_self(NodeId(4), NodeId(1)));
    }

    #[test]
    fn star_shape() {
        let t = Tree::star(6);
        assert_eq!(t.len(), 7);
        assert_eq!(t.height(), 2);
        assert_eq!(t.max_degree(), 6);
        assert_eq!(t.leaves().len(), 6);
        for leaf in t.leaves() {
            assert_eq!(t.parent(leaf), Some(t.root()));
            assert_eq!(t.subtree_size(leaf), 1);
        }
    }

    #[test]
    fn kary_shape() {
        let t = Tree::kary(2, 4);
        assert_eq!(t.len(), 15);
        assert_eq!(t.height(), 4);
        assert_eq!(t.max_degree(), 2);
        assert_eq!(t.subtree_size(t.root()), 15);
        assert_eq!(t.leaves().len(), 8);
    }

    #[test]
    fn kary_unary_is_path() {
        let t = Tree::kary(1, 6);
        assert_eq!(t.len(), 6);
        assert_eq!(t.height(), 6);
        assert_eq!(t.max_degree(), 1);
    }

    #[test]
    fn caterpillar_shape() {
        let t = Tree::caterpillar(4, 3);
        assert_eq!(t.len(), 16);
        assert_eq!(t.height(), 5); // spine depth 4 plus legs on the last spine node
        assert_eq!(t.max_degree(), 4); // spine child + 3 legs
    }

    #[test]
    fn preorder_subtree_slices() {
        //      0
        //     / \
        //    1   4
        //   / \
        //  2   3
        let t = Tree::from_parents(&[None, Some(0), Some(1), Some(1), Some(0)]);
        assert_eq!(t.preorder(), &[NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
        assert_eq!(t.subtree(NodeId(1)), &[NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(t.subtree(NodeId(4)), &[NodeId(4)]);
        assert_eq!(t.subtree_size(NodeId(0)), 5);
    }

    #[test]
    fn ancestor_queries_match_walk() {
        let t = Tree::from_parents(&[None, Some(0), Some(1), Some(1), Some(0), Some(4), Some(4)]);
        for a in t.nodes() {
            for d in t.nodes() {
                let by_walk = t.ancestors_inclusive(d).any(|x| x == a);
                assert_eq!(t.is_ancestor_or_self(a, d), by_walk, "a={a:?} d={d:?}");
            }
        }
    }

    #[test]
    fn root_path_order() {
        let t = Tree::path(4);
        assert_eq!(t.root_path(NodeId(3)), vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(t.root_path(NodeId(0)), vec![NodeId(0)]);
    }

    #[test]
    fn subtree_sizes_sum() {
        let t = Tree::kary(3, 4);
        // Sum of subtree sizes equals sum over nodes of (depth-ish) — here we
        // just check root and leaf invariants plus monotonicity along edges.
        for v in t.nodes() {
            if let Some(p) = t.parent(v) {
                assert!(t.subtree_size(p) > t.subtree_size(v));
            }
        }
        let leaf_total: u32 = t.leaves().iter().map(|&l| t.subtree_size(l)).sum();
        assert_eq!(leaf_total, t.leaves().len() as u32);
    }

    #[test]
    #[should_panic(expected = "exactly one root")]
    fn no_root_panics() {
        // 0 <-> 1 cycle, no None entry.
        let _ = Tree::from_parents(&[Some(1), Some(0)]);
    }

    #[test]
    #[should_panic(expected = "multiple roots")]
    fn two_roots_panic() {
        let _ = Tree::from_parents(&[None, None]);
    }

    #[test]
    #[should_panic(expected = "not a connected tree")]
    fn cycle_panics() {
        // Root plus a 2-cycle among {1, 2}.
        let _ = Tree::from_parents(&[None, Some(2), Some(1)]);
    }

    #[test]
    #[should_panic(expected = "own parent")]
    fn self_loop_panics() {
        let _ = Tree::from_parents(&[None, Some(1)]);
    }
}
