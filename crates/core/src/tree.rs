//! Arena-based rooted trees.
//!
//! The universe of the tree caching problem is an arbitrary rooted tree `T`
//! (paper, Section 1). This module provides an immutable, cache-friendly
//! arena representation with the derived data every algorithm needs:
//! depths, subtree sizes, preorder intervals (for O(1) ancestor tests and
//! O(|subtree|) subtree iteration), height and maximum degree.
//!
//! Node identifiers are dense `u32` indices; every per-node array is a
//! [`crate::arena::NodeSlab`] over that id space, and the parent relation
//! is packed as one `u32` per node (`u32::MAX` marks the root) — half the
//! footprint of an `Option<NodeId>` array and exactly one branch to
//! decode. The ancestor walks of the TC hot path touch only this packed
//! array.

#![warn(clippy::indexing_slicing)]

use std::fmt;

use crate::arena::{node_id, NodeSlab};

/// Packed-parent sentinel: the root stores this in place of a parent id.
const NO_PARENT: u32 = u32::MAX;

/// Identifier of a tree node; a dense index into the tree arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as `usize`, for direct vector indexing.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An immutable rooted tree with precomputed navigation data.
#[derive(Debug, Clone)]
pub struct Tree {
    /// Parent of each node, packed (`NO_PARENT` for the root).
    parent: NodeSlab<u32>,
    /// Children lists; order is the insertion order of the builder.
    children_flat: Vec<NodeId>,
    /// Child-list offsets into `children_flat`, length `n + 1`.
    children_start: Vec<u32>,
    depth: NodeSlab<u32>,
    /// Preorder rank of each node.
    tin: NodeSlab<u32>,
    /// `order[tin[v]] == v`; subtree of `v` is the contiguous slice
    /// `order[tin[v] .. tin[v] + subtree_size[v]]`.
    order: Vec<NodeId>,
    subtree_size: NodeSlab<u32>,
    height: u32,
    max_degree: u32,
}

impl Tree {
    /// Builds a tree from a parent array: `parents[i]` is the parent of node
    /// `i`, and exactly one entry (the root) is `None`.
    ///
    /// ```
    /// use otc_core::tree::{NodeId, Tree};
    /// //    0
    /// //   / \
    /// //  1   2
    /// //  |
    /// //  3
    /// let t = Tree::from_parents(&[None, Some(0), Some(0), Some(1)]);
    /// assert_eq!(t.len(), 4);
    /// assert_eq!(t.height(), 3);
    /// assert_eq!(t.subtree(NodeId(1)), &[NodeId(1), NodeId(3)]);
    /// assert!(t.is_ancestor_or_self(NodeId(0), NodeId(3)));
    /// ```
    ///
    /// # Panics
    /// Panics if the array is empty, has zero or multiple roots, contains an
    /// out-of-range parent, or contains a cycle.
    #[must_use]
    pub fn from_parents(parents: &[Option<usize>]) -> Self {
        assert!(!parents.is_empty(), "a tree has at least one node");
        let n = parents.len();
        let mut root = None;
        for (i, p) in parents.iter().enumerate() {
            match p {
                None => {
                    assert!(root.is_none(), "multiple roots: {root:?} and {i}");
                    root = Some(i);
                }
                Some(p) => {
                    assert!(*p < n, "parent {p} of node {i} out of range");
                    assert!(*p != i, "node {i} is its own parent");
                }
            }
        }
        assert!(root.is_some(), "a tree needs exactly one root");
        assert_eq!(root, Some(0), "the root must be node 0 (canonical arena layout)");

        let mut child_count = vec![0u32; n];
        for p in parents.iter().flatten() {
            if let Some(c) = child_count.get_mut(*p) {
                *c += 1;
            }
        }
        let max_degree = child_count.iter().copied().max().unwrap_or(0);
        // Exclusive prefix sums become both the child-list offsets and the
        // fill cursors.
        let mut cursor: Vec<u32> = Vec::with_capacity(n);
        let mut acc = 0u32;
        for &c in &child_count {
            cursor.push(acc);
            acc += c;
        }
        let mut children_start = cursor.clone();
        children_start.push(acc);
        let mut children_flat = vec![NodeId(0); n - 1];
        for (i, p) in parents.iter().enumerate() {
            let Some(p) = p else { continue };
            let Some(slot) = cursor.get_mut(*p) else { continue };
            let at = *slot as usize;
            *slot += 1;
            if let Some(dst) = children_flat.get_mut(at) {
                *dst = node_id(i);
            }
        }

        let parent = NodeSlab::from_vec(
            parents.iter().map(|p| p.map_or(NO_PARENT, |p| node_id(p).0)).collect(),
        );
        let mut tree = Self {
            parent,
            children_flat,
            children_start,
            depth: NodeSlab::filled(n, 0),
            tin: NodeSlab::filled(n, 0),
            order: Vec::with_capacity(n),
            subtree_size: NodeSlab::filled(n, 1),
            height: 0,
            max_degree,
        };
        tree.compute_derived(n);
        tree
    }

    fn compute_derived(&mut self, n: usize) {
        // Iterative preorder DFS that also detects cycles/disconnected nodes
        // (any node not reached means the parent array was not a tree).
        let mut stack = vec![self.root()];
        let mut seen: u32 = 0;
        while let Some(v) = stack.pop() {
            *self.tin.get_mut(v) = seen;
            self.order.push(v);
            seen += 1;
            let d = *self.depth.get(v);
            self.height = self.height.max(d + 1);
            let (lo, hi) = self.children_range(v);
            // Push in reverse so preorder visits children in builder order.
            for idx in (lo..hi).rev() {
                let Some(&c) = self.children_flat.get(idx) else { continue };
                *self.depth.get_mut(c) = d + 1;
                stack.push(c);
            }
        }
        assert_eq!(seen as usize, n, "parent array is not a connected tree (cycle or orphan)");
        // Subtree sizes in reverse preorder (children complete before parents).
        for i in (0..n).rev() {
            let Some(&v) = self.order.get(i) else { continue };
            let sz = *self.subtree_size.get(v);
            if let Some(p) = self.parent(v) {
                *self.subtree_size.get_mut(p) += sz;
            }
        }
    }

    #[inline]
    fn children_range(&self, v: NodeId) -> (usize, usize) {
        let lo = self.children_start.get(v.index()).copied().unwrap_or(0);
        let hi = self.children_start.get(v.index() + 1).copied().unwrap_or(lo);
        (lo as usize, hi as usize)
    }

    fn children_slice(&self, v: NodeId) -> &[NodeId] {
        let (lo, hi) = self.children_range(v);
        debug_assert!(hi <= self.children_flat.len());
        self.children_flat.get(lo..hi).unwrap_or(&[])
    }

    /// Number of nodes, `|T|`.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Always false: trees have at least one node.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The root node (always `NodeId(0)` in the canonical layout).
    #[inline]
    #[must_use]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Parent of `v`, or `None` for the root.
    #[inline]
    #[must_use]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let p = *self.parent.get(v);
        (p != NO_PARENT).then_some(NodeId(p))
    }

    /// Children of `v`.
    #[inline]
    #[must_use]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        self.children_slice(v)
    }

    /// True if `v` is a leaf.
    #[must_use]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.children(v).is_empty()
    }

    /// Depth of `v` (root has depth 0).
    #[inline]
    #[must_use]
    pub fn depth(&self, v: NodeId) -> u32 {
        *self.depth.get(v)
    }

    /// Height `h(T)`: the number of levels, i.e. `1 + max depth`. A
    /// single-node tree has height 1. This is the `h(T)` of the paper's
    /// layer-partition argument (Lemma 5.10 partitions nodes into `h(T)`
    /// layers by distance to the root).
    #[inline]
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Maximum number of children of any node, `deg(T)`.
    #[inline]
    #[must_use]
    pub fn max_degree(&self) -> u32 {
        self.max_degree
    }

    /// Size of the subtree `T(v)` rooted at `v` (including `v`).
    #[inline]
    #[must_use]
    pub fn subtree_size(&self, v: NodeId) -> u32 {
        *self.subtree_size.get(v)
    }

    /// All subtree sizes as one contiguous id-ordered slice — the flush
    /// fast path of `tc::fast` re-seeds its per-node aggregates from this
    /// in a single fused pass.
    #[must_use]
    pub fn subtree_sizes(&self) -> &[u32] {
        self.subtree_size.as_slice()
    }

    /// True if `a` is an ancestor of `d` **or equal to it** (O(1)).
    #[inline]
    #[must_use]
    pub fn is_ancestor_or_self(&self, a: NodeId, d: NodeId) -> bool {
        let ta = *self.tin.get(a);
        let td = *self.tin.get(d);
        td >= ta && td < ta + *self.subtree_size.get(a)
    }

    /// Preorder rank of `v`.
    #[inline]
    #[must_use]
    pub fn preorder_rank(&self, v: NodeId) -> u32 {
        *self.tin.get(v)
    }

    /// All nodes in preorder (root first).
    #[must_use]
    pub fn preorder(&self) -> &[NodeId] {
        &self.order
    }

    /// The subtree `T(v)` as a contiguous preorder slice (includes `v`).
    #[must_use]
    pub fn subtree(&self, v: NodeId) -> &[NodeId] {
        let lo = *self.tin.get(v) as usize;
        let hi = lo + *self.subtree_size.get(v) as usize;
        debug_assert!(hi <= self.order.len());
        self.order.get(lo..hi).unwrap_or(&[])
    }

    /// Iterator over all node ids, `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len()).map(node_id)
    }

    /// Iterator over `v` and its ancestors up to the root.
    pub fn ancestors_inclusive(&self, v: NodeId) -> Ancestors<'_> {
        Ancestors { tree: self, next: Some(v) }
    }

    /// The path from the root down to `v` (inclusive both ends).
    #[must_use]
    pub fn root_path(&self, v: NodeId) -> Vec<NodeId> {
        let mut path: Vec<NodeId> = self.ancestors_inclusive(v).collect();
        path.reverse();
        path
    }

    /// Leaves of the tree, in preorder.
    #[must_use]
    pub fn leaves(&self) -> Vec<NodeId> {
        self.preorder().iter().copied().filter(|&v| self.is_leaf(v)).collect()
    }

    /// Heap bytes of the arena representation (packed parents, child
    /// lists, preorder tables) — the navigation share of the bytes/node
    /// accounting reported by the benches.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.parent.heap_bytes()
            + self.children_flat.len() * std::mem::size_of::<NodeId>()
            + self.children_start.len() * 4
            + self.depth.heap_bytes()
            + self.tin.heap_bytes()
            + self.order.len() * std::mem::size_of::<NodeId>()
            + self.subtree_size.heap_bytes()
    }

    // --- Canonical shape constructors (richer generators live in
    // `otc-workloads`; these are the shapes the paper's bounds are extremal
    // for and the shapes core tests exercise). ---

    /// A path (line) with `n ≥ 1` nodes; node 0 is the root, node `i`'s
    /// parent is `i − 1`. Height = n. This is the "tree with no branches" of
    /// the paper's Figure 2.
    #[must_use]
    pub fn path(n: usize) -> Self {
        assert!(n >= 1);
        let parents: Vec<Option<usize>> =
            (0..n).map(|i| if i == 0 { None } else { Some(i - 1) }).collect();
        Self::from_parents(&parents)
    }

    /// A star: a root with `leaves` children. Height = 2 (or 1 when
    /// `leaves == 0`). This is the shape of the lower-bound reduction
    /// (Appendix C: leaves play the role of pages).
    #[must_use]
    pub fn star(leaves: usize) -> Self {
        let parents: Vec<Option<usize>> =
            std::iter::once(None).chain((0..leaves).map(|_| Some(0))).collect();
        Self::from_parents(&parents)
    }

    /// A complete `k`-ary tree with the given number of levels (`levels ≥ 1`,
    /// `k ≥ 1`). A `k = 1` tree degenerates to a path.
    #[must_use]
    pub fn kary(k: usize, levels: usize) -> Self {
        assert!(levels >= 1 && k >= 1);
        let mut parents: Vec<Option<usize>> = vec![None];
        let mut level_start = 0usize;
        let mut level_len = 1usize;
        for _ in 1..levels {
            let next_start = parents.len();
            for p in level_start..level_start + level_len {
                for _ in 0..k {
                    parents.push(Some(p));
                }
            }
            level_start = next_start;
            level_len *= k;
        }
        Self::from_parents(&parents)
    }

    /// A caterpillar: a spine path of `spine` nodes, each spine node with
    /// `legs` leaf children. Mixes large height with branching.
    #[must_use]
    pub fn caterpillar(spine: usize, legs: usize) -> Self {
        assert!(spine >= 1);
        let mut parents: Vec<Option<usize>> = Vec::with_capacity(spine * (legs + 1));
        let mut prev_spine = None;
        for _ in 0..spine {
            let id = parents.len();
            parents.push(prev_spine);
            prev_spine = Some(id);
            for _ in 0..legs {
                parents.push(Some(id));
            }
        }
        Self::from_parents(&parents)
    }
}

/// Iterator from a node up to the root (inclusive).
pub struct Ancestors<'a> {
    tree: &'a Tree,
    next: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let v = self.next?;
        self.next = self.tree.parent(v);
        Some(v)
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing, reason = "tests index fixtures freely")]
mod tests {
    use super::*;

    #[test]
    fn single_node() {
        let t = Tree::from_parents(&[None]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        assert_eq!(t.max_degree(), 0);
        assert!(t.is_leaf(t.root()));
        assert_eq!(t.subtree(t.root()), &[NodeId(0)]);
    }

    #[test]
    fn path_shape() {
        let t = Tree::path(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.height(), 5);
        assert_eq!(t.max_degree(), 1);
        assert_eq!(t.depth(NodeId(4)), 4);
        assert_eq!(t.subtree_size(NodeId(2)), 3);
        assert!(t.is_ancestor_or_self(NodeId(1), NodeId(4)));
        assert!(!t.is_ancestor_or_self(NodeId(4), NodeId(1)));
    }

    #[test]
    fn star_shape() {
        let t = Tree::star(6);
        assert_eq!(t.len(), 7);
        assert_eq!(t.height(), 2);
        assert_eq!(t.max_degree(), 6);
        assert_eq!(t.leaves().len(), 6);
        for leaf in t.leaves() {
            assert_eq!(t.parent(leaf), Some(t.root()));
            assert_eq!(t.subtree_size(leaf), 1);
        }
    }

    #[test]
    fn kary_shape() {
        let t = Tree::kary(2, 4);
        assert_eq!(t.len(), 15);
        assert_eq!(t.height(), 4);
        assert_eq!(t.max_degree(), 2);
        assert_eq!(t.subtree_size(t.root()), 15);
        assert_eq!(t.leaves().len(), 8);
    }

    #[test]
    fn kary_unary_is_path() {
        let t = Tree::kary(1, 6);
        assert_eq!(t.len(), 6);
        assert_eq!(t.height(), 6);
        assert_eq!(t.max_degree(), 1);
    }

    #[test]
    fn caterpillar_shape() {
        let t = Tree::caterpillar(4, 3);
        assert_eq!(t.len(), 16);
        assert_eq!(t.height(), 5); // spine depth 4 plus legs on the last spine node
        assert_eq!(t.max_degree(), 4); // spine child + 3 legs
    }

    #[test]
    fn preorder_subtree_slices() {
        //      0
        //     / \
        //    1   4
        //   / \
        //  2   3
        let t = Tree::from_parents(&[None, Some(0), Some(1), Some(1), Some(0)]);
        assert_eq!(t.preorder(), &[NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
        assert_eq!(t.subtree(NodeId(1)), &[NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(t.subtree(NodeId(4)), &[NodeId(4)]);
        assert_eq!(t.subtree_size(NodeId(0)), 5);
    }

    #[test]
    fn ancestor_queries_match_walk() {
        let t = Tree::from_parents(&[None, Some(0), Some(1), Some(1), Some(0), Some(4), Some(4)]);
        for a in t.nodes() {
            for d in t.nodes() {
                let by_walk = t.ancestors_inclusive(d).any(|x| x == a);
                assert_eq!(t.is_ancestor_or_self(a, d), by_walk, "a={a:?} d={d:?}");
            }
        }
    }

    #[test]
    fn root_path_order() {
        let t = Tree::path(4);
        assert_eq!(t.root_path(NodeId(3)), vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(t.root_path(NodeId(0)), vec![NodeId(0)]);
    }

    #[test]
    fn subtree_sizes_sum() {
        let t = Tree::kary(3, 4);
        // Sum of subtree sizes equals sum over nodes of (depth-ish) — here we
        // just check root and leaf invariants plus monotonicity along edges.
        for v in t.nodes() {
            if let Some(p) = t.parent(v) {
                assert!(t.subtree_size(p) > t.subtree_size(v));
            }
        }
        let leaf_total: u32 = t.leaves().iter().map(|&l| t.subtree_size(l)).sum();
        assert_eq!(leaf_total, t.leaves().len() as u32);
    }

    #[test]
    fn subtree_sizes_slice_matches_accessor() {
        let t = Tree::caterpillar(5, 2);
        let sizes = t.subtree_sizes();
        assert_eq!(sizes.len(), t.len());
        for v in t.nodes() {
            assert_eq!(sizes[v.index()], t.subtree_size(v));
        }
    }

    #[test]
    fn heap_bytes_scale_with_nodes() {
        // Packed parents: the arena representation costs ~28 bytes/node of
        // navigation data (7 u32-wide arrays), independent of shape.
        let small = Tree::kary(2, 4); // 15 nodes
        let big = Tree::kary(2, 8); // 255 nodes
        assert!(small.heap_bytes() < big.heap_bytes());
        let per_node = big.heap_bytes() as f64 / big.len() as f64;
        assert!((24.0..32.0).contains(&per_node), "navigation bytes/node = {per_node}");
    }

    #[test]
    #[should_panic(expected = "exactly one root")]
    fn no_root_panics() {
        // 0 <-> 1 cycle, no None entry.
        let _ = Tree::from_parents(&[Some(1), Some(0)]);
    }

    #[test]
    #[should_panic(expected = "multiple roots")]
    fn two_roots_panic() {
        let _ = Tree::from_parents(&[None, None]);
    }

    #[test]
    #[should_panic(expected = "not a connected tree")]
    fn cycle_panics() {
        // Root plus a 2-cycle among {1, 2}.
        let _ = Tree::from_parents(&[None, Some(2), Some(1)]);
    }

    #[test]
    #[should_panic(expected = "own parent")]
    fn self_loop_panics() {
        let _ = Tree::from_parents(&[None, Some(1)]);
    }
}
