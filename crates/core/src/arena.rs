//! Contiguous `NodeId`-indexed arenas and the flat-slice snapshot codec.
//!
//! Every per-node quantity in the hot TC data structures lives in one of
//! two arena types:
//!
//! * [`NodeSlab<T>`] — a dense `NodeId → T` array. This is *the* audited
//!   indexing seam: all node-indexed accesses in `tree`/`cache`/`tc::fast`
//!   go through [`NodeSlab::get`]/[`NodeSlab::get_mut`], so the
//!   `clippy::indexing_slicing` gate on those files has exactly one
//!   allow-site to review (and the bounds check it keeps).
//! * [`NodeBitSet`] — a packed membership set, one bit per node in `u64`
//!   words. Its byte serialisation is bit-compatible with the historical
//!   `CacheSet` bitmap (node `i` at bit `i % 8` of byte `i / 8`): a word's
//!   little-endian byte `j` holds exactly bits `8j..8j+8`.
//!
//! The bottom half is the **length-prefixed flat-slice codec** used by
//! policy snapshots ([`crate::tc::TcFast`] state blobs): each section is a
//! `u64` element count followed by the raw little-endian elements, so an
//! arena serialises as one prefix plus a flat memory walk — no per-node
//! framing, and a truncated or padded blob is always a typed error.

#![warn(clippy::indexing_slicing)]

use crate::tree::NodeId;

/// Converts a dense index into a [`NodeId`], asserting it fits the `u32`
/// id space. The single audited `usize → u32` conversion site for the
/// arena-backed modules.
///
/// # Panics
/// Panics if `i` exceeds `u32::MAX` — node counts are structurally bounded
/// by the id space, so this only fires on a corrupted caller.
#[inline]
#[must_use]
pub fn node_id(i: usize) -> NodeId {
    assert!(i <= u32::MAX as usize, "node index {i} exceeds the u32 id space");
    // otc-lint: allow(R4 reason="bound asserted on the previous line")
    NodeId(i as u32)
}

/// A dense `NodeId`-indexed arena of `T`.
///
/// ```
/// use otc_core::arena::{node_id, NodeSlab};
///
/// let mut slab = NodeSlab::filled(4, 0u64);
/// *slab.get_mut(node_id(2)) += 7;
/// assert_eq!(*slab.get(node_id(2)), 7);
/// assert_eq!(slab.as_slice(), &[0, 0, 7, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSlab<T> {
    items: Vec<T>,
}

impl<T> NodeSlab<T> {
    /// An arena of `n` copies of `value`.
    #[must_use]
    pub fn filled(n: usize, value: T) -> Self
    where
        T: Clone,
    {
        Self { items: vec![value; n] }
    }

    /// Wraps an existing dense vector (index `i` becomes `NodeId(i)`).
    #[must_use]
    pub fn from_vec(items: Vec<T>) -> Self {
        Self { items }
    }

    /// Number of slots.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the arena has no slots.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The slot of `v`.
    ///
    /// # Panics
    /// Panics if `v` is outside the arena.
    #[inline]
    #[must_use]
    #[allow(
        clippy::indexing_slicing,
        reason = "the audited arena index site: NodeIds are dense indices into same-sized arenas, and the slice op keeps its bounds check"
    )]
    pub fn get(&self, v: NodeId) -> &T {
        &self.items[v.index()]
    }

    /// The slot of `v`, mutably.
    ///
    /// # Panics
    /// Panics if `v` is outside the arena.
    #[inline]
    #[must_use]
    #[allow(
        clippy::indexing_slicing,
        reason = "the audited arena index site: NodeIds are dense indices into same-sized arenas, and the slice op keeps its bounds check"
    )]
    pub fn get_mut(&mut self, v: NodeId) -> &mut T {
        &mut self.items[v.index()]
    }

    /// Overwrites every slot with `value`.
    pub fn fill(&mut self, value: T)
    where
        T: Clone,
    {
        self.items.fill(value);
    }

    /// Iterator over the slots in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// Mutable iterator over the slots in id order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.items.iter_mut()
    }

    /// The arena as a contiguous slice in id order.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Heap bytes the arena occupies (capacity is trimmed to length on
    /// construction paths, so this is `len · size_of::<T>()`).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.items.len() * std::mem::size_of::<T>()
    }
}

impl<'a, T> IntoIterator for &'a NodeSlab<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

/// A packed per-node membership set: one bit per `NodeId`, stored in
/// `u64` words for word-at-a-time scans (`iter`/`drain_into` skip empty
/// words entirely).
///
/// ```
/// use otc_core::arena::{node_id, NodeBitSet};
///
/// let mut set = NodeBitSet::empty(100);
/// assert!(set.insert(node_id(3)));
/// assert!(!set.insert(node_id(3)), "already present");
/// assert!(set.insert(node_id(70)));
/// let members: Vec<_> = set.iter().collect();
/// assert_eq!(members, vec![node_id(3), node_id(70)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeBitSet {
    words: Vec<u64>,
    /// Number of valid bits; bits at positions `>= n` are always zero.
    n: usize,
}

impl NodeBitSet {
    /// An empty set over a universe of `n` nodes.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        Self { words: vec![0; n.div_ceil(64)], n }
    }

    /// Size of the universe (valid ids are `0..universe()`).
    #[inline]
    #[must_use]
    pub fn universe(&self) -> usize {
        self.n
    }

    #[inline]
    #[must_use]
    #[allow(
        clippy::indexing_slicing,
        reason = "the audited bitset word access: in-universe ids (asserted) land in-bounds, and the slice op keeps its bounds check"
    )]
    fn word(&self, v: NodeId) -> u64 {
        assert!(v.index() < self.n, "node {v} outside bitset universe of {}", self.n);
        self.words[v.index() / 64]
    }

    #[inline]
    #[allow(
        clippy::indexing_slicing,
        reason = "the audited bitset word access: in-universe ids (asserted) land in-bounds, and the slice op keeps its bounds check"
    )]
    fn word_mut(&mut self, v: NodeId) -> &mut u64 {
        assert!(v.index() < self.n, "node {v} outside bitset universe of {}", self.n);
        &mut self.words[v.index() / 64]
    }

    /// True if `v` is in the set.
    ///
    /// # Panics
    /// Panics if `v` is outside the universe.
    #[inline]
    #[must_use]
    pub fn contains(&self, v: NodeId) -> bool {
        self.word(v) >> (v.index() % 64) & 1 == 1
    }

    /// Adds `v`; returns true if it was newly added.
    ///
    /// # Panics
    /// Panics if `v` is outside the universe.
    #[inline]
    pub fn insert(&mut self, v: NodeId) -> bool {
        let bit = 1u64 << (v.index() % 64);
        let w = self.word_mut(v);
        let newly = *w & bit == 0;
        *w |= bit;
        newly
    }

    /// Removes `v`; returns true if it was present.
    ///
    /// # Panics
    /// Panics if `v` is outside the universe.
    #[inline]
    pub fn remove(&mut self, v: NodeId) -> bool {
        let bit = 1u64 << (v.index() % 64);
        let w = self.word_mut(v);
        let was = *w & bit != 0;
        *w &= !bit;
        was
    }

    /// Removes every member. O(words), allocation-free.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of members (popcount over the words).
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over the members in id order, one `trailing_zeros` per
    /// member and one branch per empty word.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let base = node_id(i * 64).0;
            BitIter { word: w, base }
        })
    }

    /// Removes every member, appending them (in id order) to `out`.
    /// Allocation-free once `out` has capacity.
    pub fn drain_into(&mut self, out: &mut Vec<NodeId>) {
        let mut base: u32 = 0;
        for w in &mut self.words {
            let mut word = *w;
            while word != 0 {
                out.push(NodeId(base + word.trailing_zeros()));
                word &= word - 1;
            }
            *w = 0;
            base += 64;
        }
    }

    /// Number of bytes [`NodeBitSet::write_bytes`] appends for a universe
    /// of `n` nodes.
    #[must_use]
    pub fn byte_len(n: usize) -> usize {
        n.div_ceil(8)
    }

    /// Appends the set as a packed bitmap: `ceil(n/8)` bytes, node `i` at
    /// bit `i % 8` of byte `i / 8`, unused trailing bits zero — the exact
    /// historical `CacheSet` bitmap format (a word's little-endian bytes
    /// are its bit octets in order). Allocation-free once `out` has
    /// capacity.
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        let mut remaining = Self::byte_len(self.n);
        for w in &self.words {
            let take = remaining.min(8);
            out.extend(w.to_le_bytes().into_iter().take(take));
            remaining -= take;
        }
    }

    /// Rebuilds a set from a packed bitmap written by
    /// [`NodeBitSet::write_bytes`].
    ///
    /// Strict: the byte length must be exactly `ceil(n/8)` and every bit
    /// at position `>= n` must be zero, so a truncated or bit-flipped
    /// snapshot section cannot silently decode to a plausible set.
    ///
    /// # Errors
    /// A human-readable reason when the bitmap does not decode.
    pub fn from_bytes(n: usize, bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() != Self::byte_len(n) {
            return Err(format!(
                "bitmap is {} bytes but {} nodes need {}",
                bytes.len(),
                n,
                Self::byte_len(n)
            ));
        }
        let mut words = vec![0u64; n.div_ceil(64)];
        for (w, chunk) in words.iter_mut().zip(bytes.chunks(8)) {
            let mut buf = [0u8; 8];
            for (dst, &src) in buf.iter_mut().zip(chunk) {
                *dst = src;
            }
            *w = u64::from_le_bytes(buf);
        }
        if !n.is_multiple_of(64) {
            if let Some(&last) = words.last() {
                if last >> (n % 64) != 0 {
                    return Err("bitmap has non-zero bits past the last node".to_string());
                }
            }
        }
        Ok(Self { words, n })
    }

    /// Heap bytes the set occupies.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// Iterator over the set bits of one word.
struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(NodeId(self.base + tz))
    }
}

// --- Length-prefixed flat-slice codec -------------------------------------
//
// A *section* is `u64 element-count (LE)` followed by the elements as raw
// little-endian `u64`s (or raw bytes for byte sections). Readers state the
// count they expect and refuse anything else, so section boundaries can
// never silently shift.

/// Appends a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads the next little-endian `u64` at `*pos`, advancing it.
///
/// # Errors
/// When fewer than 8 bytes remain.
pub fn take_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let end = pos.checked_add(8).filter(|&e| e <= bytes.len());
    let Some(end) = end else {
        return Err("state blob truncated inside a u64".to_string());
    };
    let chunk = bytes.get(*pos..end).ok_or_else(|| "state blob truncated".to_string())?;
    let arr: [u8; 8] = chunk.try_into().map_err(|_| "state blob truncated".to_string())?;
    *pos = end;
    Ok(u64::from_le_bytes(arr))
}

/// Appends a length-prefixed `u64` section: the element count, then every
/// element little-endian. Allocation-free once `out` has capacity.
pub fn put_u64_section(out: &mut Vec<u8>, vals: impl ExactSizeIterator<Item = u64>) {
    put_u64(out, vals.len() as u64);
    for v in vals {
        put_u64(out, v);
    }
}

/// Reads a length-prefixed `u64` section of exactly `want` elements.
///
/// # Errors
/// When the prefix disagrees with `want` or the payload is truncated.
pub fn take_u64_section(bytes: &[u8], pos: &mut usize, want: usize) -> Result<Vec<u64>, String> {
    let count = take_u64(bytes, pos)?;
    if count != want as u64 {
        return Err(format!("section holds {count} u64s but {want} were expected"));
    }
    // One up-front reservation: collecting through the `Result` adapter
    // would lose the size hint and reallocate O(log n) times per section.
    let mut out = Vec::with_capacity(want);
    for _ in 0..want {
        out.push(take_u64(bytes, pos)?);
    }
    Ok(out)
}

/// Appends a length-prefixed byte section: the byte count, then the raw
/// bytes.
pub fn put_byte_section_header(out: &mut Vec<u8>, len: usize) {
    put_u64(out, len as u64);
}

/// Reads a length-prefixed byte section of exactly `want` bytes,
/// returning the payload slice.
///
/// # Errors
/// When the prefix disagrees with `want` or the payload is truncated.
pub fn take_byte_section<'a>(
    bytes: &'a [u8],
    pos: &mut usize,
    want: usize,
) -> Result<&'a [u8], String> {
    let len = take_u64(bytes, pos)?;
    if len != want as u64 {
        return Err(format!("section holds {len} bytes but {want} were expected"));
    }
    let end = pos.checked_add(want).filter(|&e| e <= bytes.len());
    let Some(end) = end else {
        return Err("state blob truncated inside a byte section".to_string());
    };
    let payload = bytes.get(*pos..end).ok_or_else(|| "state blob truncated".to_string())?;
    *pos = end;
    Ok(payload)
}

#[cfg(test)]
#[allow(clippy::indexing_slicing, reason = "tests index fixtures freely")]
mod tests {
    use super::*;

    #[test]
    fn slab_round_trip() {
        let mut slab = NodeSlab::filled(5, 1u64);
        *slab.get_mut(node_id(3)) = 9;
        assert_eq!(slab.as_slice(), &[1, 1, 1, 9, 1]);
        assert_eq!(slab.len(), 5);
        assert!(!slab.is_empty());
        slab.fill(0);
        assert_eq!(slab.iter().sum::<u64>(), 0);
        assert_eq!(slab.heap_bytes(), 40);
        let from = NodeSlab::from_vec(vec![2u32, 4, 6]);
        assert_eq!(*from.get(node_id(2)), 6);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn slab_get_is_bounds_checked() {
        let slab = NodeSlab::filled(3, 0u8);
        let _ = slab.get(node_id(3));
    }

    #[test]
    fn bitset_members_and_counts() {
        let mut set = NodeBitSet::empty(130);
        for i in [0usize, 63, 64, 65, 129] {
            assert!(set.insert(node_id(i)));
        }
        assert!(!set.insert(node_id(64)));
        assert_eq!(set.count(), 5);
        assert!(set.contains(node_id(63)));
        assert!(!set.contains(node_id(62)));
        assert!(set.remove(node_id(63)));
        assert!(!set.remove(node_id(63)));
        let members: Vec<usize> = set.iter().map(NodeId::index).collect();
        assert_eq!(members, vec![0, 64, 65, 129]);
        let mut drained = Vec::new();
        set.drain_into(&mut drained);
        assert_eq!(drained.len(), 4);
        assert_eq!(set.count(), 0);
        set.clear();
        assert_eq!(set.universe(), 130);
    }

    #[test]
    #[should_panic(expected = "outside bitset universe")]
    fn bitset_rejects_out_of_universe() {
        let set = NodeBitSet::empty(10);
        let _ = set.contains(node_id(10));
    }

    #[test]
    fn bitset_bytes_match_historical_bitmap_layout() {
        // Node i lives at bit i%8 of byte i/8 — across word boundaries.
        let mut set = NodeBitSet::empty(70);
        set.insert(node_id(0));
        set.insert(node_id(9));
        set.insert(node_id(69));
        let mut bytes = Vec::new();
        set.write_bytes(&mut bytes);
        assert_eq!(bytes.len(), NodeBitSet::byte_len(70));
        assert_eq!(bytes[0], 0b0000_0001);
        assert_eq!(bytes[1], 0b0000_0010);
        assert_eq!(bytes[8], 0b0010_0000);
        let back = NodeBitSet::from_bytes(70, &bytes).expect("round trip");
        assert_eq!(back, set);
    }

    #[test]
    fn bitset_reader_is_strict() {
        let mut set = NodeBitSet::empty(70);
        set.insert(node_id(3));
        let mut bytes = Vec::new();
        set.write_bytes(&mut bytes);
        assert!(NodeBitSet::from_bytes(70, &bytes[..8]).is_err(), "truncated");
        let mut long = bytes.clone();
        long.push(0);
        assert!(NodeBitSet::from_bytes(70, &long).is_err(), "padded");
        let mut junk = bytes.clone();
        junk[8] |= 0b1000_0000; // bit 71 of a 70-node universe
        assert!(NodeBitSet::from_bytes(70, &junk).is_err(), "junk tail bits");
        assert!(NodeBitSet::from_bytes(0, &[]).is_ok());
        assert!(NodeBitSet::from_bytes(0, &[0]).is_err());
    }

    #[test]
    fn u64_sections_round_trip_and_reject_drift() {
        let mut out = Vec::new();
        put_u64_section(&mut out, [7u64, 8, 9].into_iter());
        put_u64_section(&mut out, std::iter::empty());
        let mut pos = 0;
        assert_eq!(take_u64_section(&out, &mut pos, 3).expect("section"), vec![7, 8, 9]);
        assert_eq!(take_u64_section(&out, &mut pos, 0).expect("empty section"), Vec::<u64>::new());
        assert_eq!(pos, out.len());
        // Wrong expected count is a typed error, not a shifted read.
        let mut pos = 0;
        assert!(take_u64_section(&out, &mut pos, 2).is_err());
        // Truncation inside the payload.
        let mut pos = 0;
        assert!(take_u64_section(&out[..out.len() - 9], &mut pos, 3).is_err());
    }

    #[test]
    fn byte_sections_round_trip() {
        let mut out = Vec::new();
        put_byte_section_header(&mut out, 3);
        out.extend_from_slice(&[1, 2, 3]);
        let mut pos = 0;
        assert_eq!(take_byte_section(&out, &mut pos, 3).expect("section"), &[1, 2, 3]);
        assert_eq!(pos, out.len());
        let mut pos = 0;
        assert!(take_byte_section(&out, &mut pos, 4).is_err());
        let mut pos = 0;
        assert!(take_byte_section(&out[..3], &mut pos, 3).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 id space")]
    fn node_id_checks_the_id_space() {
        let _ = node_id(u32::MAX as usize + 1);
    }
}
