//! Changeset validity (paper, Section 3).
//!
//! A non-empty set `X` is a *valid positive changeset* for cache `C` if
//! `X ∩ C = ∅` and `C ∪ X` is a subforest; a *valid negative changeset* if
//! `X ⊆ C` and `C \ X` is a subforest. In downward-closed-set language:
//!
//! * positive: every child of an `X`-node is in `C ∪ X`;
//! * negative: no node outside `X` keeps a child inside `X`, i.e. every
//!   `X`-node with a cached parent has that parent in `X` too (`X` is a
//!   union of tree caps of cached trees).

use crate::cache::CacheSet;
use crate::tree::{NodeId, Tree};

/// The sign of a changeset (fetch vs evict).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChangeKind {
    /// Nodes are fetched into the cache.
    Fetch,
    /// Nodes are evicted from the cache.
    Evict,
}

/// Reusable membership marks for the allocation-free validity checks.
///
/// Marking uses a generation counter so consecutive checks need no O(n)
/// clearing: a node is "in the set" iff its mark equals the current epoch.
#[derive(Debug, Clone, Default)]
pub struct ValidationScratch {
    mark: Vec<u64>,
    epoch: u64,
}

impl ValidationScratch {
    /// A scratch usable for trees with up to `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { mark: vec![0; n], epoch: 0 }
    }

    /// Starts a fresh membership set, resizing to `n` nodes if needed.
    /// O(1) amortised — no clearing; previous epochs' marks go stale.
    pub fn reset(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        self.epoch += 1;
    }

    /// Marks `v`; returns false if it was already marked (a duplicate).
    pub fn insert(&mut self, v: NodeId) -> bool {
        if self.mark[v.index()] == self.epoch {
            return false;
        }
        self.mark[v.index()] = self.epoch;
        true
    }

    /// Whether `v` was marked since the last [`ValidationScratch::reset`].
    #[must_use]
    pub fn contains(&self, v: NodeId) -> bool {
        self.mark[v.index()] == self.epoch
    }
}

/// Checks whether `set` is a valid positive changeset for `cache`.
///
/// The slice may be in any order; duplicates make the set invalid.
#[must_use]
pub fn is_valid_positive(tree: &Tree, cache: &CacheSet, set: &[NodeId]) -> bool {
    is_valid_positive_with(tree, cache, set, &mut ValidationScratch::new(tree.len()))
}

/// [`is_valid_positive`] against a caller-provided scratch: allocation-free
/// in steady state. The simulator's per-round validation uses this.
#[must_use]
pub fn is_valid_positive_with(
    tree: &Tree,
    cache: &CacheSet,
    set: &[NodeId],
    scratch: &mut ValidationScratch,
) -> bool {
    if set.is_empty() {
        return false;
    }
    scratch.reset(tree.len());
    for &v in set {
        if cache.contains(v) || !scratch.insert(v) {
            return false; // must be disjoint from the cache, duplicate-free
        }
    }
    // C ∪ X downward-closed: children of X-nodes lie in C ∪ X. (Children of
    // C-nodes are already in C because C itself is a subforest.)
    for &v in set {
        for &c in tree.children(v) {
            if !cache.contains(c) && !scratch.contains(c) {
                return false;
            }
        }
    }
    true
}

/// Checks whether `set` is a valid negative changeset for `cache`.
#[must_use]
pub fn is_valid_negative(tree: &Tree, cache: &CacheSet, set: &[NodeId]) -> bool {
    is_valid_negative_with(tree, cache, set, &mut ValidationScratch::new(tree.len()))
}

/// [`is_valid_negative`] against a caller-provided scratch: allocation-free
/// in steady state. The simulator's per-round validation uses this.
#[must_use]
pub fn is_valid_negative_with(
    tree: &Tree,
    cache: &CacheSet,
    set: &[NodeId],
    scratch: &mut ValidationScratch,
) -> bool {
    if set.is_empty() {
        return false;
    }
    scratch.reset(tree.len());
    for &v in set {
        if !cache.contains(v) || !scratch.insert(v) {
            return false; // must be a subset of the cache, duplicate-free
        }
    }
    // C \ X downward-closed: an X-node whose parent stays cached would leave
    // that parent with a missing child.
    for &v in set {
        if let Some(p) = tree.parent(v) {
            if cache.contains(p) && !scratch.contains(p) {
                return false;
            }
        }
    }
    true
}

/// Checks whether `set` is a *tree cap* rooted at `root`: it contains
/// `root`, lies inside `T(root)`, and is closed towards `root` (if it
/// contains `u ≠ root` it contains `u`'s parent).
///
/// Lemma 5.1(4) guarantees every changeset TC applies has this shape; the
/// simulator asserts it.
#[must_use]
pub fn is_tree_cap(tree: &Tree, root: NodeId, set: &[NodeId]) -> bool {
    if set.is_empty() || has_duplicates(set) {
        return false;
    }
    let mut in_set = vec![false; tree.len()];
    let mut saw_root = false;
    for &v in set {
        if !tree.is_ancestor_or_self(root, v) {
            return false;
        }
        in_set[v.index()] = true;
        saw_root |= v == root;
    }
    if !saw_root {
        return false;
    }
    for &v in set {
        if v != root {
            let p = tree.parent(v).expect("non-root inside T(root) has a parent");
            if !in_set[p.index()] {
                return false;
            }
        }
    }
    true
}

fn has_duplicates(set: &[NodeId]) -> bool {
    let mut sorted: Vec<NodeId> = set.to_vec();
    sorted.sort_unstable();
    sorted.windows(2).any(|w| w[0] == w[1])
}

/// Enumerates **all** valid positive changesets for small trees, by
/// filtering subsets. Exponential — test/verification helper only.
#[must_use]
pub fn enumerate_valid_positive(tree: &Tree, cache: &CacheSet) -> Vec<Vec<NodeId>> {
    enumerate_filtered(tree, |set| is_valid_positive(tree, cache, set))
}

/// Enumerates **all** valid negative changesets for small trees.
/// Exponential — test/verification helper only.
#[must_use]
pub fn enumerate_valid_negative(tree: &Tree, cache: &CacheSet) -> Vec<Vec<NodeId>> {
    enumerate_filtered(tree, |set| is_valid_negative(tree, cache, set))
}

fn enumerate_filtered(tree: &Tree, keep: impl Fn(&[NodeId]) -> bool) -> Vec<Vec<NodeId>> {
    let n = tree.len();
    assert!(n <= 20, "subset enumeration is for tiny trees only");
    let mut out = Vec::new();
    for mask in 1u32..(1 << n) {
        let set: Vec<NodeId> = (0..n as u32).filter(|i| mask & (1 << i) != 0).map(NodeId).collect();
        if keep(&set) {
            out.push(set);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> Tree {
        //      0
        //     / \
        //    1   4
        //   / \
        //  2   3
        Tree::from_parents(&[None, Some(0), Some(1), Some(1), Some(0)])
    }

    #[test]
    fn positive_must_close_downward() {
        let t = tree();
        let c = CacheSet::empty(t.len());
        // Fetching node 1 alone leaves children 2, 3 outside the cache.
        assert!(!is_valid_positive(&t, &c, &[NodeId(1)]));
        assert!(is_valid_positive(&t, &c, &[NodeId(1), NodeId(2), NodeId(3)]));
        assert!(is_valid_positive(&t, &c, &[NodeId(2)]));
        assert!(is_valid_positive(&t, &c, &[NodeId(2), NodeId(4)]));
    }

    #[test]
    fn positive_can_lean_on_cache() {
        let t = tree();
        let mut c = CacheSet::empty(t.len());
        c.fetch(&[NodeId(2), NodeId(3)]);
        // Now fetching node 1 alone is fine: children already cached.
        assert!(is_valid_positive(&t, &c, &[NodeId(1)]));
        // But not if it overlaps the cache.
        assert!(!is_valid_positive(&t, &c, &[NodeId(1), NodeId(2)]));
    }

    #[test]
    fn negative_must_be_caps() {
        let t = tree();
        let mut c = CacheSet::empty(t.len());
        c.fetch(&[NodeId(1), NodeId(2), NodeId(3)]);
        // Evicting the cap {1} keeps {2, 3} as valid cached subtrees.
        assert!(is_valid_negative(&t, &c, &[NodeId(1)]));
        // Evicting a leaf from under a cached parent is invalid.
        assert!(!is_valid_negative(&t, &c, &[NodeId(2)]));
        assert!(is_valid_negative(&t, &c, &[NodeId(1), NodeId(2)]));
        assert!(is_valid_negative(&t, &c, &[NodeId(1), NodeId(2), NodeId(3)]));
        // Non-cached nodes can't be evicted.
        assert!(!is_valid_negative(&t, &c, &[NodeId(4)]));
    }

    #[test]
    fn empty_and_duplicates_invalid() {
        let t = tree();
        let c = CacheSet::empty(t.len());
        assert!(!is_valid_positive(&t, &c, &[]));
        assert!(!is_valid_positive(&t, &c, &[NodeId(2), NodeId(2)]));
        let mut full = CacheSet::empty(t.len());
        let all: Vec<NodeId> = t.nodes().collect();
        full.fetch(&all);
        assert!(!is_valid_negative(&t, &full, &[]));
        assert!(!is_valid_negative(&t, &full, &[NodeId(0), NodeId(0)]));
    }

    #[test]
    fn union_of_valid_positive_is_valid() {
        // Observation from Section 3: unions of valid positive changesets
        // are valid (when disjoint).
        let t = tree();
        let c = CacheSet::empty(t.len());
        let a = vec![NodeId(2)];
        let b = vec![NodeId(4)];
        assert!(is_valid_positive(&t, &c, &a));
        assert!(is_valid_positive(&t, &c, &b));
        let mut u = a;
        u.extend(b);
        assert!(is_valid_positive(&t, &c, &u));
    }

    #[test]
    fn tree_cap_checks() {
        let t = tree();
        assert!(is_tree_cap(&t, NodeId(1), &[NodeId(1)]));
        assert!(is_tree_cap(&t, NodeId(1), &[NodeId(1), NodeId(2)]));
        assert!(is_tree_cap(&t, NodeId(0), &[NodeId(0), NodeId(1), NodeId(4)]));
        // Missing the root.
        assert!(!is_tree_cap(&t, NodeId(1), &[NodeId(2)]));
        // Hole in the middle: 0 -> 2 without 1.
        assert!(!is_tree_cap(&t, NodeId(0), &[NodeId(0), NodeId(2)]));
        // Outside the subtree.
        assert!(!is_tree_cap(&t, NodeId(1), &[NodeId(1), NodeId(4)]));
    }

    #[test]
    fn enumeration_counts() {
        let t = tree();
        let c = CacheSet::empty(t.len());
        let pos = enumerate_valid_positive(&t, &c);
        // Valid positive changesets from an empty cache are exactly the
        // non-empty downward-closed sets. For this tree:
        // downward-closed sets correspond to picking, for each node,
        // whether its full subtree is in, unions of full subtrees:
        // antichains of roots: {}, {2}, {3}, {4}, {2,3}, {2,4}, {3,4},
        // {2,3,4}, {1(=1,2,3)}, {1,4}, {0(=all)} -> 10 non-empty.
        assert_eq!(pos.len(), 10);
        let mut full = CacheSet::empty(t.len());
        let all: Vec<NodeId> = t.nodes().collect();
        full.fetch(&all);
        let neg = enumerate_valid_negative(&t, &full);
        // Valid negative changesets from the full cache are the non-empty
        // upward-closed sets (complements of downward-closed sets): also 10.
        assert_eq!(neg.len(), 10);
    }

    #[test]
    fn complement_duality() {
        // X valid negative for full cache  <=>  complement is downward-closed.
        let t = tree();
        let mut full = CacheSet::empty(t.len());
        let all: Vec<NodeId> = t.nodes().collect();
        full.fetch(&all);
        let empty = CacheSet::empty(t.len());
        for neg in enumerate_valid_negative(&t, &full) {
            let comp: Vec<NodeId> = t.nodes().filter(|v| !neg.contains(v)).collect();
            if comp.is_empty() {
                continue;
            }
            assert!(
                is_valid_positive(&t, &empty, &comp),
                "complement of negative changeset {neg:?} must be a subforest"
            );
        }
    }
}
