//! Cache state: a subforest of the tree.
//!
//! The defining constraint of the problem (paper, Section 1): if a node `v`
//! is cached then the whole subtree `T(v)` is cached. Equivalently the
//! cached set is *downward-closed* (closed under taking children), i.e. a
//! union of disjoint full subtrees of `T`.

#![warn(clippy::indexing_slicing)]

use crate::arena::NodeBitSet;
use crate::tree::{NodeId, Tree};

/// The set of cached nodes, maintained as a packed per-node bitset plus
/// size (see [`crate::arena::NodeBitSet`] — one bit per node, `u64` words).
///
/// ```
/// use otc_core::cache::CacheSet;
/// use otc_core::tree::{NodeId, Tree};
///
/// let tree = Tree::path(3); // 0 → 1 → 2
/// let mut cache = CacheSet::empty(tree.len());
/// cache.fetch(&[NodeId(2)]);
/// assert!(cache.validate(&tree).is_ok());
/// // Caching the middle node without its child breaks the invariant.
/// cache.insert(NodeId(0));
/// assert!(cache.validate(&tree).is_err());
/// ```
///
/// `CacheSet` itself does not enforce the subforest property on every
/// mutation (algorithms apply whole changesets whose validity is checked by
/// [`crate::changeset`] / the simulator); [`CacheSet::validate`] performs the
/// full invariant check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSet {
    bits: NodeBitSet,
    len: usize,
}

impl CacheSet {
    /// An empty cache for a tree with `n` nodes.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        Self { bits: NodeBitSet::empty(n), len: 0 }
    }

    /// Number of cached nodes.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is cached.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if `v` is cached.
    #[inline]
    #[must_use]
    pub fn contains(&self, v: NodeId) -> bool {
        self.bits.contains(v)
    }

    /// Marks a single node cached. Prefer [`CacheSet::fetch`] for sets.
    #[inline]
    pub fn insert(&mut self, v: NodeId) {
        if self.bits.insert(v) {
            self.len += 1;
        }
    }

    /// Marks a single node non-cached.
    #[inline]
    pub fn remove(&mut self, v: NodeId) {
        if self.bits.remove(v) {
            self.len -= 1;
        }
    }

    /// Fetches every node in `set` (must currently be non-cached).
    ///
    /// # Panics
    /// Panics in debug builds if a node was already cached.
    pub fn fetch(&mut self, set: &[NodeId]) {
        for &v in set {
            let _newly = self.bits.insert(v);
            debug_assert!(_newly, "fetching already-cached node {v:?}");
        }
        self.len += set.len();
    }

    /// Evicts every node in `set` (must currently be cached).
    ///
    /// # Panics
    /// Panics in debug builds if a node was not cached.
    pub fn evict(&mut self, set: &[NodeId]) {
        for &v in set {
            let _was = self.bits.remove(v);
            debug_assert!(_was, "evicting non-cached node {v:?}");
        }
        self.len -= set.len();
    }

    /// Evicts everything without reporting the evicted set. O(n/64),
    /// allocation-free — the simulator's mirror uses this on flushes.
    pub fn clear(&mut self) {
        self.bits.clear();
        self.len = 0;
    }

    /// Evicts everything, appending the evicted nodes (in index order) to
    /// `out`. Allocation-free once `out` has capacity; empty words are
    /// skipped a `u64` at a time.
    pub fn flush_into(&mut self, out: &mut Vec<NodeId>) {
        self.bits.drain_into(out);
        self.len = 0;
    }

    /// Evicts everything and returns the evicted nodes (in index order).
    pub fn flush(&mut self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len);
        self.flush_into(&mut out);
        out
    }

    /// Iterator over cached nodes in index order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.bits.iter()
    }

    /// Full subforest invariant check: every cached node's children are
    /// cached, and the stored size matches.
    ///
    /// Returns `Err` with a human-readable reason on violation. Used by the
    /// simulator after every step and by property tests.
    pub fn validate(&self, tree: &Tree) -> Result<(), String> {
        if self.bits.universe() != tree.len() {
            return Err(format!(
                "cache tracks {} nodes but the tree has {}",
                self.bits.universe(),
                tree.len()
            ));
        }
        let real_len = self.bits.count();
        if real_len != self.len {
            return Err(format!("stored len {} != actual {}", self.len, real_len));
        }
        for v in tree.nodes() {
            if self.contains(v) {
                for &c in tree.children(v) {
                    if !self.contains(c) {
                        return Err(format!(
                            "subforest violation: {v:?} cached but child {c:?} is not"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Appends the cache contents as a packed bitmap (`ceil(n/8)` bytes,
    /// node `i` at bit `i % 8` of byte `i / 8`, unused trailing bits zero).
    /// Allocation-free once `out` has capacity; the snapshot writers
    /// (`otc-sim::snapshot`) call this on the steady-state path.
    pub fn write_bitmap(&self, out: &mut Vec<u8>) {
        self.bits.write_bytes(out);
    }

    /// Number of bytes [`CacheSet::write_bitmap`] appends for an `n`-node
    /// cache.
    #[must_use]
    pub fn bitmap_len(n: usize) -> usize {
        NodeBitSet::byte_len(n)
    }

    /// Rebuilds a cache from a packed bitmap written by
    /// [`CacheSet::write_bitmap`].
    ///
    /// Strict: the byte length must be exactly `ceil(n/8)` and every unused
    /// trailing bit must be zero, so a truncated or bit-flipped snapshot
    /// section cannot silently produce a plausible cache. The stored size is
    /// recomputed from the bits.
    ///
    /// # Errors
    /// A human-readable reason when the bitmap does not decode.
    pub fn from_bitmap(n: usize, bits: &[u8]) -> Result<Self, String> {
        let bits = NodeBitSet::from_bytes(n, bits).map_err(|e| format!("cache {e}"))?;
        let len = bits.count();
        Ok(Self { bits, len })
    }

    /// The root of the cached tree containing `v`: the topmost cached
    /// ancestor of `v`. Returns `None` if `v` itself is not cached.
    ///
    /// O(depth of `v`).
    #[must_use]
    pub fn cached_tree_root(&self, tree: &Tree, v: NodeId) -> Option<NodeId> {
        if !self.contains(v) {
            return None;
        }
        let mut top = v;
        while let Some(p) = tree.parent(top) {
            if self.contains(p) {
                top = p;
            } else {
                break;
            }
        }
        Some(top)
    }

    /// Iterator over roots of all cached trees (cached nodes whose parent
    /// is absent or non-cached), in index order. Allocation-free.
    pub fn cached_roots_iter<'a>(&'a self, tree: &'a Tree) -> impl Iterator<Item = NodeId> + 'a {
        self.iter().filter(move |&v| tree.parent(v).is_none_or(|p| !self.contains(p)))
    }

    /// Roots of all cached trees (cached nodes whose parent is absent or
    /// non-cached), in index order.
    #[must_use]
    pub fn cached_roots(&self, tree: &Tree) -> Vec<NodeId> {
        self.cached_roots_iter(tree).collect()
    }

    /// Heap bytes of the packed representation (one bit per node).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.bits.heap_bytes()
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing, reason = "tests index fixtures freely")]
mod tests {
    use super::*;

    fn wide_tree() -> Tree {
        //      0
        //    / | \
        //   1  4  5
        //  / \     \
        // 2   3     6
        Tree::from_parents(&[None, Some(0), Some(1), Some(1), Some(0), Some(0), Some(5)])
    }

    #[test]
    fn empty_cache_is_valid() {
        let t = wide_tree();
        let c = CacheSet::empty(t.len());
        assert!(c.validate(&t).is_ok());
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn full_cache_is_valid() {
        let t = wide_tree();
        let mut c = CacheSet::empty(t.len());
        let all: Vec<NodeId> = t.nodes().collect();
        c.fetch(&all);
        assert!(c.validate(&t).is_ok());
        assert_eq!(c.len(), 7);
    }

    #[test]
    fn leaf_only_cache_is_valid() {
        let t = wide_tree();
        let mut c = CacheSet::empty(t.len());
        c.fetch(&[NodeId(2), NodeId(6)]);
        assert!(c.validate(&t).is_ok());
    }

    #[test]
    fn internal_without_child_is_invalid() {
        let t = wide_tree();
        let mut c = CacheSet::empty(t.len());
        c.insert(NodeId(1)); // children 2, 3 missing
        let err = c.validate(&t).expect_err("must be invalid");
        assert!(err.contains("subforest violation"));
    }

    #[test]
    fn subtree_cache_is_valid() {
        let t = wide_tree();
        let mut c = CacheSet::empty(t.len());
        c.fetch(&[NodeId(1), NodeId(2), NodeId(3)]);
        assert!(c.validate(&t).is_ok());
        assert_eq!(c.cached_roots(&t), vec![NodeId(1)]);
    }

    #[test]
    fn cached_tree_root_walks_up() {
        let t = wide_tree();
        let mut c = CacheSet::empty(t.len());
        c.fetch(&[NodeId(1), NodeId(2), NodeId(3), NodeId(5), NodeId(6)]);
        assert_eq!(c.cached_tree_root(&t, NodeId(3)), Some(NodeId(1)));
        assert_eq!(c.cached_tree_root(&t, NodeId(6)), Some(NodeId(5)));
        assert_eq!(c.cached_tree_root(&t, NodeId(4)), None);
        assert_eq!(c.cached_roots(&t), vec![NodeId(1), NodeId(5)]);
    }

    #[test]
    fn whole_tree_single_root() {
        let t = wide_tree();
        let mut c = CacheSet::empty(t.len());
        let all: Vec<NodeId> = t.nodes().collect();
        c.fetch(&all);
        assert_eq!(c.cached_roots(&t), vec![NodeId(0)]);
        assert_eq!(c.cached_tree_root(&t, NodeId(6)), Some(NodeId(0)));
    }

    #[test]
    fn flush_empties_and_reports() {
        let t = wide_tree();
        let mut c = CacheSet::empty(t.len());
        c.fetch(&[NodeId(2), NodeId(3)]);
        let evicted = c.flush();
        assert_eq!(evicted, vec![NodeId(2), NodeId(3)]);
        assert!(c.is_empty());
        assert!(c.validate(&t).is_ok());
    }

    #[test]
    fn insert_remove_idempotent() {
        let t = wide_tree();
        let mut c = CacheSet::empty(t.len());
        c.insert(NodeId(2));
        c.insert(NodeId(2));
        assert_eq!(c.len(), 1);
        c.remove(NodeId(2));
        c.remove(NodeId(2));
        assert_eq!(c.len(), 0);
        assert!(c.validate(&t).is_ok());
    }

    #[test]
    fn size_mismatch_detected() {
        let t = wide_tree();
        let c = CacheSet::empty(t.len() - 1);
        assert!(c.validate(&t).is_err());
    }

    #[test]
    fn bitmap_round_trips() {
        let t = wide_tree();
        let mut c = CacheSet::empty(t.len());
        c.fetch(&[NodeId(2), NodeId(3), NodeId(6)]);
        let mut bits = Vec::new();
        c.write_bitmap(&mut bits);
        assert_eq!(bits.len(), CacheSet::bitmap_len(t.len()));
        let back = CacheSet::from_bitmap(t.len(), &bits).expect("round trip");
        assert_eq!(back, c);
        // Empty and full caches round-trip too.
        for cache in [CacheSet::empty(t.len()), {
            let mut full = CacheSet::empty(t.len());
            full.fetch(&t.nodes().collect::<Vec<_>>());
            full
        }] {
            let mut bits = Vec::new();
            cache.write_bitmap(&mut bits);
            assert_eq!(CacheSet::from_bitmap(t.len(), &bits).unwrap(), cache);
        }
    }

    #[test]
    fn bitmap_bytes_keep_the_historical_layout() {
        // Node i at bit i%8 of byte i/8 — the pre-arena wire format.
        let mut c = CacheSet::empty(12);
        c.insert(NodeId(0));
        c.insert(NodeId(3));
        c.insert(NodeId(9));
        let mut bits = Vec::new();
        c.write_bitmap(&mut bits);
        assert_eq!(bits, vec![0b0000_1001, 0b0000_0010]);
    }

    #[test]
    fn bitmap_reader_is_strict() {
        let t = wide_tree();
        let mut c = CacheSet::empty(t.len());
        c.fetch(&[NodeId(2)]);
        let mut bits = Vec::new();
        c.write_bitmap(&mut bits);
        // Wrong length in either direction.
        assert!(CacheSet::from_bitmap(t.len(), &bits[..0]).is_err());
        let mut long = bits.clone();
        long.push(0);
        assert!(CacheSet::from_bitmap(t.len(), &long).is_err());
        // Non-zero bits past the last node (7 nodes → bit 7 unused).
        let mut junk = bits.clone();
        junk[0] |= 0x80;
        assert!(CacheSet::from_bitmap(t.len(), &junk).is_err());
        // Zero-node cache decodes from zero bytes only.
        assert!(CacheSet::from_bitmap(0, &[]).is_ok());
        assert!(CacheSet::from_bitmap(0, &[0]).is_err());
    }
}
