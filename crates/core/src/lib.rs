//! # otc-core — Online Tree Caching
//!
//! A faithful implementation of the online tree caching problem and the
//! **TC** algorithm from:
//!
//! > M. Bienkowski, J. Marcinkowski, M. Pacut, S. Schmid, A. Spyra.
//! > *Online Tree Caching.* SPAA 2017.
//!
//! The universe is a rooted tree; the cache must always be a **subforest**
//! (caching a node forces its whole subtree into the cache). Requests are
//! positive (pay 1 when the node is missing from the cache) or negative
//! (pay 1 when the node is present); reorganising the cache costs `α` per
//! node fetched or evicted. TC is `O(h(T) · kONL/(kONL − kOPT + 1))`-
//! competitive (Theorem 5.15), which is optimal up to the `O(h(T))` factor
//! (Theorem C.1).
//!
//! ## Layout
//!
//! * [`arena`] — `NodeId`-indexed slabs/bitsets and the length-prefixed
//!   flat-slice snapshot codec every per-node structure is built on.
//! * [`tree`] — arena rooted trees with O(1) ancestor queries;
//!   [`builder::TreeBuilder`] grows them incrementally.
//! * [`cache`] — subforest cache state.
//! * [`changeset`] — validity of fetch/evict sets, tree caps.
//! * [`request`] — requests, signs, the `α` cost model.
//! * [`policy`] — the [`policy::CachePolicy`] trait every algorithm
//!   (TC and all baselines in `otc-baselines`) implements, and the
//!   [`policy::PolicyFactory`] that builds one policy per forest shard.
//! * [`forest`] — [`forest::Forest`]: partitions of trees into shards
//!   with O(1) request routing (the data model of `otc-sim`'s sharded
//!   engine).
//! * [`tc`] — the TC algorithm: [`tc::TcFast`] (Theorem 6.1 data
//!   structures) and [`tc::TcReference`] (from-scratch oracle).
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use otc_core::prelude::*;
//!
//! // A root with three leaves; α = 2, cache capacity 2.
//! let tree = Arc::new(Tree::star(3));
//! let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(2, 2));
//!
//! // One reusable buffer for the whole request loop: steady-state rounds
//! // allocate nothing.
//! let mut out = ActionBuffer::new();
//!
//! // Two paying requests to a leaf saturate it and TC fetches it.
//! let leaf = tree.leaves()[0];
//! tc.step(Request::pos(leaf), &mut out);
//! tc.step(Request::pos(leaf), &mut out);
//! assert!(matches!(out.action(0), (ActionKind::Fetch, _)));
//! assert!(tc.cache().contains(leaf));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arena;
pub mod builder;
pub mod cache;
pub mod changeset;
pub mod forest;
pub mod policy;
pub mod request;
pub mod tc;
pub mod tree;

/// One-stop imports for downstream crates and examples.
pub mod prelude {
    pub use crate::builder::TreeBuilder;
    pub use crate::cache::CacheSet;
    pub use crate::changeset::{
        is_valid_negative, is_valid_positive, ChangeKind, ValidationScratch,
    };
    pub use crate::forest::{Forest, ShardId};
    pub use crate::policy::{
        Action, ActionBuffer, ActionKind, CachePolicy, PolicyFactory, StepOutcome,
    };
    pub use crate::request::{Cost, CostModel, Request, Sign};
    pub use crate::tc::{TcConfig, TcFast, TcReference, TcStats};
    pub use crate::tree::{NodeId, Tree};
}

pub use prelude::*;
