//! Requests and cost model (paper, Sections 1 and 3).

use crate::tree::NodeId;

/// The sign of a request.
///
/// * [`Sign::Positive`]: a "normal" caching request — costs 1 if the node is
///   **not** cached (the packet had to be bounced to the controller).
/// * [`Sign::Negative`]: a rule-update request — costs 1 if the node **is**
///   cached (the router's TCAM entry had to be rewritten).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Pay 1 when the requested node is outside the cache.
    Positive,
    /// Pay 1 when the requested node is inside the cache.
    Negative,
}

impl Sign {
    /// The other sign.
    #[must_use]
    pub fn flip(self) -> Self {
        match self {
            Sign::Positive => Sign::Negative,
            Sign::Negative => Sign::Positive,
        }
    }
}

/// One request: a node and a sign. Exactly one arrives per round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// The requested tree node.
    pub node: NodeId,
    /// Positive (access) or negative (update).
    pub sign: Sign,
}

impl Request {
    /// A positive request to `node`.
    #[must_use]
    pub fn pos(node: NodeId) -> Self {
        Self { node, sign: Sign::Positive }
    }

    /// A negative request to `node`.
    #[must_use]
    pub fn neg(node: NodeId) -> Self {
        Self { node, sign: Sign::Negative }
    }

    /// True for positive requests.
    #[must_use]
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }
}

/// Problem parameters: the per-node reorganisation cost `α ≥ 1`.
///
/// The paper assumes `α` is an even integer for the analysis; the
/// implementation accepts any integer `α ≥ 1` (the algorithm itself never
/// needs evenness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of fetching or evicting one node.
    pub alpha: u64,
}

impl CostModel {
    /// Creates a cost model.
    ///
    /// # Panics
    /// Panics if `alpha == 0` (the problem requires `α ≥ 1`).
    #[must_use]
    pub fn new(alpha: u64) -> Self {
        assert!(alpha >= 1, "the problem requires alpha >= 1");
        Self { alpha }
    }
}

/// Accumulated cost, split the way the analysis splits it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cost {
    /// Cost of serving requests (1 per paying request).
    pub service: u64,
    /// Cost of cache reorganisation (α per fetched or evicted node).
    pub reorg: u64,
}

impl Cost {
    /// Zero cost.
    #[must_use]
    pub fn zero() -> Self {
        Self::default()
    }

    /// Total cost.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.service + self.reorg
    }

    /// Component-wise addition.
    pub fn add(&mut self, other: Cost) {
        self.service += other.service;
        self.reorg += other.reorg;
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost { service: self.service + rhs.service, reorg: self.reorg + rhs.reorg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_constructors() {
        let r = Request::pos(NodeId(3));
        assert!(r.is_positive());
        assert_eq!(r.node, NodeId(3));
        let r = Request::neg(NodeId(4));
        assert!(!r.is_positive());
        assert_eq!(r.sign.flip(), Sign::Positive);
    }

    #[test]
    fn cost_arithmetic() {
        let mut c = Cost::zero();
        c.add(Cost { service: 3, reorg: 10 });
        let d = c + Cost { service: 1, reorg: 0 };
        assert_eq!(d.service, 4);
        assert_eq!(d.reorg, 10);
        assert_eq!(d.total(), 14);
    }

    #[test]
    #[should_panic(expected = "alpha >= 1")]
    fn zero_alpha_rejected() {
        let _ = CostModel::new(0);
    }
}
