//! Incremental tree construction.
//!
//! [`crate::tree::Tree`] is immutable; [`TreeBuilder`] is the ergonomic way
//! to grow one node by node when the shape is computed on the fly (parsers,
//! generators, converters from other representations).

use crate::tree::{NodeId, Tree};

/// Builds a [`Tree`] incrementally: create the root, attach children,
/// then [`TreeBuilder::build`].
///
/// ```
/// use otc_core::builder::TreeBuilder;
///
/// let mut b = TreeBuilder::new();       // root is node 0
/// let a = b.add_child(b.root());
/// let _b2 = b.add_child(b.root());
/// let c = b.add_child(a);
/// let tree = b.build();
/// assert_eq!(tree.len(), 4);
/// assert_eq!(tree.parent(c), Some(a));
/// assert_eq!(tree.height(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct TreeBuilder {
    parents: Vec<Option<usize>>,
}

impl TreeBuilder {
    /// Starts a tree with a single root node (id 0).
    #[must_use]
    pub fn new() -> Self {
        Self { parents: vec![None] }
    }

    /// The root's id.
    #[must_use]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// Never true — the root always exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Adds a child under `parent`, returning the new node's id.
    ///
    /// # Panics
    /// Panics if `parent` is not a node added earlier.
    pub fn add_child(&mut self, parent: NodeId) -> NodeId {
        assert!(parent.index() < self.parents.len(), "parent {parent:?} does not exist yet");
        let id = NodeId(self.parents.len() as u32);
        self.parents.push(Some(parent.index()));
        id
    }

    /// Adds `count` children under `parent`, returning their ids in order.
    pub fn add_children(&mut self, parent: NodeId, count: usize) -> Vec<NodeId> {
        (0..count).map(|_| self.add_child(parent)).collect()
    }

    /// Adds a downward chain of `len` nodes starting under `parent`,
    /// returning the deepest node.
    pub fn add_chain(&mut self, parent: NodeId, len: usize) -> NodeId {
        let mut cur = parent;
        for _ in 0..len {
            cur = self.add_child(cur);
        }
        cur
    }

    /// Finalises the tree.
    #[must_use]
    pub fn build(self) -> Tree {
        Tree::from_parents(&self.parents)
    }
}

impl Default for TreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_root() {
        let tree = TreeBuilder::new().build();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 1);
    }

    #[test]
    fn star_via_builder() {
        let mut b = TreeBuilder::new();
        let leaves = b.add_children(b.root(), 5);
        let tree = b.build();
        assert_eq!(tree.len(), 6);
        assert_eq!(tree.max_degree(), 5);
        for leaf in leaves {
            assert_eq!(tree.parent(leaf), Some(NodeId(0)));
        }
    }

    #[test]
    fn chain_via_builder() {
        let mut b = TreeBuilder::new();
        let deep = b.add_chain(b.root(), 7);
        let tree = b.build();
        assert_eq!(tree.height(), 8);
        assert_eq!(tree.depth(deep), 7);
        assert!(tree.is_leaf(deep));
    }

    #[test]
    fn mixed_shape_matches_from_parents() {
        let mut b = TreeBuilder::new();
        let a = b.add_child(b.root());
        let _ = b.add_child(a);
        let _ = b.add_child(a);
        let _ = b.add_child(b.root());
        let built = b.build();
        let direct = Tree::from_parents(&[None, Some(0), Some(1), Some(1), Some(0)]);
        for v in built.nodes() {
            assert_eq!(built.parent(v), direct.parent(v));
            assert_eq!(built.subtree_size(v), direct.subtree_size(v));
        }
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn unknown_parent_rejected() {
        let mut b = TreeBuilder::new();
        b.add_child(NodeId(5));
    }
}
