//! Property-based tests for the TC algorithm and the problem invariants.
//!
//! These tests make the paper's Lemma 5.1 / Claim A.1 executable:
//!
//! 1. `TcFast` and `TcReference` agree step-for-step on random trees and
//!    random request streams, and `TcFast`'s maintained aggregates always
//!    match a from-scratch recomputation (`audit`).
//! 2. The cache is a subforest at all times and never exceeds capacity.
//! 3. Every applied changeset is valid and is a single tree cap
//!    (Lemma 5.1(4)).
//! 4. After every round, **no** valid changeset is strictly saturated
//!    (Claim A.1 invariants 1–2, checked exhaustively on small trees).

use std::sync::Arc;

use otc_core::changeset::{
    enumerate_valid_negative, enumerate_valid_positive, is_tree_cap, is_valid_negative,
    is_valid_positive,
};
use otc_core::policy::{Action, ActionBuffer, ActionKind, CachePolicy};
use otc_core::tc::{TcConfig, TcFast, TcReference};
use otc_core::tree::{NodeId, Tree};
use otc_core::{Request, Sign};
use proptest::prelude::*;

/// Random tree on `n` nodes via a random-attachment parent array
/// (`parent[i] < i`), which generates every rooted tree shape.
fn tree_from_seeds(seeds: &[u64]) -> Tree {
    let n = seeds.len() + 1;
    let mut parents: Vec<Option<usize>> = Vec::with_capacity(n);
    parents.push(None);
    for (i, &s) in seeds.iter().enumerate() {
        parents.push(Some((s % (i as u64 + 1)) as usize));
    }
    Tree::from_parents(&parents)
}

fn requests_from_seeds(n: usize, seeds: &[(u64, bool)]) -> Vec<Request> {
    seeds
        .iter()
        .map(|&(s, positive)| {
            let node = NodeId((s % n as u64) as u32);
            if positive {
                Request::pos(node)
            } else {
                Request::neg(node)
            }
        })
        .collect()
}

fn arb_instance(
    max_nodes: usize,
    max_len: usize,
) -> impl Strategy<Value = (Tree, Vec<Request>, u64, usize)> {
    (
        prop::collection::vec(any::<u64>(), 0..max_nodes),
        prop::collection::vec((any::<u64>(), any::<bool>()), 1..max_len),
        1u64..6,
        1usize..10,
    )
        .prop_map(|(tree_seeds, req_seeds, alpha, capacity)| {
            let tree = tree_from_seeds(&tree_seeds);
            let reqs = requests_from_seeds(tree.len(), &req_seeds);
            (tree, reqs, alpha, capacity)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fast ≡ reference, audits pass, cache valid & within capacity.
    #[test]
    fn lockstep_equivalence((tree, reqs, alpha, capacity) in arb_instance(24, 300)) {
        let tree = Arc::new(tree);
        let cfg = TcConfig::new(alpha, capacity);
        let mut fast = TcFast::new(Arc::clone(&tree), cfg);
        let mut refr = TcReference::new(Arc::clone(&tree), cfg);
        let mut a = ActionBuffer::new();
        let mut b = ActionBuffer::new();
        for (i, &req) in reqs.iter().enumerate() {
            fast.step(req, &mut a);
            refr.step(req, &mut b);
            prop_assert_eq!(&a, &b, "divergence at step {}", i);
            prop_assert_eq!(fast.cache(), refr.cache());
            prop_assert!(fast.cache().len() <= capacity, "capacity exceeded");
            if let Err(e) = fast.audit() {
                return Err(TestCaseError::fail(format!("audit failed at step {i}: {e}")));
            }
        }
    }

    /// Every applied changeset is a valid changeset for the pre-step cache
    /// and a single tree cap rooted at its first element (Lemma 5.1(4)).
    #[test]
    fn applied_changesets_are_valid_tree_caps(
        (tree, reqs, alpha, capacity) in arb_instance(16, 250)
    ) {
        let tree = Arc::new(tree);
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, capacity));
        for &req in &reqs {
            let pre_cache = tc.cache().clone();
            let out = tc.step_owned(req);
            for action in &out.actions {
                match action {
                    Action::Fetch(set) => {
                        prop_assert!(is_valid_positive(&tree, &pre_cache, set));
                        prop_assert!(is_tree_cap(&tree, set[0], set));
                        prop_assert!(set.contains(&req.node), "Lemma 5.1(1)");
                    }
                    Action::Evict(set) => {
                        prop_assert!(is_valid_negative(&tree, &pre_cache, set));
                        prop_assert!(is_tree_cap(&tree, set[0], set));
                        prop_assert!(set.contains(&req.node), "Lemma 5.1(1)");
                    }
                    Action::Flush(set) => {
                        // A flush evicts exactly the pre-step cache contents.
                        let mut expect: Vec<NodeId> = pre_cache.iter().collect();
                        expect.sort_unstable();
                        let mut got = set.clone();
                        got.sort_unstable();
                        prop_assert_eq!(expect, got);
                    }
                }
            }
        }
    }

    /// Claim A.1 invariant: right after every round, no valid changeset is
    /// over-saturated; right after an application, none is saturated at all.
    /// Exhaustive over all valid changesets — tiny trees only.
    #[test]
    fn no_valid_changeset_oversaturated(
        (tree, reqs, alpha, capacity) in arb_instance(8, 120)
    ) {
        let tree = Arc::new(tree);
        let mut tc = TcReference::new(Arc::clone(&tree), TcConfig::new(alpha, capacity));
        for &req in &reqs {
            let out = tc.step_owned(req);
            let applied = out.actions.iter().any(|a| matches!(a, Action::Fetch(_) | Action::Evict(_)));
            let cache = tc.cache().clone();
            let cnt_of = |set: &[NodeId]| -> u64 { set.iter().map(|&v| tc.counter(v)).sum() };
            for set in enumerate_valid_positive(&tree, &cache)
                .into_iter()
                .chain(enumerate_valid_negative(&tree, &cache))
            {
                let bound = set.len() as u64 * alpha;
                let cnt = cnt_of(&set);
                prop_assert!(cnt <= bound, "over-saturated set {:?}", set);
                if applied {
                    // Lemma 5.1(3): after an application nothing is saturated.
                    prop_assert!(cnt < bound, "saturated set {:?} right after application", set);
                }
            }
        }
    }

    /// After a flush the cache is empty and every counter is zero
    /// (new phase starts from scratch).
    #[test]
    fn flush_starts_clean_phase((tree, reqs, alpha, _) in arb_instance(12, 200)) {
        let tree = Arc::new(tree);
        // Tiny capacity provokes flushes.
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, 1));
        let mut flushes = 0;
        for &req in &reqs {
            let out = tc.step_owned(req);
            if out.actions.iter().any(|a| matches!(a, Action::Flush(_))) {
                flushes += 1;
                prop_assert!(tc.cache().is_empty());
                for v in tree.nodes() {
                    prop_assert_eq!(tc.counter(v), 0);
                }
            }
        }
        prop_assert_eq!(tc.stats().phases_restarted, flushes);
    }

    /// Non-paying requests change nothing at all (Section 6 remark).
    #[test]
    fn non_paying_requests_are_noops((tree, reqs, alpha, capacity) in arb_instance(16, 200)) {
        let tree = Arc::new(tree);
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, capacity));
        for &req in &reqs {
            let pays = match req.sign {
                Sign::Positive => !tc.cache().contains(req.node),
                Sign::Negative => tc.cache().contains(req.node),
            };
            let before = tc.cache().clone();
            let out = tc.step_owned(req);
            if !pays {
                prop_assert!(!out.paid_service);
                prop_assert!(out.actions.is_empty());
                prop_assert_eq!(&before, tc.cache());
            } else {
                prop_assert!(out.paid_service);
            }
        }
    }
}

/// Adversarial universe shapes for the arena-core differential battery:
/// the single-node degenerate case, deep paths (maximal walk length),
/// stars (maximal degree), caterpillars (both at once), and binary
/// hierarchies (the FIB-like shape).
fn adversarial_tree(which: u8, n: usize, legs: usize) -> Tree {
    match which % 5 {
        0 => Tree::path(1),        // single-node universe
        1 => Tree::path(n.max(2)), // deep path
        2 => Tree::star(n.max(2)), // wide star
        3 => Tree::caterpillar(n.max(2), legs.max(1)),
        _ => Tree::kary(2, (n % 6).max(2)), // binary hierarchy
    }
}

/// α regimes the battery must cover: α = 1 (every paying request
/// saturates its own singleton cap), small α, and large α (caps hundreds
/// of requests from saturating — exercises long-lived slack bookkeeping).
fn arb_alpha() -> impl Strategy<Value = u64> {
    (0u8..3, any::<u64>()).prop_map(|(mode, s)| match mode {
        0 => 1,
        1 => 2 + s % 4,
        _ => 64 + s % 193,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The arena `TcFast` against the untouched `TcReference` oracle on
    /// adversarial shapes, driven through *reused* `ActionBuffer`s, with a
    /// `save_state`/`restore_state` round-trip into a **fresh** policy at
    /// an arbitrary mid-run point. The restored policy must re-serialize
    /// to the identical blob and stay in lockstep for the rest of the
    /// stream — so the flat-slice codec, not just the in-memory state, is
    /// part of the differential surface.
    #[test]
    fn oracle_battery_adversarial_shapes_with_midrun_blob_roundtrip(
        which in 0u8..5,
        n in 1usize..40,
        legs in 1usize..4,
        req_seeds in prop::collection::vec((any::<u64>(), any::<bool>()), 1..400),
        alpha in arb_alpha(),
        capacity in 1usize..12,
        split_pct in 0u64..=100,
    ) {
        let tree = Arc::new(adversarial_tree(which, n, legs));
        let reqs = requests_from_seeds(tree.len(), &req_seeds);
        let split = (reqs.len() as u64 * split_pct / 100) as usize;
        let cfg = TcConfig::new(alpha, capacity);
        let mut fast = TcFast::new(Arc::clone(&tree), cfg);
        let mut refr = TcReference::new(Arc::clone(&tree), cfg);
        let mut fast_buf = ActionBuffer::new();
        let mut refr_buf = ActionBuffer::new();
        for (i, &req) in reqs.iter().enumerate() {
            if i == split {
                let mut blob = Vec::new();
                fast.save_state(&mut blob).map_err(TestCaseError::fail)?;
                prop_assert_eq!(blob.len(), TcFast::state_len(tree.len()));
                let mut fresh = TcFast::new(Arc::clone(&tree), cfg);
                fresh.restore_state(&blob).map_err(TestCaseError::fail)?;
                let mut blob2 = Vec::new();
                fresh.save_state(&mut blob2).map_err(TestCaseError::fail)?;
                prop_assert_eq!(&blob, &blob2, "restore → save is not a fixed point");
                fast = fresh;
            }
            fast.step(req, &mut fast_buf);
            refr.step(req, &mut refr_buf);
            prop_assert_eq!(&fast_buf, &refr_buf, "divergence at step {}", i);
            prop_assert_eq!(fast.cache(), refr.cache(), "cache divergence at step {}", i);
            if let Err(e) = fast.audit() {
                return Err(TestCaseError::fail(format!("audit failed at step {i}: {e}")));
            }
        }
    }

    /// Large α on adversarial shapes never fetches before the cap is truly
    /// saturated: with α ≥ stream length no positive cap can saturate, so
    /// the cache stays empty and every positive request pays.
    #[test]
    fn huge_alpha_never_reorganizes(
        which in 0u8..5,
        n in 1usize..32,
        legs in 1usize..4,
        req_seeds in prop::collection::vec((any::<u64>(), any::<bool>()), 1..200),
        capacity in 1usize..8,
    ) {
        let tree = Arc::new(adversarial_tree(which, n, legs));
        let reqs = requests_from_seeds(tree.len(), &req_seeds);
        // α strictly above the stream length: no cap can ever saturate.
        let cfg = TcConfig::new(reqs.len() as u64 + 1, capacity);
        let mut tc = TcFast::new(Arc::clone(&tree), cfg);
        for &req in &reqs {
            let out = tc.step_owned(req);
            prop_assert!(out.actions.is_empty(), "reorganized under unsaturable α");
            prop_assert_eq!(out.paid_service, req.sign == Sign::Positive);
        }
        prop_assert!(tc.cache().is_empty());
        tc.audit().map_err(TestCaseError::fail)?;
    }
}

#[test]
fn regression_two_node_path_alpha_one() {
    // Smallest interesting instance: path 0→1, α = 1, capacity 1.
    let tree = Arc::new(Tree::path(2));
    let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(1, 1));

    // Leaf request: P(1) = {1} saturates immediately → fetch {1}.
    let out = tc.step_owned(Request::pos(NodeId(1)));
    assert_eq!(out.actions, vec![Action::Fetch(vec![NodeId(1)])]);

    // Root request: with 1 cached, P(0) = {0} saturates at cnt(0) = 1, but
    // fetching it would exceed capacity (1 + 1 > 1) → flush, new phase.
    let out = tc.step_owned(Request::pos(NodeId(0)));
    assert_eq!(out.actions, vec![Action::Flush(vec![NodeId(1)])]);
    assert!(tc.cache().is_empty());

    // Fresh phase: P(0) = {0, 1} needs cnt = 2. First root request: no-op.
    let out = tc.step_owned(Request::pos(NodeId(0)));
    assert!(out.actions.is_empty());
    // Second: saturated, but |P(0)| = 2 > capacity → flush of an empty
    // cache (cost 0) and yet another phase. The root is simply uncacheable
    // at this capacity, exactly as the model prescribes.
    let out = tc.step_owned(Request::pos(NodeId(0)));
    assert_eq!(out.actions, vec![Action::Flush(vec![])]);
    tc.audit().expect("consistent");
}

/// Degenerate universes for the buffer-reuse differential test: shapes
/// where spans collapse (single node), every action is a long chain (pure
/// path), every action is a singleton (star) — plus α = 1, where fetches
/// fire on the first paying request and the buffer turns over every round.
fn degenerate_tree(which: u8, n: usize) -> Tree {
    match which % 3 {
        0 => Tree::path(1),            // single node
        1 => Tree::path(n),            // pure path
        _ => Tree::star(n.max(2) - 1), // star with n-1 leaves
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Differential drive of `TcFast` vs `TcReference` through *reused*
    /// `ActionBuffer`s on degenerate universes. A stale-span bug (an
    /// implementation forgetting `clear`, truncating a foreign span, or
    /// leaking a previous round's nodes) shows up as a divergence between
    /// the two buffers or as an audit failure.
    #[test]
    fn buffered_differential_on_degenerate_universes(
        which in 0u8..3,
        n in 1usize..16,
        req_seeds in prop::collection::vec((any::<u64>(), any::<bool>()), 1..400),
        alpha in 1u64..4,
        capacity in 1usize..8,
    ) {
        let tree = Arc::new(degenerate_tree(which, n));
        let reqs = requests_from_seeds(tree.len(), &req_seeds);
        let cfg = TcConfig::new(alpha, capacity);
        let mut fast = TcFast::new(Arc::clone(&tree), cfg);
        let mut refr = TcReference::new(Arc::clone(&tree), cfg);
        let mut fast_buf = ActionBuffer::new();
        let mut refr_buf = ActionBuffer::new();
        for (i, &req) in reqs.iter().enumerate() {
            fast.step(req, &mut fast_buf);
            refr.step(req, &mut refr_buf);
            prop_assert_eq!(&fast_buf, &refr_buf, "buffer divergence at step {}", i);
            prop_assert_eq!(fast.cache(), refr.cache(), "cache divergence at step {}", i);
            // The buffer snapshot agrees with the span view action by action.
            let snapshot = fast_buf.to_outcome();
            prop_assert_eq!(snapshot.actions.len(), fast_buf.num_actions());
            prop_assert_eq!(snapshot.nodes_touched(), fast_buf.nodes_touched());
            for (j, action) in snapshot.actions.iter().enumerate() {
                let (kind, nodes) = fast_buf.action(j);
                match (action, kind) {
                    (Action::Fetch(set), ActionKind::Fetch)
                    | (Action::Evict(set), ActionKind::Evict)
                    | (Action::Flush(set), ActionKind::Flush) => {
                        prop_assert_eq!(&set[..], nodes);
                    }
                    other => prop_assert!(false, "kind mismatch {:?}", other),
                }
            }
            if let Err(e) = fast.audit() {
                return Err(TestCaseError::fail(format!("audit failed at step {i}: {e}")));
            }
        }
    }

    /// α = 1 on a pure path: every paying positive request immediately
    /// saturates its own P-cap, so the buffer is rewritten every round —
    /// maximal pressure on span bookkeeping.
    #[test]
    fn buffered_differential_alpha_one_path(
        n in 2usize..12,
        req_seeds in prop::collection::vec((any::<u64>(), any::<bool>()), 1..300),
        capacity in 1usize..12,
    ) {
        let tree = Arc::new(Tree::path(n));
        let reqs = requests_from_seeds(tree.len(), &req_seeds);
        let cfg = TcConfig::new(1, capacity);
        let mut fast = TcFast::new(Arc::clone(&tree), cfg);
        let mut refr = TcReference::new(Arc::clone(&tree), cfg);
        let mut fast_buf = ActionBuffer::new();
        let mut refr_buf = ActionBuffer::new();
        for (i, &req) in reqs.iter().enumerate() {
            fast.step(req, &mut fast_buf);
            refr.step(req, &mut refr_buf);
            prop_assert_eq!(&fast_buf, &refr_buf, "buffer divergence at step {}", i);
            prop_assert_eq!(fast.cache(), refr.cache(), "cache divergence at step {}", i);
        }
    }
}
