//! Live cell migration: the serving-side half of [`otc_sim::rebalance`].
//!
//! The sim crate owns the *decisions* (boundary detection, the pure
//! [`otc_sim::rebalance::plan`], record verification on replay); this
//! module owns the *mechanics* of acting on a decision inside a running
//! [`crate::Server`] without stopping it:
//!
//! * [`RebalancePolicy`] — what the user configures on
//!   [`crate::ServeConfig`]: group count, decision cadence, and the
//!   policy factory that rebuilds a migrated cell's policy at its
//!   destination;
//! * `Probe` (crate-private) — the boundary's load sample: a marker
//!   floated down every group ring (like a snapshot cut), so each group
//!   reports its cells' cumulative loads after executing *exactly* the
//!   boundary prefix;
//! * `Handoff` (crate-private) — the migration rendezvous: the source
//!   group serializes the cell as a length-prefixed OTCS section
//!   (`detach_cell`) and offers it; the destination group blocks on
//!   `Handoff::take` and rebuilds the cell (`install_cell`) before
//!   touching any request enqueued after the boundary.
//!
//! Deadlock-freedom of the rendezvous is purely an ordering argument:
//! ingress pushes **all** `MigrateOut` markers before **any** `Install`
//! marker, so per-ring FIFO guarantees every group serializes its
//! outgoing cells before it can block waiting for an incoming one.
//! `server.rs` documents the full protocol.

use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

use otc_core::forest::{RouteError, RoutingTable, ShardId};
use otc_core::policy::PolicyFactory;
use otc_core::tree::Tree;
use otc_sim::engine::EngineConfig;
use otc_sim::worker::ShardWorker;
use otc_sim::RebalanceConfig;
use otc_workloads::rebalance::CellLoad;

use crate::server::locked;

/// Turns a [`crate::Server`] into a dynamically resharded service: the
/// engine's cells (root-child subtrie shards) are spread over `groups`
/// persistent worker threads, and every [`RebalanceConfig::interval`]
/// accepted requests the service re-plans the placement and migrates
/// cells between groups — deterministically, as a pure function of the
/// logged request stream (determinism invariant #7, `DESIGN.md`).
#[derive(Clone)]
pub struct RebalancePolicy {
    /// Serving groups (worker threads) the cells are spread over. Must
    /// satisfy `1 <= groups <= cells`.
    pub groups: u32,
    /// Decision cadence and thresholds (see [`otc_sim::rebalance`]).
    pub config: RebalanceConfig,
    /// Rebuilds a migrated cell's policy at its destination before the
    /// serialized state is restored into it. **Must build policies
    /// identical to the ones the engine was started with** — a different
    /// factory here would desynchronise migrated cells from the replay
    /// identity.
    pub factory: Arc<dyn PolicyFactory + Send + Sync>,
}

impl fmt::Debug for RebalancePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RebalancePolicy")
            .field("groups", &self.groups)
            .field("config", &self.config)
            .field("factory", &"<dyn PolicyFactory>")
            .finish()
    }
}

impl RebalancePolicy {
    /// Bundles the three ingredients of a rebalancing service.
    pub fn new(
        groups: u32,
        config: RebalanceConfig,
        factory: Arc<dyn PolicyFactory + Send + Sync>,
    ) -> Self {
        Self { groups, config, factory }
    }

    /// The initial placement for `cells` cells over this policy's
    /// groups: see [`initial_table`].
    ///
    /// # Errors
    /// `groups == 0`, or more groups than cells.
    pub fn initial_table(&self, cells: usize) -> Result<RoutingTable, RouteError> {
        initial_table(cells, self.groups)
    }
}

/// The canonical initial placement of a rebalancing service: cell `i`
/// starts on group `i % groups` (epoch 0). Fixed round-robin — **not**
/// load-aware — so a replaying verifier can construct the identical
/// starting table from the shard count alone, without any load oracle.
///
/// # Errors
/// `groups == 0`, or more groups than cells (round-robin would leave a
/// group empty, and an empty group's load is indistinguishable from a
/// missing one — reject the shape instead).
pub fn initial_table(cells: usize, groups: u32) -> Result<RoutingTable, RouteError> {
    if groups == 0 || groups as usize > cells {
        return Err(RouteError::UnknownGroup {
            group: groups,
            groups: u32::try_from(cells).unwrap_or(u32::MAX),
        });
    }
    let owners = (0..cells).map(|i| u32::try_from(i).unwrap_or(u32::MAX) % groups).collect();
    RoutingTable::new(owners, groups)
}

/// One boundary's load sample, shared by every group ring. Each group
/// fills the slots of the cells it hosts after executing exactly the
/// boundary prefix (FIFO); ingress blocks on [`Probe::wait_all`] until
/// every cell reported.
pub(crate) struct Probe {
    slots: Mutex<Vec<Option<CellLoad>>>,
    cv: Condvar,
}

impl Probe {
    pub(crate) fn new(cells: usize) -> Self {
        Self { slots: Mutex::new(vec![None; cells]), cv: Condvar::new() }
    }

    /// Reports the loads of the cells this group hosts.
    pub(crate) fn fill<I: IntoIterator<Item = (usize, CellLoad)>>(&self, loads: I) {
        let mut slots = locked(&self.slots);
        for (cell, load) in loads {
            if let Some(slot) = slots.get_mut(cell) {
                *slot = Some(load);
            }
        }
        self.cv.notify_all();
    }

    /// Blocks until every cell's load arrived, then returns them in cell
    /// order. Safe to call while holding the ingress lock: group threads
    /// never take the ingress lock, so they always make progress toward
    /// filling the probe.
    pub(crate) fn wait_all(&self) -> Vec<CellLoad> {
        let mut slots = locked(&self.slots);
        while slots.iter().any(Option::is_none) {
            slots = self.cv.wait(slots).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        slots.iter().map(|s| s.unwrap_or_default()).collect()
    }
}

/// What travels between groups when a cell migrates: the cell's full
/// serialized state, plus the shared tree handle the destination
/// rebuilds the worker around (the tree is immutable and shared — only
/// the mutable state is serialized).
pub(crate) struct HandoffPayload {
    pub(crate) section: Vec<u8>,
    pub(crate) tree: Arc<Tree>,
}

/// The one-shot rendezvous of one cell migration: the source group
/// offers the payload (or the reason it could not produce one), the
/// destination group blocks until it arrives.
pub(crate) struct Handoff {
    slot: Mutex<Option<Result<HandoffPayload, String>>>,
    cv: Condvar,
}

impl Handoff {
    pub(crate) fn new() -> Self {
        Self { slot: Mutex::new(None), cv: Condvar::new() }
    }

    /// Source side: publish the serialized cell (or the failure).
    pub(crate) fn offer(&self, payload: Result<HandoffPayload, String>) {
        *locked(&self.slot) = Some(payload);
        self.cv.notify_all();
    }

    /// Destination side: block until the source published.
    pub(crate) fn take(&self) -> Result<HandoffPayload, String> {
        let mut slot = locked(&self.slot);
        loop {
            match slot.take() {
                Some(payload) => return payload,
                None => {
                    slot = self.cv.wait(slot).unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        }
    }
}

/// Source side of a migration: serializes the cell's entire state —
/// policy, verified driver mirror, report, telemetry — as the same
/// length-prefixed OTCS section a snapshot cut would emit.
pub(crate) fn detach_cell(worker: &ShardWorker) -> Result<HandoffPayload, String> {
    if let Some(e) = worker.error() {
        return Err(format!("cell {} is poisoned: {e}", worker.shard().index()));
    }
    let Some(tree) = worker.tree_arc() else {
        return Err("migration needs workers that own their trees".to_string());
    };
    let mut section = Vec::new();
    worker.snapshot_section(&mut section)?;
    Ok(HandoffPayload { section, tree })
}

/// Destination side of a migration: builds a fresh worker for the cell
/// (same tree handle, a factory-fresh policy) and restores the migrated
/// section into it — after which the cell's observable state is
/// bit-identical to the moment the source serialized it.
pub(crate) fn install_cell(
    payload: &HandoffPayload,
    cell: ShardId,
    factory: &(dyn PolicyFactory + Send + Sync),
    cfg: EngineConfig,
) -> Result<ShardWorker, String> {
    let section = otc_sim::parse_shard_section(&payload.section).map_err(|e| e.to_string())?;
    let policy = factory.build(Arc::clone(&payload.tree), cell);
    let mut worker = ShardWorker::fresh(Arc::clone(&payload.tree), policy, cell, cfg);
    worker.restore_section(&section)?;
    Ok(worker)
}

#[cfg(test)]
mod tests {
    use super::*;
    use otc_core::policy::CachePolicy;
    use otc_core::tc::{TcConfig, TcFast};
    use otc_core::tree::{NodeId, Tree};
    use otc_core::Request;
    use otc_sim::engine::{EngineConfig, ShardedEngine};
    use otc_util::SplitMix64;

    fn factory(tree: Arc<Tree>, _s: ShardId) -> Box<dyn CachePolicy> {
        Box::new(TcFast::new(tree, TcConfig::new(2, 3)))
    }

    fn reqs(n: usize, len: usize, seed: u64) -> Vec<Request> {
        let mut rng = SplitMix64::new(seed);
        (0..len)
            .map(|_| {
                let v = NodeId(rng.index(n) as u32);
                if rng.chance(0.3) {
                    Request::neg(v)
                } else {
                    Request::pos(v)
                }
            })
            .collect()
    }

    #[test]
    fn initial_table_is_round_robin_and_validated() {
        let t = initial_table(5, 2).unwrap();
        assert_eq!(t.owners(), &[0, 1, 0, 1, 0]);
        assert_eq!(t.epoch(), 0);
        assert!(initial_table(2, 3).is_err(), "more groups than cells");
        assert!(initial_table(3, 0).is_err(), "zero groups");
    }

    #[test]
    fn detach_install_round_trips_a_live_cell() {
        // Run a cell halfway, migrate it, run the rest; a never-migrated
        // twin running the same stream must agree exactly.
        let tree = Tree::star(9);
        let forest = otc_core::forest::Forest::cells(&tree);
        let stream = reqs(tree.len(), 400, 11);
        let cfg = EngineConfig::new(2).telemetry(true);

        let make_workers = || {
            let engine = ShardedEngine::new(forest.clone(), &factory, cfg);
            engine.into_workers().expect("fresh engine detaches").1
        };
        let mut twin = make_workers().remove(0);
        let mut live = make_workers().remove(0);
        let cell0: Vec<Request> = stream
            .iter()
            .map(|&r| forest.route_request(r))
            .filter(|(sid, _)| sid.index() == 0)
            .map(|(_, local)| local)
            .collect();
        let (first, rest) = cell0.split_at(cell0.len() / 2);

        for &r in first {
            twin.step(r).expect("valid");
            live.step(r).expect("valid");
        }
        let payload = detach_cell(&live).expect("serializes");
        let factory_arc: Arc<dyn PolicyFactory + Send + Sync> = Arc::new(factory);
        let mut migrated =
            install_cell(&payload, live.shard(), factory_arc.as_ref(), cfg).expect("installs");
        drop(live);
        assert_eq!(migrated.cell_load(), twin.cell_load(), "state survives the hop");
        for &r in rest {
            twin.step(r).expect("valid");
            migrated.step(r).expect("valid");
        }
        assert_eq!(migrated.cell_load(), twin.cell_load());
        assert_eq!(
            migrated.report_snapshot(),
            twin.report_snapshot(),
            "reports are placement-invariant"
        );
        assert_eq!(migrated.windows(), twin.windows(), "telemetry survives the hop");
    }

    #[test]
    fn an_empty_cell_migrates_cleanly() {
        // Edge case: a cell that never executed a request (the workload
        // never touched its subtrie) still detaches and installs, and
        // keeps serving after the hop.
        let tree = Tree::star(5);
        let forest = otc_core::forest::Forest::cells(&tree);
        let cfg = EngineConfig::new(2).telemetry(true);
        let engine = ShardedEngine::new(forest.clone(), &factory, cfg);
        let idle = engine
            .into_workers()
            .expect("fresh engine detaches")
            .1
            .into_iter()
            .next()
            .expect("at least one cell");
        let payload = detach_cell(&idle).expect("an idle cell serializes");
        let factory_arc: Arc<dyn PolicyFactory + Send + Sync> = Arc::new(factory);
        let mut migrated =
            install_cell(&payload, idle.shard(), factory_arc.as_ref(), cfg).expect("installs");
        assert_eq!(migrated.cell_load(), idle.cell_load());
        assert_eq!(migrated.report_snapshot(), idle.report_snapshot());
        migrated.step(Request::pos(NodeId(1))).expect("still serves after the hop");
    }

    #[test]
    fn corrupt_handoffs_are_typed_errors() {
        let tree = Arc::new(Tree::star(4));
        let payload = HandoffPayload { section: vec![0xff; 3], tree: Arc::clone(&tree) };
        let factory_arc: Arc<dyn PolicyFactory + Send + Sync> = Arc::new(factory);
        let err = install_cell(&payload, ShardId(0), factory_arc.as_ref(), EngineConfig::new(2))
            .err()
            .expect("corrupt section must be refused");
        assert!(!err.is_empty());
    }

    #[test]
    fn handoff_rendezvous_delivers_across_threads() {
        let handoff = Arc::new(Handoff::new());
        let taker = {
            let handoff = Arc::clone(&handoff);
            std::thread::spawn(move || handoff.take())
        };
        handoff.offer(Err("nothing to move".to_string()));
        let got = taker.join().expect("no panic");
        assert_eq!(got.err().as_deref(), Some("nothing to move"));
    }
}
