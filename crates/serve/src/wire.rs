//! The serving wire protocol: versioned, length-prefixed binary frames.
//!
//! Layout of every frame, client→server and server→client alike:
//!
//! ```text
//! ┌────────────┬─────────┬──────────────────┐
//! │ u32 LE len │ opcode  │ payload          │   len = 1 + |payload|
//! └────────────┴─────────┴──────────────────┘
//! ```
//!
//! Request payloads reuse the **OTCT record codec**
//! ([`otc_workloads::wire`]): each request is the LEB128 varint of
//! `(node << 1) | sign`, byte-identical to a binary trace body. That is
//! deliberate — the server logs exactly what it accepts, so the log *is*
//! an OTCT trace and `ShardedEngine::replay_trace` replays the live run
//! without any re-encoding.
//!
//! Decoding is strict, mirroring `TraceReader`: unknown opcodes, bad
//! magic, unsupported versions, oversized or truncated frames, trailing
//! garbage after a payload, and varint overflows are all
//! `InvalidData`/`UnexpectedEof` errors, never silently skipped. The
//! server answers any such error with one [`Message::Error`] frame and
//! closes the connection. Round-trips and rejections are pinned by
//! `crates/serve/tests/proptest_wire.rs`.

// Codec modules hold the panic-freedom line hardest: a narrowing cast
// or an out-of-bounds index here turns corrupt peer input into a wrong
// answer or a crash. CI runs clippy with -D warnings, so these are
// hard gates for this file.
#![warn(clippy::cast_possible_truncation)]
#![warn(clippy::indexing_slicing)]

use std::io::{self, Read, Write};

use otc_core::request::Request;
use otc_workloads::wire as codec;

/// Magic bytes inside the handshake frames (`Hello` / `HelloAck`).
pub const WIRE_MAGIC: [u8; 4] = *b"OTCW";

/// Current protocol version. Servers reject anything else.
pub const WIRE_VERSION: u16 = 1;

/// Hard cap on a frame's length prefix (opcode + payload). Anything
/// larger is treated as corruption — a real client batches well below
/// this.
pub const MAX_FRAME: u32 = 1 << 24;

/// Cumulative service counters reported by [`Message::StatsReply`].
///
/// A racy-but-consistent snapshot: counters are folded in batch
/// granularity, so a request accepted but still queued is not yet
/// visible. After a drain barrier the snapshot is exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Rounds executed across all shards.
    pub rounds: u64,
    /// Rounds that paid the service cost.
    pub paid_rounds: u64,
    /// Total service cost so far.
    pub service_cost: u64,
    /// Total reorganisation cost so far (already multiplied by α).
    pub reorg_cost: u64,
}

impl ServeStats {
    /// Total cost so far.
    #[must_use]
    pub fn total_cost(&self) -> u64 {
        self.service_cost + self.reorg_cost
    }
}

/// One protocol message. See the module docs for the frame layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Client's opening frame: magic + version. Anything else first is a
    /// protocol error.
    Hello {
        /// The protocol version the client speaks.
        version: u16,
    },
    /// Server's reply to a valid [`Message::Hello`]: magic + version +
    /// the service's global universe size and shard count.
    HelloAck {
        /// The protocol version the server speaks.
        version: u16,
        /// Size of the global node-id space requests must stay inside.
        universe: u32,
        /// Number of shards behind the service.
        shards: u32,
    },
    /// A batch of globally-addressed requests (OTCT record encoding).
    /// Answered by [`Message::Ack`] with the accepted count, or
    /// [`Message::Error`] — in which case the whole batch was rejected
    /// atomically.
    Submit {
        /// The requests, in submission order.
        requests: Vec<Request>,
    },
    /// Ask for a [`Message::StatsReply`] snapshot.
    Stats,
    /// Cumulative counters (reply to [`Message::Stats`]).
    StatsReply(ServeStats),
    /// Ask for a [`Message::MetricsReply`] — the live wall-clock
    /// observability scrape (stage-latency histograms and operational
    /// counters), as opposed to [`Message::Stats`]'s deterministic cost
    /// counters. Serving a scrape never perturbs results (observability
    /// invariant #8); on a server running without metrics the reply is
    /// the valid empty exposition.
    Metrics,
    /// The metrics scrape (reply to [`Message::Metrics`]): a canonical
    /// `otc-obs/1` JSON document (see `otc_obs::MetricsSnapshot`).
    MetricsReply {
        /// The exposition JSON, UTF-8.
        json: String,
    },
    /// Barrier: block until everything accepted so far (service-wide) has
    /// been executed by the shard workers. Answered by [`Message::Ack`].
    Drain,
    /// Graceful goodbye; the server acknowledges and closes.
    Bye,
    /// Positive acknowledgement; `accepted` is the number of requests
    /// taken from a [`Message::Submit`] (0 for other acknowledged ops).
    Ack {
        /// Requests accepted by the acknowledged operation.
        accepted: u64,
    },
    /// The operation (or the connection) failed; the server closes the
    /// connection after sending this.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

/// Opcode bytes. Client→server opcodes have the high bit clear,
/// server→client replies have it set.
mod op {
    pub const HELLO: u8 = 0x01;
    pub const SUBMIT: u8 = 0x02;
    pub const STATS: u8 = 0x03;
    pub const DRAIN: u8 = 0x04;
    pub const BYE: u8 = 0x05;
    pub const METRICS: u8 = 0x06;
    pub const HELLO_ACK: u8 = 0x81;
    pub const ACK: u8 = 0x82;
    pub const STATS_REPLY: u8 = 0x83;
    pub const METRICS_REPLY: u8 = 0x84;
    pub const ERROR: u8 = 0xEE;
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// First `N` bytes of `b`, zero-padded — the panic-free spelling of
/// `b.try_into().expect("len checked")` for callers that have already
/// length-checked the slice.
fn le_bytes<const N: usize>(b: &[u8]) -> [u8; N] {
    let mut a = [0u8; N];
    for (d, s) in a.iter_mut().zip(b) {
        *d = *s;
    }
    a
}

/// Opens a frame: writes the placeholder length prefix and the opcode,
/// returning the position [`end_frame`] patches.
fn begin_frame(buf: &mut Vec<u8>, opcode: u8) -> usize {
    let frame_start = buf.len();
    buf.extend_from_slice(&0u32.to_le_bytes()); // patched by end_frame
    buf.push(opcode);
    frame_start
}

/// Closes a frame opened by [`begin_frame`]: patches the length prefix.
fn end_frame(buf: &mut [u8], frame_start: usize) {
    // Saturation would need a >4 GiB frame (MAX_FRAME caps decoding far
    // below that); if it ever engaged, the peer rejects the length
    // mismatch with a typed error instead of misframing the stream.
    let len = u32::try_from(buf.len() - frame_start - 4).unwrap_or(u32::MAX);
    // The slot always exists: begin_frame wrote the placeholder at
    // frame_start. get_mut keeps the encoder panic-free by construction.
    if let Some(slot) = buf.get_mut(frame_start..frame_start + 4) {
        slot.copy_from_slice(&len.to_le_bytes());
    }
}

/// Appends a complete `Submit` frame for `requests` straight from a
/// slice — the client hot path, sparing the `Message::Submit` `Vec`
/// clone per batch. `Message::encode_into` delegates here, so the two
/// paths cannot drift.
pub fn encode_submit(buf: &mut Vec<u8>, requests: &[Request]) {
    let frame_start = begin_frame(buf, op::SUBMIT);
    codec::encode_varint(buf, requests.len() as u64);
    for &r in requests {
        codec::encode_request(buf, r);
    }
    end_frame(buf, frame_start);
}

/// Checks a payload's handshake preamble (magic + version) and returns
/// the version plus the remaining payload.
fn take_handshake(payload: &[u8]) -> io::Result<(u16, &[u8])> {
    let Some((magic, rest)) = payload.split_at_checked(4) else {
        return Err(bad_data("handshake payload truncated"));
    };
    if magic != WIRE_MAGIC {
        return Err(bad_data(format!("bad handshake magic {magic:?}, expected {WIRE_MAGIC:?}")));
    }
    let Some((version, rest)) = rest.split_at_checked(2) else {
        return Err(bad_data("handshake payload truncated"));
    };
    Ok((u16::from_le_bytes(le_bytes(version)), rest))
}

impl Message {
    /// This message's opcode byte.
    #[must_use]
    pub fn opcode(&self) -> u8 {
        match self {
            Message::Hello { .. } => op::HELLO,
            Message::Submit { .. } => op::SUBMIT,
            Message::Stats => op::STATS,
            Message::Metrics => op::METRICS,
            Message::Drain => op::DRAIN,
            Message::Bye => op::BYE,
            Message::HelloAck { .. } => op::HELLO_ACK,
            Message::Ack { .. } => op::ACK,
            Message::StatsReply(_) => op::STATS_REPLY,
            Message::MetricsReply { .. } => op::METRICS_REPLY,
            Message::Error { .. } => op::ERROR,
        }
    }

    /// Appends the complete frame (length prefix, opcode, payload) to
    /// `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        if let Message::Submit { requests } = self {
            return encode_submit(buf, requests);
        }
        let frame_start = begin_frame(buf, self.opcode());
        match self {
            Message::Hello { version } => {
                buf.extend_from_slice(&WIRE_MAGIC);
                buf.extend_from_slice(&version.to_le_bytes());
            }
            Message::HelloAck { version, universe, shards } => {
                buf.extend_from_slice(&WIRE_MAGIC);
                buf.extend_from_slice(&version.to_le_bytes());
                buf.extend_from_slice(&universe.to_le_bytes());
                buf.extend_from_slice(&shards.to_le_bytes());
            }
            // Submit took the early return above; nothing to add here.
            Message::Submit { .. }
            | Message::Stats
            | Message::Metrics
            | Message::Drain
            | Message::Bye => {}
            Message::MetricsReply { json } => buf.extend_from_slice(json.as_bytes()),
            Message::StatsReply(s) => {
                codec::encode_varint(buf, s.rounds);
                codec::encode_varint(buf, s.paid_rounds);
                codec::encode_varint(buf, s.service_cost);
                codec::encode_varint(buf, s.reorg_cost);
            }
            Message::Ack { accepted } => codec::encode_varint(buf, *accepted),
            Message::Error { message } => buf.extend_from_slice(message.as_bytes()),
        }
        end_frame(buf, frame_start);
    }

    /// Decodes a frame body (opcode + payload, the bytes the length
    /// prefix counts). Strict: the payload must be consumed exactly.
    ///
    /// # Errors
    /// `InvalidData` on unknown opcodes, bad magic, malformed or
    /// trailing-garbage payloads; `UnexpectedEof` on truncation inside a
    /// varint.
    pub fn decode(opcode: u8, payload: &[u8]) -> io::Result<Message> {
        match opcode {
            op::HELLO => {
                let (version, rest) = take_handshake(payload)?;
                if !rest.is_empty() {
                    return Err(bad_data("trailing bytes after Hello"));
                }
                Ok(Message::Hello { version })
            }
            op::HELLO_ACK => {
                let (version, rest) = take_handshake(payload)?;
                let (lo, hi) = rest
                    .split_at_checked(4)
                    .filter(|(_, hi)| hi.len() == 4)
                    .ok_or_else(|| bad_data("HelloAck payload must be magic+version+u32+u32"))?;
                let universe = u32::from_le_bytes(le_bytes(lo));
                let shards = u32::from_le_bytes(le_bytes(hi));
                Ok(Message::HelloAck { version, universe, shards })
            }
            op::SUBMIT => {
                let mut src = io::Cursor::new(payload);
                let count = codec::decode_varint(&mut src)?
                    .ok_or_else(|| bad_data("Submit payload missing its count"))?;
                // Each record is at least one byte, so a count beyond the
                // remaining payload is corruption — reject it *before*
                // trusting it as an allocation size.
                let capacity = usize::try_from(count)
                    .ok()
                    .filter(|&c| c <= payload.len())
                    .ok_or_else(|| {
                        bad_data(format!(
                            "Submit declares {count} records but carries only {} payload bytes",
                            payload.len()
                        ))
                    })?;
                let mut requests = Vec::with_capacity(capacity);
                for i in 0..count {
                    match codec::decode_request(&mut src)? {
                        Some(r) => requests.push(r),
                        None => {
                            return Err(bad_data(format!(
                                "Submit declared {count} records but ended after {i}"
                            )));
                        }
                    }
                }
                if src.position() != payload.len() as u64 {
                    return Err(bad_data("trailing bytes after Submit records"));
                }
                Ok(Message::Submit { requests })
            }
            op::STATS | op::METRICS | op::DRAIN | op::BYE => {
                if !payload.is_empty() {
                    return Err(bad_data("unexpected payload on a bare opcode"));
                }
                Ok(match opcode {
                    op::STATS => Message::Stats,
                    op::METRICS => Message::Metrics,
                    op::DRAIN => Message::Drain,
                    _ => Message::Bye,
                })
            }
            op::STATS_REPLY => {
                let mut src = io::Cursor::new(payload);
                let mut next = || {
                    codec::decode_varint(&mut src)
                        .and_then(|v| v.ok_or_else(|| bad_data("StatsReply truncated")))
                };
                let stats = ServeStats {
                    rounds: next()?,
                    paid_rounds: next()?,
                    service_cost: next()?,
                    reorg_cost: next()?,
                };
                if src.position() != payload.len() as u64 {
                    return Err(bad_data("trailing bytes after StatsReply"));
                }
                Ok(Message::StatsReply(stats))
            }
            op::ACK => {
                let mut src = io::Cursor::new(payload);
                let accepted = codec::decode_varint(&mut src)?
                    .ok_or_else(|| bad_data("Ack payload missing its count"))?;
                if src.position() != payload.len() as u64 {
                    return Err(bad_data("trailing bytes after Ack"));
                }
                Ok(Message::Ack { accepted })
            }
            op::METRICS_REPLY => {
                let json = std::str::from_utf8(payload)
                    .map_err(|_| bad_data("MetricsReply payload is not UTF-8"))?
                    .to_string();
                Ok(Message::MetricsReply { json })
            }
            op::ERROR => {
                let message = std::str::from_utf8(payload)
                    .map_err(|_| bad_data("Error message is not UTF-8"))?
                    .to_string();
                Ok(Message::Error { message })
            }
            other => Err(bad_data(format!("unknown opcode {other:#04x}"))),
        }
    }
}

/// Writes one message as a frame. `scratch` is a reusable encode buffer
/// (cleared here), so steady-state writes allocate nothing once warm.
///
/// # Errors
/// Propagates I/O errors from `sink`.
pub fn write_message<W: Write>(
    sink: &mut W,
    msg: &Message,
    scratch: &mut Vec<u8>,
) -> io::Result<()> {
    scratch.clear();
    msg.encode_into(scratch);
    sink.write_all(scratch)
}

/// Reads one frame and decodes it. `Ok(None)` on a clean EOF *before*
/// the length prefix (the peer hung up between frames); EOF anywhere
/// inside a frame is `UnexpectedEof`. `scratch` is a reusable read
/// buffer.
///
/// # Errors
/// `InvalidData` on zero-length or oversized frames and everything
/// [`Message::decode`] rejects; `UnexpectedEof` on truncation.
pub fn read_message<R: Read>(src: &mut R, scratch: &mut Vec<u8>) -> io::Result<Option<Message>> {
    // Length prefix, tolerating a clean EOF before its first byte.
    let mut len_bytes = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        // got < 4 makes the range valid; the empty-slice fallback keeps
        // this panic-free and would surface as UnexpectedEof below.
        let dst = len_bytes.get_mut(got..).unwrap_or(&mut []);
        match src.read(dst) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame header",
                ));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 {
        return Err(bad_data("zero-length frame (opcode missing)"));
    }
    if len > MAX_FRAME {
        return Err(bad_data(format!("frame of {len} bytes exceeds the {MAX_FRAME} cap")));
    }
    scratch.clear();
    scratch.resize(len as usize, 0);
    src.read_exact(scratch)?;
    let Some((&opcode, body)) = scratch.split_first() else {
        return Err(bad_data("zero-length frame (opcode missing)"));
    };
    Message::decode(opcode, body).map(Some)
}

#[cfg(test)]
#[allow(
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    reason = "tests index and truncate fixture buffers they just built; a panic here is a failing test, not a service crash"
)]
mod tests {
    use super::*;
    use otc_core::tree::NodeId;

    fn round_trip(msg: &Message) -> Message {
        let mut buf = Vec::new();
        msg.encode_into(&mut buf);
        let mut scratch = Vec::new();
        let back = read_message(&mut io::Cursor::new(&buf), &mut scratch)
            .expect("own encoding decodes")
            .expect("not EOF");
        assert_eq!(&back, msg);
        back
    }

    #[test]
    fn every_variant_round_trips() {
        round_trip(&Message::Hello { version: WIRE_VERSION });
        round_trip(&Message::HelloAck { version: 1, universe: 4096, shards: 8 });
        round_trip(&Message::Submit { requests: vec![] });
        round_trip(&Message::Submit {
            requests: vec![
                Request::pos(NodeId(0)),
                Request::neg(NodeId(127)),
                Request::pos(NodeId(u32::MAX)),
            ],
        });
        round_trip(&Message::Stats);
        round_trip(&Message::StatsReply(ServeStats {
            rounds: 10,
            paid_rounds: 4,
            service_cost: 4,
            reorg_cost: 12,
        }));
        round_trip(&Message::Metrics);
        round_trip(&Message::MetricsReply {
            json: "{\"format\":\"otc-obs/1\",\"metrics\":[]}".to_string(),
        });
        round_trip(&Message::Drain);
        round_trip(&Message::Bye);
        round_trip(&Message::Ack { accepted: 12345 });
        round_trip(&Message::Error { message: "shard 2: capacity exceeded".to_string() });
    }

    #[test]
    fn clean_eof_between_frames_is_none() {
        let mut scratch = Vec::new();
        assert!(read_message(&mut io::Cursor::new(&[][..]), &mut scratch).unwrap().is_none());
    }

    #[test]
    fn truncation_is_rejected_everywhere() {
        let mut buf = Vec::new();
        Message::Submit { requests: vec![Request::pos(NodeId(300)); 4] }.encode_into(&mut buf);
        let mut scratch = Vec::new();
        for cut in 1..buf.len() {
            let err = read_message(&mut io::Cursor::new(&buf[..cut]), &mut scratch)
                .expect_err("every proper prefix must be rejected");
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let mut scratch = Vec::new();
        // Zero-length frame.
        let err =
            read_message(&mut io::Cursor::new(&0u32.to_le_bytes()[..]), &mut scratch).unwrap_err();
        assert!(err.to_string().contains("zero-length"), "got: {err}");
        // Oversized length prefix.
        let huge = (MAX_FRAME + 1).to_le_bytes();
        let err = read_message(&mut io::Cursor::new(&huge[..]), &mut scratch).unwrap_err();
        assert!(err.to_string().contains("cap"), "got: {err}");
        // Unknown opcode.
        let mut frame = 1u32.to_le_bytes().to_vec();
        frame.push(0x7F);
        let err = read_message(&mut io::Cursor::new(&frame), &mut scratch).unwrap_err();
        assert!(err.to_string().contains("unknown opcode"), "got: {err}");
        // Bad handshake magic.
        let mut buf = Vec::new();
        Message::Hello { version: 1 }.encode_into(&mut buf);
        buf[5] = b'X'; // first magic byte (after 4-byte len + opcode)
        let err = read_message(&mut io::Cursor::new(&buf), &mut scratch).unwrap_err();
        assert!(err.to_string().contains("magic"), "got: {err}");
        // Trailing garbage after a Submit payload.
        let mut buf = Vec::new();
        Message::Submit { requests: vec![Request::pos(NodeId(1))] }.encode_into(&mut buf);
        buf.push(0x00);
        let len = (buf.len() - 4) as u32;
        buf[..4].copy_from_slice(&len.to_le_bytes());
        let err = read_message(&mut io::Cursor::new(&buf), &mut scratch).unwrap_err();
        assert!(err.to_string().contains("trailing"), "got: {err}");
        // Submit whose count promises more records than it carries.
        let mut buf = Vec::new();
        Message::Submit { requests: vec![Request::pos(NodeId(1)); 3] }.encode_into(&mut buf);
        let cut = buf.len() - 1;
        let mut short = buf[..cut].to_vec();
        let len = (short.len() - 4) as u32;
        short[..4].copy_from_slice(&len.to_le_bytes());
        let err = read_message(&mut io::Cursor::new(&short), &mut scratch).unwrap_err();
        assert!(err.to_string().contains("ended after"), "got: {err}");
    }
}
