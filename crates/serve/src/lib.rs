//! # otc-serve — the live serving runtime
//!
//! Everything before this crate is batch: an owner thread stages
//! requests into a [`otc_sim::ShardedEngine`] and drains it. This crate
//! models the paper's *actual* setting — an online stream of requests
//! arriving from many concurrent clients **while** the tree cache is
//! being updated — as a long-lived service:
//!
//! * [`Server`] pins one persistent worker thread per shard (a detached
//!   [`otc_sim::worker::ShardWorker`]), fed through bounded
//!   [`otc_util::ring`] channels with backpressure;
//! * the [`wire`] protocol frames requests on loopback TCP, reusing the
//!   OTCT LEB128 record codec ([`otc_workloads::wire`]) byte for byte;
//! * [`Client`] speaks it, synchronously or pipelined;
//! * shutdown drains gracefully and returns per-shard verified
//!   [`otc_sim::Report`]s, the aggregate, windowed telemetry, and the
//!   OTCT trace the service logged;
//! * with a file-backed log and a [`SnapshotPolicy`], the service is
//!   **crash-safe**: cadence-driven `OTCS` snapshots are taken as
//!   consistent cuts (no shard pauses another), and [`Server::resume`]
//!   restores a killed service from the newest usable snapshot plus a
//!   replay of the log tail — bit-identical to never having crashed;
//! * with [`ServeConfig::metrics`], the service carries a wall-clock
//!   [`obs::ServeMetrics`] surface — per-stage latency histograms and
//!   counters, scrapable live over the wire (`Metrics` opcode, see
//!   [`Client::scrape`]) — that provably never changes results
//!   (invariant #8, `tests/observer.rs`).
//!
//! **The core invariant** (pinned by `tests/loopback.rs`): the live
//! service's per-shard reports are bit-identical to
//! `ShardedEngine::replay_trace` of the trace it logged — at every shard
//! count, client count, pipelining depth and thread schedule. Serving is
//! just the engine with the batches arriving over a socket; nothing
//! about cost accounting, verification or telemetry is renegotiated.
//!
//! ```no_run
//! use std::sync::Arc;
//! use otc_core::forest::{Forest, ShardId};
//! use otc_core::policy::CachePolicy;
//! use otc_core::tc::{TcConfig, TcFast};
//! use otc_core::tree::{NodeId, Tree};
//! use otc_core::Request;
//! use otc_serve::{Client, ServeConfig, Server};
//! use otc_sim::engine::{EngineConfig, ShardedEngine};
//!
//! let forest = Forest::partition(&Tree::star(64), 4);
//! let factory = |tree: Arc<Tree>, _s: ShardId| {
//!     Box::new(TcFast::new(tree, TcConfig::new(2, 8))) as Box<dyn CachePolicy>
//! };
//! let engine = ShardedEngine::new(forest, &factory, EngineConfig::new(2));
//! let server = Server::start(engine, ServeConfig::default()).unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap();
//! client.submit(&[Request::pos(NodeId(1)), Request::pos(NodeId(1))]).unwrap();
//! client.drain().unwrap();
//! client.bye().unwrap();
//!
//! let outcome = server.shutdown().unwrap();
//! assert_eq!(outcome.requests_served, 2);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod obs;
pub mod rebalance;
pub mod server;
pub mod wire;

pub use client::Client;
pub use obs::ServeMetrics;
pub use rebalance::{initial_table, RebalancePolicy};
pub use server::{
    RebalanceSummary, ResumeOutcome, ServeConfig, ServeOutcome, Server, SnapshotPolicy, TraceLog,
};
pub use wire::{Message, ServeStats, MAX_FRAME, WIRE_MAGIC, WIRE_VERSION};
