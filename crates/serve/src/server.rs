//! The loopback TCP serving front-end over detached engine shards.
//!
//! Thread architecture (one arrow = one `otc_util::ring` channel or TCP
//! stream; see `DESIGN.md` "The serving runtime" for the full diagram):
//!
//! ```text
//! client A ──TCP──▶ conn thread A ─┐            ┌─▶ group 0 {ShardWorker…}
//! client B ──TCP──▶ conn thread B ─┤─ ingress ──┤─▶ group 1 {ShardWorker…}
//! client C ──TCP──▶ conn thread C ─┘   lock     └─▶ group G {ShardWorker…}
//!                                      │
//!                                      └─▶ OTCT trace log (optional)
//! ```
//!
//! * One **acceptor** thread hands connections to per-connection threads.
//! * Each **connection** thread speaks the wire protocol and pushes
//!   accepted batches through the single **ingress** critical section.
//! * One persistent **group** thread per serving group owns a set of
//!   [`otc_sim::worker::ShardWorker`] cells, fed by a bounded
//!   [`otc_util::ring::channel`] — a full queue blocks ingress
//!   (backpressure) instead of buffering unboundedly. Without a
//!   [`RebalancePolicy`] there is exactly one group per shard (the
//!   classic one-thread-per-shard service); with one, cells migrate
//!   between groups at decision boundaries (see below).
//!
//! **The rebalance boundary protocol.** With
//! [`ServeConfig::rebalance`] set, every `interval` accepted requests
//! the ingress (still under its one lock) floats a `Probe` marker down
//! every group ring and blocks until each group has reported its cells'
//! cumulative loads — FIFO means each group answers after executing
//! exactly the boundary prefix, and group threads never take the ingress
//! lock, so the wait always makes progress. The sampled loads drive
//! [`otc_sim::Rebalancer::on_boundary`] (a pure function of the logged
//! stream), the decision is appended to the OTCT log as a
//! `RebalanceRecord`, and the moves are executed as `MigrateOut` /
//! `Install` marker pairs: **all** `MigrateOut`s are enqueued before
//! **any** `Install`, so per-ring FIFO guarantees every group serializes
//! its outgoing cells before it can block on an incoming handoff — no
//! rendezvous cycle. Ingress does not wait for installs: a post-boundary
//! request for a migrated cell sits FIFO-behind the `Install` marker in
//! the destination ring, so it can never reach a half-migrated cell.
//! Migration failure poisons the service — the logged schedule promised
//! a migration that did not happen, so the replay identity would be
//! broken, exactly like a dropped logged request.
//!
//! **The determinism seam.** The ingress lock makes "append to the OTCT
//! log" and "enqueue to the shard rings" one atomic step, so the
//! per-shard projection of the logged global order is exactly the FIFO
//! order each worker consumes. Per-shard cost is a function of per-shard
//! request order only (shards are independent), therefore the live
//! service's per-shard [`Report`]s — and their aggregate — are
//! **bit-identical** to `ShardedEngine::replay_trace` of the logged
//! trace, at any shard count, client count and interleaving. Workers run
//! concurrently with ingress (and each other) the whole time; only the
//! route-and-enqueue step is serialised. `crates/serve/tests/loopback.rs`
//! pins the identity end to end.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Cursor, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use otc_core::forest::ShardId;
use otc_core::request::Request;
use otc_obs::clock::{self, Stamp};
use otc_obs::MetricsSnapshot;
use otc_sim::engine::{EngineConfig, EngineError, ShardedEngine};
use otc_sim::snapshot::{self, EngineSnapshot, LogPosition, SnapshotMeta};
use otc_sim::worker::{timeline_from_windows, ShardRouter, ShardWorker};
use otc_sim::{aggregate_reports, Rebalancer, Report, Timeline};
use otc_util::ring;
use otc_workloads::rebalance::RebalanceRecord;
use otc_workloads::trace::{
    TraceEvent, TraceHeader, TraceReader, TraceWriter, TRACE_FLAG_REBALANCE,
};

use crate::obs::{DrainHooks, ServeMetrics};
use crate::rebalance::{detach_cell, install_cell, Handoff, Probe, RebalancePolicy};
use crate::wire::{self, Message, ServeStats, WIRE_VERSION};

/// Where (and whether) the server logs the accepted request stream as an
/// OTCT binary trace.
#[derive(Debug, Clone, Default)]
pub enum TraceLog {
    /// No logging (maximum throughput; the replay identity is then
    /// unobservable for this run).
    Off,
    /// Log into memory; [`ServeOutcome::trace_bytes`] returns the bytes.
    #[default]
    Memory,
    /// Log to a file at this path.
    File(PathBuf),
}

/// Cadence-driven crash snapshots: every `every` accepted requests the
/// ingress takes a *consistent cut* — it syncs the trace log and floats a
/// cut marker down every shard ring, so each worker serializes its OTCS
/// section after executing exactly the log prefix the cut addresses. No
/// shard pauses any other; the only global step is the marker enqueue,
/// under the same ingress lock every request already takes.
///
/// Snapshots land in `dir` as `snap-<records>.otcs` via a temp file and
/// an atomic rename: a crash mid-write can leave a stale `.tmp`, never a
/// half-written snapshot under the real name. Emission is best-effort —
/// a shard that is already poisoned, or an I/O error, aborts that cut
/// and the service keeps serving (recovery falls back to an older
/// snapshot or pure log replay).
#[derive(Debug, Clone)]
pub struct SnapshotPolicy {
    /// Directory the OTCS images are written into (created if missing).
    pub dir: PathBuf,
    /// Take a cut every this many accepted requests (≥ 1).
    pub every: u64,
}

/// Serving options, separate from the engine semantics ([`EngineConfig`]
/// travels inside the engine handed to [`Server::start`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP port on 127.0.0.1 to bind (0 = ephemeral, read it back with
    /// [`Server::addr`]).
    pub port: u16,
    /// Capacity of each per-shard ring; a full ring blocks ingress
    /// (backpressure).
    pub queue_capacity: usize,
    /// Most requests a worker drains per wakeup (bounds per-wakeup
    /// latency under burst).
    pub worker_batch: usize,
    /// Request-stream logging.
    pub log: TraceLog,
    /// Periodic engine snapshots (requires a trace log, since a snapshot
    /// addresses a log position). `None` = never snapshot; recovery is
    /// then pure log replay.
    pub snapshots: Option<SnapshotPolicy>,
    /// Dynamic resharding under live skew. `None` (the default) pins one
    /// worker thread per shard forever; `Some` spreads the engine's
    /// cells over [`RebalancePolicy::groups`] worker threads and
    /// migrates cells between them at decision boundaries (see the
    /// module docs for the protocol and `DESIGN.md` for invariant #7).
    pub rebalance: Option<RebalancePolicy>,
    /// Wall-clock stage-latency metrics ([`crate::obs::ServeMetrics`]).
    /// Off by default. Observation is a pure side-band — results, trace
    /// bytes, telemetry and rebalance schedules are bit-identical with
    /// metrics on, off, or scraped mid-run (invariant #8, proven by
    /// `crates/serve/tests/observer.rs`). Metrics are wall-clock state,
    /// not engine state: [`Server::resume`] starts a fresh surface
    /// rather than recovering one.
    pub metrics: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            port: 0,
            queue_capacity: 4096,
            worker_batch: 512,
            log: TraceLog::Memory,
            snapshots: None,
            rebalance: None,
            metrics: false,
        }
    }
}

/// Everything a finished service hands back.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Per-shard verified reports, in shard order.
    pub per_shard: Vec<Report>,
    /// The aggregate report (see [`otc_sim::aggregate_reports`]).
    pub report: Report,
    /// Windowed telemetry (non-empty when the engine ran with
    /// `telemetry(true)`).
    pub timeline: Timeline,
    /// Requests accepted over the service's lifetime.
    pub requests_served: u64,
    /// The OTCT trace logged with [`TraceLog::Memory`].
    pub trace_bytes: Option<Vec<u8>>,
    /// The OTCT trace file written with [`TraceLog::File`].
    pub trace_path: Option<PathBuf>,
    /// Snapshot files completed over the service's lifetime.
    pub snapshots_written: u64,
    /// Rebalance summary (`None` when the service ran without a
    /// [`RebalancePolicy`]).
    pub rebalance: Option<RebalanceSummary>,
    /// Final wall-clock metrics scrape (`None` when the service ran
    /// without [`ServeConfig::metrics`]). Observe-only: nothing in the
    /// other fields depends on it.
    pub metrics: Option<MetricsSnapshot>,
}

/// What a rebalancing service did over its lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceSummary {
    /// Decision boundaries crossed.
    pub boundaries: u64,
    /// Routing-table epoch at shutdown (one bump per boundary).
    pub epoch: u64,
    /// Final placement: `owners[cell]` is the group that hosted the cell
    /// at shutdown.
    pub owners: Vec<u32>,
    /// Cell migrations executed (total moves across all boundaries;
    /// exact across a [`Server::resume`] — the moves in the recovered
    /// prefix are counted, not re-executed).
    pub migrations: u64,
}

/// What [`Server::resume`] reconstructed before serving again.
#[derive(Debug, Clone)]
pub struct ResumeOutcome {
    /// Record count of the snapshot recovery started from (`None` =
    /// pure log replay from the start of the trace).
    pub snapshot_records: Option<u64>,
    /// Records replayed from the log tail past the snapshot.
    pub replayed: u64,
    /// Requests the recovered service resumes from — the log's longest
    /// consistent prefix.
    pub requests_recovered: u64,
    /// Bytes of torn log tail cut off before resuming appends.
    pub truncated_bytes: u64,
    /// Snapshot files that were skipped as unusable (corrupt, ahead of
    /// the surviving log, or incompatible with the engine).
    pub snapshots_skipped: u64,
}

/// The trace sink behind the ingress lock.
enum TraceSink {
    Memory(TraceWriter<Cursor<Vec<u8>>>),
    File(TraceWriter<BufWriter<std::fs::File>>, PathBuf),
}

impl TraceSink {
    fn push(&mut self, req: Request) -> io::Result<()> {
        match self {
            TraceSink::Memory(w) => w.push(req),
            TraceSink::File(w, _) => w.push(req),
        }
    }

    /// Appends one rebalance decision record in stream position (the
    /// writer must have been opened with `TRACE_FLAG_REBALANCE`).
    fn push_rebalance(&mut self, record: &RebalanceRecord) -> io::Result<()> {
        match self {
            TraceSink::Memory(w) => w.push_rebalance(record),
            TraceSink::File(w, _) => w.push_rebalance(record),
        }
    }

    fn finish(self) -> io::Result<(Option<Vec<u8>>, Option<PathBuf>)> {
        match self {
            TraceSink::Memory(w) => Ok((Some(w.finish()?.into_inner()), None)),
            TraceSink::File(w, path) => {
                w.finish()?.flush()?;
                Ok((None, Some(path)))
            }
        }
    }

    /// Flushes everything logged so far through to the sink without
    /// finishing the trace (the on-disk count stays `COUNT_UNKNOWN`).
    fn sync(&mut self) -> io::Result<()> {
        match self {
            TraceSink::Memory(w) => w.sync(),
            TraceSink::File(w, _) => w.sync(),
        }
    }

    /// The log position of everything pushed so far.
    fn position(&self) -> LogPosition {
        match self {
            TraceSink::Memory(w) => LogPosition { offset: w.stream_offset(), records: w.count() },
            TraceSink::File(w, _) => LogPosition { offset: w.stream_offset(), records: w.count() },
        }
    }
}

/// What flows through a group ring: shard-local requests tagged with
/// their cell, interleaved with markers. Every marker rides the same
/// FIFO as the requests around it, so a group acts on it after
/// executing exactly the log prefix the marker addresses — consistent
/// cuts, consistent load probes and consistent migration points, all
/// with no pause and no cross-group coordination beyond the enqueue.
enum Cmd {
    /// One shard-local request for the given cell.
    Req(u32, Request),
    /// Snapshot cut: serialize every hosted cell into the cut.
    Cut(Arc<Cut>),
    /// Rebalance boundary: report every hosted cell's cumulative load.
    Probe(Arc<Probe>),
    /// This group loses the cell: serialize it and offer the handoff.
    MigrateOut(u32, Arc<Handoff>),
    /// This group gains the cell: block on the handoff and install it.
    Install(u32, Arc<Handoff>),
    /// Ring-wait sample (only ever enqueued with metrics on): the worker
    /// records how long the stamp sat in the ring and does nothing else —
    /// unlike every other marker it does **not** flush the buffered run,
    /// so it is invisible to batching and to state.
    Stamp(Stamp),
}

/// One in-flight snapshot cut, shared by every worker. The worker that
/// delivers the last missing section assembles and writes the file.
struct Cut {
    /// Prebuilt OTCS bytes up to the end of the meta section.
    header: Vec<u8>,
    /// Accepted-record count at the cut (names the snapshot file).
    records: u64,
    /// Per-shard serialized sections, in shard order.
    sections: Mutex<Vec<Option<Vec<u8>>>>,
}

/// Ingress state: the single serialization point of the service (see the
/// module docs for why log + enqueue must be one atomic step).
struct Ingress {
    senders: Option<Vec<ring::Sender<Cmd>>>,
    sink: Option<TraceSink>,
    /// Requests enqueued per group over the service lifetime.
    enqueued: Vec<u64>,
    /// Requests accepted in total.
    accepted: u64,
    /// The decision driver when rebalancing — owns the epoch-versioned
    /// routing table; living under the ingress lock is what makes
    /// "route at the current epoch" atomic with the enqueue.
    rebalancer: Option<Rebalancer>,
    /// Cell migrations executed so far.
    migrations: u64,
}

/// State shared by every thread of one server.
struct Shared {
    router: ShardRouter,
    engine_cfg: EngineConfig,
    ingress: Mutex<Ingress>,
    /// Requests *executed* per shard; workers bump it per batch and
    /// notify, drain barriers wait on it.
    progress: Mutex<Vec<u64>>,
    progress_cv: Condvar,
    /// Cumulative executed-cost counters for cheap Stats replies.
    stats: Mutex<ServeStats>,
    /// First protocol violation anywhere in the service (sticky poison).
    poisoned: Mutex<Option<EngineError>>,
    /// Snapshot cadence, when configured.
    snapshots: Option<SnapshotPolicy>,
    /// Rebalance policy, when configured (group threads need the factory
    /// and engine config to install migrated cells).
    rebalance: Option<RebalancePolicy>,
    /// Wall-clock stage metrics, when configured. A pure side-band:
    /// nothing read from it ever flows into routing, logging, draining
    /// or rebalancing (invariant #8).
    metrics: Option<Arc<ServeMetrics>>,
    /// Snapshot files completed so far.
    snapshots_written: AtomicU64,
    shutting_down: AtomicBool,
    /// Connection threads, joined at shutdown.
    conns: Mutex<Vec<JoinHandle<()>>>,
}

/// Locks a mutex, recovering from lock poisoning instead of panicking:
/// this file is a recovery path, and a panic here during shutdown or
/// replay would violate the "never a panic" contract. Recovery is sound
/// for every mutex in this module — each guards data whose writes are
/// individually complete before unlock (counters, Options, Vec slots),
/// and a thread that panicked mid-batch also poisons the service
/// logically via the worker-join path, so no torn state is trusted.
pub(crate) fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn poison(&self) -> Option<EngineError> {
        locked(&self.poisoned).clone()
    }

    /// Records the first failure; later ones are dropped (sticky poison).
    fn set_poison(&self, shard: Option<ShardId>, message: String) {
        let mut poison = locked(&self.poisoned);
        if poison.is_none() {
            *poison = Some(EngineError { shard, message });
        }
    }

    /// Routes, logs and enqueues one batch atomically. The whole batch is
    /// validated first, so a rejected batch stages nothing at all.
    fn ingest(&self, requests: &[Request]) -> Result<u64, String> {
        if let Some(e) = self.poison() {
            return Err(format!("service poisoned: {e}"));
        }
        // Validate + route outside the lock (routing is pure).
        let mut routed = Vec::with_capacity(requests.len());
        for &r in requests {
            routed.push(self.router.route(r)?);
        }
        let mut guard = locked(&self.ingress);
        let lock_stamp = self.metrics.as_ref().map(|_| clock::stamp());
        // Ring-wait sampling: one stamp marker rides ahead of the call's
        // first request; the receiving group records how long it sat in
        // the ring. Sent at most once per ingest so the sampling cost is
        // amortised across the batch.
        let mut stamp_pending = self.metrics.is_some();
        // Split borrows: the senders are read while the sink and the
        // counters are written, so destructure once instead of proving
        // presence again at each use.
        let Ingress { senders, sink, enqueued, accepted, rebalancer, migrations } = &mut *guard;
        let Some(senders) = senders.as_ref() else {
            return Err("service is shutting down".to_string());
        };
        // Log first, then enqueue, request by request, under one lock
        // hold: the log's per-cell projection must equal queue order.
        // With rebalancing, boundary decisions fire *between* the
        // interval-th request and the next, so every rebalance record
        // sits at an exact request position in the log — the replay
        // recomputes the boundary at the same position by construction.
        for (&raw, &(sid, local)) in requests.iter().zip(&routed) {
            if let Some(sink) = sink.as_mut() {
                if let Err(e) = sink.push(raw) {
                    let message = format!("trace log write failed: {e}");
                    self.set_poison(None, message.clone());
                    return Err(message);
                }
            }
            let group = match rebalancer.as_ref() {
                // Route at the current epoch. Under the ingress lock the
                // epoch cannot move between the read and the send, so a
                // request can never reach a ring its cell is about to
                // leave: migrations are decided and enqueued under this
                // same lock.
                Some(reb) => {
                    let epoch = reb.table().epoch();
                    match reb.table().route_at(sid, epoch) {
                        Ok(group) => group as usize,
                        Err(e) => {
                            let message = format!("routing cell {} failed: {e}", sid.index());
                            self.set_poison(Some(sid), message.clone());
                            return Err(message);
                        }
                    }
                }
                None => sid.index(),
            };
            if stamp_pending {
                // Best-effort: a dead ring is detected (and poisoned) by
                // the request send right below; the stamp itself must
                // never bump `enqueued`/`accepted` or fail ingest.
                stamp_pending = false;
                let _ = senders[group].send(Cmd::Stamp(clock::stamp()));
            }
            if senders[group].send(Cmd::Req(sid.0, local)).is_err() {
                // The record may already be in the log (and this batch's
                // prefix already enqueued): the log no longer matches what
                // ran, so the determinism invariant is gone — poison the
                // service rather than let shutdown() report a clean run.
                let message = format!("group {group} worker is gone; logged requests were dropped");
                self.set_poison(Some(sid), message.clone());
                return Err(message);
            }
            enqueued[group] += 1;
            *accepted += 1;
            if let Some(reb) = rebalancer.as_mut() {
                if *accepted == reb.next_boundary_at() {
                    if let Err(message) =
                        self.process_boundary(sink.as_mut(), senders, reb, migrations)
                    {
                        self.set_poison(None, message.clone());
                        return Err(message);
                    }
                }
            }
            if let Some(policy) = &self.snapshots {
                if accepted.is_multiple_of(policy.every.max(1)) {
                    if let Err(e) = self.register_cut(sink.as_mut(), senders) {
                        let message = format!("trace log sync for snapshot cut failed: {e}");
                        self.set_poison(None, message.clone());
                        return Err(message);
                    }
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.requests.add(requests.len() as u64);
            if let Some(stamp) = lock_stamp {
                m.lock_hold.record(stamp.elapsed_nanos());
            }
        }
        Ok(requests.len() as u64)
    }

    /// One rebalance boundary, under the ingress lock: sample every
    /// cell's cumulative load via a `Probe` marker, decide (and log)
    /// the migration plan, then enqueue the `MigrateOut`/`Install`
    /// marker pairs that execute it. See the module docs for the FIFO
    /// ordering argument that makes each step deadlock-free.
    fn process_boundary(
        &self,
        sink: Option<&mut TraceSink>,
        senders: &[ring::Sender<Cmd>],
        reb: &mut Rebalancer,
        migrations: &mut u64,
    ) -> Result<(), String> {
        let probe = Arc::new(Probe::new(reb.table().num_cells()));
        for sender in senders {
            if sender.send(Cmd::Probe(Arc::clone(&probe))).is_err() {
                return Err("a group worker exited mid-service; the boundary prefix \
                            cannot be sampled"
                    .to_string());
            }
        }
        // Blocking while holding the ingress lock is safe here: group
        // threads never take the ingress lock, so they always drain
        // their rings down to the probe.
        let loads = probe.wait_all();
        let owners_before: Vec<u32> = reb.table().owners().to_vec();
        let record = reb.on_boundary(&loads)?;
        if let Some(sink) = sink {
            sink.push_rebalance(&record)
                .map_err(|e| format!("trace log write of a rebalance record failed: {e}"))?;
        }
        // All MigrateOuts before all Installs (see module docs).
        let mut pending = Vec::with_capacity(record.moves.len());
        for &(cell, dst) in &record.moves {
            let handoff = Arc::new(Handoff::new());
            let Some(&src) = owners_before.get(cell as usize) else {
                return Err(format!("planned move of unknown cell {cell}"));
            };
            if senders[src as usize].send(Cmd::MigrateOut(cell, Arc::clone(&handoff))).is_err() {
                return Err(format!("group {src} exited with cell {cell} still to migrate"));
            }
            pending.push((cell, dst, handoff));
        }
        for (cell, dst, handoff) in pending {
            if senders[dst as usize].send(Cmd::Install(cell, handoff)).is_err() {
                return Err(format!("group {dst} exited with cell {cell} still to install"));
            }
            *migrations += 1;
        }
        Ok(())
    }

    /// Takes a consistent cut under the ingress lock: syncs the log so
    /// the bytes a snapshot will address are durable, prebuilds the OTCS
    /// header for the current log position, and floats one cut marker
    /// down every shard ring.
    fn register_cut(
        &self,
        sink: Option<&mut TraceSink>,
        senders: &[ring::Sender<Cmd>],
    ) -> io::Result<()> {
        let Some(sink) = sink else {
            return Ok(()); // snapshots without a log are refused at start
        };
        sink.sync()?;
        let log = sink.position();
        let shards = self.router.num_shards();
        let meta = SnapshotMeta::of(&self.engine_cfg, self.router.global_len(), shards as u32, log);
        let mut header = Vec::new();
        snapshot::write_header(&meta, &mut header);
        let cut = Arc::new(Cut {
            header,
            records: log.records,
            sections: Mutex::new(vec![None; shards]),
        });
        for sender in senders {
            if sender.send(Cmd::Cut(Arc::clone(&cut))).is_err() {
                // A worker is gone; this cut can never complete. The next
                // request push will observe the same and poison — the cut
                // itself is just abandoned.
                return Ok(());
            }
        }
        Ok(())
    }

    /// Blocks until every request accepted so far has been executed.
    fn wait_drained(&self) {
        let target: Vec<u64> = locked(&self.ingress).enqueued.clone();
        let mut progress = locked(&self.progress);
        while progress.iter().zip(&target).any(|(done, want)| done < want) {
            progress = self.progress_cv.wait(progress).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn stats_snapshot(&self) -> ServeStats {
        *locked(&self.stats)
    }
}

/// A running serving instance. Start it with [`Server::start`], connect
/// [`crate::Client`]s to [`Server::addr`], and finish with
/// [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    /// One thread per group, each returning the cells it hosts at exit.
    workers: Vec<JoinHandle<Vec<ShardWorker>>>,
}

impl Server {
    /// Takes an owned engine apart into persistent per-shard workers and
    /// starts serving it on 127.0.0.1.
    ///
    /// # Errors
    /// Binding errors, trace-log creation errors, and a poisoned or
    /// staged-but-invalid engine (via
    /// [`ShardedEngine::into_workers`]).
    pub fn start(engine: ShardedEngine<'static>, cfg: ServeConfig) -> io::Result<Server> {
        let engine_cfg = engine.config();
        let (router, shard_workers) =
            engine.into_workers().map_err(|e| io::Error::other(e.to_string()))?;

        let header = || TraceHeader {
            universe: router.global_len() as u32,
            shard_map: router.shard_map().to_vec(),
            seed: 0,
            generator: "otc-serve".to_string(),
        };
        // A rebalancing service stamps the trace rebalance-capable, so
        // its decision records may legally interleave with the requests.
        let flags = if cfg.rebalance.is_some() { TRACE_FLAG_REBALANCE } else { 0 };
        let sink = match &cfg.log {
            TraceLog::Off => None,
            TraceLog::Memory => Some(TraceSink::Memory(TraceWriter::with_flags(
                Cursor::new(Vec::new()),
                header(),
                flags,
            )?)),
            TraceLog::File(path) => {
                let file = BufWriter::new(File::create(path)?);
                Some(TraceSink::File(TraceWriter::with_flags(file, header(), flags)?, path.clone()))
            }
        };

        let shards = shard_workers.len();
        let rebalancer = rebalancer_for(&cfg.rebalance, shards)?;
        let groups = rebalancer.as_ref().map_or(shards, |r| r.table().num_groups() as usize);
        Self::start_inner(
            router,
            shard_workers,
            engine_cfg,
            sink,
            vec![0; groups],
            0,
            ServeStats::default(),
            rebalancer,
            0,
            &cfg,
        )
    }

    /// The common tail of [`Server::start`] and [`Server::resume`]:
    /// spin the rings, workers, listener and acceptor around already
    /// initialised ingress counters and an already positioned sink.
    #[allow(
        clippy::too_many_arguments,
        reason = "private seam between start and resume; the arguments are the resume state, \
                  and a one-use struct would just rename them"
    )]
    fn start_inner(
        router: ShardRouter,
        shard_workers: Vec<ShardWorker>,
        engine_cfg: EngineConfig,
        sink: Option<TraceSink>,
        enqueued: Vec<u64>,
        accepted: u64,
        stats: ServeStats,
        rebalancer: Option<Rebalancer>,
        migrations: u64,
        cfg: &ServeConfig,
    ) -> io::Result<Server> {
        if let Some(policy) = &cfg.snapshots {
            if sink.is_none() {
                return Err(io::Error::other(
                    "a snapshot cadence needs a trace log (snapshots address log positions); \
                     use TraceLog::Memory or TraceLog::File",
                ));
            }
            fs::create_dir_all(&policy.dir)?;
        }

        // Distribute the cells to their groups: the rebalancer's table
        // when rebalancing (resume hands in a table already advanced to
        // the recovery point), identity otherwise.
        let groups =
            rebalancer.as_ref().map_or(shard_workers.len(), |r| r.table().num_groups() as usize);
        if enqueued.len() != groups {
            return Err(io::Error::other("one enqueued counter per group (internal)"));
        }
        let mut grouped: Vec<BTreeMap<u32, ShardWorker>> =
            (0..groups).map(|_| BTreeMap::new()).collect();
        for worker in shard_workers {
            let cell = worker.shard();
            let group = match &rebalancer {
                // `owner_of` is total over the table's cells, and the cell
                // count was validated against the engine; `None` cannot
                // happen, and routing to group 0 would surface instantly
                // as a misrouted-cell poison rather than silent loss.
                Some(r) => r.table().owner_of(cell).map_or(0, |g| g as usize),
                None => cell.index(),
            };
            let Some(slot) = grouped.get_mut(group) else {
                return Err(io::Error::other(format!(
                    "cell {} routed to group {group} of {groups} (internal)",
                    cell.index()
                )));
            };
            slot.insert(cell.0, worker);
        }

        let mut senders = Vec::with_capacity(groups);
        let mut receivers = Vec::with_capacity(groups);
        for _ in 0..groups {
            let (tx, rx) = ring::channel(cfg.queue_capacity.max(1));
            senders.push(tx);
            receivers.push(rx);
        }

        let metrics = cfg.metrics.then(|| Arc::new(ServeMetrics::new(router.num_shards(), groups)));
        let shared = Arc::new(Shared {
            router,
            engine_cfg,
            ingress: Mutex::new(Ingress {
                senders: Some(senders),
                sink,
                enqueued: enqueued.clone(),
                accepted,
                rebalancer,
                migrations,
            }),
            // Everything already replayed counts as executed.
            progress: Mutex::new(enqueued),
            progress_cv: Condvar::new(),
            stats: Mutex::new(stats),
            poisoned: Mutex::new(None),
            snapshots: cfg.snapshots.clone(),
            rebalance: cfg.rebalance.clone(),
            metrics,
            snapshots_written: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });

        let batch = cfg.worker_batch.max(1);
        let workers: Vec<JoinHandle<Vec<ShardWorker>>> = grouped
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(group, (cells, rx))| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(group, cells, &rx, &shared, batch))
            })
            .collect();

        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let addr = listener.local_addr()?;
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };

        Ok(Server { addr, shared, acceptor: Some(acceptor), workers })
    }

    /// The bound loopback address clients connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of shards (cells) behind the service.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shared.router.num_shards()
    }

    /// Number of serving groups (= persistent worker threads). Equal to
    /// [`Server::num_shards`] unless the service rebalances.
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.workers.len()
    }

    /// A snapshot of the executed-so-far counters (what a client's
    /// `Stats` request returns).
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.shared.stats_snapshot()
    }

    /// A live scrape of the wall-clock metrics surface (`None` when the
    /// service runs without [`ServeConfig::metrics`]). Observe-only —
    /// scraping at any moment never perturbs results (invariant #8);
    /// what a client's `Metrics` request returns as canonical JSON.
    #[must_use]
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.shared.metrics.as_deref().map(ServeMetrics::snapshot)
    }

    /// Graceful shutdown: stop accepting, wait for connected clients to
    /// hang up, drain every queue, join the workers, finish the trace
    /// log, and return the per-shard reports, the aggregate, the
    /// telemetry timeline, and the logged trace.
    ///
    /// Call this after your clients disconnected — connections still open
    /// are waited on, not severed.
    ///
    /// # Errors
    /// The first protocol violation any shard observed (the service
    /// poison), or trace-log I/O failures.
    pub fn shutdown(mut self) -> Result<ServeOutcome, EngineError> {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *locked(&self.shared.conns));
        for h in conns {
            let _ = h.join();
        }
        // Closing ingress drops the senders; each group drains its ring
        // and exits on disconnect.
        let (sink, accepted, rebalance) = {
            let mut ingress = locked(&self.shared.ingress);
            ingress.senders = None;
            let rebalance = ingress.rebalancer.as_ref().map(|r| RebalanceSummary {
                boundaries: r.boundaries(),
                epoch: r.table().epoch(),
                owners: r.table().owners().to_vec(),
                migrations: ingress.migrations,
            });
            (ingress.sink.take(), ingress.accepted, rebalance)
        };
        let mut shard_workers = Vec::with_capacity(self.shared.router.num_shards());
        let mut worker_panicked = false;
        for h in self.workers.drain(..) {
            match h.join() {
                Ok(cells) => shard_workers.extend(cells),
                Err(_) => worker_panicked = true,
            }
        }
        if let Some(e) = self.shared.poison() {
            return Err(e);
        }
        if worker_panicked {
            // A panicking worker is a bug, but shutdown() must still
            // report it as a typed outcome, not propagate the panic.
            return Err(EngineError {
                shard: None,
                message: "a shard worker thread panicked".to_string(),
            });
        }
        // Cell order, whatever group each cell ended up on: the outputs
        // below are placement-invariant by construction.
        shard_workers.sort_by_key(|w| w.shard().0);
        let windows = shard_workers.iter().flat_map(ShardWorker::windows).collect();
        let timeline =
            timeline_from_windows(&self.shared.engine_cfg, shard_workers.len() as u32, windows);
        let per_shard: Vec<Report> = shard_workers
            .into_iter()
            .map(|w| w.into_report().map_err(|message| EngineError { shard: None, message }))
            .collect::<Result<_, _>>()?;
        let report = aggregate_reports(per_shard.clone());
        let (trace_bytes, trace_path) = match sink {
            Some(sink) => sink.finish().map_err(|e| EngineError {
                shard: None,
                message: format!("trace log finish failed: {e}"),
            })?,
            None => (None, None),
        };
        Ok(ServeOutcome {
            per_shard,
            report,
            timeline,
            requests_served: accepted,
            trace_bytes,
            trace_path,
            snapshots_written: self.shared.snapshots_written.load(Ordering::SeqCst),
            rebalance,
            metrics: self.shared.metrics.as_deref().map(ServeMetrics::snapshot),
        })
    }

    /// Crash the service deliberately: stop accepting, sever ingress,
    /// abandon all engine state, and leave the trace log **unfinished**
    /// — its on-disk record count stays `COUNT_UNKNOWN`, exactly as a
    /// process kill would leave it. Returns the log path when the
    /// service logged to a file, so the caller can hand it to
    /// [`Server::resume`].
    ///
    /// Like [`Server::shutdown`], connections still open are waited on,
    /// not severed — disconnect your clients first.
    ///
    /// # Errors
    /// I/O errors syncing the log's buffered tail to the sink.
    pub fn kill(mut self) -> io::Result<Option<PathBuf>> {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *locked(&self.shared.conns));
        for h in conns {
            let _ = h.join();
        }
        let sink = {
            let mut ingress = locked(&self.shared.ingress);
            ingress.senders = None;
            ingress.sink.take()
        };
        // Join the workers (they exit on ring disconnect) so no thread
        // outlives the "dead" service; their state is dropped unread.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        match sink {
            Some(TraceSink::File(mut w, path)) => {
                w.sync()?;
                // A kill is the last chance to read the metrics surface:
                // dump the final scrape next to the synced log (the
                // side-band analogue of the sync — observe-only, so a
                // resume neither needs nor reads it).
                if let Some(m) = &self.shared.metrics {
                    let mut dump = path.clone().into_os_string();
                    dump.push(".metrics.json");
                    fs::write(&dump, m.snapshot().to_json())?;
                }
                Ok(Some(path))
            }
            Some(TraceSink::Memory(mut w)) => {
                w.sync()?;
                Ok(None)
            }
            None => Ok(None),
        }
    }

    /// Restarts a killed service from its trace log and snapshot
    /// directory: scan the log's longest consistent prefix, restore the
    /// newest usable snapshot at or behind it (falling back to older
    /// snapshots, then to pure log replay), replay the tail into
    /// `engine`, truncate any torn bytes, and serve again — appending to
    /// the same log, bit-identical to a service that never crashed.
    ///
    /// `engine` must be freshly built over the same forest, policies and
    /// [`EngineConfig`] as the crashed service; `cfg.log` must be the
    /// [`TraceLog::File`] the crashed service logged to.
    ///
    /// # Errors
    /// A missing or header-corrupt log, a log whose shard map does not
    /// match `engine`'s routing, engine errors during replay, and I/O
    /// errors. Unusable *snapshots* are skipped, not errors.
    pub fn resume(
        mut engine: ShardedEngine<'static>,
        cfg: ServeConfig,
    ) -> io::Result<(Server, ResumeOutcome)> {
        let TraceLog::File(path) = cfg.log.clone() else {
            return Err(io::Error::other(
                "resume needs cfg.log = TraceLog::File(<the crashed service's log>)",
            ));
        };

        // 1. The log's longest consistent prefix: every record that
        //    decodes, stays in the universe and routes. A torn tail (or
        //    a count-patched log from a graceful shutdown that was then
        //    appended to) ends the prefix without failing resume.
        let mut scan = TraceReader::new(File::open(&path)?)?;
        let header = scan.header().clone();
        let flags = scan.flags();
        if scan.rebalance_capable() != cfg.rebalance.is_some() {
            return Err(io::Error::other(if cfg.rebalance.is_some() {
                "cfg.rebalance is set but the log was not written by a rebalancing service"
            } else {
                "the log carries rebalance records; resume with the same \
                 ServeConfig::rebalance the crashed service used"
            }));
        }
        let num_shards = engine.num_shards();
        let forest = engine.forest().cloned();
        // Requests are counted per *cell* (cells route statically through
        // the forest); the per-group counters are derived at the end from
        // the recovered routing table. Complete rebalance records are
        // collected with their end offsets, so the ones a snapshot's log
        // prefix covers can seed the rebalancer without recomputation.
        let mut cell_counts = vec![0u64; num_shards];
        let mut rebalance_records: Vec<(RebalanceRecord, u64)> = Vec::new();
        loop {
            match scan.next_event() {
                Ok(Some(TraceEvent::Request(req))) => match &forest {
                    Some(f) if req.node.index() < f.global_len() => {
                        cell_counts[f.route(req.node).0.index()] += 1;
                    }
                    Some(_) => break,
                    None => cell_counts[0] += 1,
                },
                Ok(Some(TraceEvent::Rebalance(record))) => {
                    rebalance_records.push((record, scan.byte_pos()));
                }
                Ok(None) | Err(_) => break,
            }
        }
        let (good_pos, good_records) = (scan.byte_pos(), scan.records_read());
        let log_len = fs::metadata(&path)?.len();
        let truncated_bytes = log_len.saturating_sub(good_pos);
        drop(scan);

        // 2. Cut the torn tail off *before* replay, so the replay reader
        //    sees a clean EOF at the end of the good prefix.
        if truncated_bytes > 0 {
            OpenOptions::new().write(true).open(&path)?.set_len(good_pos)?;
        }

        // 3. Newest usable snapshot at or behind the surviving log.
        let mut candidates: Vec<(u64, PathBuf)> = Vec::new();
        if let Some(policy) = &cfg.snapshots {
            if let Ok(entries) = fs::read_dir(&policy.dir) {
                for entry in entries.flatten() {
                    let name = entry.file_name();
                    let name = name.to_string_lossy();
                    if let Some(records) = name
                        .strip_prefix("snap-")
                        .and_then(|r| r.strip_suffix(".otcs"))
                        .and_then(|r| r.parse::<u64>().ok())
                    {
                        candidates.push((records, entry.path()));
                    }
                }
            }
        }
        candidates.sort_by_key(|c| std::cmp::Reverse(c.0));

        let mut snapshots_skipped = 0;
        let mut chosen: Option<EngineSnapshot> = None;
        for (_, snap_path) in &candidates {
            let usable = fs::read(snap_path)
                .ok()
                .and_then(|bytes| EngineSnapshot::parse(&bytes).ok())
                .filter(|snap| {
                    snap.meta.log.offset <= good_pos && snap.meta.log.records <= good_records
                });
            match usable {
                Some(snap) => {
                    chosen = Some(snap);
                    break;
                }
                None => snapshots_skipped += 1,
            }
        }

        // 4. Restore + replay the tail (or replay the whole log). With
        //    rebalancing, the rebalancer is seeded by folding the records
        //    the snapshot's log prefix proves (ingest appends a boundary's
        //    record *before* any cut at the same position, so `end <=
        //    offset` is exact), and every boundary in the replayed tail is
        //    recomputed — and checked against its surviving record — by
        //    `replay_trace_rebalancing`.
        let mut rebalancer = rebalancer_for(&cfg.rebalance, num_shards)
            .map_err(|e| io::Error::other(e.to_string()))?;
        let mut reader = TraceReader::new(File::open(&path)?)?;
        let mut chunk = Vec::new();
        let mut migrations = 0u64;
        let (snapshot_records, replayed) = match &chosen {
            Some(snap) => match engine.restore_snapshot(snap) {
                Ok(()) => {
                    if let Some(reb) = rebalancer.as_mut() {
                        for (record, end) in &rebalance_records {
                            if *end <= snap.meta.log.offset {
                                reb.fold_record(record).map_err(|e| {
                                    io::Error::other(format!(
                                        "rebalance record in the durable log prefix is \
                                         inconsistent: {e}"
                                    ))
                                })?;
                                migrations += record.moves.len() as u64;
                            }
                        }
                    }
                    reader.seek_to(snap.meta.log.offset, snap.meta.log.records)?;
                    let (replayed, moves) = replay_tail_into(
                        &mut engine,
                        &mut reader,
                        rebalancer.as_mut(),
                        &mut chunk,
                    )?;
                    migrations += moves;
                    (Some(snap.meta.log.records), replayed)
                }
                // A checksummed snapshot the engine still refuses means a
                // genuinely incompatible engine (wrong forest, config or
                // policy) — a caller bug, not crash damage. The refusal
                // left `engine` untouched (and the rebalancer has not been
                // seeded yet): fall back to pure replay from the start.
                Err(_) => {
                    snapshots_skipped += 1;
                    let (replayed, moves) = replay_tail_into(
                        &mut engine,
                        &mut reader,
                        rebalancer.as_mut(),
                        &mut chunk,
                    )?;
                    migrations += moves;
                    (None, replayed)
                }
            },
            None => {
                let (replayed, moves) =
                    replay_tail_into(&mut engine, &mut reader, rebalancer.as_mut(), &mut chunk)?;
                migrations += moves;
                (None, replayed)
            }
        };
        drop(reader);

        // 5. Reopen the log for appending where replay stopped.
        let engine_cfg = engine.config();
        let (router, shard_workers) =
            engine.into_workers().map_err(|e| io::Error::other(e.to_string()))?;
        if router.global_len() as u32 != header.universe
            || router.shard_map() != header.shard_map.as_slice()
        {
            return Err(io::Error::other(
                "the engine's routing does not match the trace log's shard map; \
                 resume with the same forest the crashed service used",
            ));
        }
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let writer =
            TraceWriter::resume_with_flags(BufWriter::new(file), header, 0, good_records, flags)?;
        let sink = Some(TraceSink::File(writer, path));

        let stats = ServeStats {
            rounds: shard_workers.iter().map(ShardWorker::rounds).sum(),
            paid_rounds: shard_workers.iter().map(ShardWorker::paid_rounds).sum(),
            service_cost: shard_workers.iter().map(|w| w.cost().service).sum(),
            reorg_cost: shard_workers.iter().map(|w| w.cost().reorg).sum(),
        };

        // The per-group counters the recovered service starts from: each
        // cell's replayed requests count toward the group that owns the
        // cell *now* (the recovered table), matching the distribution
        // start_inner is about to perform.
        let enqueued = match &rebalancer {
            Some(reb) => {
                let groups = reb.table().num_groups() as usize;
                let mut per_group = vec![0u64; groups];
                for (cell, &count) in cell_counts.iter().enumerate() {
                    let group =
                        reb.table().owner_of(ShardId(cell as u32)).map_or(0, |g| g as usize);
                    if let Some(slot) = per_group.get_mut(group) {
                        *slot += count;
                    }
                }
                per_group
            }
            None => cell_counts,
        };

        let server = Self::start_inner(
            router,
            shard_workers,
            engine_cfg,
            sink,
            enqueued,
            good_records,
            stats,
            rebalancer,
            migrations,
            &cfg,
        )?;
        Ok((
            server,
            ResumeOutcome {
                snapshot_records,
                replayed,
                requests_recovered: good_records,
                truncated_bytes,
                snapshots_skipped,
            },
        ))
    }
}

/// Builds the rebalancer a fresh service starts from: round-robin
/// initial table over the engine's cells, epoch 0, no boundaries.
fn rebalancer_for(
    policy: &Option<RebalancePolicy>,
    cells: usize,
) -> io::Result<Option<Rebalancer>> {
    match policy {
        Some(policy) => {
            let table = policy
                .initial_table(cells)
                .map_err(|e| io::Error::other(format!("invalid rebalance policy: {e}")))?;
            Ok(Some(Rebalancer::new(policy.config, table)))
        }
        None => Ok(None),
    }
}

/// Replays the rest of `reader` into `engine`: through
/// [`otc_sim::replay_trace_rebalancing`] (recomputing and verifying the
/// rebalance schedule) when the service rebalances, through the plain
/// engine path otherwise. Returns `(requests replayed, cells migrated)`
/// so resume can seed the migration counter exactly.
fn replay_tail_into(
    engine: &mut ShardedEngine<'static>,
    reader: &mut TraceReader<File>,
    rebalancer: Option<&mut Rebalancer>,
    chunk: &mut Vec<Request>,
) -> io::Result<(u64, u64)> {
    match rebalancer {
        Some(reb) => {
            let out = otc_sim::replay_trace_rebalancing(engine, reader, reb, chunk)
                .map_err(|e| io::Error::other(e.to_string()))?;
            let moves = out.schedule.iter().map(|r| r.moves.len() as u64).sum();
            Ok((out.replayed, moves))
        }
        None => {
            let stats =
                engine.replay_tail(reader, chunk).map_err(|e| io::Error::other(e.to_string()))?;
            Ok((stats.replayed, 0))
        }
    }
}

/// Per-run stat deltas a group accumulates locally and publishes once
/// per wakeup. Captured around each *cell's* run — summing a whole
/// group's counters before and after a wakeup would go backwards the
/// moment a cell migrates out mid-batch.
#[derive(Default)]
struct StatsDelta {
    rounds: u64,
    paid_rounds: u64,
    service_cost: u64,
    reorg_cost: u64,
}

/// Per-group worker thread: drain the ring in FIFO batches, drive the
/// hosted [`ShardWorker`] cells through the request runs between
/// markers, publish progress and stats; exit (returning the cells it
/// ended up hosting) when ingress closes the channel.
fn worker_loop(
    group: usize,
    mut cells: BTreeMap<u32, ShardWorker>,
    rx: &ring::Receiver<Cmd>,
    shared: &Shared,
    batch: usize,
) -> Vec<ShardWorker> {
    let mut buf: Vec<Cmd> = Vec::with_capacity(batch);
    let mut scratch: Vec<Request> = Vec::with_capacity(batch);
    loop {
        buf.clear();
        if rx.recv_batch(&mut buf, batch).is_err() {
            return cells.into_values().collect(); // disconnected and drained
        }
        let mut executed = 0u64;
        let mut delta = StatsDelta::default();
        // Consecutive requests for the same cell run as one batch; any
        // marker (and any cell switch) flushes the buffered run first, so
        // every marker acts after exactly the prefix FIFO put before it.
        let mut run_cell: Option<u32> = None;
        scratch.clear();
        for cmd in buf.drain(..) {
            match cmd {
                Cmd::Req(cell, r) => {
                    if run_cell != Some(cell) {
                        executed +=
                            run_buffered(&mut cells, run_cell, &mut scratch, shared, &mut delta);
                        run_cell = Some(cell);
                    }
                    scratch.push(r);
                }
                // A stamp is *not* a marker: it records and vanishes
                // without flushing the buffered run, so batching — and
                // therefore execution — is identical with metrics off.
                Cmd::Stamp(stamp) => {
                    if let Some(m) = &shared.metrics {
                        m.record_ring_wait(group, stamp.elapsed_nanos());
                    }
                }
                marker => {
                    executed +=
                        run_buffered(&mut cells, run_cell, &mut scratch, shared, &mut delta);
                    run_cell = None;
                    match marker {
                        Cmd::Req(..) | Cmd::Stamp(..) => {} // unreachable: handled above
                        Cmd::Cut(cut) => emit_sections(&cells, &cut, shared),
                        Cmd::Probe(probe) => {
                            probe.fill(cells.iter().map(|(&c, w)| (c as usize, w.cell_load())));
                        }
                        Cmd::MigrateOut(cell, handoff) => {
                            let payload = match cells.remove(&cell) {
                                Some(worker) => detach_cell(&worker),
                                None => Err("the group does not host the cell".to_string()),
                            };
                            if let Err(e) = &payload {
                                shared.set_poison(
                                    Some(ShardId(cell)),
                                    format!("cell {cell} migration failed at the source: {e}"),
                                );
                            }
                            // Always offer — even the failure — so the
                            // destination never blocks forever.
                            handoff.offer(payload);
                        }
                        Cmd::Install(cell, handoff) => {
                            // An Err take means the source already
                            // poisoned with the root cause; nothing to
                            // install here.
                            if let Ok(payload) = handoff.take() {
                                let built = match shared.rebalance.as_ref() {
                                    Some(policy) => install_cell(
                                        &payload,
                                        ShardId(cell),
                                        policy.factory.as_ref(),
                                        shared.engine_cfg,
                                    ),
                                    None => Err("migration without a rebalance policy".to_string()),
                                };
                                match built {
                                    Ok(worker) => {
                                        cells.insert(cell, worker);
                                    }
                                    Err(e) => shared.set_poison(
                                        Some(ShardId(cell)),
                                        format!("cell {cell} install failed: {e}"),
                                    ),
                                }
                            }
                        }
                    }
                }
            }
        }
        executed += run_buffered(&mut cells, run_cell, &mut scratch, shared, &mut delta);
        // Progress counts *consumed* requests even past a violation, so
        // drain barriers and backpressure keep moving while the error
        // propagates.
        {
            let mut progress = locked(&shared.progress);
            if let Some(slot) = progress.get_mut(group) {
                *slot += executed;
            }
            shared.progress_cv.notify_all();
        }
        {
            let mut stats = locked(&shared.stats);
            stats.rounds += delta.rounds;
            stats.paid_rounds += delta.paid_rounds;
            stats.service_cost += delta.service_cost;
            stats.reorg_cost += delta.reorg_cost;
        }
    }
}

/// Runs (and clears) one buffered run of requests on the cell that
/// buffered them, poisoning the service on the first violation and
/// accumulating the cell's stat deltas. Returns how many requests were
/// consumed (consumed ≠ executed only past a violation or a protocol
/// bug, and both poison).
fn run_buffered(
    cells: &mut BTreeMap<u32, ShardWorker>,
    cell: Option<u32>,
    scratch: &mut Vec<Request>,
    shared: &Shared,
    delta: &mut StatsDelta,
) -> u64 {
    let n = scratch.len() as u64;
    if n == 0 {
        return 0;
    }
    let Some(cell) = cell else {
        scratch.clear();
        return n; // unreachable: requests always tag their cell
    };
    let Some(worker) = cells.get_mut(&cell) else {
        // The routing table said this group owns the cell but it does
        // not: a migration protocol bug. Poison loudly; still count the
        // requests as consumed so drain barriers keep moving.
        shared.set_poison(
            Some(ShardId(cell)),
            format!("request routed to a group that does not host cell {cell}"),
        );
        scratch.clear();
        return n;
    };
    if worker.error().is_none() {
        let before_cost = worker.cost();
        let before = (worker.rounds(), worker.paid_rounds());
        // The hooked path runs the *same* drain — the hooks seam is
        // one-way (timings out, nothing in), so both arms are
        // bit-identical in effect (invariant #8).
        let run = match shared.metrics.as_deref() {
            Some(m) => {
                let mut hooks = DrainHooks::new(m);
                worker.run_batch_hooked(scratch, &mut hooks)
            }
            None => worker.run_batch(scratch),
        };
        if let Err(message) = run {
            shared.set_poison(Some(worker.shard()), message);
        }
        let after_cost = worker.cost();
        delta.rounds += worker.rounds() - before.0;
        delta.paid_rounds += worker.paid_rounds() - before.1;
        delta.service_cost += after_cost.service - before_cost.service;
        delta.reorg_cost += after_cost.reorg - before_cost.reorg;
    }
    scratch.clear();
    n
}

/// Serializes every cell this group hosts into `cut`; the group that
/// delivers the last missing section assembles the snapshot and writes
/// it. A poisoned cell or a serialization failure silently aborts the
/// cut — snapshots are best-effort, the log is the source of truth.
/// Migrations keep cuts exactly-once per cell: a cut marker enqueued
/// after a boundary's `MigrateOut`/`Install` markers reaches the source
/// after the cell left and the destination after it arrived.
fn emit_sections(cells: &BTreeMap<u32, ShardWorker>, cut: &Cut, shared: &Shared) {
    let mut mine = Vec::with_capacity(cells.len());
    for (&cell, worker) in cells {
        if worker.error().is_some() {
            return;
        }
        let mut bytes = Vec::new();
        if worker.snapshot_section(&mut bytes).is_err() {
            return;
        }
        mine.push((cell as usize, bytes));
    }
    let mut sections = locked(&cut.sections);
    for (cell, bytes) in mine {
        if let Some(slot) = sections.get_mut(cell) {
            *slot = Some(bytes);
        }
    }
    if sections.iter().any(Option::is_none) {
        return;
    }
    let mut out = cut.header.clone();
    for section in sections.iter().flatten() {
        out.extend_from_slice(section);
    }
    drop(sections);
    snapshot::finish_snapshot(&mut out);
    // Cuts are only registered when a snapshot policy exists; if that
    // ever changes, dropping the image keeps snapshots best-effort.
    let Some(policy) = shared.snapshots.as_ref() else { return };
    if write_snapshot_file(&policy.dir, cut.records, &out).is_ok() {
        shared.snapshots_written.fetch_add(1, Ordering::SeqCst);
    }
}

/// Atomically publishes one snapshot image: write to a temp name, then
/// rename into place. Readers either see the complete file or nothing.
fn write_snapshot_file(dir: &Path, records: u64, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join(format!("snap-{records:020}.otcs.tmp"));
    let dest = dir.join(format!("snap-{records:020}.otcs"));
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, &dest)
}

/// Acceptor thread: one spawned connection thread per client until
/// shutdown.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else { break };
        if shared.shutting_down.load(Ordering::SeqCst) {
            break; // the wake-up connection (or a very late client)
        }
        let accept_stamp = shared.metrics.as_ref().map(|_| clock::stamp());
        let shared_conn = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            let _ = connection_loop(stream, &shared_conn, accept_stamp);
        });
        let mut conns = locked(&shared.conns);
        // Reap finished connections as new ones arrive, so a long-lived
        // server handling many short-lived clients doesn't accumulate
        // join handles without bound.
        let mut i = 0;
        while i < conns.len() {
            if conns[i].is_finished() {
                let _ = conns.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        conns.push(handle);
    }
}

/// One client connection: handshake, then request frames until Bye/EOF.
/// Any protocol error is answered with one `Error` frame before closing.
/// `accept_stamp` is the acceptor's wall-clock mark (metrics only):
/// accept latency is measured through to the flushed handshake reply.
fn connection_loop(
    stream: TcpStream,
    shared: &Shared,
    accept_stamp: Option<Stamp>,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut rbuf = Vec::new();
    let mut wbuf = Vec::new();

    let fail = |writer: &mut BufWriter<TcpStream>, wbuf: &mut Vec<u8>, message: String| {
        let _ = wire::write_message(writer, &Message::Error { message }, wbuf);
        let _ = writer.flush();
    };

    // Handshake: the first frame must be a version-matching Hello.
    match wire::read_message(&mut reader, &mut rbuf) {
        Ok(Some(Message::Hello { version })) if version == WIRE_VERSION => {}
        Ok(Some(Message::Hello { version })) => {
            fail(
                &mut writer,
                &mut wbuf,
                format!("unsupported wire version {version} (server speaks {WIRE_VERSION})"),
            );
            return Ok(());
        }
        Ok(Some(other)) => {
            fail(
                &mut writer,
                &mut wbuf,
                format!("expected Hello, got opcode {:#04x}", other.opcode()),
            );
            return Ok(());
        }
        Ok(None) => return Ok(()),
        Err(e) => {
            fail(&mut writer, &mut wbuf, format!("bad handshake frame: {e}"));
            return Ok(());
        }
    }
    wire::write_message(
        &mut writer,
        &Message::HelloAck {
            version: WIRE_VERSION,
            universe: shared.router.global_len() as u32,
            shards: shared.router.num_shards() as u32,
        },
        &mut wbuf,
    )?;
    writer.flush()?;
    if let Some(m) = &shared.metrics {
        if let Some(stamp) = accept_stamp {
            m.accept.record(stamp.elapsed_nanos());
        }
        m.connections.inc();
    }

    loop {
        let msg = match wire::read_message(&mut reader, &mut rbuf) {
            Ok(Some(m)) => m,
            Ok(None) => return Ok(()), // client hung up between frames
            Err(e) => {
                fail(&mut writer, &mut wbuf, format!("bad frame: {e}"));
                return Ok(());
            }
        };
        match msg {
            Message::Submit { requests } => match shared.ingest(&requests) {
                Ok(accepted) => {
                    wire::write_message(&mut writer, &Message::Ack { accepted }, &mut wbuf)?;
                }
                Err(message) => {
                    fail(&mut writer, &mut wbuf, message);
                    return Ok(());
                }
            },
            Message::Stats => {
                wire::write_message(
                    &mut writer,
                    &Message::StatsReply(shared.stats_snapshot()),
                    &mut wbuf,
                )?;
            }
            Message::Drain => {
                shared.wait_drained();
                wire::write_message(&mut writer, &Message::Ack { accepted: 0 }, &mut wbuf)?;
            }
            Message::Metrics => {
                // A metrics-off server answers with the valid empty
                // exposition rather than an error: scraping is always
                // safe to attempt (invariant #8 makes it free).
                let json = match &shared.metrics {
                    Some(m) => {
                        m.scrapes.inc();
                        m.snapshot().to_json()
                    }
                    None => MetricsSnapshot::default().to_json(),
                };
                wire::write_message(&mut writer, &Message::MetricsReply { json }, &mut wbuf)?;
            }
            Message::Bye => {
                wire::write_message(&mut writer, &Message::Ack { accepted: 0 }, &mut wbuf)?;
                writer.flush()?;
                return Ok(());
            }
            other => {
                fail(
                    &mut writer,
                    &mut wbuf,
                    format!("unexpected opcode {:#04x} from a client", other.opcode()),
                );
                return Ok(());
            }
        }
        // Flush every reply before blocking on the next read. Gating this
        // on an empty read buffer looks like a batching win but is a
        // liveness hazard: a partial next frame in the buffer would leave
        // the reply unflushed while `read_message` blocks on the socket —
        // deadlocking any client that waits for the ack before sending
        // the rest. One small write per reply (with TCP_NODELAY) is the
        // correct trade.
        match &shared.metrics {
            Some(m) => {
                let stamp = clock::stamp();
                writer.flush()?;
                m.flush.record(stamp.elapsed_nanos());
            }
            None => writer.flush()?,
        }
    }
}
