//! The loopback TCP serving front-end over detached engine shards.
//!
//! Thread architecture (one arrow = one `otc_util::ring` channel or TCP
//! stream; see `DESIGN.md` "The serving runtime" for the full diagram):
//!
//! ```text
//! client A ──TCP──▶ conn thread A ─┐            ┌─▶ worker 0 (ShardWorker)
//! client B ──TCP──▶ conn thread B ─┤─ ingress ──┤─▶ worker 1 (ShardWorker)
//! client C ──TCP──▶ conn thread C ─┘   lock     └─▶ worker S (ShardWorker)
//!                                      │
//!                                      └─▶ OTCT trace log (optional)
//! ```
//!
//! * One **acceptor** thread hands connections to per-connection threads.
//! * Each **connection** thread speaks the wire protocol and pushes
//!   accepted batches through the single **ingress** critical section.
//! * One persistent **worker** thread per shard owns a
//!   [`otc_sim::worker::ShardWorker`] for the lifetime of the service,
//!   fed by a bounded [`otc_util::ring::channel`] — a full queue blocks
//!   ingress (backpressure) instead of buffering unboundedly.
//!
//! **The determinism seam.** The ingress lock makes "append to the OTCT
//! log" and "enqueue to the shard rings" one atomic step, so the
//! per-shard projection of the logged global order is exactly the FIFO
//! order each worker consumes. Per-shard cost is a function of per-shard
//! request order only (shards are independent), therefore the live
//! service's per-shard [`Report`]s — and their aggregate — are
//! **bit-identical** to `ShardedEngine::replay_trace` of the logged
//! trace, at any shard count, client count and interleaving. Workers run
//! concurrently with ingress (and each other) the whole time; only the
//! route-and-enqueue step is serialised. `crates/serve/tests/loopback.rs`
//! pins the identity end to end.

use std::io::{self, BufReader, BufWriter, Cursor, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use otc_core::request::Request;
use otc_sim::engine::{EngineConfig, EngineError, ShardedEngine};
use otc_sim::worker::{timeline_from_windows, ShardRouter, ShardWorker};
use otc_sim::{aggregate_reports, Report, Timeline};
use otc_util::ring;
use otc_workloads::trace::{TraceHeader, TraceWriter};

use crate::wire::{self, Message, ServeStats, WIRE_VERSION};

/// Where (and whether) the server logs the accepted request stream as an
/// OTCT binary trace.
#[derive(Debug, Clone, Default)]
pub enum TraceLog {
    /// No logging (maximum throughput; the replay identity is then
    /// unobservable for this run).
    Off,
    /// Log into memory; [`ServeOutcome::trace_bytes`] returns the bytes.
    #[default]
    Memory,
    /// Log to a file at this path.
    File(PathBuf),
}

/// Serving options, separate from the engine semantics ([`EngineConfig`]
/// travels inside the engine handed to [`Server::start`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP port on 127.0.0.1 to bind (0 = ephemeral, read it back with
    /// [`Server::addr`]).
    pub port: u16,
    /// Capacity of each per-shard ring; a full ring blocks ingress
    /// (backpressure).
    pub queue_capacity: usize,
    /// Most requests a worker drains per wakeup (bounds per-wakeup
    /// latency under burst).
    pub worker_batch: usize,
    /// Request-stream logging.
    pub log: TraceLog,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { port: 0, queue_capacity: 4096, worker_batch: 512, log: TraceLog::Memory }
    }
}

/// Everything a finished service hands back.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Per-shard verified reports, in shard order.
    pub per_shard: Vec<Report>,
    /// The aggregate report (see [`otc_sim::aggregate_reports`]).
    pub report: Report,
    /// Windowed telemetry (non-empty when the engine ran with
    /// `telemetry(true)`).
    pub timeline: Timeline,
    /// Requests accepted over the service's lifetime.
    pub requests_served: u64,
    /// The OTCT trace logged with [`TraceLog::Memory`].
    pub trace_bytes: Option<Vec<u8>>,
    /// The OTCT trace file written with [`TraceLog::File`].
    pub trace_path: Option<PathBuf>,
}

/// The trace sink behind the ingress lock.
enum TraceSink {
    Memory(TraceWriter<Cursor<Vec<u8>>>),
    File(TraceWriter<BufWriter<std::fs::File>>, PathBuf),
}

impl TraceSink {
    fn push(&mut self, req: Request) -> io::Result<()> {
        match self {
            TraceSink::Memory(w) => w.push(req),
            TraceSink::File(w, _) => w.push(req),
        }
    }

    fn finish(self) -> io::Result<(Option<Vec<u8>>, Option<PathBuf>)> {
        match self {
            TraceSink::Memory(w) => Ok((Some(w.finish()?.into_inner()), None)),
            TraceSink::File(w, path) => {
                w.finish()?.flush()?;
                Ok((None, Some(path)))
            }
        }
    }
}

/// Ingress state: the single serialization point of the service (see the
/// module docs for why log + enqueue must be one atomic step).
struct Ingress {
    senders: Option<Vec<ring::Sender<Request>>>,
    sink: Option<TraceSink>,
    /// Requests enqueued per shard over the service lifetime.
    enqueued: Vec<u64>,
    /// Requests accepted in total.
    accepted: u64,
}

/// State shared by every thread of one server.
struct Shared {
    router: ShardRouter,
    engine_cfg: EngineConfig,
    ingress: Mutex<Ingress>,
    /// Requests *executed* per shard; workers bump it per batch and
    /// notify, drain barriers wait on it.
    progress: Mutex<Vec<u64>>,
    progress_cv: Condvar,
    /// Cumulative executed-cost counters for cheap Stats replies.
    stats: Mutex<ServeStats>,
    /// First protocol violation anywhere in the service (sticky poison).
    poisoned: Mutex<Option<EngineError>>,
    shutting_down: AtomicBool,
    /// Connection threads, joined at shutdown.
    conns: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn poison(&self) -> Option<EngineError> {
        self.poisoned.lock().expect("poison lock").clone()
    }

    /// Routes, logs and enqueues one batch atomically. The whole batch is
    /// validated first, so a rejected batch stages nothing at all.
    fn ingest(&self, requests: &[Request]) -> Result<u64, String> {
        if let Some(e) = self.poison() {
            return Err(format!("service poisoned: {e}"));
        }
        // Validate + route outside the lock (routing is pure).
        let mut routed = Vec::with_capacity(requests.len());
        for &r in requests {
            routed.push(self.router.route(r)?);
        }
        let mut ingress = self.ingress.lock().expect("ingress lock");
        if ingress.senders.is_none() {
            return Err("service is shutting down".to_string());
        }
        // Log first, then enqueue, request by request, under one lock
        // hold: the log's per-shard projection must equal queue order.
        for (&raw, &(sid, local)) in requests.iter().zip(&routed) {
            if let Some(sink) = ingress.sink.as_mut() {
                if let Err(e) = sink.push(raw) {
                    let message = format!("trace log write failed: {e}");
                    *self.poisoned.lock().expect("poison lock") =
                        Some(EngineError { shard: None, message: message.clone() });
                    return Err(message);
                }
            }
            let sender = &ingress.senders.as_ref().expect("checked above")[sid.index()];
            if sender.send(local).is_err() {
                // The record may already be in the log (and this batch's
                // prefix already enqueued): the log no longer matches what
                // ran, so the determinism invariant is gone — poison the
                // service rather than let shutdown() report a clean run.
                let message =
                    format!("shard {} worker is gone; logged requests were dropped", sid.index());
                let mut poison = self.poisoned.lock().expect("poison lock");
                if poison.is_none() {
                    *poison = Some(EngineError { shard: Some(sid), message: message.clone() });
                }
                return Err(message);
            }
            ingress.enqueued[sid.index()] += 1;
        }
        ingress.accepted += requests.len() as u64;
        Ok(requests.len() as u64)
    }

    /// Blocks until every request accepted so far has been executed.
    fn wait_drained(&self) {
        let target: Vec<u64> = self.ingress.lock().expect("ingress lock").enqueued.clone();
        let mut progress = self.progress.lock().expect("progress lock");
        while progress.iter().zip(&target).any(|(done, want)| done < want) {
            progress = self.progress_cv.wait(progress).expect("progress lock");
        }
    }

    fn stats_snapshot(&self) -> ServeStats {
        *self.stats.lock().expect("stats lock")
    }
}

/// A running serving instance. Start it with [`Server::start`], connect
/// [`crate::Client`]s to [`Server::addr`], and finish with
/// [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<ShardWorker>>,
}

impl Server {
    /// Takes an owned engine apart into persistent per-shard workers and
    /// starts serving it on 127.0.0.1.
    ///
    /// # Errors
    /// Binding errors, trace-log creation errors, and a poisoned or
    /// staged-but-invalid engine (via
    /// [`ShardedEngine::into_workers`]).
    pub fn start(engine: ShardedEngine<'static>, cfg: ServeConfig) -> io::Result<Server> {
        let engine_cfg = engine.config();
        let (router, shard_workers) =
            engine.into_workers().map_err(|e| io::Error::other(e.to_string()))?;
        let shards = shard_workers.len();

        let sink = match &cfg.log {
            TraceLog::Off => None,
            TraceLog::Memory | TraceLog::File(_) => {
                let header = TraceHeader {
                    universe: router.global_len() as u32,
                    shard_map: router.shard_map().to_vec(),
                    seed: 0,
                    generator: "otc-serve".to_string(),
                };
                Some(match &cfg.log {
                    TraceLog::Memory => {
                        TraceSink::Memory(TraceWriter::new(Cursor::new(Vec::new()), header)?)
                    }
                    TraceLog::File(path) => {
                        let file = BufWriter::new(std::fs::File::create(path)?);
                        TraceSink::File(TraceWriter::new(file, header)?, path.clone())
                    }
                    TraceLog::Off => unreachable!(),
                })
            }
        };

        let mut senders = Vec::with_capacity(shards);
        let mut receivers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = ring::channel(cfg.queue_capacity.max(1));
            senders.push(tx);
            receivers.push(rx);
        }

        let shared = Arc::new(Shared {
            router,
            engine_cfg,
            ingress: Mutex::new(Ingress {
                senders: Some(senders),
                sink,
                enqueued: vec![0; shards],
                accepted: 0,
            }),
            progress: Mutex::new(vec![0; shards]),
            progress_cv: Condvar::new(),
            stats: Mutex::new(ServeStats::default()),
            poisoned: Mutex::new(None),
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });

        let batch = cfg.worker_batch.max(1);
        let workers: Vec<JoinHandle<ShardWorker>> = shard_workers
            .into_iter()
            .zip(receivers)
            .map(|(worker, rx)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(worker, &rx, &shared, batch))
            })
            .collect();

        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let addr = listener.local_addr()?;
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };

        Ok(Server { addr, shared, acceptor: Some(acceptor), workers })
    }

    /// The bound loopback address clients connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of shards (= persistent worker threads) behind the service.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// A snapshot of the executed-so-far counters (what a client's
    /// `Stats` request returns).
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.shared.stats_snapshot()
    }

    /// Graceful shutdown: stop accepting, wait for connected clients to
    /// hang up, drain every queue, join the workers, finish the trace
    /// log, and return the per-shard reports, the aggregate, the
    /// telemetry timeline, and the logged trace.
    ///
    /// Call this after your clients disconnected — connections still open
    /// are waited on, not severed.
    ///
    /// # Errors
    /// The first protocol violation any shard observed (the service
    /// poison), or trace-log I/O failures.
    pub fn shutdown(mut self) -> Result<ServeOutcome, EngineError> {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *self.shared.conns.lock().expect("conns lock"));
        for h in conns {
            let _ = h.join();
        }
        // Closing ingress drops the senders; each worker drains its ring
        // and exits on disconnect.
        let (sink, accepted) = {
            let mut ingress = self.shared.ingress.lock().expect("ingress lock");
            ingress.senders = None;
            (ingress.sink.take(), ingress.accepted)
        };
        let mut shard_workers = Vec::with_capacity(self.workers.len());
        for h in self.workers.drain(..) {
            shard_workers.push(h.join().expect("worker thread panicked"));
        }
        if let Some(e) = self.shared.poison() {
            return Err(e);
        }
        let windows = shard_workers.iter().flat_map(ShardWorker::windows).collect();
        let timeline =
            timeline_from_windows(&self.shared.engine_cfg, shard_workers.len() as u32, windows);
        let per_shard: Vec<Report> = shard_workers
            .into_iter()
            .map(|w| w.into_report().map_err(|message| EngineError { shard: None, message }))
            .collect::<Result<_, _>>()?;
        let report = aggregate_reports(per_shard.clone());
        let (trace_bytes, trace_path) = match sink {
            Some(sink) => sink.finish().map_err(|e| EngineError {
                shard: None,
                message: format!("trace log finish failed: {e}"),
            })?,
            None => (None, None),
        };
        Ok(ServeOutcome {
            per_shard,
            report,
            timeline,
            requests_served: accepted,
            trace_bytes,
            trace_path,
        })
    }
}

/// Per-shard worker thread: drain the ring in FIFO batches, drive the
/// detached [`ShardWorker`], publish progress and stats; exit (returning
/// the worker) when ingress closes the channel.
fn worker_loop(
    mut worker: ShardWorker,
    rx: &ring::Receiver<Request>,
    shared: &Shared,
    batch: usize,
) -> ShardWorker {
    let shard = worker.shard().index();
    let mut buf: Vec<Request> = Vec::with_capacity(batch);
    loop {
        buf.clear();
        let Ok(n) = rx.recv_batch(&mut buf, batch) else {
            return worker; // disconnected and fully drained
        };
        let before_cost = worker.cost();
        let before = (worker.rounds(), worker.paid_rounds());
        if worker.error().is_none() {
            if let Err(message) = worker.run_batch(&buf) {
                let mut poison = shared.poisoned.lock().expect("poison lock");
                if poison.is_none() {
                    *poison = Some(EngineError { shard: Some(worker.shard()), message });
                }
            }
        }
        // Progress counts *consumed* requests even past a violation, so
        // drain barriers and backpressure keep moving while the error
        // propagates.
        {
            let mut progress = shared.progress.lock().expect("progress lock");
            progress[shard] += n as u64;
            shared.progress_cv.notify_all();
        }
        {
            let after_cost = worker.cost();
            let mut stats = shared.stats.lock().expect("stats lock");
            stats.rounds += worker.rounds() - before.0;
            stats.paid_rounds += worker.paid_rounds() - before.1;
            stats.service_cost += after_cost.service - before_cost.service;
            stats.reorg_cost += after_cost.reorg - before_cost.reorg;
        }
    }
}

/// Acceptor thread: one spawned connection thread per client until
/// shutdown.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else { break };
        if shared.shutting_down.load(Ordering::SeqCst) {
            break; // the wake-up connection (or a very late client)
        }
        let shared_conn = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            let _ = connection_loop(stream, &shared_conn);
        });
        let mut conns = shared.conns.lock().expect("conns lock");
        // Reap finished connections as new ones arrive, so a long-lived
        // server handling many short-lived clients doesn't accumulate
        // join handles without bound.
        let mut i = 0;
        while i < conns.len() {
            if conns[i].is_finished() {
                let _ = conns.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        conns.push(handle);
    }
}

/// One client connection: handshake, then request frames until Bye/EOF.
/// Any protocol error is answered with one `Error` frame before closing.
fn connection_loop(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut rbuf = Vec::new();
    let mut wbuf = Vec::new();

    let fail = |writer: &mut BufWriter<TcpStream>, wbuf: &mut Vec<u8>, message: String| {
        let _ = wire::write_message(writer, &Message::Error { message }, wbuf);
        let _ = writer.flush();
    };

    // Handshake: the first frame must be a version-matching Hello.
    match wire::read_message(&mut reader, &mut rbuf) {
        Ok(Some(Message::Hello { version })) if version == WIRE_VERSION => {}
        Ok(Some(Message::Hello { version })) => {
            fail(
                &mut writer,
                &mut wbuf,
                format!("unsupported wire version {version} (server speaks {WIRE_VERSION})"),
            );
            return Ok(());
        }
        Ok(Some(other)) => {
            fail(
                &mut writer,
                &mut wbuf,
                format!("expected Hello, got opcode {:#04x}", other.opcode()),
            );
            return Ok(());
        }
        Ok(None) => return Ok(()),
        Err(e) => {
            fail(&mut writer, &mut wbuf, format!("bad handshake frame: {e}"));
            return Ok(());
        }
    }
    wire::write_message(
        &mut writer,
        &Message::HelloAck {
            version: WIRE_VERSION,
            universe: shared.router.global_len() as u32,
            shards: shared.router.num_shards() as u32,
        },
        &mut wbuf,
    )?;
    writer.flush()?;

    loop {
        let msg = match wire::read_message(&mut reader, &mut rbuf) {
            Ok(Some(m)) => m,
            Ok(None) => return Ok(()), // client hung up between frames
            Err(e) => {
                fail(&mut writer, &mut wbuf, format!("bad frame: {e}"));
                return Ok(());
            }
        };
        match msg {
            Message::Submit { requests } => match shared.ingest(&requests) {
                Ok(accepted) => {
                    wire::write_message(&mut writer, &Message::Ack { accepted }, &mut wbuf)?;
                }
                Err(message) => {
                    fail(&mut writer, &mut wbuf, message);
                    return Ok(());
                }
            },
            Message::Stats => {
                wire::write_message(
                    &mut writer,
                    &Message::StatsReply(shared.stats_snapshot()),
                    &mut wbuf,
                )?;
            }
            Message::Drain => {
                shared.wait_drained();
                wire::write_message(&mut writer, &Message::Ack { accepted: 0 }, &mut wbuf)?;
            }
            Message::Bye => {
                wire::write_message(&mut writer, &Message::Ack { accepted: 0 }, &mut wbuf)?;
                writer.flush()?;
                return Ok(());
            }
            other => {
                fail(
                    &mut writer,
                    &mut wbuf,
                    format!("unexpected opcode {:#04x} from a client", other.opcode()),
                );
                return Ok(());
            }
        }
        // Flush every reply before blocking on the next read. Gating this
        // on an empty read buffer looks like a batching win but is a
        // liveness hazard: a partial next frame in the buffer would leave
        // the reply unflushed while `read_message` blocks on the socket —
        // deadlocking any client that waits for the ack before sending
        // the rest. One small write per reply (with TCP_NODELAY) is the
        // correct trade.
        writer.flush()?;
    }
}
