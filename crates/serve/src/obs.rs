//! Wall-clock instrumentation of the serving request lifecycle.
//!
//! [`ServeMetrics`] names every stage a request crosses on its way
//! through the server (see the thread diagram in [`crate::server`]):
//!
//! | series | stage |
//! |--------|-------|
//! | `otc_serve_accept_nanos` | TCP accept → handshake flushed |
//! | `otc_serve_lock_hold_nanos` | ingress lock held (log + route + enqueue, per batch) |
//! | `otc_serve_ring_wait_nanos{group}` | ring enqueue → dequeue (sampled once per ingest) |
//! | `otc_serve_drain_nanos{cell}` | one buffered run through a cell worker |
//! | `otc_serve_flush_nanos` | one reply flushed to the socket |
//!
//! plus operational counters (`otc_serve_connections_total`,
//! `otc_serve_batches_total`, `otc_serve_requests_total`,
//! `otc_serve_scrapes_total`) and the static gauges `otc_serve_cells` /
//! `otc_serve_groups`.
//!
//! **Invariant #8 — observation never changes results.** Everything here
//! is a pure side-band: recording touches only `otc-obs` atomics, the
//! per-group/per-cell histograms in a scrape are observe-only
//! annotations of the rebalance placement (never decision inputs — the
//! determinism crates cannot even depend on `otc-obs`, otc-lint R7),
//! and the drain timer rides the one-way
//! [`otc_sim::worker::BatchHooks`] seam. The differential suite in
//! `crates/serve/tests/observer.rs` proves runs with metrics on, off,
//! and scraped concurrently are bit-identical.

use std::sync::Arc;

use otc_obs::clock::{self, Stamp};
use otc_obs::{Counter, Histogram, MetricsSnapshot, Registry};
use otc_sim::worker::BatchHooks;

/// Deterministic label value for a cell/group index: zero-padded so the
/// snapshot's lexicographic label order is also numeric order.
fn index_label(i: usize) -> String {
    format!("{i:04}")
}

/// The server's stage-latency histograms and operational counters. One
/// per running [`crate::Server`] when [`crate::ServeConfig::metrics`] is
/// on; every recording site is lock-free and allocation-free.
#[derive(Debug)]
pub struct ServeMetrics {
    registry: Registry,
    /// TCP accept → handshake reply flushed.
    pub(crate) accept: Arc<Histogram>,
    /// Ingress critical section (log append + route + enqueue).
    pub(crate) lock_hold: Arc<Histogram>,
    /// One reply flush to a client socket.
    pub(crate) flush: Arc<Histogram>,
    /// Ring enqueue → dequeue, one histogram per serving group.
    ring_wait: Vec<Arc<Histogram>>,
    /// One buffered run through a worker, one histogram per cell.
    drain: Vec<Arc<Histogram>>,
    /// Connections that completed the handshake.
    pub(crate) connections: Arc<Counter>,
    /// Batches drained by cell workers.
    pub(crate) batches: Arc<Counter>,
    /// Requests accepted at ingress.
    pub(crate) requests: Arc<Counter>,
    /// Metrics scrapes served.
    pub(crate) scrapes: Arc<Counter>,
}

impl ServeMetrics {
    /// A fresh metrics surface for a service with `cells` cells served
    /// by `groups` worker threads.
    #[must_use]
    pub fn new(cells: usize, groups: usize) -> Self {
        let registry = Registry::new();
        let ring_wait = (0..groups)
            .map(|g| registry.histogram("otc_serve_ring_wait_nanos", &[("group", &index_label(g))]))
            .collect();
        let drain = (0..cells)
            .map(|c| registry.histogram("otc_serve_drain_nanos", &[("cell", &index_label(c))]))
            .collect();
        let metrics = Self {
            accept: registry.histogram("otc_serve_accept_nanos", &[]),
            lock_hold: registry.histogram("otc_serve_lock_hold_nanos", &[]),
            flush: registry.histogram("otc_serve_flush_nanos", &[]),
            ring_wait,
            drain,
            connections: registry.counter("otc_serve_connections_total", &[]),
            batches: registry.counter("otc_serve_batches_total", &[]),
            requests: registry.counter("otc_serve_requests_total", &[]),
            scrapes: registry.counter("otc_serve_scrapes_total", &[]),
            registry,
        };
        let cells_gauge = metrics.registry.gauge("otc_serve_cells", &[]);
        cells_gauge.set(cells as u64);
        let groups_gauge = metrics.registry.gauge("otc_serve_groups", &[]);
        groups_gauge.set(groups as u64);
        metrics
    }

    /// Record one sampled ring enqueue→dequeue wait for a group.
    #[inline]
    pub(crate) fn record_ring_wait(&self, group: usize, nanos: u64) {
        if let Some(h) = self.ring_wait.get(group) {
            h.record(nanos);
        }
    }

    /// Record one drained batch on a cell.
    #[inline]
    pub(crate) fn record_drain(&self, cell: usize, nanos: u64) {
        if let Some(h) = self.drain.get(cell) {
            h.record(nanos);
        }
    }

    /// A deterministic-ordered snapshot of every series.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

/// The drain timer, riding the one-way [`BatchHooks`] seam: `otc-sim`
/// calls in with the cell id and batch length, and nothing flows back.
pub(crate) struct DrainHooks<'a> {
    metrics: &'a ServeMetrics,
    start: Option<Stamp>,
}

impl<'a> DrainHooks<'a> {
    pub(crate) fn new(metrics: &'a ServeMetrics) -> Self {
        Self { metrics, start: None }
    }
}

impl BatchHooks for DrainHooks<'_> {
    #[inline]
    fn before_batch(&mut self, _cell: u32, _len: usize) {
        self.start = Some(clock::stamp());
    }

    #[inline]
    fn after_batch(&mut self, cell: u32, _len: usize) {
        if let Some(start) = self.start.take() {
            self.metrics.record_drain(cell as usize, start.elapsed_nanos());
            self.metrics.batches.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_names_every_stage() {
        let m = ServeMetrics::new(3, 2);
        m.accept.record(100);
        m.record_ring_wait(1, 50);
        m.record_drain(2, 75);
        m.record_drain(99, 1); // out of range: silently dropped
        let snap = m.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|r| r.name.as_str()).collect();
        for want in [
            "otc_serve_accept_nanos",
            "otc_serve_lock_hold_nanos",
            "otc_serve_ring_wait_nanos",
            "otc_serve_drain_nanos",
            "otc_serve_flush_nanos",
            "otc_serve_connections_total",
            "otc_serve_batches_total",
            "otc_serve_requests_total",
            "otc_serve_scrapes_total",
            "otc_serve_cells",
            "otc_serve_groups",
        ] {
            assert!(names.contains(&want), "missing {want} in {names:?}");
        }
        // 3 drain + 2 ring_wait + 3 plain histograms + 4 counters + 2 gauges.
        assert_eq!(snap.metrics.len(), 14);
        // The scrape round-trips through the exposition codec.
        let json = snap.to_json();
        assert_eq!(MetricsSnapshot::from_json(&json).expect("canonical"), snap);
    }

    #[test]
    fn drain_hooks_time_one_batch() {
        let m = ServeMetrics::new(1, 1);
        let mut hooks = DrainHooks::new(&m);
        hooks.before_batch(0, 8);
        hooks.after_batch(0, 8);
        let snap = m.snapshot();
        let drain = snap
            .metrics
            .iter()
            .find(|r| r.name == "otc_serve_drain_nanos")
            .expect("drain series exists");
        match &drain.value {
            otc_obs::MetricValue::Histogram(h) => assert_eq!(h.count, 1),
            other => panic!("drain is a histogram, got {other:?}"),
        }
    }
}
