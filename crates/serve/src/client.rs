//! The client half of the wire protocol.
//!
//! [`Client::connect`] performs the versioned handshake and then offers
//! two submission styles:
//!
//! * **synchronous** — [`Client::submit`] sends one batch and waits for
//!   its acknowledgement (simplest, one round-trip per batch);
//! * **pipelined** — [`Client::send`] queues frames without waiting;
//!   [`Client::wait_acks`] collects the outstanding acknowledgements in
//!   order. Pipelining keeps the socket and the ingress busy at the same
//!   time, which is what the `bench_serve` connections × pipelining
//!   sweep measures.
//!
//! Any server-side rejection arrives as a [`Message::Error`] frame and
//! surfaces as an `io::Error` of kind `Other` whose text is the server's
//! message; the server closes the connection afterwards, matching the
//! protocol's reject-and-close rule.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use otc_core::request::Request;
use otc_obs::MetricsSnapshot;

use crate::wire::{self, Message, ServeStats, WIRE_VERSION};

/// A connected wire-protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    universe: u32,
    shards: u32,
    /// Submits sent but not yet acknowledged (pipelining depth).
    inflight: usize,
}

impl Client {
    /// Connects and performs the handshake.
    ///
    /// # Errors
    /// Connection errors; `InvalidData` if the server speaks a different
    /// protocol or rejects the handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let mut client = Self {
            reader,
            writer,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            universe: 0,
            shards: 0,
            inflight: 0,
        };
        wire::write_message(
            &mut client.writer,
            &Message::Hello { version: WIRE_VERSION },
            &mut client.wbuf,
        )?;
        client.writer.flush()?;
        match client.read_reply()? {
            Message::HelloAck { version: WIRE_VERSION, universe, shards } => {
                client.universe = universe;
                client.shards = shards;
                Ok(client)
            }
            Message::HelloAck { version, .. } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server speaks wire version {version}, this client {WIRE_VERSION}"),
            )),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected HelloAck, got opcode {:#04x}", other.opcode()),
            )),
        }
    }

    /// The service's global node-id universe (from the handshake).
    #[must_use]
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// The service's shard count (from the handshake).
    #[must_use]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Submits sent but not yet acknowledged.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Reads one reply frame, translating `Error` frames into
    /// `io::Error`s (kind `Other`, the server's message as text).
    fn read_reply(&mut self) -> io::Result<Message> {
        match wire::read_message(&mut self.reader, &mut self.rbuf)? {
            Some(Message::Error { message }) => Err(io::Error::other(message)),
            Some(msg) => Ok(msg),
            None => {
                Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection"))
            }
        }
    }

    /// Queues one `Submit` frame **without waiting** for its
    /// acknowledgement (pipelining). Pair with [`Client::wait_acks`].
    /// Encodes straight from the slice ([`wire::encode_submit`]) — no
    /// per-batch copy.
    ///
    /// # Errors
    /// Socket write errors.
    pub fn send(&mut self, requests: &[Request]) -> io::Result<()> {
        self.wbuf.clear();
        wire::encode_submit(&mut self.wbuf, requests);
        self.writer.write_all(&self.wbuf)?;
        self.inflight += 1;
        Ok(())
    }

    /// Flushes queued frames to the socket.
    ///
    /// # Errors
    /// Socket write errors.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Collects every outstanding acknowledgement (flushing first) and
    /// returns the total number of requests the server accepted.
    ///
    /// # Errors
    /// Socket errors, and the server's message if any batch was
    /// rejected.
    pub fn wait_acks(&mut self) -> io::Result<u64> {
        self.flush()?;
        let mut accepted = 0;
        while self.inflight > 0 {
            match self.read_reply()? {
                Message::Ack { accepted: n } => {
                    self.inflight -= 1;
                    accepted += n;
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("expected Ack, got opcode {:#04x}", other.opcode()),
                    ));
                }
            }
        }
        Ok(accepted)
    }

    /// Submits one batch synchronously and returns the accepted count.
    ///
    /// # Errors
    /// Socket errors; the server's message if the batch was rejected
    /// (atomically — nothing from it was applied).
    pub fn submit(&mut self, requests: &[Request]) -> io::Result<u64> {
        self.send(requests)?;
        self.wait_acks()
    }

    /// Fetches the service's cumulative executed-cost counters.
    ///
    /// # Errors
    /// Socket errors; pending pipelined acknowledgements are collected
    /// first.
    pub fn stats(&mut self) -> io::Result<ServeStats> {
        self.wait_acks()?;
        wire::write_message(&mut self.writer, &Message::Stats, &mut self.wbuf)?;
        self.writer.flush()?;
        match self.read_reply()? {
            Message::StatsReply(s) => Ok(s),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected StatsReply, got opcode {:#04x}", other.opcode()),
            )),
        }
    }

    /// Scrapes the service's wall-clock metrics surface as the raw
    /// canonical-JSON exposition ([`otc_obs::expo`]). A metrics-off
    /// server answers with the valid empty exposition — scraping is
    /// always safe, live, and never perturbs results (invariant #8).
    ///
    /// # Errors
    /// Socket errors; pending pipelined acknowledgements are collected
    /// first.
    pub fn scrape_json(&mut self) -> io::Result<String> {
        self.wait_acks()?;
        wire::write_message(&mut self.writer, &Message::Metrics, &mut self.wbuf)?;
        self.writer.flush()?;
        match self.read_reply()? {
            Message::MetricsReply { json } => Ok(json),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected MetricsReply, got opcode {:#04x}", other.opcode()),
            )),
        }
    }

    /// Scrapes the service's wall-clock metrics surface, parsed back
    /// into a typed [`MetricsSnapshot`] (see [`Client::scrape_json`] for
    /// the raw exposition and the invariant-#8 guarantees).
    ///
    /// # Errors
    /// Socket errors; `InvalidData` if the exposition does not parse
    /// (a server/client version skew).
    pub fn scrape(&mut self) -> io::Result<MetricsSnapshot> {
        let json = self.scrape_json()?;
        MetricsSnapshot::from_json(&json).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad metrics exposition: {e}"))
        })
    }

    /// Barrier: returns once everything accepted by the service so far
    /// (from any client) has been executed by the shard workers.
    ///
    /// # Errors
    /// Socket errors; pending acknowledgements are collected first.
    pub fn drain(&mut self) -> io::Result<()> {
        self.wait_acks()?;
        wire::write_message(&mut self.writer, &Message::Drain, &mut self.wbuf)?;
        self.writer.flush()?;
        match self.read_reply()? {
            Message::Ack { .. } => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Ack, got opcode {:#04x}", other.opcode()),
            )),
        }
    }

    /// Graceful goodbye: waits for outstanding acknowledgements, tells
    /// the server, and closes the connection.
    ///
    /// # Errors
    /// Socket errors while closing.
    pub fn bye(mut self) -> io::Result<()> {
        self.wait_acks()?;
        wire::write_message(&mut self.writer, &Message::Bye, &mut self.wbuf)?;
        self.writer.flush()?;
        match self.read_reply()? {
            Message::Ack { .. } => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Ack, got opcode {:#04x}", other.opcode()),
            )),
        }
    }
}
