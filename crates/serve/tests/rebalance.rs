//! Differentials for deterministic dynamic resharding (invariant #7).
//!
//! The contract under test: a rebalancing service's outputs — per-cell
//! reports, aggregate cost, telemetry windows, *and the rebalance
//! schedule itself* — are a pure function of the logged request stream.
//! A live run (killed-and-recovered or not) must be bit-identical to
//! `replay_trace_rebalancing` of its own log on a fresh cells engine, at
//! replay threads {1, nproc}; the replay recomputes every migration
//! decision from the requests alone and verifies the logged records
//! against it. Plus: migrations landing on tiny queues mid-drain, resume
//! refusing capability mismatches both ways, and a proptest pinning
//! per-cell costs to a solo-cell `TcReference` oracle no matter what the
//! migration schedule did.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use otc_core::forest::{Forest, ShardId};
use otc_core::policy::{CachePolicy, PolicyFactory};
use otc_core::request::Request;
use otc_core::tc::{TcConfig, TcFast, TcReference};
use otc_core::tree::{NodeId, Tree};
use otc_serve::{
    initial_table, Client, RebalancePolicy, ServeConfig, Server, SnapshotPolicy, TraceLog,
};
use otc_sim::engine::{EngineConfig, ShardedEngine};
use otc_sim::{
    aggregate_reports, replay_trace_rebalancing, RebalanceConfig, RebalanceReplay, Rebalancer,
    Report, Timeline,
};
use otc_util::SplitMix64;
use otc_workloads::trace::TraceReader;
use proptest::prelude::*;

const ALPHA: u64 = 2;
const CAPACITY: usize = 5;

fn factory(tree: Arc<Tree>, _s: ShardId) -> Box<dyn CachePolicy> {
    Box::new(TcFast::new(tree, TcConfig::new(ALPHA, CAPACITY)))
}

fn reference(tree: Arc<Tree>, _s: ShardId) -> Box<dyn CachePolicy> {
    Box::new(TcReference::new(tree, TcConfig::new(ALPHA, CAPACITY)))
}

fn base_cfg() -> EngineConfig {
    EngineConfig::new(ALPHA).audit_every(64).telemetry(true)
}

fn nproc() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// 70% of the traffic hammers one hot subtrie; the rest is uniform. The
/// skew is what makes the planner actually migrate.
fn skewed(universe: usize, len: usize, seed: u64, hot: u32) -> Vec<Request> {
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|_| {
            let v = if rng.chance(0.7) { NodeId(hot) } else { NodeId(rng.index(universe) as u32) };
            if rng.chance(0.3) {
                Request::neg(v)
            } else {
                Request::pos(v)
            }
        })
        .collect()
}

fn rebalance_policy<F>(groups: u32, rcfg: RebalanceConfig, f: F) -> RebalancePolicy
where
    F: Fn(Arc<Tree>, ShardId) -> Box<dyn CachePolicy> + Send + Sync + 'static,
{
    RebalancePolicy::new(groups, rcfg, Arc::new(f) as Arc<dyn PolicyFactory + Send + Sync>)
}

/// A unique scratch area per test invocation (log file + snapshot dir).
fn scratch(tag: &str) -> (PathBuf, PathBuf) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let id = SEQ.fetch_add(1, Ordering::Relaxed);
    let root =
        std::env::temp_dir().join(format!("otc_rebalance_{tag}_{}_{id}", std::process::id()));
    std::fs::create_dir_all(&root).expect("scratch dir");
    (root.join("serve.otct"), root.join("snaps"))
}

fn cleanup(log: &Path) {
    if let Some(root) = log.parent() {
        std::fs::remove_dir_all(root).ok();
    }
}

/// Replays a rebalance-flagged log through a fresh cells engine and a
/// fresh rebalancer built from the shard count alone — the ground truth
/// every live rebalancing run must match bit for bit.
fn replay_rebalancing(
    forest: &Forest,
    bytes: &[u8],
    groups: u32,
    rcfg: RebalanceConfig,
    threads: usize,
) -> (RebalanceReplay, Rebalancer, Vec<Report>, Report, Timeline) {
    let mut engine = ShardedEngine::new(forest.clone(), &factory, base_cfg().threads(threads));
    let mut reader =
        TraceReader::new(std::io::Cursor::new(bytes)).expect("logged trace has a valid header");
    let mut reb = Rebalancer::new(rcfg, initial_table(forest.num_shards(), groups).expect("shape"));
    let mut chunk = Vec::with_capacity(4096);
    let out = replay_trace_rebalancing(&mut engine, &mut reader, &mut reb, &mut chunk)
        .expect("replay verifies the live schedule");
    let timeline = engine.timeline();
    let per_shard = engine.into_reports().expect("verified replay");
    let report = aggregate_reports(per_shard.clone());
    (out, reb, per_shard, report, timeline)
}

/// The headline differential: a live rebalancing service under skewed
/// concurrent traffic migrates cells between groups, and replaying its
/// own log — at 1 thread and at nproc — reproduces every output *and
/// every migration decision* bit for bit.
#[test]
fn live_rebalanced_service_equals_replay_of_its_own_log() {
    let tree = Tree::star(12);
    let forest = Forest::cells(&tree);
    let groups = 3u32;
    let rcfg = RebalanceConfig::new(250).threshold_x1000(1000);
    let reqs = skewed(tree.len(), 3000, 11, 3);

    let engine = ShardedEngine::new(forest.clone(), &factory, base_cfg());
    let serve_cfg = ServeConfig {
        log: TraceLog::Memory,
        rebalance: Some(rebalance_policy(groups, rcfg, factory)),
        ..ServeConfig::default()
    };
    let server = Server::start(engine, serve_cfg).expect("bind loopback");
    assert_eq!(server.num_groups(), groups as usize);
    assert_eq!(server.num_shards(), forest.num_shards());
    let addr = server.addr();
    let per = reqs.len() / 2;
    std::thread::scope(|scope| {
        for (c, slice) in [&reqs[..per], &reqs[per..]].into_iter().enumerate() {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for chunk in slice.chunks(37 + c) {
                    client.submit(chunk).expect("submit");
                }
                client.drain().expect("drain");
                client.bye().expect("bye");
            });
        }
    });
    let outcome = server.shutdown().expect("clean shutdown");
    assert_eq!(outcome.requests_served, reqs.len() as u64);
    let summary = outcome.rebalance.clone().expect("a rebalancing service reports a summary");
    assert_eq!(summary.boundaries, reqs.len() as u64 / rcfg.interval);
    assert_eq!(summary.epoch, summary.boundaries, "one epoch bump per boundary");
    assert!(summary.migrations > 0, "this much skew must migrate cells");
    let bytes = outcome.trace_bytes.as_deref().expect("memory log");

    for threads in [1, nproc()] {
        let (out, reb, per_shard, report, timeline) =
            replay_rebalancing(&forest, bytes, groups, rcfg, threads);
        assert_eq!(out.replayed, outcome.requests_served);
        assert_eq!(out.verified, summary.boundaries, "every live record verified");
        assert!(!out.torn_tail);
        assert_eq!(
            out.schedule.iter().map(|r| r.moves.len() as u64).sum::<u64>(),
            summary.migrations
        );
        assert_eq!(reb.table().epoch(), summary.epoch);
        assert_eq!(reb.table().owners(), summary.owners.as_slice(), "identical final placement");
        assert_eq!(per_shard, outcome.per_shard, "per-cell reports at {threads} threads");
        assert_eq!(report, outcome.report, "aggregate at {threads} threads");
        assert_eq!(timeline, outcome.timeline, "telemetry at {threads} threads");
    }
}

/// Migrations landing while rings are saturated: capacity-2 queues and
/// batch-1 workers force every marker to interleave with in-flight
/// requests, so handoffs rendezvous mid-drain. The replay identity must
/// survive it.
#[test]
fn mid_drain_migrations_on_tiny_queues_stay_deterministic() {
    let tree = Tree::star(8);
    let forest = Forest::cells(&tree);
    let groups = 2u32;
    let rcfg = RebalanceConfig::new(100).threshold_x1000(1000).max_moves(2);
    let reqs = skewed(tree.len(), 1200, 29, 1);

    let engine = ShardedEngine::new(forest.clone(), &factory, base_cfg());
    let serve_cfg = ServeConfig {
        log: TraceLog::Memory,
        queue_capacity: 2,
        worker_batch: 1,
        rebalance: Some(rebalance_policy(groups, rcfg, factory)),
        ..ServeConfig::default()
    };
    let server = Server::start(engine, serve_cfg).expect("bind loopback");
    let addr = server.addr();
    std::thread::scope(|scope| {
        for (c, slice) in reqs.chunks(reqs.len() / 3 + 1).enumerate() {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for chunk in slice.chunks(7 + c) {
                    client.submit(chunk).expect("submit");
                }
                client.drain().expect("drain");
                client.bye().expect("bye");
            });
        }
    });
    let outcome = server.shutdown().expect("clean shutdown");
    let summary = outcome.rebalance.clone().expect("summary");
    assert!(summary.migrations > 0, "skew must migrate even on tiny queues");
    let bytes = outcome.trace_bytes.as_deref().expect("memory log");
    let (out, reb, per_shard, report, timeline) =
        replay_rebalancing(&forest, bytes, groups, rcfg, 1);
    assert_eq!(out.verified, summary.boundaries);
    assert_eq!(reb.table().owners(), summary.owners.as_slice());
    assert_eq!(per_shard, outcome.per_shard);
    assert_eq!(report, outcome.report);
    assert_eq!(timeline, outcome.timeline);
}

/// Kill-and-recover under rebalancing: a service killed mid-stream and
/// resumed (snapshot + verified tail replay, or pure log replay) then
/// refilled is bit-identical to the uninterrupted twin *and* to the
/// replay of the final log — including the migration count, which
/// resume re-derives from the recovered prefix instead of resetting.
#[test]
fn killed_and_recovered_rebalancing_run_matches_the_uninterrupted_twin() {
    let tree = Tree::star(10);
    let forest = Forest::cells(&tree);
    let groups = 3u32;
    let rcfg = RebalanceConfig::new(150).threshold_x1000(1000);
    let stream = skewed(tree.len(), 1300, 43, 2);
    let (pre, post) = stream.split_at(900);

    // One submission order for all three runs: a single client, fixed
    // chunking, so the global accepted order — and with it the decision
    // schedule — is the request vector itself.
    let drive = |server: &Server, reqs: &[Request]| {
        let mut client = Client::connect(server.addr()).expect("connect");
        for chunk in reqs.chunks(53) {
            client.submit(chunk).expect("submit");
        }
        client.drain().expect("drain");
        client.bye().expect("bye");
    };

    // `every: 211` exercises snapshot + seeded-rebalancer + verified
    // tail; `None` exercises pure log replay from the start.
    for snapshots in [Some(211), None] {
        let (log, snap_dir) = scratch("killresume");
        let serve_cfg = |log: PathBuf| ServeConfig {
            log: TraceLog::File(log),
            snapshots: snapshots.map(|every| SnapshotPolicy { dir: snap_dir.clone(), every }),
            rebalance: Some(rebalance_policy(groups, rcfg, factory)),
            ..ServeConfig::default()
        };

        // Run A: serve `pre`, kill without draining, resume, serve `post`.
        let engine = ShardedEngine::new(forest.clone(), &factory, base_cfg());
        let server = Server::start(engine, serve_cfg(log.clone())).expect("bind loopback");
        drive(&server, pre);
        let killed_log = server.kill().expect("kill syncs the log").expect("file log path");
        assert_eq!(killed_log, log);
        let engine = ShardedEngine::new(forest.clone(), &factory, base_cfg());
        let (server, resumed) = Server::resume(engine, serve_cfg(log.clone())).expect("resume");
        assert_eq!(resumed.requests_recovered, pre.len() as u64);
        if snapshots.is_some() {
            assert!(resumed.snapshot_records.is_some(), "a snapshot should have been usable");
        }
        drive(&server, post);
        let recovered = server.shutdown().expect("clean shutdown");

        // Run B: the uninterrupted twin.
        let (twin_log, _) = scratch("twin");
        let engine = ShardedEngine::new(forest.clone(), &factory, base_cfg());
        let server = Server::start(engine, serve_cfg(twin_log.clone())).expect("bind loopback");
        drive(&server, pre);
        drive(&server, post);
        let twin = server.shutdown().expect("clean shutdown");

        assert_eq!(recovered.requests_served, twin.requests_served);
        assert_eq!(recovered.per_shard, twin.per_shard, "per-cell reports survive the crash");
        assert_eq!(recovered.report, twin.report);
        assert_eq!(recovered.timeline, twin.timeline, "telemetry survives the crash");
        assert_eq!(recovered.rebalance, twin.rebalance, "identical schedule and migrations");
        let summary = recovered.rebalance.clone().expect("summary");
        assert!(summary.migrations > 0, "the differential must cover actual migrations");

        // Both logs replay to the same truth as the outcomes.
        let bytes = std::fs::read(&log).expect("final log");
        let (out, reb, per_shard, report, timeline) =
            replay_rebalancing(&forest, &bytes, groups, rcfg, 1);
        assert_eq!(out.replayed, recovered.requests_served);
        assert_eq!(out.verified, summary.boundaries, "resume re-logged no duplicate records");
        assert_eq!(reb.table().owners(), summary.owners.as_slice());
        assert_eq!(per_shard, recovered.per_shard);
        assert_eq!(report, recovered.report);
        assert_eq!(timeline, recovered.timeline);

        cleanup(&log);
        cleanup(&twin_log);
    }
}

/// Resume refuses a rebalance-capability mismatch in both directions:
/// the flag in the log header is the contract, not a hint.
#[test]
fn resume_refuses_rebalance_capability_mismatch() {
    let tree = Tree::star(6);
    let forest = Forest::cells(&tree);
    let rcfg = RebalanceConfig::new(50);
    let reqs = skewed(tree.len(), 120, 7, 1);

    let drive_and_kill = |serve_cfg: ServeConfig| {
        let engine = ShardedEngine::new(forest.clone(), &factory, base_cfg());
        let server = Server::start(engine, serve_cfg).expect("bind loopback");
        let mut client = Client::connect(server.addr()).expect("connect");
        client.submit(&reqs).expect("submit");
        client.bye().expect("bye");
        server.kill().expect("kill").expect("file log path")
    };

    // A rebalancing log resumed without a rebalance policy.
    let (log, _) = scratch("capable");
    drive_and_kill(ServeConfig {
        log: TraceLog::File(log.clone()),
        rebalance: Some(rebalance_policy(2, rcfg, factory)),
        ..ServeConfig::default()
    });
    let engine = ShardedEngine::new(forest.clone(), &factory, base_cfg());
    let err = Server::resume(
        engine,
        ServeConfig { log: TraceLog::File(log.clone()), ..ServeConfig::default() },
    )
    .err()
    .expect("must refuse");
    assert!(err.to_string().contains("carries rebalance records"), "got: {err}");
    cleanup(&log);

    // A plain log resumed with a rebalance policy.
    let (log, _) = scratch("plain");
    drive_and_kill(ServeConfig { log: TraceLog::File(log.clone()), ..ServeConfig::default() });
    let engine = ShardedEngine::new(forest.clone(), &factory, base_cfg());
    let err = Server::resume(
        engine,
        ServeConfig {
            log: TraceLog::File(log.clone()),
            rebalance: Some(rebalance_policy(2, rcfg, factory)),
            ..ServeConfig::default()
        },
    )
    .err()
    .expect("must refuse");
    assert!(err.to_string().contains("not written by a rebalancing service"), "got: {err}");
    cleanup(&log);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Placement invariance, pinned against the honest oracle: whatever
    /// migration schedule the planner produces over `TcReference` cells,
    /// each cell's report equals a solo run of that cell's local request
    /// subsequence on an unsharded single-cell engine — and the schedule
    /// itself is a pure function of the stream. (`TcReference` refuses
    /// snapshots, so the *physical* handoff is covered by the `TcFast`
    /// tests above; here the reference policy pins the costs.)
    #[test]
    fn rebalanced_cells_match_the_solo_cell_oracle(
        universe in 8usize..14,
        len in 250usize..600,
        groups in 2u32..5,
        interval in 40u64..120,
        seed in any::<u64>(),
    ) {
        let tree = Tree::star(universe);
        let forest = Forest::cells(&tree);
        let rcfg = RebalanceConfig::new(interval).threshold_x1000(1000);
        let reqs = skewed(tree.len(), len, seed, 1);

        // A cells engine driven through the same boundary cadence a
        // rebalancing service uses: the schedule re-homes cells between
        // groups, and the engine's costs must not notice.
        let run = || {
            let mut engine = ShardedEngine::new(forest.clone(), &reference, base_cfg());
            let mut reb = Rebalancer::new(
                rcfg,
                initial_table(forest.num_shards(), groups).expect("shape"),
            );
            let mut schedule = Vec::new();
            for (i, &r) in reqs.iter().enumerate() {
                engine.submit(r).expect("valid");
                if (i as u64 + 1).is_multiple_of(interval) {
                    let loads = engine.cell_loads().expect("valid");
                    schedule.push(reb.on_boundary(&loads).expect("boundary"));
                }
            }
            (engine.into_reports().expect("valid"), schedule)
        };
        let (per_shard, schedule) = run();
        prop_assert!(schedule.len() >= 2, "stream must cross boundaries");

        for (cell, report) in per_shard.iter().enumerate() {
            let local: Vec<Request> = reqs
                .iter()
                .map(|&r| forest.route_request(r))
                .filter(|(sid, _)| sid.index() == cell)
                .map(|(_, local)| local)
                .collect();
            let solo_forest = Forest::single(Arc::clone(forest.tree(ShardId(cell as u32))));
            let mut solo = ShardedEngine::new(solo_forest, &reference, base_cfg());
            solo.submit_batch(&local).expect("valid");
            let solo_reports = solo.into_reports().expect("valid");
            prop_assert_eq!(
                report,
                &solo_reports[0],
                "cell {} must cost the same solo as rebalanced",
                cell
            );
        }

        // The schedule is deterministic: an independent second pass over
        // the same stream recomputes it bit for bit.
        let (twin_reports, twin_schedule) = run();
        prop_assert_eq!(schedule, twin_schedule);
        prop_assert_eq!(per_shard, twin_reports);
    }
}
