//! Property tests for the serving wire protocol, mirroring the trace
//! reader's guarantees: arbitrary messages round-trip exactly through
//! frames, frame streams reassemble, and truncated or corrupt bytes are
//! rejected — never silently misparsed.

use std::io::Cursor;

use otc_core::request::{Request, Sign};
use otc_core::tree::NodeId;
use otc_serve::wire::{read_message, Message, ServeStats, MAX_FRAME, WIRE_VERSION};
use proptest::prelude::*;

fn requests_from(seeds: &[(u32, bool)]) -> Vec<Request> {
    seeds
        .iter()
        .map(|&(id, pos)| Request {
            node: NodeId(id),
            sign: if pos { Sign::Positive } else { Sign::Negative },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Submit frames round-trip exactly for arbitrary request batches
    /// (the full u32 id space, both signs, any length).
    #[test]
    fn submit_round_trip_is_exact(
        seeds in prop::collection::vec((any::<u32>(), any::<bool>()), 0..600),
    ) {
        let msg = Message::Submit { requests: requests_from(&seeds) };
        let mut buf = Vec::new();
        msg.encode_into(&mut buf);
        let mut scratch = Vec::new();
        let back = read_message(&mut Cursor::new(&buf), &mut scratch)
            .map_err(|e| TestCaseError::fail(e.to_string()))?
            .expect("not EOF");
        prop_assert_eq!(back, msg);
    }

    /// A stream of mixed frames reassembles message by message, in
    /// order, and ends with a clean EOF.
    #[test]
    fn frame_streams_reassemble(
        batches in prop::collection::vec(
            prop::collection::vec((any::<u32>(), any::<bool>()), 0..40),
            0..12,
        ),
        accepted in any::<u64>(),
        rounds in any::<u64>(),
        paid in any::<u64>(),
        service in any::<u64>(),
        reorg in any::<u64>(),
    ) {
        let mut messages: Vec<Message> = vec![
            Message::Hello { version: WIRE_VERSION },
            Message::HelloAck { version: WIRE_VERSION, universe: 1024, shards: 4 },
        ];
        for b in &batches {
            messages.push(Message::Submit { requests: requests_from(b) });
        }
        messages.push(Message::Ack { accepted });
        messages.push(Message::StatsReply(ServeStats {
            rounds,
            paid_rounds: paid,
            service_cost: service,
            reorg_cost: reorg,
        }));
        messages.push(Message::Drain);
        messages.push(Message::Bye);

        let mut buf = Vec::new();
        for m in &messages {
            m.encode_into(&mut buf);
        }
        let mut src = Cursor::new(&buf);
        let mut scratch = Vec::new();
        for want in &messages {
            let got = read_message(&mut src, &mut scratch)
                .map_err(|e| TestCaseError::fail(e.to_string()))?
                .expect("frame present");
            prop_assert_eq!(&got, want);
        }
        prop_assert!(read_message(&mut src, &mut scratch).unwrap().is_none(), "clean EOF");
    }

    /// Every proper prefix of a frame is rejected as truncation (or, for
    /// the empty prefix, reported as clean EOF) — no prefix ever decodes
    /// into a message.
    #[test]
    fn every_truncation_is_detected(
        seeds in prop::collection::vec((any::<u32>(), any::<bool>()), 1..80),
    ) {
        let msg = Message::Submit { requests: requests_from(&seeds) };
        let mut buf = Vec::new();
        msg.encode_into(&mut buf);
        let mut scratch = Vec::new();
        prop_assert!(
            read_message(&mut Cursor::new(&buf[..0]), &mut scratch).unwrap().is_none(),
            "empty prefix is clean EOF"
        );
        for cut in 1..buf.len() {
            let err = read_message(&mut Cursor::new(&buf[..cut]), &mut scratch)
                .expect_err("proper prefixes never decode");
            prop_assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "cut at {}", cut);
        }
    }

    /// Flipping the length prefix to lie (shorter or longer than the real
    /// body, zero, or over the cap) never yields a valid message.
    #[test]
    fn corrupt_length_prefixes_are_rejected(
        seeds in prop::collection::vec((any::<u32>(), any::<bool>()), 1..40),
        lie in any::<u32>(),
    ) {
        let msg = Message::Submit { requests: requests_from(&seeds) };
        let mut buf = Vec::new();
        msg.encode_into(&mut buf);
        let truth = u32::from_le_bytes(buf[..4].try_into().unwrap());
        // (No prop_assume in the vendored proptest: nudge collisions away.)
        let lie = if lie == truth { lie.wrapping_add(1) } else { lie };
        buf[..4].copy_from_slice(&lie.to_le_bytes());
        let mut scratch = Vec::new();
        match read_message(&mut Cursor::new(&buf), &mut scratch) {
            Err(_) => {} // rejected: good
            Ok(None) => prop_assert!(false, "a lying frame must not look like EOF"),
            Ok(Some(got)) => {
                // A shorter-but-valid length can only succeed if the
                // re-framed bytes happen to decode; it must then NOT
                // equal the original message (no silent misparse of the
                // same payload), and the cap must have been respected.
                prop_assert!(lie < truth && lie <= MAX_FRAME);
                // No silent misparse of the same payload allowed.
                prop_assert_ne!(got, msg);
            }
        }
    }

    /// Unknown opcodes are rejected whatever the payload.
    #[test]
    fn unknown_opcodes_are_rejected(
        opcode in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // Remap known opcodes to an unassigned one (no prop_assume in the
        // vendored proptest).
        let opcode = if [0x01, 0x02, 0x03, 0x04, 0x05, 0x81, 0x82, 0x83, 0xEE].contains(&opcode) {
            0x7F
        } else {
            opcode
        };
        let mut buf = ((payload.len() + 1) as u32).to_le_bytes().to_vec();
        buf.push(opcode);
        buf.extend_from_slice(&payload);
        let mut scratch = Vec::new();
        let err = read_message(&mut Cursor::new(&buf), &mut scratch).unwrap_err();
        prop_assert!(err.to_string().contains("unknown opcode"), "got: {}", err);
    }
}
