//! Kill-and-recover differentials for the serving runtime.
//!
//! The durability contract under test: a service killed mid-stream and
//! resumed from its snapshot directory + trace log is **bit-identical**
//! to a service that never crashed — same per-shard reports, same
//! aggregate cost, same telemetry windows — which in turn equal
//! `replay_trace` of the final log. Exercised at replay threads
//! {1, nproc} and snapshot cadences {every request, frequent, never
//! (pure log replay)}, with concurrent clients dropped at a
//! proptest-chosen round, plus corrupted-snapshot fallback and torn-log
//! prefix recovery.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use otc_core::forest::{Forest, ShardId};
use otc_core::policy::CachePolicy;
use otc_core::request::Request;
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::{NodeId, Tree};
use otc_serve::{Client, ServeConfig, Server, SnapshotPolicy, TraceLog};
use otc_sim::engine::{EngineConfig, ShardedEngine};
use otc_sim::{Report, Timeline};
use otc_util::SplitMix64;
use otc_workloads::trace::TraceReader;
use proptest::prelude::*;

const ALPHA: u64 = 2;
const CAPACITY: usize = 6;

fn factory(tree: Arc<Tree>, _s: ShardId) -> Box<dyn CachePolicy> {
    Box::new(TcFast::new(tree, TcConfig::new(ALPHA, CAPACITY)))
}

fn base_cfg() -> EngineConfig {
    EngineConfig::new(ALPHA).audit_every(128).telemetry(true)
}

fn mixed(universe: usize, len: usize, seed: u64) -> Vec<Request> {
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|_| {
            let v = NodeId(rng.index(universe) as u32);
            if rng.chance(0.4) {
                Request::neg(v)
            } else {
                Request::pos(v)
            }
        })
        .collect()
}

/// A unique scratch area per test invocation (log file + snapshot dir).
fn scratch(tag: &str) -> (PathBuf, PathBuf) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let id = SEQ.fetch_add(1, Ordering::Relaxed);
    let root = std::env::temp_dir().join(format!("otc_recovery_{tag}_{}_{id}", std::process::id()));
    std::fs::create_dir_all(&root).expect("scratch dir");
    (root.join("serve.otct"), root.join("snaps"))
}

fn cleanup(log: &Path) {
    if let Some(root) = log.parent() {
        std::fs::remove_dir_all(root).ok();
    }
}

/// Replays the on-disk log through a fresh engine: the ground truth a
/// recovered service must match bit for bit.
fn replay_file(forest: &Forest, log: &Path, cfg: EngineConfig) -> (Vec<Report>, Timeline) {
    let bytes = std::fs::read(log).expect("log file exists");
    let mut engine = ShardedEngine::new(forest.clone(), &factory, cfg);
    let mut reader =
        TraceReader::new(std::io::Cursor::new(&bytes)).expect("logged trace has a valid header");
    let mut chunk = Vec::with_capacity(8 * 1024);
    engine.replay_trace(&mut reader, &mut chunk).expect("logged trace replays");
    let timeline = engine.timeline();
    (engine.into_reports().expect("valid replay"), timeline)
}

/// Starts a service over `forest`, pushes `reqs` through `clients`
/// concurrent connections, then kills it mid-stream (no drain). Returns
/// the log path.
fn run_and_kill(
    forest: &Forest,
    serve_cfg: ServeConfig,
    reqs: &[Request],
    clients: usize,
) -> PathBuf {
    let engine = ShardedEngine::new(forest.clone(), &factory, base_cfg());
    let server = Server::start(engine, serve_cfg).expect("bind loopback");
    let addr = server.addr();
    let per = reqs.len() / clients.max(1);
    std::thread::scope(|scope| {
        for c in 0..clients {
            let slice =
                if c + 1 == clients { &reqs[c * per..] } else { &reqs[c * per..(c + 1) * per] };
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for chunk in slice.chunks(41 + c) {
                    client.submit(chunk).expect("submit");
                }
                client.bye().expect("bye");
            });
        }
    });
    server.kill().expect("kill syncs the log").expect("file log path")
}

/// Resumes from `log` (+ optional snapshot dir), submits `post`, shuts
/// down, and returns the outcome pieces a differential compares.
fn resume_and_finish(
    forest: &Forest,
    serve_cfg: ServeConfig,
    threads: usize,
    post: &[Request],
) -> (otc_serve::ResumeOutcome, Vec<Report>, Report, Timeline, u64) {
    let engine = ShardedEngine::new(forest.clone(), &factory, base_cfg().threads(threads));
    let (server, resumed) = Server::resume(engine, serve_cfg).expect("resume");
    if !post.is_empty() {
        let mut client = Client::connect(server.addr()).expect("connect");
        for chunk in post.chunks(73) {
            client.submit(chunk).expect("submit");
        }
        client.drain().expect("drain");
        client.bye().expect("bye");
    }
    let outcome = server.shutdown().expect("clean shutdown");
    (resumed, outcome.per_shard, outcome.report, outcome.timeline, outcome.requests_served)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance differential: concurrent clients dropped at a
    /// proptest-chosen round, service killed, resumed (snapshot + tail
    /// or pure log replay, at replay threads 1 and nproc), refilled with
    /// fresh traffic — the final outcome is bit-identical to replaying
    /// the final log, and the resume recovered exactly the killed
    /// service's accepted prefix.
    #[test]
    fn kill_and_resume_is_bit_identical_to_the_uninterrupted_run(
        shards in 1usize..5,
        pre in 100usize..900,
        post in 50usize..400,
        cadence_sel in 0usize..3,
        use_nproc in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let tree = Tree::star(64);
        let forest = Forest::partition(&tree, shards);
        let (log, snap_dir) = scratch("prop");
        let snapshots = match cadence_sel {
            0 => None, // never: pure log replay
            1 => Some(SnapshotPolicy { dir: snap_dir.clone(), every: 211 }),
            _ => Some(SnapshotPolicy { dir: snap_dir.clone(), every: 17 }),
        };
        let serve_cfg = ServeConfig {
            log: TraceLog::File(log.clone()),
            snapshots,
            ..ServeConfig::default()
        };

        let reqs = mixed(65, pre + post, seed);
        let logged = run_and_kill(&forest, serve_cfg.clone(), &reqs[..pre], 2);
        prop_assert_eq!(&logged, &log);

        let threads = if use_nproc {
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
        } else {
            1
        };
        let (resumed, per_shard, report, timeline, served) =
            resume_and_finish(&forest, serve_cfg, threads, &reqs[pre..]);
        prop_assert_eq!(resumed.requests_recovered as usize, pre, "kill lost nothing");
        prop_assert_eq!(resumed.truncated_bytes, 0);
        prop_assert_eq!(served as usize, pre + post);
        if cadence_sel == 0 {
            prop_assert!(resumed.snapshot_records.is_none(), "no cadence, pure replay");
        } else if cadence_sel == 2 && pre >= 17 {
            let records = resumed.snapshot_records.expect("a snapshot existed");
            prop_assert!(records <= pre as u64 && records >= 17);
            prop_assert!(resumed.replayed <= pre as u64 - records);
        }

        // Ground truth: replay the final log, at both thread extremes.
        let nproc = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        for replay_threads in [1, nproc] {
            let (truth_shards, truth_timeline) =
                replay_file(&forest, &log, base_cfg().threads(replay_threads));
            prop_assert_eq!(&truth_shards, &per_shard, "per-shard reports diverged");
            prop_assert_eq!(
                otc_sim::aggregate_reports(truth_shards),
                report.clone(),
                "aggregate diverged"
            );
            prop_assert_eq!(&truth_timeline, &timeline, "telemetry windows diverged");
        }
        cleanup(&log);
    }
}

/// Cadence "every request": a snapshot lands after every accepted
/// request and the newest one carries (almost) the whole run, so the
/// resume replays at most the final record.
#[test]
fn snapshot_every_request_leaves_at_most_one_record_to_replay() {
    let tree = Tree::star(32);
    let forest = Forest::partition(&tree, 3);
    let (log, snap_dir) = scratch("every1");
    let serve_cfg = ServeConfig {
        log: TraceLog::File(log.clone()),
        snapshots: Some(SnapshotPolicy { dir: snap_dir.clone(), every: 1 }),
        ..ServeConfig::default()
    };
    let reqs = mixed(33, 60, 0xEA7);
    run_and_kill(&forest, serve_cfg.clone(), &reqs, 1);

    let (resumed, per_shard, report, _timeline, _served) =
        resume_and_finish(&forest, serve_cfg, 1, &[]);
    let records = resumed.snapshot_records.expect("snapshots at every request");
    assert_eq!(resumed.requests_recovered, 60);
    assert!(
        resumed.replayed <= 1,
        "cadence 1 must leave at most the in-flight record to replay, got {}",
        resumed.replayed
    );
    assert_eq!(records + resumed.replayed, 60);

    let (truth_shards, _) = replay_file(&forest, &log, base_cfg());
    assert_eq!(truth_shards, per_shard);
    assert_eq!(otc_sim::aggregate_reports(truth_shards), report);
    cleanup(&log);
}

/// A corrupted newest snapshot is skipped (checksum refuses it) and the
/// resume falls back to an older snapshot or pure replay — never a
/// panic, never a divergent restore.
#[test]
fn corrupt_newest_snapshot_falls_back() {
    let tree = Tree::star(48);
    let forest = Forest::partition(&tree, 2);
    let (log, snap_dir) = scratch("corrupt");
    let serve_cfg = ServeConfig {
        log: TraceLog::File(log.clone()),
        snapshots: Some(SnapshotPolicy { dir: snap_dir.clone(), every: 50 }),
        ..ServeConfig::default()
    };
    let reqs = mixed(49, 500, 0xBADCAB);
    run_and_kill(&forest, serve_cfg.clone(), &reqs, 1);

    // Corrupt the newest snapshot: flip one byte in the middle.
    let mut snaps: Vec<PathBuf> = std::fs::read_dir(&snap_dir)
        .expect("snapshot dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "otcs"))
        .collect();
    snaps.sort();
    assert!(snaps.len() >= 2, "cadence 50 over 500 requests yields many snapshots");
    let newest = snaps.last().expect("nonempty");
    let mut bytes = std::fs::read(newest).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(newest, &bytes).expect("write corrupted snapshot");

    let (resumed, per_shard, report, _timeline, _served) =
        resume_and_finish(&forest, serve_cfg, 1, &reqs[..0]);
    assert!(resumed.snapshots_skipped >= 1, "the corrupt snapshot was skipped");
    let records = resumed.snapshot_records.expect("an older snapshot still works");
    assert!(records < 500, "fell back behind the corrupted newest cut");
    assert_eq!(resumed.requests_recovered, 500);

    let (truth_shards, _) = replay_file(&forest, &log, base_cfg());
    assert_eq!(truth_shards, per_shard);
    assert_eq!(otc_sim::aggregate_reports(truth_shards), report);
    cleanup(&log);
}

/// A torn log tail (crash mid-record-write) recovers to the longest
/// consistent prefix: the mangled bytes are cut off, and the resumed
/// service equals a replay of that prefix.
#[test]
fn torn_log_tail_recovers_the_longest_consistent_prefix() {
    let tree = Tree::star(200);
    let forest = Forest::partition(&tree, 2);
    let (log, snap_dir) = scratch("torn");
    let serve_cfg = ServeConfig {
        log: TraceLog::File(log.clone()),
        snapshots: Some(SnapshotPolicy { dir: snap_dir.clone(), every: 100 }),
        ..ServeConfig::default()
    };
    // Nodes ≥ 64 make every record a multi-byte varint, so chopping one
    // byte tears the final record rather than deleting it cleanly.
    let reqs: Vec<Request> = mixed(200, 400, 0x7012)
        .into_iter()
        .map(|r| Request { node: NodeId(64 + r.node.0 % 137), ..r })
        .collect();
    run_and_kill(&forest, serve_cfg.clone(), &reqs, 1);

    let full_len = std::fs::metadata(&log).expect("log").len();
    let file = std::fs::OpenOptions::new().write(true).open(&log).expect("open log");
    file.set_len(full_len - 1).expect("tear the final record");
    drop(file);

    let (resumed, per_shard, report, _timeline, served) =
        resume_and_finish(&forest, serve_cfg, 1, &[]);
    assert_eq!(resumed.truncated_bytes, 1, "exactly the torn byte was cut");
    assert_eq!(resumed.requests_recovered, 399, "the torn record is gone, its prefix is not");
    assert_eq!(served, 399);

    // The shutdown re-finished the (truncated) log; its replay is the
    // ground truth for the recovered prefix.
    let (truth_shards, _) = replay_file(&forest, &log, base_cfg());
    assert_eq!(truth_shards, per_shard);
    assert_eq!(otc_sim::aggregate_reports(truth_shards), report);
    cleanup(&log);
}

/// Snapshot + tail replay and pure log replay land on exactly the same
/// state: resuming the same crash twice — once with the snapshot dir,
/// once without — produces identical outcomes.
#[test]
fn snapshot_recovery_equals_pure_log_replay() {
    let tree = Tree::star(40);
    let forest = Forest::partition(&tree, 3);
    let (log, snap_dir) = scratch("equiv");
    let serve_cfg = ServeConfig {
        log: TraceLog::File(log.clone()),
        snapshots: Some(SnapshotPolicy { dir: snap_dir.clone(), every: 64 }),
        ..ServeConfig::default()
    };
    let reqs = mixed(41, 700, 0x51AB);
    run_and_kill(&forest, serve_cfg.clone(), &reqs, 2);

    // Pure replay first (it rewrites nothing the snapshot path needs).
    let pure_cfg = ServeConfig { snapshots: None, ..serve_cfg.clone() };
    let (pure_resumed, pure_shards, pure_report, pure_timeline, _) =
        resume_and_finish(&forest, pure_cfg, 1, &[]);
    assert!(pure_resumed.snapshot_records.is_none());

    let (snap_resumed, snap_shards, snap_report, snap_timeline, _) =
        resume_and_finish(&forest, serve_cfg, 1, &[]);
    assert!(snap_resumed.snapshot_records.is_some(), "cadence 64 over 700 requests snapshots");

    assert_eq!(pure_shards, snap_shards, "per-shard reports agree");
    assert_eq!(pure_report, snap_report, "aggregates agree");
    assert_eq!(pure_timeline, snap_timeline, "telemetry agrees");
    cleanup(&log);
}

/// Configuration errors are refused up front: a snapshot cadence without
/// a trace log, and a resume without a file log.
#[test]
fn snapshot_and_resume_misconfigurations_are_refused() {
    let tree = Tree::star(8);
    let engine =
        ShardedEngine::new(Forest::partition(&tree, 2), &factory, EngineConfig::new(ALPHA));
    let Err(err) = Server::start(
        engine,
        ServeConfig {
            log: TraceLog::Off,
            snapshots: Some(SnapshotPolicy { dir: std::env::temp_dir(), every: 10 }),
            ..ServeConfig::default()
        },
    ) else {
        panic!("snapshots without a log must be refused");
    };
    assert!(err.to_string().contains("trace log"), "got: {err}");

    let engine =
        ShardedEngine::new(Forest::partition(&tree, 2), &factory, EngineConfig::new(ALPHA));
    let Err(err) = Server::resume(engine, ServeConfig::default()) else {
        panic!("resume without a file log must be refused");
    };
    assert!(err.to_string().contains("TraceLog::File"), "got: {err}");
}
