//! End-to-end pins for the serving runtime, centred on the repo's core
//! invariant: **the live service's cost is bit-identical to
//! `replay_trace` of the trace it logged** — under concurrent clients,
//! pipelining, multiple shards, and any replay thread count.

use std::sync::Arc;

use otc_core::forest::{Forest, ShardId};
use otc_core::policy::CachePolicy;
use otc_core::request::Request;
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::{NodeId, Tree};
use otc_serve::{Client, ServeConfig, Server, TraceLog};
use otc_sim::engine::{EngineConfig, ShardedEngine};
use otc_sim::Report;
use otc_util::SplitMix64;
use otc_workloads::trace::TraceReader;

const ALPHA: u64 = 2;
const CAPACITY: usize = 6;

fn factory(tree: Arc<Tree>, _s: ShardId) -> Box<dyn CachePolicy> {
    Box::new(TcFast::new(tree, TcConfig::new(ALPHA, CAPACITY)))
}

fn mixed(universe: usize, len: usize, seed: u64) -> Vec<Request> {
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|_| {
            let v = NodeId(rng.index(universe) as u32);
            if rng.chance(0.4) {
                Request::neg(v)
            } else {
                Request::pos(v)
            }
        })
        .collect()
}

/// Replays `trace_bytes` through a fresh engine and returns the
/// per-shard reports.
fn replay(forest: &Forest, trace_bytes: &[u8], cfg: EngineConfig) -> Vec<Report> {
    let mut engine = ShardedEngine::new(forest.clone(), &factory, cfg);
    let mut reader = TraceReader::new(std::io::Cursor::new(trace_bytes))
        .expect("logged trace has a valid header");
    let mut chunk = Vec::with_capacity(8 * 1024);
    engine.replay_trace(&mut reader, &mut chunk).expect("logged trace replays");
    engine.into_reports().expect("valid replay")
}

/// The acceptance-criteria differential: ≥4 concurrent clients over a
/// ≥4-shard forest; the logged OTCT trace replays to the live service's
/// per-shard and aggregated reports exactly, at replay threads ∈
/// {1, nproc}.
#[test]
fn live_service_equals_offline_replay_of_its_log() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 3000;

    let tree = Tree::star(64);
    let forest = Forest::partition(&tree, 4);
    let engine_cfg = EngineConfig::new(ALPHA).audit_every(512).telemetry(true);
    let engine = ShardedEngine::new(forest.clone(), &factory, engine_cfg);
    let server = Server::start(engine, ServeConfig::default()).expect("bind loopback");
    assert_eq!(server.num_shards(), 4);
    let addr = server.addr();

    // Concurrent clients, mixed batch sizes and pipelining depths, all
    // interleaving arbitrarily at the ingress.
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let reqs = mixed(65, PER_CLIENT, 0xC11E57 + c as u64);
                let mut client = Client::connect(addr).expect("connect");
                assert_eq!(client.universe(), 65);
                assert_eq!(client.shards(), 4);
                let mut accepted = 0;
                if c % 2 == 0 {
                    // Synchronous, odd batch sizes.
                    for chunk in reqs.chunks(37 + c) {
                        accepted += client.submit(chunk).expect("submit");
                    }
                } else {
                    // Pipelined: several frames in flight at once.
                    for chunk in reqs.chunks(64) {
                        client.send(chunk).expect("send");
                        if client.inflight() >= 8 {
                            accepted += client.wait_acks().expect("acks");
                        }
                    }
                    accepted += client.wait_acks().expect("acks");
                }
                assert_eq!(accepted as usize, PER_CLIENT);
                client.drain().expect("drain barrier");
                client.bye().expect("goodbye");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let outcome = server.shutdown().expect("clean shutdown");
    assert_eq!(outcome.requests_served as usize, CLIENTS * PER_CLIENT);
    assert_eq!(outcome.report.rounds as usize, CLIENTS * PER_CLIENT);
    let trace = outcome.trace_bytes.expect("memory trace log");

    // The log itself is a well-formed OTCT trace with full provenance.
    let reader = TraceReader::new(std::io::Cursor::new(&trace)).expect("valid header");
    assert_eq!(reader.header().generator, "otc-serve");
    assert_eq!(reader.header().universe, 65);
    assert_eq!(reader.remaining(), Some((CLIENTS * PER_CLIENT) as u64));

    // Replay ≡ live, per shard and aggregated, at threads ∈ {1, nproc}.
    let nproc = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    for threads in [1, nproc] {
        let per_shard = replay(&forest, &trace, engine_cfg.threads(threads));
        assert_eq!(
            per_shard, outcome.per_shard,
            "per-shard replay at {threads} threads must be bit-identical to the live run"
        );
        let aggregated = otc_sim::aggregate_reports(per_shard);
        assert_eq!(aggregated, outcome.report, "aggregate replay at {threads} threads");
    }

    // Telemetry survived the detach: windows partition the whole run.
    assert!(!outcome.timeline.windows.is_empty());
    assert_eq!(
        outcome.timeline.sum(|w| w.rounds) as usize,
        CLIENTS * PER_CLIENT,
        "windows partition every round exactly"
    );
    assert_eq!(
        outcome.timeline.sum(|w| w.paid_rounds)
            + ALPHA * outcome.timeline.sum(|w| w.nodes_fetched + w.nodes_evicted + w.nodes_flushed),
        outcome.report.cost.total(),
        "windows reassemble the aggregate cost"
    );
}

/// Stats are exact after a drain barrier, and the server-side snapshot
/// agrees with the wire one.
#[test]
fn stats_are_exact_after_drain() {
    let tree = Tree::star(24);
    let forest = Forest::partition(&tree, 3);
    let engine = ShardedEngine::new(forest.clone(), &factory, EngineConfig::new(ALPHA));
    let server =
        Server::start(engine, ServeConfig { log: TraceLog::Off, ..ServeConfig::default() })
            .expect("bind");

    let reqs = mixed(25, 2000, 77);
    let mut client = Client::connect(server.addr()).expect("connect");
    client.submit(&reqs).expect("submit");
    client.drain().expect("drain");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.rounds, 2000);

    // Offline ground truth on the same sequence.
    let mut offline = ShardedEngine::new(forest, &factory, EngineConfig::new(ALPHA));
    offline.submit_batch(&reqs).expect("valid");
    let report = offline.into_report().expect("valid");
    assert_eq!(stats.paid_rounds, report.paid_rounds);
    assert_eq!(stats.service_cost, report.cost.service);
    assert_eq!(stats.reorg_cost, report.cost.reorg);
    assert_eq!(server.stats(), stats, "server-side and wire snapshots agree");

    client.bye().expect("bye");
    let outcome = server.shutdown().expect("clean shutdown");
    assert_eq!(outcome.report, report, "no-log service still matches offline batch");
    assert!(outcome.trace_bytes.is_none());
    assert!(outcome.trace_path.is_none());
}

/// Out-of-universe requests are rejected atomically — the offending
/// batch leaves no trace in the log, the queues, or the reports — and
/// the connection is closed, while other connections keep working.
#[test]
fn out_of_universe_batches_are_rejected_atomically() {
    let tree = Tree::star(8);
    let forest = Forest::partition(&tree, 2);
    let engine = ShardedEngine::new(forest.clone(), &factory, EngineConfig::new(ALPHA));
    let server = Server::start(engine, ServeConfig::default()).expect("bind");

    let mut bad = Client::connect(server.addr()).expect("connect");
    let err = bad
        .submit(&[Request::pos(NodeId(1)), Request::pos(NodeId(999))])
        .expect_err("out-of-universe batch must be rejected");
    assert!(err.to_string().contains("999"), "got: {err}");

    // A fresh connection still serves (the service is not poisoned).
    let good_reqs = mixed(9, 500, 5);
    let mut good = Client::connect(server.addr()).expect("connect");
    good.submit(&good_reqs).expect("good batch");
    good.drain().expect("drain");
    good.bye().expect("bye");

    let outcome = server.shutdown().expect("rejection must not poison the service");
    assert_eq!(outcome.requests_served, 500, "the rejected batch was never accepted");
    // The log contains exactly the good requests; replay matches.
    let trace = outcome.trace_bytes.expect("memory log");
    let per_shard = replay(&forest, &trace, EngineConfig::new(ALPHA));
    assert_eq!(per_shard, outcome.per_shard);
}

/// A protocol-corrupt frame gets an Error reply and a closed connection;
/// a version-mismatched Hello is refused.
#[test]
fn corrupt_frames_and_bad_handshakes_are_refused() {
    use std::io::{Read, Write};

    let tree = Tree::star(4);
    let engine =
        ShardedEngine::new(Forest::partition(&tree, 2), &factory, EngineConfig::new(ALPHA));
    let server = Server::start(engine, ServeConfig::default()).expect("bind");

    // Hand-rolled bad handshake: wrong magic.
    let mut raw = std::net::TcpStream::connect(server.addr()).expect("connect");
    raw.write_all(&7u32.to_le_bytes()).expect("len");
    raw.write_all(&[0x01]).expect("opcode");
    raw.write_all(b"XXXX\x01\x00").expect("payload");
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).expect("server closes after Error");
    // The reply is one Error frame: 4-byte len, opcode 0xEE, message.
    assert!(reply.len() > 5);
    assert_eq!(reply[4], 0xEE, "server answers corruption with an Error frame");
    let message = std::str::from_utf8(&reply[5..]).expect("UTF-8 error text");
    assert!(message.contains("magic"), "got: {message}");

    // Version mismatch through a hand-rolled Hello.
    let mut raw = std::net::TcpStream::connect(server.addr()).expect("connect");
    raw.write_all(&7u32.to_le_bytes()).expect("len");
    raw.write_all(&[0x01]).expect("opcode");
    raw.write_all(b"OTCW\xFF\x00").expect("payload: version 255");
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).expect("server closes after Error");
    assert_eq!(reply[4], 0xEE);
    let message = std::str::from_utf8(&reply[5..]).expect("UTF-8 error text");
    assert!(message.contains("version"), "got: {message}");

    // The service survives both abuses.
    let mut client = Client::connect(server.addr()).expect("connect");
    client.submit(&[Request::pos(NodeId(1))]).expect("still serving");
    client.bye().expect("bye");
    server.shutdown().expect("clean shutdown");
}

/// An idle service shuts down cleanly and reports zeros.
#[test]
fn idle_shutdown_is_clean() {
    let tree = Tree::star(4);
    let engine =
        ShardedEngine::new(Forest::partition(&tree, 2), &factory, EngineConfig::new(ALPHA));
    let server = Server::start(engine, ServeConfig::default()).expect("bind");
    let outcome = server.shutdown().expect("clean shutdown");
    assert_eq!(outcome.requests_served, 0);
    assert_eq!(outcome.report.rounds, 0);
    assert_eq!(outcome.report.cost.total(), 0);
    assert_eq!(outcome.per_shard.len(), 2);
    // An empty log is still a valid OTCT trace declaring zero records.
    let trace = outcome.trace_bytes.expect("memory log");
    let mut reader = TraceReader::new(std::io::Cursor::new(&trace)).expect("valid header");
    assert_eq!(reader.remaining(), Some(0));
    assert!(reader.next().is_none());
}

/// File-backed logging writes a replayable OTCT trace to disk.
#[test]
fn file_backed_log_replays() {
    let tree = Tree::star(16);
    let forest = Forest::partition(&tree, 4);
    let path = std::env::temp_dir().join(format!("otc_serve_log_test_{}.otct", std::process::id()));
    let engine = ShardedEngine::new(forest.clone(), &factory, EngineConfig::new(ALPHA));
    let server = Server::start(
        engine,
        ServeConfig { log: TraceLog::File(path.clone()), ..ServeConfig::default() },
    )
    .expect("bind");

    let reqs = mixed(17, 1200, 99);
    let mut client = Client::connect(server.addr()).expect("connect");
    for chunk in reqs.chunks(100) {
        client.submit(chunk).expect("submit");
    }
    client.bye().expect("bye");
    let outcome = server.shutdown().expect("clean shutdown");
    assert_eq!(outcome.trace_path.as_deref(), Some(path.as_path()));

    let bytes = std::fs::read(&path).expect("trace file exists");
    let per_shard = replay(&forest, &bytes, EngineConfig::new(ALPHA));
    assert_eq!(per_shard, outcome.per_shard, "file log replays bit-identically");
    std::fs::remove_file(&path).ok();
}
