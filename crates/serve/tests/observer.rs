//! The zero-observer-effect differentials (invariant #8).
//!
//! Observation must never change results: a service run with metrics
//! off, with metrics on, and with metrics on while a concurrent client
//! hammers live scrapes must produce **bit-identical** trace bytes,
//! per-shard reports, aggregates and telemetry — and the logged trace
//! must still replay to the same reports at any thread count. The same
//! holds across rebalancing (identical migration schedules) and across
//! a kill/resume cycle (identical recovered outcomes, plus the kill
//! dump parses). The static half of the invariant is otc-lint R7
//! (determinism crates cannot name `otc_obs`); this file is the
//! dynamic half.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use otc_core::forest::{Forest, ShardId};
use otc_core::policy::{CachePolicy, PolicyFactory};
use otc_core::request::Request;
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::{NodeId, Tree};
use otc_obs::{MetricValue, MetricsSnapshot};
use otc_serve::{Client, RebalancePolicy, ServeConfig, ServeOutcome, Server, TraceLog};
use otc_sim::engine::{EngineConfig, ShardedEngine};
use otc_sim::{RebalanceConfig, Report};
use otc_util::SplitMix64;
use otc_workloads::trace::TraceReader;

const ALPHA: u64 = 2;
const CAPACITY: usize = 6;

fn factory(tree: Arc<Tree>, _s: ShardId) -> Box<dyn CachePolicy> {
    Box::new(TcFast::new(tree, TcConfig::new(ALPHA, CAPACITY)))
}

fn base_cfg() -> EngineConfig {
    EngineConfig::new(ALPHA).audit_every(128).telemetry(true)
}

fn nproc() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

fn mixed(universe: usize, len: usize, seed: u64) -> Vec<Request> {
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|_| {
            let v = NodeId(rng.index(universe) as u32);
            if rng.chance(0.4) {
                Request::neg(v)
            } else {
                Request::pos(v)
            }
        })
        .collect()
}

/// A unique scratch area per test invocation.
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let id = SEQ.fetch_add(1, Ordering::Relaxed);
    let root = std::env::temp_dir().join(format!("otc_observer_{tag}_{}_{id}", std::process::id()));
    std::fs::create_dir_all(&root).expect("scratch dir");
    root
}

/// Runs one service over `forest` with the given metrics setting,
/// submitting `reqs` from a single sequential client (so the accepted
/// global order — and therefore the logged bytes — is identical across
/// runs). With `scrapers > 0`, that many concurrent connections hammer
/// live `Metrics` scrapes for the whole run.
fn run_once(forest: &Forest, reqs: &[Request], metrics: bool, scrapers: usize) -> ServeOutcome {
    let engine = ShardedEngine::new(forest.clone(), &factory, base_cfg());
    let server = Server::start(engine, ServeConfig { metrics, ..ServeConfig::default() })
        .expect("bind loopback");
    let addr = server.addr();
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..scrapers {
            scope.spawn(|| {
                let mut scraper = Client::connect(addr).expect("scraper connects");
                let mut scrapes = 0u64;
                while !done.load(Ordering::Relaxed) || scrapes == 0 {
                    let snap = scraper.scrape().expect("live scrape");
                    assert_eq!(
                        MetricsSnapshot::from_json(&snap.to_json()).expect("canonical json"),
                        snap,
                        "every live scrape round-trips through the codec"
                    );
                    scrapes += 1;
                }
                scraper.bye().expect("scraper bye");
            });
        }
        let mut client = Client::connect(addr).expect("connect");
        for chunk in reqs.chunks(53) {
            client.submit(chunk).expect("submit");
        }
        client.drain().expect("drain");
        client.bye().expect("bye");
        done.store(true, Ordering::Relaxed);
    });
    server.shutdown().expect("clean shutdown")
}

/// Replays `trace_bytes` and returns the per-shard reports.
fn replay(forest: &Forest, trace_bytes: &[u8], cfg: EngineConfig) -> Vec<Report> {
    let mut engine = ShardedEngine::new(forest.clone(), &factory, cfg);
    let mut reader =
        TraceReader::new(std::io::Cursor::new(trace_bytes)).expect("valid trace header");
    let mut chunk = Vec::with_capacity(4 * 1024);
    engine.replay_trace(&mut reader, &mut chunk).expect("trace replays");
    engine.into_reports().expect("valid replay")
}

/// The headline differential: metrics off ≡ metrics on ≡ metrics on
/// under concurrent live scrapes — bit-identical traces, reports and
/// telemetry — and the shared trace replays to the same reports at
/// threads {1, nproc}.
#[test]
fn observation_never_changes_results() {
    let tree = Tree::star(48);
    let forest = Forest::partition(&tree, 4);
    let reqs = mixed(49, 6000, 0x0B5E);

    let off = run_once(&forest, &reqs, false, 0);
    let on = run_once(&forest, &reqs, true, 0);
    let scraped = run_once(&forest, &reqs, true, 2);

    assert!(off.metrics.is_none(), "metrics-off outcome carries no snapshot");
    assert!(on.metrics.is_some() && scraped.metrics.is_some());

    let trace = off.trace_bytes.as_deref().expect("memory log");
    for (name, other) in [("metrics on", &on), ("metrics on + live scrapes", &scraped)] {
        assert_eq!(trace, other.trace_bytes.as_deref().expect("memory log"), "{name}: trace");
        assert_eq!(off.per_shard, other.per_shard, "{name}: per-shard reports");
        assert_eq!(off.report, other.report, "{name}: aggregate report");
        assert_eq!(off.timeline.windows, other.timeline.windows, "{name}: telemetry");
        assert_eq!(off.requests_served, other.requests_served, "{name}: accepted count");
    }

    for threads in [1, nproc()] {
        let per_shard = replay(&forest, trace, base_cfg().threads(threads));
        assert_eq!(per_shard, off.per_shard, "replay at {threads} threads ≡ every live variant");
    }
}

/// Observation is also invisible to the rebalancer: a skewed run that
/// actually migrates cells produces the identical trace (including the
/// interleaved rebalance records) and the identical migration summary
/// with metrics on and off.
#[test]
fn rebalance_schedule_is_identical_with_metrics_on() {
    let tree = Tree::star(32);
    let forest = Forest::partition(&tree, 8);
    let mut rng = SplitMix64::new(0x5CEB);
    let reqs: Vec<Request> = (0..4000)
        .map(|_| {
            let v = if rng.chance(0.7) { NodeId(3) } else { NodeId(rng.index(33) as u32) };
            if rng.chance(0.3) {
                Request::neg(v)
            } else {
                Request::pos(v)
            }
        })
        .collect();
    let rcfg = RebalanceConfig::new(200).threshold_x1000(1000);
    let policy = || {
        RebalancePolicy::new(
            3,
            rcfg,
            Arc::new(factory as fn(Arc<Tree>, ShardId) -> Box<dyn CachePolicy>)
                as Arc<dyn PolicyFactory + Send + Sync>,
        )
    };

    let run = |metrics: bool| {
        let engine = ShardedEngine::new(forest.clone(), &factory, base_cfg());
        let cfg = ServeConfig { metrics, rebalance: Some(policy()), ..ServeConfig::default() };
        let server = Server::start(engine, cfg).expect("bind loopback");
        let mut client = Client::connect(server.addr()).expect("connect");
        for chunk in reqs.chunks(61) {
            client.submit(chunk).expect("submit");
        }
        client.drain().expect("drain");
        client.bye().expect("bye");
        server.shutdown().expect("clean shutdown")
    };

    let off = run(false);
    let on = run(true);
    let summary = off.rebalance.clone().expect("rebalancing ran");
    assert!(summary.boundaries > 0, "the skew must cross decision boundaries");
    assert_eq!(off.trace_bytes, on.trace_bytes, "trace incl. rebalance records");
    assert_eq!(Some(summary), on.rebalance, "migration schedule and final placement");
    assert_eq!(off.per_shard, on.per_shard);
    assert_eq!(off.report, on.report);
}

/// Kill/resume differential: a metrics-on service killed mid-stream
/// writes a parseable final dump next to the synced log, and the
/// resumed run's outcome is bit-identical to the metrics-off twin —
/// at replay threads {1, nproc}.
#[test]
fn kill_dump_parses_and_resume_matches_metrics_off_twin() {
    let tree = Tree::star(40);
    let forest = Forest::partition(&tree, 4);
    let reqs = mixed(41, 3000, 0xD1A6);
    let cut = 1700;

    let run = |metrics: bool, threads: usize, root: &Path| -> (ServeOutcome, Option<PathBuf>) {
        let log = root.join("serve.otct");
        let serve_cfg =
            ServeConfig { log: TraceLog::File(log.clone()), metrics, ..ServeConfig::default() };
        let engine = ShardedEngine::new(forest.clone(), &factory, base_cfg());
        let server = Server::start(engine, serve_cfg.clone()).expect("bind loopback");
        let mut client = Client::connect(server.addr()).expect("connect");
        for chunk in reqs[..cut].chunks(47) {
            client.submit(chunk).expect("submit");
        }
        client.drain().expect("drain before kill");
        client.bye().expect("bye");
        let logged = server.kill().expect("kill syncs").expect("file log path");
        let dump = metrics.then(|| {
            let mut p = logged.clone().into_os_string();
            p.push(".metrics.json");
            PathBuf::from(p)
        });

        let engine = ShardedEngine::new(forest.clone(), &factory, base_cfg().threads(threads));
        let (server, resumed) = Server::resume(engine, serve_cfg).expect("resume");
        assert_eq!(resumed.requests_recovered as usize, cut, "kill lost nothing");
        let mut client = Client::connect(server.addr()).expect("reconnect");
        for chunk in reqs[cut..].chunks(59) {
            client.submit(chunk).expect("submit tail");
        }
        client.drain().expect("drain");
        client.bye().expect("bye");
        (server.shutdown().expect("clean shutdown"), dump)
    };

    let off_root = scratch("off");
    let (off, _) = run(false, 1, &off_root);
    assert_eq!(off.requests_served as usize, reqs.len());

    for threads in [1, nproc()] {
        let on_root = scratch("on");
        let (on, dump) = run(true, threads, &on_root);
        let dump = dump.expect("metrics-on kill names a dump");
        let json = std::fs::read_to_string(&dump).expect("kill wrote the final dump");
        let snap = MetricsSnapshot::from_json(&json).expect("dump is canonical");
        assert!(!snap.metrics.is_empty(), "the dump holds the pre-kill surface");
        assert_eq!(off.per_shard, on.per_shard, "resume at {threads} threads: per-shard");
        assert_eq!(off.report, on.report, "resume at {threads} threads: aggregate");
        assert_eq!(off.timeline.windows, on.timeline.windows, "telemetry");
        assert!(on.metrics.is_some(), "the resumed service served a fresh surface");
        std::fs::remove_dir_all(&on_root).ok();
    }
    std::fs::remove_dir_all(&off_root).ok();
}

/// A metrics-off server still answers `Metrics`: with the valid empty
/// exposition, not an error — scraping is always safe to attempt.
#[test]
fn scrape_of_a_metrics_off_server_is_the_empty_exposition() {
    let tree = Tree::star(8);
    let forest = Forest::partition(&tree, 2);
    let engine = ShardedEngine::new(forest, &factory, EngineConfig::new(ALPHA));
    let server = Server::start(engine, ServeConfig::default()).expect("bind");
    assert!(server.metrics().is_none());

    let mut client = Client::connect(server.addr()).expect("connect");
    assert_eq!(client.scrape_json().expect("scrape"), MetricsSnapshot::default().to_json());
    assert!(client.scrape().expect("typed scrape").metrics.is_empty());
    client.bye().expect("bye");
    server.shutdown().expect("clean shutdown");
}

/// The scrape carries the advertised stage surface with real samples:
/// every stage histogram series exists, the drained batches and
/// accepted requests counted, and the wire scrape equals the
/// server-side one after a drain barrier.
#[test]
fn scrape_contains_every_stage_with_samples() {
    let tree = Tree::star(24);
    let forest = Forest::partition(&tree, 3);
    let engine = ShardedEngine::new(forest, &factory, EngineConfig::new(ALPHA));
    let server = Server::start(engine, ServeConfig { metrics: true, ..ServeConfig::default() })
        .expect("bind");

    let reqs = mixed(25, 2000, 99);
    let mut client = Client::connect(server.addr()).expect("connect");
    client.submit(&reqs).expect("submit");
    client.drain().expect("drain");
    let snap = client.scrape().expect("scrape");

    let find = |name: &str| -> Vec<&MetricValue> {
        snap.metrics.iter().filter(|r| r.name == name).map(|r| &r.value).collect()
    };
    let counter = |name: &str| -> u64 {
        match find(name).as_slice() {
            [MetricValue::Counter(n)] => *n,
            other => panic!("{name}: expected one counter, got {other:?}"),
        }
    };
    for stage in ["otc_serve_accept_nanos", "otc_serve_lock_hold_nanos", "otc_serve_flush_nanos"] {
        match find(stage).as_slice() {
            [MetricValue::Histogram(h)] => {
                assert!(h.count > 0, "{stage}: must have samples");
                assert!(h.p50() <= h.p99() && h.p99() <= h.p999(), "{stage}: quantile order");
            }
            other => panic!("{stage}: expected one histogram, got {other:?}"),
        }
    }
    assert_eq!(find("otc_serve_ring_wait_nanos").len(), 3, "one ring-wait series per group");
    let drained: u64 = find("otc_serve_drain_nanos")
        .iter()
        .map(|v| match v {
            MetricValue::Histogram(h) => h.count,
            other => panic!("drain series must be histograms, got {other:?}"),
        })
        .sum();
    assert!(drained > 0, "cell workers drained batches");
    assert_eq!(counter("otc_serve_requests_total"), 2000);
    assert!(counter("otc_serve_batches_total") > 0);
    assert_eq!(counter("otc_serve_connections_total"), 1);
    assert_eq!(counter("otc_serve_scrapes_total"), 1, "this scrape is the first");

    // The prometheus rendering exposes the same series names.
    let prom = snap.to_prometheus();
    assert!(prom.contains("otc_serve_drain_nanos_bucket"), "{prom}");
    assert!(prom.contains("otc_serve_requests_total 2000"), "{prom}");

    // After the drain barrier nothing moves: the server-side snapshot
    // taken now differs from the wire one only by that scrape's bump.
    let local = server.metrics().expect("server-side scrape");
    assert_eq!(local.metrics.len(), snap.metrics.len());

    client.bye().expect("bye");
    let outcome = server.shutdown().expect("clean shutdown");
    let final_snap = outcome.metrics.expect("metrics-on outcome");
    assert!(!final_snap.metrics.is_empty());
}
