//! Trace replay and windowed telemetry, pinned end to end:
//!
//! * a trace recorded from any generator and replayed through
//!   [`ShardedEngine::replay_trace`] produces a **bit-identical** report
//!   to the in-memory run that generated it (the acceptance criterion of
//!   the trace subsystem);
//! * a [`Timeline`]'s windows are exact: they partition the rounds,
//!   their counters sum to the aggregate [`Report`], and every window
//!   except a trailing partial spans exactly `audit_every` rounds.

use std::io::Cursor;
use std::sync::Arc;

use otc_core::forest::{Forest, ShardId};
use otc_core::policy::CachePolicy;
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::Tree;
use otc_core::Request;
use otc_sim::engine::{EngineConfig, ShardedEngine};
use otc_sim::Report;
use otc_util::SplitMix64;
use otc_workloads::trace::{Trace, TraceHeader, TraceReader};
use otc_workloads::{
    markov_bursty, multi_tenant_stream, random_attachment, MarkovBurstyConfig, TenantProfile,
};

fn tc_factory(alpha: u64, capacity: usize) -> impl Fn(Arc<Tree>, ShardId) -> Box<dyn CachePolicy> {
    move |tree, _| Box::new(TcFast::new(tree, TcConfig::new(alpha, capacity)))
}

fn run_in_memory(forest: &Forest, reqs: &[Request], cfg: EngineConfig) -> Report {
    let factory = tc_factory(cfg.alpha, 24);
    let mut engine = ShardedEngine::new(forest.clone(), &factory, cfg);
    engine.submit_batch(reqs).expect("valid");
    engine.into_report().expect("valid")
}

fn replay(forest: &Forest, trace_bytes: &[u8], cfg: EngineConfig, chunk_cap: usize) -> Report {
    let factory = tc_factory(cfg.alpha, 24);
    let mut engine = ShardedEngine::new(forest.clone(), &factory, cfg);
    let mut reader = TraceReader::new(Cursor::new(trace_bytes)).expect("valid header");
    let mut chunk = Vec::with_capacity(chunk_cap);
    engine.replay_trace(&mut reader, &mut chunk).expect("valid replay");
    engine.into_report().expect("valid")
}

#[test]
fn recorded_markov_trace_replays_bit_identically() {
    let mut rng = SplitMix64::new(0x7EAC);
    let tree = Arc::new(random_attachment(400, &mut rng));
    let cfg = MarkovBurstyConfig { len: 30_000, alpha: 3, ..MarkovBurstyConfig::default() };
    let reqs = markov_bursty(&tree, cfg, &mut rng);
    let trace = Trace {
        header: TraceHeader::single_tree(tree.len(), 0x7EAC, "markov-bursty"),
        requests: reqs.clone(),
    };
    let bytes = trace.to_bytes();

    let forest = Forest::single(Arc::clone(&tree));
    let engine_cfg = EngineConfig::new(3);
    let base = run_in_memory(&forest, &reqs, engine_cfg);
    // Chunk sizes that divide, straddle, and exceed the stream.
    for chunk_cap in [64usize, 1000, 30_000, 1 << 20] {
        let replayed = replay(&forest, &bytes, engine_cfg, chunk_cap);
        assert_eq!(replayed, base, "replay must be bit-identical (chunk {chunk_cap})");
    }
}

#[test]
fn recorded_multi_tenant_trace_replays_across_shards_and_threads() {
    let mut rng = SplitMix64::new(0x3EAD);
    let tree = random_attachment(600, &mut rng);
    let forest = Forest::partition(&tree, 4);
    let profiles = [
        TenantProfile { weight: 5.0, theta: 1.2, update_p: 0.02 },
        TenantProfile { weight: 2.0, theta: 0.7, update_p: 0.0 },
        TenantProfile { weight: 1.0, theta: 0.0, update_p: 0.1 },
        TenantProfile { weight: 1.0, theta: 1.0, update_p: 0.0 },
    ];
    let reqs = multi_tenant_stream(&forest, &profiles, 40_000, 3, &mut rng);
    let trace = Trace {
        header: TraceHeader {
            universe: forest.global_len() as u32,
            shard_map: (0..forest.num_shards())
                .map(|s| forest.tree(ShardId(s as u32)).len() as u32)
                .collect(),
            seed: 0x3EAD,
            generator: "multi-tenant".to_string(),
        },
        requests: reqs.clone(),
    };
    let bytes = trace.to_bytes();

    for threads in [1usize, 4] {
        let cfg = EngineConfig::new(3).threads(threads).audit_every(512);
        let base = run_in_memory(&forest, &reqs, cfg);
        let replayed = replay(&forest, &bytes, cfg, 4096);
        assert_eq!(replayed, base, "sharded replay must be bit-identical ({threads} threads)");
    }
}

#[test]
fn replay_rejects_universe_mismatch() {
    let tree = Arc::new(Tree::star(8));
    let trace = Trace {
        header: TraceHeader::single_tree(99, 0, "wrong-universe"),
        requests: vec![Request::pos(otc_core::tree::NodeId(1))],
    };
    let bytes = trace.to_bytes();
    let factory = tc_factory(2, 4);
    let mut engine =
        ShardedEngine::new(Forest::single(Arc::clone(&tree)), &factory, EngineConfig::new(2));
    let mut reader = TraceReader::new(Cursor::new(bytes.as_slice())).expect("valid header");
    let err = engine.replay_trace(&mut reader, &mut Vec::new()).unwrap_err();
    assert!(err.message.contains("universe"), "unexpected error: {err}");
    // The engine is not poisoned by a rejected replay.
    engine.submit(Request::pos(otc_core::tree::NodeId(1))).expect("still live");
}

#[test]
fn replay_reports_corruption_with_record_position() {
    let tree = Arc::new(Tree::star(8));
    let trace = Trace {
        header: TraceHeader::single_tree(tree.len(), 0, "truncated"),
        requests: vec![Request::pos(otc_core::tree::NodeId(1)); 100],
    };
    let bytes = trace.to_bytes();
    let factory = tc_factory(2, 4);
    let mut engine =
        ShardedEngine::new(Forest::single(Arc::clone(&tree)), &factory, EngineConfig::new(2));
    let mut reader =
        TraceReader::new(Cursor::new(&bytes[..bytes.len() - 10])).expect("header is intact");
    let err = engine.replay_trace(&mut reader, &mut Vec::new()).unwrap_err();
    assert!(err.message.contains("truncated"), "unexpected error: {err}");
}

#[test]
fn timeline_windows_partition_the_run_exactly() {
    let mut rng = SplitMix64::new(0x71ED);
    let tree = random_attachment(300, &mut rng);
    let forest = Forest::partition(&tree, 3);
    let profiles = [
        TenantProfile::skewed(1.1),
        TenantProfile::skewed(0.5),
        TenantProfile { weight: 1.0, theta: 0.9, update_p: 0.05 },
    ];
    let reqs = multi_tenant_stream(&forest, &profiles, 25_000, 2, &mut rng);

    let window = 1024usize;
    let factory = tc_factory(2, 16);
    let mut engine = ShardedEngine::new(
        forest.clone(),
        &factory,
        EngineConfig::new(2).audit_every(window).telemetry(true),
    );
    // Split across several batches: window cadence must not care.
    for batch in reqs.chunks(3000) {
        engine.submit_batch(batch).expect("valid");
    }
    let timeline = engine.timeline();
    let reports = engine.into_reports().expect("valid");

    assert_eq!(timeline.alpha, 2);
    assert_eq!(timeline.window_rounds, window as u64);
    assert_eq!(timeline.shards, 3);
    assert!(!timeline.windows.is_empty());

    for (s, report) in reports.iter().enumerate() {
        let shard = s as u32;
        let windows: Vec<_> = timeline.shard_windows(shard).collect();
        // Windows are consecutive, start at round 0, and partition the
        // shard's rounds: every complete window spans exactly
        // `audit_every` rounds, and only the last may be partial.
        let mut expected_start = 0u64;
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.window, i as u64, "shard {s} window indices are consecutive");
            assert_eq!(w.start_round, expected_start, "shard {s} windows are gapless");
            if i + 1 < windows.len() {
                assert!(!w.partial, "only the last window may be partial");
                assert_eq!(w.rounds, window as u64, "complete windows span audit_every rounds");
            }
            assert!(w.rounds > 0, "no empty windows");
            expected_start += w.rounds;
        }
        assert_eq!(expected_start, report.rounds, "shard {s} windows cover every round");
        // Counters sum to the aggregate report exactly.
        let sum = |f: &dyn Fn(&otc_sim::WindowRecord) -> u64| -> u64 {
            windows.iter().map(|w| f(w)).sum()
        };
        assert_eq!(sum(&|w| w.paid_rounds), report.paid_rounds);
        assert_eq!(sum(&|w| w.fetch_events), report.fetch_events);
        assert_eq!(sum(&|w| w.evict_events), report.evict_events);
        assert_eq!(sum(&|w| w.flush_events), report.flush_events);
        assert_eq!(sum(&|w| w.nodes_fetched), report.nodes_fetched);
        assert_eq!(sum(&|w| w.nodes_flushed), report.nodes_flushed);
        assert_eq!(
            sum(&|w| w.nodes_evicted + w.nodes_flushed),
            report.nodes_evicted,
            "window eviction breakdown must reassemble the aggregate"
        );
        assert_eq!(
            windows.iter().map(|w| w.reorg_cost(2)).sum::<u64>(),
            report.cost.reorg,
            "window cost breakdown must reassemble the reorganisation cost"
        );
        assert_eq!(sum(&|w| w.paid_rounds), report.cost.service, "service cost = paid rounds");
        // Occupancy and buffer high-water are physically plausible.
        for w in &windows {
            assert!(w.occupancy <= 16, "occupancy beyond capacity");
            assert!(w.buf_high_water as u64 <= w.nodes_fetched + w.nodes_evicted + w.nodes_flushed);
        }
    }
}

#[test]
fn timeline_is_identical_for_batch_and_per_request_submission() {
    let mut rng = SplitMix64::new(0x71EE);
    let tree = Arc::new(random_attachment(120, &mut rng));
    let reqs: Vec<Request> = (0..8000)
        .map(|_| {
            let v = otc_core::tree::NodeId(rng.index(tree.len()) as u32);
            if rng.chance(0.4) {
                Request::neg(v)
            } else {
                Request::pos(v)
            }
        })
        .collect();
    let cfg = EngineConfig::new(2).audit_every(300).telemetry(true);
    let factory = tc_factory(2, 12);

    let mut batched = ShardedEngine::new(Forest::single(Arc::clone(&tree)), &factory, cfg);
    batched.submit_batch(&reqs).expect("valid");
    let tl_batched = batched.timeline();

    // submit() drives the ShardHandle::step path — same boundaries.
    let mut stepped = ShardedEngine::new(Forest::single(Arc::clone(&tree)), &factory, cfg);
    for &r in &reqs {
        stepped.submit(r).expect("valid");
    }
    let tl_stepped = stepped.timeline();
    assert_eq!(tl_batched, tl_stepped, "window cadence must not depend on the submission path");
    assert_eq!(batched.into_report().expect("valid"), stepped.into_report().expect("valid"),);
}

#[test]
fn telemetry_off_yields_an_empty_timeline_and_identical_reports() {
    let mut rng = SplitMix64::new(0x71EF);
    let tree = Arc::new(random_attachment(200, &mut rng));
    let reqs: Vec<Request> = (0..10_000)
        .map(|_| Request::pos(otc_core::tree::NodeId(rng.index(tree.len()) as u32)))
        .collect();
    let factory = tc_factory(2, 10);

    let plain_cfg = EngineConfig::new(2).audit_every(512);
    let mut plain = ShardedEngine::new(Forest::single(Arc::clone(&tree)), &factory, plain_cfg);
    plain.submit_batch(&reqs).expect("valid");
    assert!(plain.timeline().windows.is_empty(), "no telemetry without the knob");

    let mut observed =
        ShardedEngine::new(Forest::single(Arc::clone(&tree)), &factory, plain_cfg.telemetry(true));
    observed.submit_batch(&reqs).expect("valid");
    assert!(!observed.timeline().windows.is_empty());
    assert_eq!(
        plain.into_report().expect("valid"),
        observed.into_report().expect("valid"),
        "observing a run must never change it"
    );
}

#[test]
fn fib_churn_trace_replays_through_the_engine() {
    use otc_trie::{hierarchical_table, HierarchicalConfig, RuleTree};
    let mut rng = SplitMix64::new(5);
    let rules = RuleTree::build(&hierarchical_table(
        HierarchicalConfig { n: 300, subdivide_p: 0.7, max_len: 28 },
        &mut rng,
    ));
    let cfg =
        otc_workloads::FibChurnConfig { len: 20_000, ..otc_workloads::FibChurnConfig::default() };
    let trace = otc_workloads::fib_update_trace(&rules, cfg, 0xF1B);
    let bytes = trace.to_bytes();
    let tree = Arc::new(rules.tree().clone());
    let forest = Forest::single(tree);
    let engine_cfg = EngineConfig::new(4);
    let base = run_in_memory(&forest, &trace.requests, engine_cfg);
    let replayed = replay(&forest, &bytes, engine_cfg, 2048);
    assert_eq!(replayed, base, "fib-churn traces replay bit-identically");
}
