//! Engine-level differential oracle battery.
//!
//! The core-level battery (`otc-core/tests/proptest_tc.rs`) proves the
//! arena `TcFast` lockstep-equal to the untouched `TcReference` oracle on
//! adversarial shapes. This suite lifts the same differential through the
//! full `ShardedEngine` stack — request routing, per-shard workers,
//! telemetry windows — and adds a mid-run engine snapshot
//! (`save_state`/`restore_state` of every shard's policy via the OTCS
//! arena sections) restored into a *fresh* engine:
//!
//! * `TcFast` engine ≡ `TcReference` engine (reports and timeline), and
//! * `TcFast` engine ≡ `TcFast` engine that was snapshotted mid-run and
//!   restored, bit-identically.
//!
//! Any arena-layout bug that survives the single-policy battery but
//! depends on shard-local id remapping or on the flat-slice snapshot
//! codec shows up here.

use std::sync::Arc;

use otc_core::forest::{Forest, ShardId};
use otc_core::policy::CachePolicy;
use otc_core::tc::{TcConfig, TcFast, TcReference};
use otc_core::tree::{NodeId, Tree};
use otc_core::{Request, Sign};
use otc_sim::engine::{EngineConfig, ShardedEngine};
use otc_sim::snapshot::{EngineSnapshot, LogPosition};
use proptest::prelude::*;

/// Adversarial universe shapes, mirrored from the core battery: the
/// single-node degenerate case, deep paths, wide stars, caterpillars,
/// and binary hierarchies.
fn adversarial_tree(which: u8, n: usize, legs: usize) -> Tree {
    match which % 5 {
        0 => Tree::path(1),
        1 => Tree::path(n.max(2)),
        2 => Tree::star(n.max(2)),
        3 => Tree::caterpillar(n.max(2), legs.max(1)),
        _ => Tree::kary(2, (n % 6).max(2)),
    }
}

fn requests_for(seeds: &[(u64, bool)], n: usize) -> Vec<Request> {
    seeds
        .iter()
        .map(|&(s, pos)| Request {
            node: NodeId((s % n as u64) as u32),
            sign: if pos { Sign::Positive } else { Sign::Negative },
        })
        .collect()
}

fn fast_factory(
    alpha: u64,
    capacity: usize,
) -> impl Fn(Arc<Tree>, ShardId) -> Box<dyn CachePolicy> {
    move |tree, _| Box::new(TcFast::new(tree, TcConfig::new(alpha, capacity)))
}

fn reference_factory(
    alpha: u64,
    capacity: usize,
) -> impl Fn(Arc<Tree>, ShardId) -> Box<dyn CachePolicy> {
    move |tree, _| Box::new(TcReference::new(tree, TcConfig::new(alpha, capacity)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// TcFast engine ≡ TcReference engine ≡ TcFast engine restored from a
    /// mid-run snapshot, on adversarial shapes at 1–3 shards, α covering
    /// 1 and large values.
    #[test]
    fn engine_differential_with_midrun_snapshot_roundtrip(
        which in 0u8..5,
        n in 1usize..32,
        legs in 1usize..4,
        req_seeds in prop::collection::vec((any::<u64>(), any::<bool>()), 1..300),
        alpha_seed in any::<u64>(),
        capacity in 1usize..8,
        shards in 1usize..4,
        split_pct in 0u64..=100,
    ) {
        let tree = adversarial_tree(which, n, legs);
        let reqs = requests_for(&req_seeds, tree.len());
        let split = (reqs.len() as u64 * split_pct / 100) as usize;
        // One seed covers all three α regimes: 1, small, and large.
        let alpha = match alpha_seed % 3 {
            0 => 1,
            1 => 2 + (alpha_seed / 3) % 4,
            _ => 64 + (alpha_seed / 3) % 193,
        };
        let shards = shards.min(tree.len());
        let cfg = EngineConfig::new(alpha).audit_every(32).telemetry(true);

        // A: arena TcFast, uninterrupted.
        let fast = fast_factory(alpha, capacity);
        let mut a = ShardedEngine::new(Forest::partition(&tree, shards), &fast, cfg);
        a.submit_batch(&reqs).map_err(|e| TestCaseError::fail(e.to_string()))?;

        // B: arena TcFast, snapshotted at the split and restored into a
        // fresh engine (exercises the OTCS arena sections mid-phase).
        let mut b = ShardedEngine::new(Forest::partition(&tree, shards), &fast, cfg);
        b.submit_batch(&reqs[..split]).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut buf = Vec::new();
        b.write_snapshot(LogPosition::default(), &mut buf)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let snap = EngineSnapshot::parse(&buf).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut b2 = ShardedEngine::new(Forest::partition(&tree, shards), &fast, cfg);
        b2.restore_snapshot(&snap).map_err(|e| TestCaseError::fail(e.to_string()))?;
        b2.submit_batch(&reqs[split..]).map_err(|e| TestCaseError::fail(e.to_string()))?;

        // C: the untouched from-scratch oracle, uninterrupted.
        let refr = reference_factory(alpha, capacity);
        let mut c = ShardedEngine::new(Forest::partition(&tree, shards), &refr, cfg);
        c.submit_batch(&reqs).map_err(|e| TestCaseError::fail(e.to_string()))?;

        prop_assert_eq!(a.timeline(), b2.timeline(), "snapshot round-trip drifted");
        prop_assert_eq!(a.timeline(), c.timeline(), "TcFast diverged from the oracle");
        let a = a.into_reports().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let b2 = b2.into_reports().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut c = c.into_reports().map_err(|e| TestCaseError::fail(e.to_string()))?;
        // The oracle reports under its own policy name; every other field
        // must match bit for bit.
        for (r, orig) in c.iter_mut().zip(&a) {
            prop_assert_eq!(r.name.as_str(), "tc-reference");
            r.name.clone_from(&orig.name);
        }
        prop_assert_eq!(&a, &b2, "snapshot round-trip drifted (reports)");
        prop_assert_eq!(&a, &c, "TcFast diverged from the oracle (reports)");
    }
}
