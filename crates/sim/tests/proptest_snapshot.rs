//! Fault-injection suite for the `OTCS` snapshot format.
//!
//! Mirrors the OTCT reader strictness tests one layer up: a snapshot is
//! round-tripped through **every** prefix truncation and single-byte
//! corruption, and every mutation must be rejected with a typed
//! [`SnapshotError`] — no panic, no partial restore, no silent
//! acceptance. On the recovery side, snapshot + tail replay from an
//! arbitrary mid-trace cut must equal the uninterrupted run, including
//! when the log itself ends in a torn record.

use std::io::Cursor;
use std::sync::Arc;

use otc_core::forest::{Forest, ShardId};
use otc_core::policy::CachePolicy;
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::{NodeId, Tree};
use otc_core::{Request, Sign};
use otc_sim::engine::{EngineConfig, ShardedEngine};
use otc_sim::snapshot::{EngineSnapshot, LogPosition, SnapshotError};
use otc_workloads::trace::{Trace, TraceHeader, TraceReader, TraceWriter, COUNT_UNKNOWN};
use proptest::prelude::*;

fn tree_from_seeds(seeds: &[u64]) -> Tree {
    let mut parents: Vec<Option<usize>> = vec![None];
    for (i, &s) in seeds.iter().enumerate() {
        parents.push(Some((s % (i as u64 + 1)) as usize));
    }
    Tree::from_parents(&parents)
}

fn requests_for(seeds: &[(u64, bool)], n: usize) -> Vec<Request> {
    seeds
        .iter()
        .map(|&(s, pos)| Request {
            node: NodeId((s % n as u64) as u32),
            sign: if pos { Sign::Positive } else { Sign::Negative },
        })
        .collect()
}

fn tc_factory(alpha: u64, capacity: usize) -> impl Fn(Arc<Tree>, ShardId) -> Box<dyn CachePolicy> {
    move |tree, _| Box::new(TcFast::new(tree, TcConfig::new(alpha, capacity)))
}

/// A snapshot with some state in every component: mid-phase TC counters,
/// open fields/periods, closed and partial telemetry windows.
fn sample_snapshot() -> Vec<u8> {
    let tree = Tree::star(12);
    let factory = tc_factory(2, 3);
    let cfg = EngineConfig::new(2).audit_every(32).telemetry(true);
    let mut engine = ShardedEngine::new(Forest::partition(&tree, 3), &factory, cfg);
    let reqs: Vec<Request> = (0..500)
        .map(|i| {
            let v = NodeId((i * 7 % tree.len() as u64) as u32);
            if i % 3 == 0 {
                Request::neg(v)
            } else {
                Request::pos(v)
            }
        })
        .collect();
    engine.submit_batch(&reqs).expect("valid");
    let mut buf = Vec::new();
    engine.write_snapshot(LogPosition { offset: 4096, records: 500 }, &mut buf).expect("snapshots");
    buf
}

#[test]
fn every_prefix_truncation_is_rejected() {
    let bytes = sample_snapshot();
    assert!(EngineSnapshot::parse(&bytes).is_ok(), "the untouched snapshot parses");
    for cut in 0..bytes.len() {
        let Err(err) = EngineSnapshot::parse(&bytes[..cut]) else {
            panic!("prefix of {cut}/{} bytes must not parse", bytes.len())
        };
        // Typed rejection, never a panic; the error must name the defect.
        assert!(!err.to_string().is_empty());
    }
    // Extension is rejected just like truncation.
    let mut extended = bytes.clone();
    extended.push(0);
    assert!(matches!(EngineSnapshot::parse(&extended), Err(SnapshotError::LengthMismatch { .. })));
}

#[test]
fn every_single_byte_corruption_is_rejected() {
    let bytes = sample_snapshot();
    let mut work = bytes.clone();
    for i in 0..bytes.len() {
        for delta in [0x01u8, 0x80] {
            work[i] ^= delta;
            let Err(err) = EngineSnapshot::parse(&work) else {
                panic!("flipping bit {delta:#x} of byte {i} must not parse")
            };
            assert!(!err.to_string().is_empty());
            work[i] ^= delta; // restore
        }
    }
    assert_eq!(work, bytes, "corruption loop restored every byte");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Snapshot → parse → restore → continue is bit-identical to never
    /// having snapshotted, on arbitrary instances.
    #[test]
    fn snapshot_round_trip_resumes_bit_identically(
        tree_seeds in prop::collection::vec(any::<u64>(), 2..20),
        req_seeds in prop::collection::vec((any::<u64>(), any::<bool>()), 2..400),
        alpha in 1u64..4,
        capacity in 1usize..6,
        chunk in 1usize..100,
        split_pct in 0u64..=100,
    ) {
        let tree = tree_from_seeds(&tree_seeds);
        let reqs = requests_for(&req_seeds, tree.len());
        let split = (reqs.len() as u64 * split_pct / 100) as usize;
        let factory = tc_factory(alpha, capacity);
        let cfg = EngineConfig::new(alpha).audit_every(chunk).telemetry(true);

        let mut a = ShardedEngine::new(Forest::partition(&tree, 2), &factory, cfg);
        a.submit_batch(&reqs[..split]).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut buf = Vec::new();
        a.write_snapshot(LogPosition::default(), &mut buf)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let snap = EngineSnapshot::parse(&buf).map_err(|e| TestCaseError::fail(e.to_string()))?;

        let mut b = ShardedEngine::new(Forest::partition(&tree, 2), &factory, cfg);
        b.restore_snapshot(&snap).map_err(|e| TestCaseError::fail(e.to_string()))?;
        a.submit_batch(&reqs[split..]).map_err(|e| TestCaseError::fail(e.to_string()))?;
        b.submit_batch(&reqs[split..]).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(a.timeline(), b.timeline());
        let a = a.into_reports().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let b = b.into_reports().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(a, b);
    }

    /// Any single-byte substitution anywhere in an arbitrary snapshot is
    /// rejected with a typed error.
    #[test]
    fn corrupted_snapshots_never_parse(
        tree_seeds in prop::collection::vec(any::<u64>(), 2..16),
        req_seeds in prop::collection::vec((any::<u64>(), any::<bool>()), 1..200),
        pos_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let tree = tree_from_seeds(&tree_seeds);
        let reqs = requests_for(&req_seeds, tree.len());
        let factory = tc_factory(2, 3);
        let cfg = EngineConfig::new(2).audit_every(16).telemetry(true);
        let mut engine = ShardedEngine::new(Forest::partition(&tree, 2), &factory, cfg);
        engine.submit_batch(&reqs).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut bytes = Vec::new();
        engine.write_snapshot(LogPosition { offset: 1, records: 2 }, &mut bytes)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;

        let i = (pos_seed % bytes.len() as u64) as usize;
        bytes[i] ^= xor;
        prop_assert!(EngineSnapshot::parse(&bytes).is_err(),
            "substituting byte {} must be rejected", i);
    }

    /// Snapshot at an arbitrary mid-trace cut, then recover on top of
    /// the full log: bit-identical to the uninterrupted run. With the
    /// log truncated behind the snapshot's tail, recovery lands on the
    /// log's longest consistent prefix and flags the torn tail.
    #[test]
    fn recovery_from_any_cut_matches_the_uninterrupted_run(
        tree_seeds in prop::collection::vec(any::<u64>(), 60..100),
        req_seeds in prop::collection::vec((any::<u64>(), any::<bool>()), 10..300),
        alpha in 1u64..4,
        capacity in 1usize..6,
        cut_pct in 0u64..=100,
        tear in any::<bool>(),
        tear_seed in any::<u64>(),
    ) {
        let tree = tree_from_seeds(&tree_seeds);
        let reqs = requests_for(&req_seeds, tree.len());
        let factory = tc_factory(alpha, capacity);
        let cfg = EngineConfig::new(alpha).audit_every(24).telemetry(true);

        let header = TraceHeader::single_tree(tree.len(), 0, "proptest");
        let mut w = TraceWriter::new(Cursor::new(Vec::new()), header)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        for &r in &reqs {
            w.push(r).map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
        let mut bytes = w.finish().map_err(|e| TestCaseError::fail(e.to_string()))?.into_inner();
        let body_start = TraceHeader::single_tree(tree.len(), 0, "proptest").encoded_len();

        let cut = (reqs.len() as u64 * cut_pct / 100) as usize;
        let mut pre = TraceReader::new(Cursor::new(bytes.clone()))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        for _ in 0..cut {
            pre.next().expect("has record").map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
        let log = LogPosition { offset: pre.byte_pos(), records: pre.records_read() };

        // The "pre-crash" engine and its snapshot at the cut.
        let mut live = ShardedEngine::new(Forest::partition(&tree, 2), &factory, cfg);
        live.submit_batch(&reqs[..cut]).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut buf = Vec::new();
        live.write_snapshot(log, &mut buf).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let snap = EngineSnapshot::parse(&buf).map_err(|e| TestCaseError::fail(e.to_string()))?;

        // Optionally tear the log: truncate to a random byte at or past
        // the snapshot's offset (a crash can never lose bytes the
        // snapshot already covers — serve checks that before picking
        // one).
        if tear {
            let lo = log.offset.max(body_start);
            let span = bytes.len() as u64 - lo;
            bytes.truncate((lo + tear_seed % (span + 1)) as usize);
        }

        let mut rec = ShardedEngine::new(Forest::partition(&tree, 2), &factory, cfg);
        let mut reader = TraceReader::new(Cursor::new(bytes.clone()))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut chunk = Vec::new();
        let stats = rec.recover(&snap, &mut reader, &mut chunk)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;

        // The recovered engine equals an uninterrupted run over exactly
        // the records the (possibly torn) log still holds.
        let total = (log.records + stats.replayed) as usize;
        prop_assert!(total <= reqs.len());
        if !tear {
            prop_assert_eq!(total, reqs.len());
            prop_assert!(!stats.torn_tail);
        }
        let mut full = ShardedEngine::new(Forest::partition(&tree, 2), &factory, cfg);
        full.submit_batch(&reqs[..total]).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(rec.timeline(), full.timeline());
        let rec = rec.into_reports().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let full = full.into_reports().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(rec, full);
    }

    /// A crash *between a record append and the count patch* leaves an
    /// OTCT log whose header still carries `COUNT_UNKNOWN` and whose tail
    /// may stop anywhere — mid-record included. Replaying it must yield
    /// exactly the longest consistent prefix, matching a run over that
    /// prefix, with `torn_tail` set iff the cut tore a record.
    #[test]
    fn crashed_log_with_unpatched_count_replays_to_the_prefix(
        tree_seeds in prop::collection::vec(any::<u64>(), 70..120),
        req_seeds in prop::collection::vec((any::<u64>(), any::<bool>()), 1..250),
        alpha in 1u64..4,
        capacity in 1usize..6,
        cut_seed in any::<u64>(),
    ) {
        let tree = tree_from_seeds(&tree_seeds);
        let reqs = requests_for(&req_seeds, tree.len());
        let header = TraceHeader::single_tree(tree.len(), 0, "crash");
        let mut bytes =
            Trace { header: header.clone(), requests: reqs.clone() }.to_bytes();
        // Restore the count field to the in-flight sentinel, as on a
        // disk whose writer never reached `finish`.
        let count_pos = (header.encoded_len() - 8) as usize;
        bytes[count_pos..count_pos + 8].copy_from_slice(&COUNT_UNKNOWN.to_le_bytes());
        // Crash anywhere in the body.
        let lo = header.encoded_len();
        let span = bytes.len() as u64 - lo;
        bytes.truncate((lo + cut_seed % (span + 1)) as usize);

        let factory = tc_factory(alpha, capacity);
        let cfg = EngineConfig::new(alpha).audit_every(32).telemetry(true);
        let mut rec = ShardedEngine::new(Forest::partition(&tree, 2), &factory, cfg);
        let mut reader = TraceReader::new(Cursor::new(bytes.clone()))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert!(reader.remaining().is_none(), "count unknown: stream to EOF");
        let mut chunk = Vec::new();
        let stats = rec.replay_tail(&mut reader, &mut chunk)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;

        let prefix = stats.replayed as usize;
        prop_assert!(prefix <= reqs.len());
        // torn_tail iff the cut landed strictly inside a record.
        prop_assert_eq!(stats.torn_tail, reader.byte_pos() < bytes.len() as u64);
        let mut full = ShardedEngine::new(Forest::partition(&tree, 2), &factory, cfg);
        full.submit_batch(&reqs[..prefix]).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(rec.timeline(), full.timeline());
        let rec = rec.into_reports().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let full = full.into_reports().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(rec, full);
    }
}
