//! Property tests: the analysis identities hold on arbitrary instances.
//!
//! * Observation 5.2: every closed field carries exactly `size·α` paying
//!   requests (zero violations).
//! * Period balance: `pout = pin + kP` per phase.
//! * Lemma 5.3 as an identity: `TC(P) = 2α·size(F) + req(F∞) [+ kP·α]`.
//! * Conservation: phases partition the rounds; fields absorb exactly the
//!   paying requests that are not in any open field.

use std::sync::Arc;

use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::{NodeId, Tree};
use otc_core::{Request, Sign};
use otc_sim::{run_policy, SimConfig};
use proptest::prelude::*;

fn tree_from_seeds(seeds: &[u64]) -> Tree {
    let mut parents: Vec<Option<usize>> = vec![None];
    for (i, &s) in seeds.iter().enumerate() {
        parents.push(Some((s % (i as u64 + 1)) as usize));
    }
    Tree::from_parents(&parents)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn analysis_identities_hold(
        tree_seeds in prop::collection::vec(any::<u64>(), 0..24),
        req_seeds in prop::collection::vec((any::<u64>(), any::<bool>()), 1..800),
        alpha in 1u64..5,
        capacity in 1usize..8,
    ) {
        let tree = Arc::new(tree_from_seeds(&tree_seeds));
        let reqs: Vec<Request> = req_seeds
            .iter()
            .map(|&(s, pos)| {
                let node = NodeId((s % tree.len() as u64) as u32);
                Request { node, sign: if pos { Sign::Positive } else { Sign::Negative } }
            })
            .collect();
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, capacity));
        let report = run_policy(&tree, &mut tc, &reqs, SimConfig::new(alpha))
            .map_err(|e| TestCaseError::fail(format!("simulator rejected TC: {e}")))?;

        // Observation 5.2.
        let fields = report.fields.as_ref().expect("instrumented");
        prop_assert_eq!(fields.saturation_violations, 0);
        prop_assert_eq!(fields.total_requests, fields.total_size * alpha);

        // Period balance per phase.
        let periods = report.periods.as_ref().expect("instrumented");
        for &(pout, pin, kp) in &periods.per_phase_balance {
            prop_assert_eq!(pout, pin + kp as u64);
        }

        // Lemma 5.3 identity + phase partition.
        let mut rounds_total = 0u64;
        let mut cost_total = 0u64;
        for phase in &report.phases {
            let flush_term = if phase.finished { phase.k_p as u64 * alpha } else { 0 };
            prop_assert_eq!(
                phase.cost.total(),
                2 * alpha * phase.fields_size + phase.open_requests + flush_term
            );
            rounds_total += phase.rounds;
            cost_total += phase.cost.total();
        }
        prop_assert_eq!(rounds_total, report.rounds);
        prop_assert_eq!(cost_total, report.cost.total());

        // Request conservation: every paying request is either inside a
        // closed field or pending in the final open field. (Earlier phases'
        // open fields were zeroed at flush; count them via phase records.)
        let open_total: u64 = report.phases.iter().map(|p| p.open_requests).sum();
        prop_assert_eq!(report.paid_rounds, fields.total_requests + open_total);
    }
}
