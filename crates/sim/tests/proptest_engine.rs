//! Differential property tests for the sharded engine.
//!
//! * A 1-shard [`ShardedEngine`] is **bit-identical** to the classic
//!   `run_policy` / `run_stream` drivers on arbitrary instances — costs,
//!   flush counts, instrumentation, everything in the [`Report`].
//! * A multi-shard engine over a forest of independent trees equals the
//!   per-shard independent runs exactly, shard by shard, for any thread
//!   count.
//! * Trace-text submission equals in-memory batch submission.

use std::sync::Arc;

use otc_core::forest::{Forest, ShardId};
use otc_core::policy::CachePolicy;
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::{NodeId, Tree};
use otc_core::{Request, Sign};
use otc_sim::engine::{EngineConfig, ShardedEngine};
use otc_sim::{run_policy, run_stream, SimConfig};
use proptest::prelude::*;

fn tree_from_seeds(seeds: &[u64]) -> Tree {
    let mut parents: Vec<Option<usize>> = vec![None];
    for (i, &s) in seeds.iter().enumerate() {
        parents.push(Some((s % (i as u64 + 1)) as usize));
    }
    Tree::from_parents(&parents)
}

fn requests_for(len_hint: &[(u64, bool)], n: usize) -> Vec<Request> {
    len_hint
        .iter()
        .map(|&(s, pos)| Request {
            node: NodeId((s % n as u64) as u32),
            sign: if pos { Sign::Positive } else { Sign::Negative },
        })
        .collect()
}

fn tc_factory(alpha: u64, capacity: usize) -> impl Fn(Arc<Tree>, ShardId) -> Box<dyn CachePolicy> {
    move |tree, _| Box::new(TcFast::new(tree, TcConfig::new(alpha, capacity)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn one_shard_engine_is_bit_identical_to_legacy_drivers(
        tree_seeds in prop::collection::vec(any::<u64>(), 0..24),
        req_seeds in prop::collection::vec((any::<u64>(), any::<bool>()), 1..600),
        alpha in 1u64..5,
        capacity in 1usize..8,
        chunk in 1usize..300,
    ) {
        let tree = Arc::new(tree_from_seeds(&tree_seeds));
        let reqs = requests_for(&req_seeds, tree.len());

        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, capacity));
        let legacy = run_policy(&tree, &mut tc, &reqs, SimConfig::new(alpha))
            .map_err(TestCaseError::fail)?;

        let factory = tc_factory(alpha, capacity);
        let mut engine = ShardedEngine::new(
            Forest::single(Arc::clone(&tree)),
            &factory,
            EngineConfig::new(alpha),
        );
        engine.submit_batch(&reqs).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let report = engine.into_report().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&report, &legacy, "engine vs run_policy");

        // The chunked/audited cadence against run_stream.
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, capacity));
        let streamed = run_stream(&tree, &mut tc, &reqs, SimConfig::new(alpha), chunk)
            .map_err(TestCaseError::fail)?;
        let mut engine = ShardedEngine::new(
            Forest::single(Arc::clone(&tree)),
            &factory,
            EngineConfig::new(alpha).audit_every(chunk),
        );
        engine.submit_batch(&reqs).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let report = engine.into_report().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&report, &streamed, "engine vs run_stream");

        // Trace-text ingestion equals in-memory batch ingestion.
        let mut engine = ShardedEngine::new(
            Forest::single(Arc::clone(&tree)),
            &factory,
            EngineConfig::new(alpha),
        );
        engine
            .submit_trace(&otc_workloads::trace::to_text(&reqs))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let via_trace = engine.into_report().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&via_trace, &legacy, "trace vs batch");
    }

    #[test]
    fn multi_shard_engine_equals_independent_per_shard_runs(
        shard_seeds in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 0..12), 2..5),
        req_seeds in prop::collection::vec((any::<u64>(), any::<bool>()), 1..600),
        alpha in 1u64..4,
        capacity in 1usize..6,
        threads in 1usize..5,
    ) {
        let trees: Vec<Arc<Tree>> =
            shard_seeds.iter().map(|s| Arc::new(tree_from_seeds(s))).collect();
        let forest = Forest::from_trees(trees.clone());
        let reqs = requests_for(&req_seeds, forest.global_len());

        let factory = tc_factory(alpha, capacity);
        let mut engine = ShardedEngine::new(
            forest.clone(),
            &factory,
            EngineConfig::new(alpha).threads(threads),
        );
        engine.submit_batch(&reqs).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let per_shard = engine.into_reports().map_err(|e| TestCaseError::fail(e.to_string()))?;

        for (s, tree) in trees.iter().enumerate() {
            let local: Vec<Request> = reqs
                .iter()
                .filter_map(|&r| {
                    let (sid, lr) = forest.route_request(r);
                    (sid.index() == s).then_some(lr)
                })
                .collect();
            let mut tc = TcFast::new(Arc::clone(tree), TcConfig::new(alpha, capacity));
            let solo = run_policy(tree, &mut tc, &local, SimConfig::new(alpha))
                .map_err(TestCaseError::fail)?;
            prop_assert_eq!(&per_shard[s], &solo, "shard {} differs", s);
        }
    }
}
