//! Windowed per-shard telemetry.
//!
//! A [`crate::Report`] is one aggregate per run; a [`Timeline`] is the
//! run *over time*: one [`WindowRecord`] per `audit_every` rounds per
//! shard, carrying the window's cost breakdown (fetch / evict / flush
//! node counts, paid rounds), the cache occupancy at the window boundary,
//! and the action-buffer high-water mark inside the window.
//!
//! Collection is allocation-free on the hot path: every counter in a
//! window is a diff of the per-shard `Report` counters the driver already
//! maintains per round, snapshotted when the engine crosses an
//! `audit_every` boundary (one amortised `Vec` push per *window*, never
//! per round). Enable it with `EngineConfig::telemetry(true)` and read it
//! back with `ShardedEngine::timeline()`.
//!
//! Export is hand-rolled JSON (`schema: "otc-timeline-v1"`, one window
//! object per line) and CSV; [`Timeline::from_json`] parses exactly what
//! [`Timeline::to_json`] emits, which is what lets the experiment
//! binaries hand timelines to the bench recorder without a JSON
//! dependency.

/// Telemetry counters for one window of one shard.
///
/// All counters are deltas over the window except [`occupancy`] (sampled
/// at the window's closing boundary) and [`buf_high_water`] (a maximum
/// over the window's rounds).
///
/// [`occupancy`]: WindowRecord::occupancy
/// [`buf_high_water`]: WindowRecord::buf_high_water
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowRecord {
    /// The shard this window belongs to.
    pub shard: u32,
    /// Window index within the shard (0-based, consecutive).
    pub window: u64,
    /// First round (shard-local) the window covers.
    pub start_round: u64,
    /// Rounds in the window (`audit_every`, except a trailing partial).
    pub rounds: u64,
    /// Rounds that paid the service cost (service cost = this count).
    pub paid_rounds: u64,
    /// Fetch actions applied in the window.
    pub fetch_events: u64,
    /// Evict actions applied in the window (flushes not included).
    pub evict_events: u64,
    /// Flush (phase restart) events in the window.
    pub flush_events: u64,
    /// Nodes fetched (each costs α).
    pub nodes_fetched: u64,
    /// Nodes evicted by plain evictions (each costs α; flush payloads are
    /// counted separately in [`WindowRecord::nodes_flushed`]).
    pub nodes_evicted: u64,
    /// Nodes evicted by flushes (each costs α).
    pub nodes_flushed: u64,
    /// Cache population at the window's closing boundary.
    pub occupancy: usize,
    /// Largest number of nodes any single round's actions touched inside
    /// the window (the action-buffer high-water mark).
    pub buf_high_water: usize,
    /// `true` for a trailing window cut short by the end of observation
    /// rather than an `audit_every` boundary.
    pub partial: bool,
}

impl WindowRecord {
    /// Reorganisation cost incurred in the window at per-node cost
    /// `alpha`, broken down as fetch + evict + flush.
    #[must_use]
    pub fn reorg_cost(&self, alpha: u64) -> u64 {
        alpha * (self.nodes_fetched + self.nodes_evicted + self.nodes_flushed)
    }

    /// Total cost incurred in the window (service + reorganisation).
    #[must_use]
    pub fn total_cost(&self, alpha: u64) -> u64 {
        self.paid_rounds + self.reorg_cost(alpha)
    }
}

/// A whole run's windowed telemetry: per-shard [`WindowRecord`]s in
/// (shard, window) order, plus the parameters needed to interpret them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    /// The per-node reorganisation cost α the run used.
    pub alpha: u64,
    /// Window length in rounds (the engine's `audit_every`; `0` when the
    /// run had no chunk cadence and produced only partial windows).
    pub window_rounds: u64,
    /// Number of shards observed.
    pub shards: u32,
    /// The windows, sorted by `(shard, window)`.
    pub windows: Vec<WindowRecord>,
}

impl Timeline {
    /// Sum of a per-window counter over every window, for cross-checking
    /// against the aggregate [`crate::Report`].
    #[must_use]
    pub fn sum<F: Fn(&WindowRecord) -> u64>(&self, f: F) -> u64 {
        self.windows.iter().map(f).sum()
    }

    /// The windows of one shard, in window order.
    pub fn shard_windows(&self, shard: u32) -> impl Iterator<Item = &WindowRecord> + '_ {
        self.windows.iter().filter(move |w| w.shard == shard)
    }

    /// Cross-shard load imbalance of one window, scaled by 1000: the
    /// `max / mean` ratio of the per-shard window load, where a shard's
    /// load is `rounds + paid_rounds` — exactly the weight the
    /// `rebalance` planner acts on, so this is the observable a
    /// rebalancing run drives toward 1000 (perfect balance; `2000` =
    /// the hottest shard carries twice the mean). The mean is taken over
    /// all [`Timeline::shards`] declared shards — a shard that closed no
    /// record for the window counts as zero load. `None` when no shard
    /// did any work in the window (or no shards were observed at all).
    #[must_use]
    pub fn imbalance_x1000(&self, window: u64) -> Option<u64> {
        if self.shards == 0 {
            return None;
        }
        let mut max = 0u64;
        let mut total = 0u128;
        for w in self.windows.iter().filter(|w| w.window == window) {
            let load = w.rounds + w.paid_rounds;
            max = max.max(load);
            total += u128::from(load);
        }
        if total == 0 {
            return None;
        }
        let scaled = u128::from(max) * 1000 * u128::from(self.shards) / total;
        Some(u64::try_from(scaled).unwrap_or(u64::MAX))
    }

    /// One-pass [`Timeline::imbalance_x1000`] for every window index that
    /// appears in the timeline (windows with zero total load are absent,
    /// mirroring the `None` of the per-window query).
    fn imbalance_by_window(&self) -> std::collections::BTreeMap<u64, u64> {
        let mut acc: std::collections::BTreeMap<u64, (u64, u128)> =
            std::collections::BTreeMap::new();
        for w in &self.windows {
            let load = w.rounds + w.paid_rounds;
            let e = acc.entry(w.window).or_insert((0, 0));
            e.0 = e.0.max(load);
            e.1 += u128::from(load);
        }
        acc.into_iter()
            .filter(|&(_, (_, total))| total > 0 && self.shards > 0)
            .map(|(win, (max, total))| {
                let scaled = u128::from(max) * 1000 * u128::from(self.shards) / total;
                (win, u64::try_from(scaled).unwrap_or(u64::MAX))
            })
            .collect()
    }

    /// Renders the timeline as JSON: a `schema`/parameter preamble and one
    /// window object per line. The format is stable — it is what
    /// [`Timeline::from_json`] parses — and append-friendly for plotting
    /// tools (`jq '.windows[]'`). `reorg_cost` and `imbalance_x1000` are
    /// *derived* fields: emitted for plotting convenience, recomputed
    /// (never parsed) on the way back in.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let imbalance = self.imbalance_by_window();
        let mut out = String::with_capacity(128 + self.windows.len() * 160);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"otc-timeline-v1\",\n");
        writeln!(out, "  \"alpha\": {},", self.alpha).expect("String writes cannot fail");
        writeln!(out, "  \"window_rounds\": {},", self.window_rounds).expect("infallible");
        writeln!(out, "  \"shards\": {},", self.shards).expect("infallible");
        out.push_str("  \"windows\": [\n");
        for (i, w) in self.windows.iter().enumerate() {
            let sep = if i + 1 == self.windows.len() { "" } else { "," };
            writeln!(
                out,
                "    {{ \"shard\": {}, \"window\": {}, \"start_round\": {}, \"rounds\": {}, \
                 \"paid_rounds\": {}, \"fetch_events\": {}, \"evict_events\": {}, \
                 \"flush_events\": {}, \"nodes_fetched\": {}, \"nodes_evicted\": {}, \
                 \"nodes_flushed\": {}, \"occupancy\": {}, \"buf_high_water\": {}, \
                 \"reorg_cost\": {}, \"imbalance_x1000\": {}, \"partial\": {} }}{sep}",
                w.shard,
                w.window,
                w.start_round,
                w.rounds,
                w.paid_rounds,
                w.fetch_events,
                w.evict_events,
                w.flush_events,
                w.nodes_fetched,
                w.nodes_evicted,
                w.nodes_flushed,
                w.occupancy,
                w.buf_high_water,
                w.reorg_cost(self.alpha),
                imbalance.get(&w.window).copied().unwrap_or(0),
                w.partial,
            )
            .expect("String writes cannot fail");
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the JSON rendering of [`Timeline::to_json`]. Deliberately
    /// strict: this is a round-trip companion for our own emission (one
    /// window object per line), not a general JSON parser.
    ///
    /// # Errors
    /// Describes the first malformed line or missing field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        if !text.contains("\"schema\": \"otc-timeline-v1\"") {
            return Err("missing or unknown schema marker (want otc-timeline-v1)".to_string());
        }
        let field_u64 = |line: &str, key: &str| -> Result<u64, String> {
            let pat = format!("\"{key}\": ");
            let at = line.find(&pat).ok_or_else(|| format!("missing field {key:?}"))?;
            let rest = &line[at + pat.len()..];
            let end = rest.find([',', ' ', '}', '\n']).unwrap_or(rest.len());
            rest[..end].parse().map_err(|e| format!("bad {key}: {e}"))
        };
        let mut alpha = None;
        let mut window_rounds = None;
        let mut shards = None;
        let mut windows = Vec::new();
        let mut in_windows = false;
        for line in text.lines() {
            let t = line.trim();
            if t.starts_with("\"windows\"") {
                in_windows = true;
                continue;
            }
            if !in_windows {
                if t.starts_with("\"alpha\"") {
                    alpha = Some(field_u64(t, "alpha")?);
                } else if t.starts_with("\"window_rounds\"") {
                    window_rounds = Some(field_u64(t, "window_rounds")?);
                } else if t.starts_with("\"shards\"") {
                    shards = Some(field_u64(t, "shards")?);
                }
                continue;
            }
            if !t.starts_with('{') {
                continue; // closing brackets
            }
            windows.push(WindowRecord {
                shard: u32::try_from(field_u64(t, "shard")?).map_err(|e| e.to_string())?,
                window: field_u64(t, "window")?,
                start_round: field_u64(t, "start_round")?,
                rounds: field_u64(t, "rounds")?,
                paid_rounds: field_u64(t, "paid_rounds")?,
                fetch_events: field_u64(t, "fetch_events")?,
                evict_events: field_u64(t, "evict_events")?,
                flush_events: field_u64(t, "flush_events")?,
                nodes_fetched: field_u64(t, "nodes_fetched")?,
                nodes_evicted: field_u64(t, "nodes_evicted")?,
                nodes_flushed: field_u64(t, "nodes_flushed")?,
                occupancy: field_u64(t, "occupancy")? as usize,
                buf_high_water: field_u64(t, "buf_high_water")? as usize,
                partial: t.contains("\"partial\": true"),
            });
        }
        Ok(Self {
            alpha: alpha.ok_or("missing alpha")?,
            window_rounds: window_rounds.ok_or("missing window_rounds")?,
            shards: u32::try_from(shards.ok_or("missing shards")?).map_err(|e| e.to_string())?,
            windows,
        })
    }

    /// Renders the timeline as CSV (one header row, one row per window).
    /// Like the JSON form, `reorg_cost` and `imbalance_x1000` are derived
    /// columns.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let imbalance = self.imbalance_by_window();
        let mut out = String::with_capacity(64 + self.windows.len() * 80);
        out.push_str(
            "shard,window,start_round,rounds,paid_rounds,fetch_events,evict_events,flush_events,\
             nodes_fetched,nodes_evicted,nodes_flushed,occupancy,buf_high_water,reorg_cost,\
             imbalance_x1000,partial\n",
        );
        use std::fmt::Write as _;
        for w in &self.windows {
            writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                w.shard,
                w.window,
                w.start_round,
                w.rounds,
                w.paid_rounds,
                w.fetch_events,
                w.evict_events,
                w.flush_events,
                w.nodes_fetched,
                w.nodes_evicted,
                w.nodes_flushed,
                w.occupancy,
                w.buf_high_water,
                w.reorg_cost(self.alpha),
                imbalance.get(&w.window).copied().unwrap_or(0),
                w.partial,
            )
            .expect("String writes cannot fail");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Timeline {
        Timeline {
            alpha: 3,
            window_rounds: 100,
            shards: 2,
            windows: vec![
                WindowRecord {
                    shard: 0,
                    window: 0,
                    start_round: 0,
                    rounds: 100,
                    paid_rounds: 40,
                    fetch_events: 3,
                    evict_events: 1,
                    flush_events: 1,
                    nodes_fetched: 7,
                    nodes_evicted: 2,
                    nodes_flushed: 4,
                    occupancy: 5,
                    buf_high_water: 4,
                    partial: false,
                },
                WindowRecord {
                    shard: 1,
                    window: 0,
                    start_round: 0,
                    rounds: 60,
                    paid_rounds: 9,
                    occupancy: 2,
                    buf_high_water: 1,
                    partial: true,
                    ..WindowRecord::default()
                },
            ],
        }
    }

    #[test]
    fn cost_breakdown_adds_up() {
        let w = sample().windows[0];
        assert_eq!(w.reorg_cost(3), 3 * (7 + 2 + 4));
        assert_eq!(w.total_cost(3), 40 + 39);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let tl = sample();
        let json = tl.to_json();
        assert!(json.contains("otc-timeline-v1"));
        let back = Timeline::from_json(&json).expect("own emission must parse");
        assert_eq!(back, tl);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Timeline::from_json("{}").is_err());
        assert!(Timeline::from_json("not json at all").is_err());
        let mut json = sample().to_json();
        json = json.replace("\"rounds\": 100,", "");
        assert!(Timeline::from_json(&json).is_err(), "missing field must be reported");
    }

    #[test]
    fn csv_has_one_row_per_window() {
        let tl = sample();
        let csv = tl.to_csv();
        assert_eq!(csv.lines().count(), 1 + tl.windows.len());
        assert!(csv.lines().nth(1).unwrap().starts_with("0,0,0,100,40,"));
        assert!(csv.ends_with("true\n"));
    }

    #[test]
    fn imbalance_tracks_skew_and_round_trips() {
        let tl = sample();
        // Window 0 loads: shard 0 = 100+40 = 140, shard 1 = 60+9 = 69;
        // max·1000·shards/total = 140·2000/209.
        assert_eq!(tl.imbalance_x1000(0), Some(1339));
        assert_eq!(tl.imbalance_x1000(7), None, "no such window");
        let json = tl.to_json();
        assert!(json.contains("\"imbalance_x1000\": 1339"));
        let csv = tl.to_csv();
        assert!(csv.lines().next().unwrap().ends_with("imbalance_x1000,partial"));
        assert!(csv.lines().nth(1).unwrap().contains(",1339,false"));
        // The derived column never breaks the strict round trip.
        assert_eq!(Timeline::from_json(&json).expect("parses"), tl);
        // Perfectly balanced loads sit at exactly 1000.
        let mut even = tl.clone();
        even.windows[1] = WindowRecord { shard: 1, rounds: 100, paid_rounds: 40, ..tl.windows[0] };
        assert_eq!(even.imbalance_x1000(0), Some(1000));
        // An empty timeline has nothing to measure.
        assert_eq!(Timeline::default().imbalance_x1000(0), None);
    }

    #[test]
    fn sum_and_shard_views() {
        let tl = sample();
        assert_eq!(tl.sum(|w| w.paid_rounds), 49);
        assert_eq!(tl.shard_windows(1).count(), 1);
        assert!(tl.shard_windows(1).next().unwrap().partial);
    }
}
