//! `OTCS` — versioned binary engine snapshots, and crash recovery.
//!
//! A snapshot captures **everything** a [`crate::engine::ShardedEngine`]
//! (or a set of detached [`crate::worker::ShardWorker`]s) needs to resume
//! bit-identically: per shard, the policy's opaque state blob
//! ([`otc_core::policy::CachePolicy::save_state`]), the verified driver
//! (mirror cache, open field/period/phase instrumentation), the
//! accumulating [`Report`], and the telemetry windows — plus the byte
//! offset and record count of the OTCT trace log the snapshot corresponds
//! to. Recovery is event sourcing: restore the snapshot, seek the trace
//! to [`LogPosition`], and replay the tail; determinism invariant #6
//! (DESIGN.md) makes the result equal the uninterrupted run.
//!
//! # Format (`OTCS` v1)
//!
//! All integers little-endian. The file is strictly sized — parsing
//! rejects any byte added, removed, or changed:
//!
//! ```text
//! magic "OTCS" (4) | version u16 = 1 | flags u16 = 0
//! meta section   : u32 length prefix, then
//!     alpha u64 | validate u8 | instrument u8 | telemetry u8
//!     audit_chunk u64 (u64::MAX = none) | global_len u64
//!     num_shards u32 | log_offset u64 | log_records u64
//! per-shard section × num_shards : u32 length prefix, then
//!     shard u32 | tree_len u64 | tree_digest u64 (FNV-1a, see below)
//!     policy_name (u16 len + bytes) | round u64
//!     report   : name (u16 len + bytes), 11 u64 counters,
//!                fields/periods as 0/1-tagged optionals, phases vec
//!     driver   : cache bitmap (tree_len bits), pending (tree_len u64),
//!                fields, periods, open phase, phase_pout u64,
//!                phase_pin u64, buf_high_water u64
//!     policy blob : u32 len + bytes (opaque, policy-defined)
//!     telemetry : window base (8 u64), closed windows vec
//! total_len u64   (whole file length, trailer included)
//! checksum u64    (FNV-1a 64 over all preceding bytes)
//! ```
//!
//! [`EngineSnapshot::parse`] checks, in order: magic and version, that
//! the byte count equals the stored `total_len` (every truncation or
//! extension is rejected deterministically), the FNV-1a checksum (any
//! single-byte substitution provably changes it: the xor-then-multiply
//! step is injective for a fixed suffix), and finally the strict
//! structure — every length must be exact, every flag 0 or 1, every
//! vector count bounded by the bytes that remain *before* any allocation.
//! A rejected snapshot returns a typed [`SnapshotError`]; nothing is
//! partially restored.

// Codec modules hold the panic-freedom line hardest: a narrowing cast
// or an out-of-bounds index here turns a corrupt snapshot into a wrong
// answer or a crash. CI runs clippy with -D warnings, so these are
// hard gates for this file.
#![warn(clippy::cast_possible_truncation)]
#![warn(clippy::indexing_slicing)]

use otc_core::cache::CacheSet;
use otc_core::tree::Tree;

use crate::engine::{EngineConfig, ShardState, WindowBase};
use crate::report::{FieldStats, PeriodStats, PhaseStats, Report};
use crate::telemetry::WindowRecord;

/// The four magic bytes every snapshot starts with.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"OTCS";
/// The format version this build writes and accepts.
pub const SNAPSHOT_VERSION: u16 = 1;
/// Upper bound on `num_shards` accepted from a snapshot (same cap as the
/// OTCT trace header).
pub const MAX_SNAPSHOT_SHARDS: u32 = 1 << 20;
/// Shortest byte string that could possibly be a snapshot (header plus
/// trailer); anything shorter is rejected as truncated.
const MIN_SNAPSHOT_LEN: usize = 4 + 2 + 2 + 16;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over `bytes` — the snapshot trailer checksum. Exposed so
/// tests (and external tooling) can recompute it.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// Copies up to `N` bytes of `b` into a zero-padded array — the
/// panic-free spelling of `b.try_into().expect("N bytes")`. Every caller
/// has already bounds-checked the slice (via `Cur::take` or an explicit
/// length guard), so the zero-padding never actually engages; it exists
/// so a decode path cannot panic even if a guard is wrong.
fn le_bytes<const N: usize>(b: &[u8]) -> [u8; N] {
    let mut a = [0u8; N];
    for (d, s) in a.iter_mut().zip(b) {
        *d = *s;
    }
    a
}

/// Overwrites the 4-byte length placeholder at `at` with `value`. The
/// slot always exists (the caller wrote the placeholder moments ago);
/// if it somehow did not, the placeholder survives and parse rejects
/// the length mismatch — still no panic on the write path.
fn patch_u32(out: &mut [u8], at: usize, value: u32) {
    if let Some(slot) = out.get_mut(at..at + 4) {
        slot.copy_from_slice(&value.to_le_bytes());
    }
}

/// FNV-1a 64 digest of a tree's parent array (`u32::MAX` for the root),
/// stored per shard section so a snapshot can never be restored onto a
/// different tree that happens to have the same size.
#[must_use]
pub fn tree_digest(tree: &Tree) -> u64 {
    let mut h = FNV_OFFSET;
    for v in tree.nodes() {
        let p = tree.parent(v).map_or(u32::MAX, |v| v.0);
        for b in p.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Why a snapshot was rejected. Every parse failure is one of these —
/// never a panic, never a partial restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes do not start with the `OTCS` magic.
    BadMagic,
    /// The format version is not one this build understands.
    BadVersion(u16),
    /// Shorter than the smallest possible snapshot.
    Truncated {
        /// The byte count that was offered.
        len: usize,
    },
    /// The stored total length disagrees with the byte count — the file
    /// was truncated or extended.
    LengthMismatch {
        /// Length recorded in the trailer.
        stored: u64,
        /// Length of the bytes offered.
        actual: u64,
    },
    /// The trailer checksum does not match the body — corruption.
    ChecksumMismatch {
        /// Checksum recorded in the trailer.
        stored: u64,
        /// Checksum recomputed over the body.
        computed: u64,
    },
    /// Structurally invalid (with what and where).
    Malformed(String),
    /// Parsed fine, but describes a different engine (configuration,
    /// forest, or policy) than the one it is being restored into.
    Incompatible(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not an OTCS snapshot (bad magic)"),
            Self::BadVersion(v) => write!(f, "unsupported OTCS version {v}"),
            Self::Truncated { len } => {
                write!(f, "snapshot truncated: {len} bytes is shorter than any valid snapshot")
            }
            Self::LengthMismatch { stored, actual } => write!(
                f,
                "snapshot length mismatch: trailer declares {stored} bytes but {actual} were read"
            ),
            Self::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: trailer holds {stored:#018x}, body hashes to {computed:#018x}"
            ),
            Self::Malformed(m) => write!(f, "malformed snapshot: {m}"),
            Self::Incompatible(m) => write!(f, "incompatible snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Where in the OTCT trace log a snapshot was taken: replaying the log
/// from `offset` (skipping `records` records) on top of the restored
/// state reproduces the pre-crash state exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogPosition {
    /// Absolute byte offset into the trace file (end of the last record
    /// the snapshot covers).
    pub offset: u64,
    /// Records the snapshot covers (the replay resumes after this many).
    pub records: u64,
}

/// The snapshot's engine-level metadata: the configuration knobs that
/// affect results, the forest shape, and the log position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// The per-node reorganisation cost α.
    pub alpha: u64,
    /// Whether per-action validation was on.
    pub validate: bool,
    /// Whether fields/periods/phases instrumentation was on.
    pub instrument: bool,
    /// Whether windowed telemetry was on.
    pub telemetry: bool,
    /// The chunk/audit cadence (`None` = unchunked).
    pub audit_chunk: Option<u64>,
    /// Size of the global node-id space.
    pub global_len: u64,
    /// Number of shards (and per-shard sections).
    pub num_shards: u32,
    /// The trace-log position this snapshot corresponds to.
    pub log: LogPosition,
}

impl SnapshotMeta {
    /// The metadata describing `cfg` over a forest of `num_shards` shards
    /// and `global_len` global nodes, at log position `log`. (`threads`
    /// is deliberately absent: thread count never affects results.)
    #[must_use]
    pub fn of(cfg: &EngineConfig, global_len: usize, num_shards: u32, log: LogPosition) -> Self {
        Self {
            alpha: cfg.alpha,
            validate: cfg.validate,
            instrument: cfg.instrument,
            telemetry: cfg.telemetry,
            audit_chunk: cfg.audit_chunk.map(|c| c as u64),
            global_len: global_len as u64,
            num_shards,
            log,
        }
    }
}

// ---------------------------------------------------------------------------
// Little-endian writers.

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), String> {
    let len = u16::try_from(s.len()).map_err(|_| format!("string too long to snapshot: {s:?}"))?;
    put_u16(out, len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_field_stats(out: &mut Vec<u8>, f: &FieldStats) {
    put_u64(out, f.positive_fields);
    put_u64(out, f.negative_fields);
    put_u64(out, f.total_size);
    put_u64(out, f.total_requests);
    put_u64(out, f.saturation_violations);
    put_u64(out, f.field_sizes.len() as u64);
    for &s in &f.field_sizes {
        put_u64(out, s);
    }
    put_u64(out, f.open_field_requests);
}

fn put_period_stats(out: &mut Vec<u8>, p: &PeriodStats) {
    put_u64(out, p.pout);
    put_u64(out, p.pin);
    put_u64(out, p.full_out);
    put_u64(out, p.full_in);
    put_u64(out, p.per_phase_balance.len() as u64);
    for &(pout, pin, k) in &p.per_phase_balance {
        put_u64(out, pout);
        put_u64(out, pin);
        put_u64(out, k as u64);
    }
}

fn put_phase(out: &mut Vec<u8>, p: &PhaseStats) {
    put_u64(out, p.rounds);
    put_u64(out, p.k_p as u64);
    put_u64(out, p.fields_size);
    put_u64(out, p.open_requests);
    put_u64(out, p.cost.service);
    put_u64(out, p.cost.reorg);
    out.push(u8::from(p.finished));
}

fn put_report(out: &mut Vec<u8>, r: &Report) -> Result<(), String> {
    put_str(out, &r.name)?;
    put_u64(out, r.cost.service);
    put_u64(out, r.cost.reorg);
    put_u64(out, r.rounds);
    put_u64(out, r.paid_rounds);
    put_u64(out, r.fetch_events);
    put_u64(out, r.evict_events);
    put_u64(out, r.flush_events);
    put_u64(out, r.nodes_fetched);
    put_u64(out, r.nodes_evicted);
    put_u64(out, r.nodes_flushed);
    put_u64(out, r.peak_cache as u64);
    match &r.fields {
        None => out.push(0),
        Some(f) => {
            out.push(1);
            put_field_stats(out, f);
        }
    }
    match &r.periods {
        None => out.push(0),
        Some(p) => {
            out.push(1);
            put_period_stats(out, p);
        }
    }
    put_u64(out, r.phases.len() as u64);
    for p in &r.phases {
        put_phase(out, p);
    }
    Ok(())
}

fn put_window(out: &mut Vec<u8>, w: &WindowRecord) {
    put_u32(out, w.shard);
    put_u64(out, w.window);
    put_u64(out, w.start_round);
    put_u64(out, w.rounds);
    put_u64(out, w.paid_rounds);
    put_u64(out, w.fetch_events);
    put_u64(out, w.evict_events);
    put_u64(out, w.flush_events);
    put_u64(out, w.nodes_fetched);
    put_u64(out, w.nodes_evicted);
    put_u64(out, w.nodes_flushed);
    put_u64(out, w.occupancy as u64);
    put_u64(out, w.buf_high_water as u64);
    out.push(u8::from(w.partial));
}

/// Writes the snapshot preamble (magic, version, flags) and the
/// length-prefixed meta section. Follow with one
/// [`crate::worker::ShardWorker::snapshot_section`] per shard in shard
/// order, then [`finish_snapshot`].
pub fn write_header(meta: &SnapshotMeta, out: &mut Vec<u8>) {
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    put_u16(out, SNAPSHOT_VERSION);
    put_u16(out, 0); // flags
    let at = out.len();
    put_u32(out, 0); // patched below
    put_u64(out, meta.alpha);
    out.push(u8::from(meta.validate));
    out.push(u8::from(meta.instrument));
    out.push(u8::from(meta.telemetry));
    put_u64(out, meta.audit_chunk.unwrap_or(u64::MAX));
    put_u64(out, meta.global_len);
    put_u32(out, meta.num_shards);
    put_u64(out, meta.log.offset);
    put_u64(out, meta.log.records);
    // Saturation is unreachable (the meta section is ~50 fixed bytes) but
    // if it ever engaged, parse would reject the length mismatch — a
    // typed error instead of a silent truncation.
    let len = u32::try_from(out.len() - at - 4).unwrap_or(u32::MAX);
    patch_u32(out, at, len);
}

/// Appends the `total_len` + FNV-1a checksum trailer, completing a
/// snapshot started with [`write_header`].
pub fn finish_snapshot(out: &mut Vec<u8>) {
    let total = out.len() as u64 + 16;
    put_u64(out, total);
    let checksum = fnv1a(out);
    put_u64(out, checksum);
}

/// Serializes one shard's length-prefixed section onto `out`.
pub(crate) fn write_section(
    shard: u32,
    state: &ShardState<'_>,
    out: &mut Vec<u8>,
) -> Result<(), String> {
    let at = out.len();
    put_u32(out, 0); // patched below
    let tree = state.tree.get();
    put_u32(out, shard);
    put_u64(out, tree.len() as u64);
    put_u64(out, tree_digest(tree));
    put_str(out, state.policy.name())?;
    put_u64(out, state.round as u64);
    put_report(out, &state.report)?;
    // Driver.
    state.driver.mirror.write_bitmap(out);
    for &p in &state.driver.pending {
        put_u64(out, p);
    }
    put_field_stats(out, &state.driver.fields);
    put_period_stats(out, &state.driver.periods);
    put_phase(out, &state.driver.phase);
    put_u64(out, state.driver.phase_pout);
    put_u64(out, state.driver.phase_pin);
    put_u64(out, state.driver.buf_high_water as u64);
    // Policy blob.
    let blob_at = out.len();
    put_u32(out, 0); // patched below
    state.policy.save_state(out)?;
    let blob_len = u32::try_from(out.len() - blob_at - 4)
        .map_err(|_| "policy state blob exceeds 4 GiB".to_string())?;
    patch_u32(out, blob_at, blob_len);
    // Telemetry.
    let b = state.win_base;
    put_u64(out, b.rounds);
    put_u64(out, b.paid_rounds);
    put_u64(out, b.fetch_events);
    put_u64(out, b.evict_events);
    put_u64(out, b.flush_events);
    put_u64(out, b.nodes_fetched);
    put_u64(out, b.nodes_evicted);
    put_u64(out, b.nodes_flushed);
    put_u64(out, state.windows.len() as u64);
    for w in &state.windows {
        put_window(out, w);
    }
    let len = u32::try_from(out.len() - at - 4)
        .map_err(|_| format!("shard {shard} section exceeds 4 GiB"))?;
    patch_u32(out, at, len);
    Ok(())
}

// ---------------------------------------------------------------------------
// Strict parsing.

struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapshotError> {
        let slice = self.pos.checked_add(n).and_then(|end| self.bytes.get(self.pos..end));
        let Some(s) = slice else {
            return Err(SnapshotError::Malformed(format!(
                "{what}: need {n} bytes but only {} remain",
                self.remaining()
            )));
        };
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, what)?.first().copied().unwrap_or(0))
    }

    fn flag(&mut self, what: &str) -> Result<bool, SnapshotError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            v => {
                Err(SnapshotError::Malformed(format!("{what}: flag byte must be 0 or 1, got {v}")))
            }
        }
    }

    fn u16(&mut self, what: &str) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(le_bytes(self.take(2, what)?)))
    }

    fn u32(&mut self, what: &str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(le_bytes(self.take(4, what)?)))
    }

    fn u64(&mut self, what: &str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(le_bytes(self.take(8, what)?)))
    }

    fn str16(&mut self, what: &str) -> Result<String, SnapshotError> {
        let len = self.u16(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed(format!("{what}: not valid UTF-8")))
    }

    /// Asserts the cursor consumed its slice exactly.
    fn done(&self, what: &str) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Malformed(format!(
                "{what}: {} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }

    /// Reads a `u64` element count and bounds it by the bytes that
    /// remain (at `min_size` bytes per element) **before** any
    /// allocation, so corrupt counts can never trigger huge reserves.
    fn count(&mut self, min_size: usize, what: &str) -> Result<usize, SnapshotError> {
        let count = self.u64(what)?;
        let bound = self.remaining() / min_size;
        let bounded = usize::try_from(count).ok().filter(|&c| c <= bound);
        let Some(count) = bounded else {
            return Err(SnapshotError::Malformed(format!(
                "{what}: count {count} exceeds the bytes that remain"
            )));
        };
        Ok(count)
    }
}

fn parse_field_stats(cur: &mut Cur<'_>) -> Result<FieldStats, SnapshotError> {
    let positive_fields = cur.u64("field stats")?;
    let negative_fields = cur.u64("field stats")?;
    let total_size = cur.u64("field stats")?;
    let total_requests = cur.u64("field stats")?;
    let saturation_violations = cur.u64("field stats")?;
    let n = cur.count(8, "field sizes")?;
    let mut field_sizes = Vec::with_capacity(n);
    for _ in 0..n {
        field_sizes.push(cur.u64("field sizes")?);
    }
    let open_field_requests = cur.u64("field stats")?;
    Ok(FieldStats {
        positive_fields,
        negative_fields,
        total_size,
        total_requests,
        saturation_violations,
        field_sizes,
        open_field_requests,
    })
}

fn parse_period_stats(cur: &mut Cur<'_>) -> Result<PeriodStats, SnapshotError> {
    let pout = cur.u64("period stats")?;
    let pin = cur.u64("period stats")?;
    let full_out = cur.u64("period stats")?;
    let full_in = cur.u64("period stats")?;
    let n = cur.count(24, "per-phase balance")?;
    let mut per_phase_balance = Vec::with_capacity(n);
    for _ in 0..n {
        let a = cur.u64("per-phase balance")?;
        let b = cur.u64("per-phase balance")?;
        let k = usize::try_from(cur.u64("per-phase balance")?)
            .map_err(|_| SnapshotError::Malformed("per-phase balance: k_p overflow".into()))?;
        per_phase_balance.push((a, b, k));
    }
    Ok(PeriodStats { pout, pin, full_out, full_in, per_phase_balance })
}

fn parse_phase(cur: &mut Cur<'_>) -> Result<PhaseStats, SnapshotError> {
    let rounds = cur.u64("phase")?;
    let k_p = usize::try_from(cur.u64("phase")?)
        .map_err(|_| SnapshotError::Malformed("phase: k_p overflow".into()))?;
    let fields_size = cur.u64("phase")?;
    let open_requests = cur.u64("phase")?;
    let mut cost = otc_core::request::Cost::zero();
    cost.service = cur.u64("phase")?;
    cost.reorg = cur.u64("phase")?;
    let finished = cur.flag("phase finished")?;
    Ok(PhaseStats { rounds, k_p, fields_size, open_requests, cost, finished })
}

fn parse_report(cur: &mut Cur<'_>) -> Result<Report, SnapshotError> {
    let name = cur.str16("report name")?;
    let mut r = Report { name, ..Report::default() };
    r.cost.service = cur.u64("report")?;
    r.cost.reorg = cur.u64("report")?;
    r.rounds = cur.u64("report")?;
    r.paid_rounds = cur.u64("report")?;
    r.fetch_events = cur.u64("report")?;
    r.evict_events = cur.u64("report")?;
    r.flush_events = cur.u64("report")?;
    r.nodes_fetched = cur.u64("report")?;
    r.nodes_evicted = cur.u64("report")?;
    r.nodes_flushed = cur.u64("report")?;
    r.peak_cache = usize::try_from(cur.u64("report")?)
        .map_err(|_| SnapshotError::Malformed("report: peak_cache overflow".into()))?;
    r.fields = if cur.flag("report fields tag")? { Some(parse_field_stats(cur)?) } else { None };
    r.periods = if cur.flag("report periods tag")? { Some(parse_period_stats(cur)?) } else { None };
    let n = cur.count(49, "report phases")?;
    r.phases = Vec::with_capacity(n);
    for _ in 0..n {
        r.phases.push(parse_phase(cur)?);
    }
    Ok(r)
}

fn parse_window(cur: &mut Cur<'_>) -> Result<WindowRecord, SnapshotError> {
    let shard = cur.u32("window")?;
    let window = cur.u64("window")?;
    let start_round = cur.u64("window")?;
    let rounds = cur.u64("window")?;
    let paid_rounds = cur.u64("window")?;
    let fetch_events = cur.u64("window")?;
    let evict_events = cur.u64("window")?;
    let flush_events = cur.u64("window")?;
    let nodes_fetched = cur.u64("window")?;
    let nodes_evicted = cur.u64("window")?;
    let nodes_flushed = cur.u64("window")?;
    let occupancy = usize::try_from(cur.u64("window")?)
        .map_err(|_| SnapshotError::Malformed("window: occupancy overflow".into()))?;
    let buf_high_water = usize::try_from(cur.u64("window")?)
        .map_err(|_| SnapshotError::Malformed("window: buf_high_water overflow".into()))?;
    let partial = cur.flag("window partial")?;
    Ok(WindowRecord {
        shard,
        window,
        start_round,
        rounds,
        paid_rounds,
        fetch_events,
        evict_events,
        flush_events,
        nodes_fetched,
        nodes_evicted,
        nodes_flushed,
        occupancy,
        buf_high_water,
        partial,
    })
}

fn parse_meta(bytes: &[u8]) -> Result<SnapshotMeta, SnapshotError> {
    let mut cur = Cur::new(bytes);
    let alpha = cur.u64("meta alpha")?;
    let validate = cur.flag("meta validate")?;
    let instrument = cur.flag("meta instrument")?;
    let telemetry = cur.flag("meta telemetry")?;
    let audit_chunk = match cur.u64("meta audit chunk")? {
        u64::MAX => None,
        c => Some(c),
    };
    let global_len = cur.u64("meta global length")?;
    let num_shards = cur.u32("meta shard count")?;
    if num_shards == 0 || num_shards > MAX_SNAPSHOT_SHARDS {
        return Err(SnapshotError::Malformed(format!(
            "meta shard count {num_shards} out of range [1, {MAX_SNAPSHOT_SHARDS}]"
        )));
    }
    let offset = cur.u64("meta log offset")?;
    let records = cur.u64("meta log records")?;
    cur.done("meta section")?;
    Ok(SnapshotMeta {
        alpha,
        validate,
        instrument,
        telemetry,
        audit_chunk,
        global_len,
        num_shards,
        log: LogPosition { offset, records },
    })
}

/// One shard's slice of a parsed [`EngineSnapshot`].
#[derive(Debug, Clone)]
pub struct ShardSection {
    /// Shard id recorded in the section (equals its index).
    pub shard: u32,
    /// Node count of the shard tree the section was taken over.
    pub tree_len: u64,
    /// [`tree_digest`] of that shard tree.
    pub tree_digest: u64,
    /// Name of the policy whose state the section holds.
    pub policy_name: String,
    /// Rounds the shard had processed at snapshot time.
    pub round: u64,
    /// The shard's accumulating report at snapshot time.
    pub report: Report,
    /// The policy's opaque state blob
    /// ([`otc_core::policy::CachePolicy::save_state`]).
    pub policy_blob: Vec<u8>,
    /// Closed telemetry windows at snapshot time.
    pub windows: Vec<WindowRecord>,
    pub(crate) mirror: CacheSet,
    pub(crate) pending: Vec<u64>,
    pub(crate) fields: FieldStats,
    pub(crate) periods: PeriodStats,
    pub(crate) phase: PhaseStats,
    pub(crate) phase_pout: u64,
    pub(crate) phase_pin: u64,
    pub(crate) buf_high_water: usize,
    pub(crate) win_base: WindowBase,
}

/// Parses one standalone length-prefixed shard section, as produced by
/// [`crate::worker::ShardWorker::snapshot_section`] — the payload of a
/// cell-migration handoff. The same decoder full snapshots use, minus
/// the surrounding container (no magic, meta or checksum: a handoff
/// lives inside an already-framed in-memory transfer, never at rest on
/// disk).
///
/// # Errors
/// A [`SnapshotError`] for truncation, a length prefix that does not
/// cover the payload, or any structural deviation inside the section.
pub fn parse_shard_section(bytes: &[u8]) -> Result<ShardSection, SnapshotError> {
    let mut cur = Cur::new(bytes);
    let sec_len = cur.u32("section length")? as usize;
    let section = parse_section(cur.take(sec_len, "shard section")?)?;
    cur.done("shard section")?;
    Ok(section)
}

fn parse_section(bytes: &[u8]) -> Result<ShardSection, SnapshotError> {
    let mut cur = Cur::new(bytes);
    let shard = cur.u32("section shard id")?;
    let tree_len = cur.u64("section tree length")?;
    let in_range = usize::try_from(tree_len).ok().filter(|_| tree_len <= u64::from(u32::MAX));
    let Some(n) = in_range else {
        return Err(SnapshotError::Malformed(format!(
            "section tree length {tree_len} exceeds the node-id space"
        )));
    };
    let tree_digest = cur.u64("section tree digest")?;
    let policy_name = cur.str16("section policy name")?;
    let round = cur.u64("section round")?;
    let report = parse_report(&mut cur)?;
    let bits = cur.take(CacheSet::bitmap_len(n), "cache bitmap")?;
    let mirror = CacheSet::from_bitmap(n, bits).map_err(SnapshotError::Malformed)?;
    if cur.remaining() / 8 < n {
        return Err(SnapshotError::Malformed(format!(
            "pending counters: need {n} u64s but only {} bytes remain",
            cur.remaining()
        )));
    }
    let mut pending = Vec::with_capacity(n);
    for _ in 0..n {
        pending.push(cur.u64("pending counters")?);
    }
    let fields = parse_field_stats(&mut cur)?;
    let periods = parse_period_stats(&mut cur)?;
    let phase = parse_phase(&mut cur)?;
    let phase_pout = cur.u64("phase pout")?;
    let phase_pin = cur.u64("phase pin")?;
    let buf_high_water = usize::try_from(cur.u64("buf high water")?)
        .map_err(|_| SnapshotError::Malformed("buf high water overflow".into()))?;
    let blob_len = cur.u32("policy blob length")? as usize;
    let policy_blob = cur.take(blob_len, "policy blob")?.to_vec();
    let win_base = WindowBase {
        rounds: cur.u64("window base")?,
        paid_rounds: cur.u64("window base")?,
        fetch_events: cur.u64("window base")?,
        evict_events: cur.u64("window base")?,
        flush_events: cur.u64("window base")?,
        nodes_fetched: cur.u64("window base")?,
        nodes_evicted: cur.u64("window base")?,
        nodes_flushed: cur.u64("window base")?,
    };
    let wn = cur.count(101, "telemetry windows")?;
    let mut windows = Vec::with_capacity(wn);
    for _ in 0..wn {
        windows.push(parse_window(&mut cur)?);
    }
    cur.done("shard section")?;
    Ok(ShardSection {
        shard,
        tree_len,
        tree_digest,
        policy_name,
        round,
        report,
        policy_blob,
        windows,
        mirror,
        pending,
        fields,
        periods,
        phase,
        phase_pout,
        phase_pin,
        buf_high_water,
        win_base,
    })
}

/// A fully parsed, structurally validated snapshot, ready to be restored
/// into an engine (or into detached workers, section by section).
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// Engine-level metadata (configuration, forest shape, log position).
    pub meta: SnapshotMeta,
    /// Per-shard sections, in shard order (one per `meta.num_shards`).
    pub sections: Vec<ShardSection>,
}

impl EngineSnapshot {
    /// Parses and validates a snapshot. See the module docs for the
    /// validation order; any deviation — truncation, extension, a single
    /// flipped byte, a structural inconsistency — yields a typed
    /// [`SnapshotError`].
    ///
    /// # Errors
    /// A [`SnapshotError`] describing the first rejection.
    pub fn parse(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.get(..4) != Some(SNAPSHOT_MAGIC.as_slice()) {
            return Err(SnapshotError::BadMagic);
        }
        if bytes.len() < MIN_SNAPSHOT_LEN {
            return Err(SnapshotError::Truncated { len: bytes.len() });
        }
        // All ranges below are in bounds once len >= MIN_SNAPSHOT_LEN; the
        // `.get(..).unwrap_or_default()` form keeps the parser panic-free
        // by construction (a missed range reads as zeros and is rejected
        // by the length/checksum validation, never a crash).
        let field = |range: std::ops::Range<usize>| bytes.get(range).unwrap_or_default();
        let version = u16::from_le_bytes(le_bytes(field(4..6)));
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let flags = u16::from_le_bytes(le_bytes(field(6..8)));
        if flags != 0 {
            return Err(SnapshotError::Malformed(format!("unsupported flags {flags:#06x}")));
        }
        let body_end = bytes.len() - 16;
        let stored_len = u64::from_le_bytes(le_bytes(field(body_end..body_end + 8)));
        if stored_len != bytes.len() as u64 {
            return Err(SnapshotError::LengthMismatch {
                stored: stored_len,
                actual: bytes.len() as u64,
            });
        }
        let stored_ck = u64::from_le_bytes(le_bytes(field(body_end + 8..bytes.len())));
        let computed = fnv1a(field(0..body_end + 8));
        if stored_ck != computed {
            return Err(SnapshotError::ChecksumMismatch { stored: stored_ck, computed });
        }
        let mut cur = Cur::new(field(8..body_end));
        let meta_len = cur.u32("meta length")? as usize;
        let meta = parse_meta(cur.take(meta_len, "meta section")?)?;
        let mut sections = Vec::with_capacity(meta.num_shards as usize);
        for s in 0..meta.num_shards {
            let sec_len = cur.u32("section length")? as usize;
            let section = parse_section(cur.take(sec_len, "shard section")?)?;
            if section.shard != s {
                return Err(SnapshotError::Malformed(format!(
                    "section {s} records shard id {}",
                    section.shard
                )));
            }
            sections.push(section);
        }
        cur.done("snapshot body")?;
        Ok(Self { meta, sections })
    }

    /// Checks that this snapshot describes an engine shaped like
    /// `(cfg, global_len, num_shards)` — same result-affecting
    /// configuration, same forest shape — without touching any state.
    ///
    /// # Errors
    /// [`SnapshotError::Incompatible`] naming the first mismatch.
    pub fn check_compatible(
        &self,
        cfg: &EngineConfig,
        global_len: usize,
        num_shards: usize,
    ) -> Result<(), SnapshotError> {
        let m = &self.meta;
        // A shard count beyond u32 cannot describe any real engine; the
        // saturated value then fails the num_shards comparison below with
        // a typed Incompatible error rather than truncating silently.
        let want =
            SnapshotMeta::of(cfg, global_len, u32::try_from(num_shards).unwrap_or(u32::MAX), m.log);
        if m.alpha != want.alpha {
            return Err(SnapshotError::Incompatible(format!(
                "snapshot has alpha {} but the engine runs alpha {}",
                m.alpha, want.alpha
            )));
        }
        if (m.validate, m.instrument, m.telemetry, m.audit_chunk)
            != (want.validate, want.instrument, want.telemetry, want.audit_chunk)
        {
            return Err(SnapshotError::Incompatible(
                "snapshot was taken under different validate/instrument/telemetry/audit settings"
                    .into(),
            ));
        }
        if m.global_len != want.global_len {
            return Err(SnapshotError::Incompatible(format!(
                "snapshot covers {} global nodes but the forest has {}",
                m.global_len, want.global_len
            )));
        }
        if m.num_shards != want.num_shards {
            return Err(SnapshotError::Incompatible(format!(
                "snapshot has {} shards but the engine has {}",
                m.num_shards, want.num_shards
            )));
        }
        Ok(())
    }
}

/// Restores one parsed section into a shard's live state.
///
/// Validation order keeps this safe: tree/policy identity checks and the
/// (internally atomic) [`otc_core::policy::CachePolicy::restore_state`]
/// run **before** any shard state is touched, so those failures leave the
/// shard exactly as it was. The one cross-check that can only run after
/// the policy restore — restored mirror ≡ restored policy cache —
/// poisons the shard on failure rather than leave a split state.
pub(crate) fn precheck_section(sec: &ShardSection, state: &ShardState<'_>) -> Result<(), String> {
    let tree = state.tree.get();
    if sec.tree_len != tree.len() as u64 {
        return Err(format!(
            "snapshot section covers a tree of {} nodes but shard {} has {}",
            sec.tree_len,
            sec.shard,
            tree.len()
        ));
    }
    if sec.tree_digest != tree_digest(tree) {
        return Err(format!(
            "snapshot section for shard {} was taken over a different tree (digest mismatch)",
            sec.shard
        ));
    }
    if sec.policy_name != state.policy.name() {
        return Err(format!(
            "snapshot section holds '{}' state but shard {} runs '{}'",
            sec.policy_name,
            sec.shard,
            state.policy.name()
        ));
    }
    Ok(())
}

pub(crate) fn restore_section_into(
    sec: &ShardSection,
    state: &mut ShardState<'_>,
) -> Result<(), String> {
    precheck_section(sec, state)?;
    state.policy.restore_state(&sec.policy_blob)?;
    if sec.mirror != *state.policy.cache() {
        let message = format!(
            "shard {}: snapshot cache bitmap diverges from the restored policy's cache",
            sec.shard
        );
        state.failed = Some(message.clone());
        return Err(message);
    }
    let d = &mut state.driver;
    d.mirror = sec.mirror.clone();
    d.pending.clear();
    d.pending.extend_from_slice(&sec.pending);
    d.fields = sec.fields.clone();
    d.periods = sec.periods.clone();
    d.phase = sec.phase.clone();
    d.phase_pout = sec.phase_pout;
    d.phase_pin = sec.phase_pin;
    d.buf_high_water = sec.buf_high_water;
    state.report = sec.report.clone();
    state.round = usize::try_from(sec.round)
        .map_err(|_| format!("snapshot round {} exceeds this platform's usize", sec.round))?;
    state.windows.clear();
    state.windows.extend_from_slice(&sec.windows);
    state.win_base = sec.win_base;
    state.failed = None;
    state.queue.clear();
    Ok(())
}

/// What a tail replay did during [`crate::engine::ShardedEngine::recover`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverStats {
    /// Records replayed from the log tail.
    pub replayed: u64,
    /// `true` if the tail ended in a torn (partially written) record:
    /// the recovered state is the longest consistent prefix of the log,
    /// which is exactly the set of requests whose writes completed.
    pub torn_tail: bool,
}

#[cfg(test)]
#[allow(
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    reason = "tests index and truncate fixture buffers they just built; a panic here is a failing test, not a service crash"
)]
mod tests {
    use super::*;
    use otc_core::tree::NodeId;
    use std::io::Cursor;
    use std::sync::Arc;

    use otc_core::forest::{Forest, ShardId};
    use otc_core::policy::CachePolicy;
    use otc_core::request::Request;
    use otc_core::tc::{TcConfig, TcFast};
    use otc_util::SplitMix64;
    use otc_workloads::trace::{TraceHeader, TraceReader, TraceWriter};

    use crate::engine::ShardedEngine;

    fn factory(tree: Arc<Tree>, _s: ShardId) -> Box<dyn CachePolicy> {
        Box::new(TcFast::new(tree, TcConfig::new(2, 4)))
    }

    fn mixed(n: usize, len: usize, seed: u64) -> Vec<Request> {
        let mut rng = SplitMix64::new(seed);
        (0..len)
            .map(|_| {
                let v = NodeId(rng.index(n) as u32);
                if rng.chance(0.4) {
                    Request::neg(v)
                } else {
                    Request::pos(v)
                }
            })
            .collect()
    }

    fn cfg() -> EngineConfig {
        EngineConfig::new(2).audit_every(64).telemetry(true)
    }

    #[test]
    fn snapshot_round_trips_and_resumes_bit_identically() {
        let tree = Tree::star(16);
        let reqs = mixed(tree.len(), 3000, 5);
        let mut a = ShardedEngine::new(Forest::partition(&tree, 4), &factory, cfg());
        a.submit_batch(&reqs[..1500]).expect("valid");
        let mut buf = Vec::new();
        a.write_snapshot(LogPosition { offset: 77, records: 1500 }, &mut buf).expect("snapshots");
        let snap = EngineSnapshot::parse(&buf).expect("parses");
        assert_eq!(snap.meta.log, LogPosition { offset: 77, records: 1500 });
        assert_eq!(snap.meta.num_shards, 4);

        let mut b = ShardedEngine::new(Forest::partition(&tree, 4), &factory, cfg());
        b.restore_snapshot(&snap).expect("restores");
        a.submit_batch(&reqs[1500..]).expect("valid");
        b.submit_batch(&reqs[1500..]).expect("valid");
        assert_eq!(a.timeline(), b.timeline(), "telemetry resumes bit-identically");
        assert_eq!(
            a.into_reports().expect("valid"),
            b.into_reports().expect("valid"),
            "reports resume bit-identically"
        );
    }

    #[test]
    fn recover_from_log_tail_matches_uninterrupted_run() {
        let tree = Tree::star(12);
        let reqs = mixed(tree.len(), 2500, 11);
        let header = TraceHeader::single_tree(tree.len(), 0, "test");
        let mut w = TraceWriter::new(Cursor::new(Vec::new()), header).expect("writes");
        for &r in &reqs {
            w.push(r).expect("writes");
        }
        let bytes = w.finish().expect("finishes").into_inner();

        // The "pre-crash" engine processed 1000 records, then snapshotted.
        let cut = 1000usize;
        let mut pre = TraceReader::new(Cursor::new(bytes.clone())).expect("opens");
        for _ in 0..cut {
            pre.next().expect("has record").expect("valid");
        }
        let log = LogPosition { offset: pre.byte_pos(), records: pre.records_read() };
        let mut a = ShardedEngine::new(Forest::partition(&tree, 3), &factory, cfg());
        a.submit_batch(&reqs[..cut]).expect("valid");
        let mut buf = Vec::new();
        a.write_snapshot(log, &mut buf).expect("snapshots");
        let snap = EngineSnapshot::parse(&buf).expect("parses");

        // Recovery: fresh engine, restore + tail replay.
        let mut rec = ShardedEngine::new(Forest::partition(&tree, 3), &factory, cfg());
        let mut reader = TraceReader::new(Cursor::new(bytes)).expect("opens");
        let mut chunk = Vec::new();
        let stats = rec.recover(&snap, &mut reader, &mut chunk).expect("recovers");
        assert_eq!(stats.replayed, (reqs.len() - cut) as u64);
        assert!(!stats.torn_tail);

        let mut full = ShardedEngine::new(Forest::partition(&tree, 3), &factory, cfg());
        full.submit_batch(&reqs).expect("valid");
        assert_eq!(rec.timeline(), full.timeline(), "recovered telemetry ≡ uninterrupted");
        assert_eq!(
            rec.into_reports().expect("valid"),
            full.into_reports().expect("valid"),
            "recovered reports ≡ uninterrupted"
        );
    }

    #[test]
    fn incompatible_snapshots_are_refused_before_any_mutation() {
        let stars = || Forest::from_trees(vec![Arc::new(Tree::star(4)), Arc::new(Tree::star(4))]);
        let reqs = mixed(stars().global_len(), 400, 3);
        let mut a = ShardedEngine::new(stars(), &factory, cfg());
        a.submit_batch(&reqs).expect("valid");
        let mut buf = Vec::new();
        a.write_snapshot(LogPosition::default(), &mut buf).expect("snapshots");
        let snap = EngineSnapshot::parse(&buf).expect("parses");

        // Wrong alpha: refused by the meta check, engine stays usable.
        let f3 = |tree: Arc<Tree>, _s: ShardId| {
            Box::new(TcFast::new(tree, TcConfig::new(3, 4))) as Box<dyn CachePolicy>
        };
        let mut wrong_alpha =
            ShardedEngine::new(stars(), &f3, EngineConfig::new(3).audit_every(64).telemetry(true));
        let err = wrong_alpha.restore_snapshot(&snap).unwrap_err();
        assert!(err.message.contains("alpha"), "got: {err}");
        wrong_alpha.submit(Request::pos(NodeId(1))).expect("refusal leaves the engine usable");

        // Wrong shard count (same global size).
        let three = Forest::from_trees(vec![
            Arc::new(Tree::path(4)),
            Arc::new(Tree::path(3)),
            Arc::new(Tree::path(3)),
        ]);
        let mut wrong_shards = ShardedEngine::new(three, &factory, cfg());
        let err = wrong_shards.restore_snapshot(&snap).unwrap_err();
        assert!(err.message.contains("shard"), "got: {err}");

        // Same shape, different trees: the per-shard digest catches it.
        let paths = Forest::from_trees(vec![Arc::new(Tree::path(5)), Arc::new(Tree::path(5))]);
        let mut wrong_tree = ShardedEngine::new(paths, &factory, cfg());
        let err = wrong_tree.restore_snapshot(&snap).unwrap_err();
        assert!(err.message.contains("tree"), "got: {err}");
        wrong_tree.submit(Request::pos(NodeId(1))).expect("refusal leaves the engine usable");
    }

    #[test]
    fn detached_worker_sections_assemble_into_a_parsable_snapshot() {
        let tree = Tree::star(16);
        let reqs = mixed(tree.len(), 2000, 29);
        let engine = ShardedEngine::new(Forest::partition(&tree, 4), &factory, cfg());
        let (router, mut workers) = engine.into_workers().expect("detaches");
        for &r in &reqs {
            let (sid, local) = router.route(r).expect("in range");
            workers[sid.index()].step(local).expect("valid");
        }
        let meta = SnapshotMeta::of(
            &cfg(),
            router.global_len(),
            router.num_shards() as u32,
            LogPosition { offset: 9, records: 2000 },
        );
        let mut buf = Vec::new();
        write_header(&meta, &mut buf);
        for w in &workers {
            w.snapshot_section(&mut buf).expect("snapshots");
        }
        finish_snapshot(&mut buf);
        let snap = EngineSnapshot::parse(&buf).expect("parses");

        // Restoring section-by-section into fresh workers resumes
        // bit-identically to the originals.
        let fresh = ShardedEngine::new(Forest::partition(&tree, 4), &factory, cfg());
        let (_, mut restored) = fresh.into_workers().expect("detaches");
        for (w, sec) in restored.iter_mut().zip(&snap.sections) {
            w.restore_section(sec).expect("restores");
        }
        let more = mixed(tree.len(), 500, 31);
        for &r in &more {
            let (sid, local) = router.route(r).expect("in range");
            workers[sid.index()].step(local).expect("valid");
            restored[sid.index()].step(local).expect("valid");
        }
        for (a, b) in workers.into_iter().zip(restored) {
            assert_eq!(a.windows(), b.windows());
            assert_eq!(a.into_report().expect("valid"), b.into_report().expect("valid"));
        }
    }
}
