//! Detachable per-shard workers: the engine, taken apart for serving.
//!
//! A [`crate::engine::ShardedEngine`] is built for batch work — one owner
//! thread stages requests and drains all shards inside short-lived scoped
//! threads. A serving runtime (`otc-serve`) needs the opposite shape:
//! **persistent** worker threads, each owning its shard for the lifetime
//! of the service, fed continuously through queues while the service is
//! live.
//!
//! [`ShardedEngine::into_workers`](crate::engine::ShardedEngine::into_workers)
//! converts between the two: it splits the engine into
//!
//! * one [`ShardRouter`] — the cheap, cloneable, thread-safe routing view
//!   (global id space → `(shard, local request)`), shared by every
//!   ingress thread; and
//! * one [`ShardWorker`] per shard — the shard's tree, policy, verified
//!   driver, report and telemetry state, now `Send` and self-contained,
//!   ready to be moved onto a dedicated OS thread.
//!
//! Workers report **incrementally**: [`ShardWorker::report_snapshot`]
//! publishes "the report as if the run ended now" without consuming
//! anything (the classic `into_report` is terminal), and
//! [`ShardWorker::windows`] snapshots the telemetry timeline the same
//! way. Both cost one clone of the aggregates, never hot-path work.
//!
//! The determinism contract carries over unchanged: a worker processes
//! its queue in FIFO order with the same verified `Driver` the engine
//! uses, so feeding workers some interleaving of per-shard streams yields
//! bit-identical per-shard [`Report`]s to an engine run (or a
//! `replay_trace`) that presents each shard the same per-shard order —
//! `crates/serve` pins this end to end over TCP.

use std::sync::Arc;

use otc_core::forest::{Forest, ShardId};
use otc_core::request::Request;
use otc_core::tree::Tree;

use crate::engine::{EngineConfig, ShardHandle, ShardState, SubmitOutcome};
use crate::report::Report;
use crate::telemetry::{Timeline, WindowRecord};

/// The routing view of a detached engine: maps globally-addressed
/// requests to `(shard, local request)` without touching any shard
/// state. `Clone` + `Send` + `Sync`, so every ingress thread can hold
/// one.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    /// `None` for the identity-routing single-shard case.
    forest: Option<Arc<Forest>>,
    global_len: usize,
    shard_map: Vec<u32>,
}

impl ShardRouter {
    pub(crate) fn new(forest: Option<Forest>, shard_sizes: Vec<u32>, global_len: usize) -> Self {
        Self { forest: forest.map(Arc::new), global_len, shard_map: shard_sizes }
    }

    /// Number of shards routed over.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shard_map.len()
    }

    /// Size of the global node-id space (every request must satisfy
    /// `node < global_len`).
    #[must_use]
    pub fn global_len(&self) -> usize {
        self.global_len
    }

    /// Per-shard tree sizes, in shard order — the trace-header
    /// `shard_map` of a service logging over this router.
    #[must_use]
    pub fn shard_map(&self) -> &[u32] {
        &self.shard_map
    }

    /// Routes a globally-addressed request to `(shard, local request)`.
    /// O(1); mirrors `ShardedEngine`'s routing exactly.
    ///
    /// # Errors
    /// Describes requests outside the global id space.
    pub fn route(&self, r: Request) -> Result<(ShardId, Request), String> {
        if r.node.index() >= self.global_len {
            return Err(format!(
                "request targets node {} but the forest has {} nodes",
                r.node, self.global_len
            ));
        }
        match &self.forest {
            Some(f) => Ok(f.route_request(r)),
            None => Ok((ShardId(0), r)),
        }
    }
}

/// One shard of a detached [`crate::engine::ShardedEngine`]: tree,
/// policy, verified driver, report and telemetry state, owned and
/// `Send` — the unit a serving runtime pins to a persistent worker
/// thread.
pub struct ShardWorker {
    state: ShardState<'static>,
    shard: ShardId,
    cfg: EngineConfig,
}

impl ShardWorker {
    pub(crate) fn new(state: ShardState<'static>, shard: ShardId, cfg: EngineConfig) -> Self {
        Self { state, shard, cfg }
    }

    /// Builds a fresh, empty worker for one cell — tree, policy, verified
    /// driver and zeroed report — without detaching a whole engine. This
    /// is how a rebalancing runtime materialises the destination of a
    /// cell migration before installing the migrated state with
    /// [`ShardWorker::restore_section`].
    #[must_use]
    pub fn fresh(
        tree: Arc<Tree>,
        policy: Box<dyn otc_core::policy::CachePolicy>,
        shard: ShardId,
        cfg: EngineConfig,
    ) -> Self {
        let state = crate::engine::ShardedEngine::shard_state(
            crate::engine::TreeRef::Owned(tree),
            policy,
            &cfg,
        );
        Self { state, shard, cfg }
    }

    /// This worker's cumulative load counters — the per-cell decision
    /// input of `otc_sim::rebalance` (see
    /// [`crate::engine::ShardedEngine::cell_loads`] for the engine-wide
    /// equivalent and the determinism contract).
    #[must_use]
    pub fn cell_load(&self) -> otc_workloads::rebalance::CellLoad {
        otc_workloads::rebalance::CellLoad {
            rounds: self.state.report.rounds,
            paid_rounds: self.state.report.paid_rounds,
            occupancy: self.state.driver.cache_len() as u64,
        }
    }

    /// This worker's shard id.
    #[must_use]
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// The engine configuration the worker runs under.
    #[must_use]
    pub fn config(&self) -> EngineConfig {
        self.cfg
    }

    /// The shard's tree.
    #[must_use]
    pub fn tree(&self) -> &Tree {
        self.state.tree.get()
    }

    /// A shared handle to the shard's tree, when the worker owns it
    /// (workers detached from a forest-built engine always do; only
    /// borrowed single-tree runners return `None`). Cell migration
    /// serializes state but not the immutable tree — the destination
    /// rebuilds its worker around this same handle.
    #[must_use]
    pub fn tree_arc(&self) -> Option<Arc<Tree>> {
        match &self.state.tree {
            crate::engine::TreeRef::Owned(tree) => Some(Arc::clone(tree)),
            crate::engine::TreeRef::Borrowed(_) => None,
        }
    }

    /// Rounds processed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.state.report.rounds
    }

    /// Rounds that paid the service cost so far.
    #[must_use]
    pub fn paid_rounds(&self) -> u64 {
        self.state.report.paid_rounds
    }

    /// Cost accumulated so far (folded at the chunk cadence, so a batch
    /// in flight is visible only after its fold).
    #[must_use]
    pub fn cost(&self) -> otc_core::request::Cost {
        self.state.report.cost
    }

    /// The sticky first protocol violation, if one has occurred.
    #[must_use]
    pub fn error(&self) -> Option<&str> {
        self.state.failed.as_deref()
    }

    /// Drives one **shard-local** request through the verified driver
    /// (same semantics as `ShardedEngine::submit` after routing).
    ///
    /// # Errors
    /// The simulator's classic protocol violations; the first one
    /// poisons the worker (subsequent calls return it again).
    pub fn step(&mut self, req: Request) -> Result<SubmitOutcome, String> {
        let mut handle = ShardHandle { state: &mut self.state, shard: self.shard, cfg: self.cfg };
        handle.step(req)
    }

    /// Drives a slice of shard-local requests in order, with the
    /// engine's chunked accounting/audit cadence.
    ///
    /// # Errors
    /// Protocol violations (sticky, as with [`ShardWorker::step`]).
    pub fn run_batch(&mut self, reqs: &[Request]) -> Result<(), String> {
        self.run_batch_hooked(reqs, &mut NoHooks)
    }

    /// [`ShardWorker::run_batch`] with an observation seam around the
    /// drain. The hooks fire once per call, outside all shard state:
    /// they see only the cell id and batch length before the drain and
    /// nothing after it, and their return type is `()` — so by
    /// construction no hook can feed anything back into a state
    /// transition (invariant #8: observation never changes results).
    /// With [`NoHooks`] this compiles down to exactly `run_batch`.
    ///
    /// # Errors
    /// Protocol violations (sticky, as with [`ShardWorker::step`]).
    pub fn run_batch_hooked<H: BatchHooks>(
        &mut self,
        reqs: &[Request],
        hooks: &mut H,
    ) -> Result<(), String> {
        if let Some(message) = &self.state.failed {
            return Err(message.clone());
        }
        hooks.before_batch(self.shard.0, reqs.len());
        let outcome = self.state.drain(reqs, &self.cfg);
        hooks.after_batch(self.shard.0, reqs.len());
        match outcome {
            Ok(()) => Ok(()),
            Err(message) => {
                self.state.failed = Some(message.clone());
                Err(message)
            }
        }
    }

    /// The report **as if the run ended now**: all counters accumulated
    /// so far plus a closed copy of the open instrumentation (phase, open
    /// field). Non-consuming and repeatable — the worker keeps serving
    /// afterwards and later snapshots strictly extend earlier ones. A
    /// snapshot taken after the last round equals the terminal
    /// [`ShardWorker::into_report`].
    #[must_use]
    pub fn report_snapshot(&self) -> Report {
        let mut report = self.state.report.clone();
        self.state.driver.finish_into(self.cfg.sim(), &mut report);
        report
    }

    /// The telemetry windows closed so far, plus the open partial window
    /// (when telemetry is on and rounds have run since the last
    /// boundary), with the shard id filled in. Non-consuming.
    #[must_use]
    pub fn windows(&self) -> Vec<WindowRecord> {
        let mut windows = Vec::new();
        self.state.collect_windows(self.shard.0, self.cfg.telemetry, &mut windows);
        windows
    }

    /// Serializes this shard's length-prefixed `OTCS` section onto `out`
    /// (appending, so sections from all workers concatenate in shard
    /// order between [`crate::snapshot::write_header`] and
    /// [`crate::snapshot::finish_snapshot`]). Non-consuming — the worker
    /// keeps serving — and independent of every other shard: each worker
    /// snapshots at its own cut point without pausing the rest.
    ///
    /// # Errors
    /// A policy that does not support snapshots
    /// ([`otc_core::policy::CachePolicy::save_state`]).
    pub fn snapshot_section(&self, out: &mut Vec<u8>) -> Result<(), String> {
        crate::snapshot::write_section(self.shard.0, &self.state, out)
    }

    /// Restores this shard from a parsed snapshot section. Identity
    /// checks (shard id, tree, policy) and the policy's own atomic
    /// restore run before any state is touched; see
    /// [`crate::engine::ShardedEngine::restore_snapshot`] for the
    /// poisoning contract on post-mutation failures.
    ///
    /// # Errors
    /// Identity mismatches and policy restore failures.
    pub fn restore_section(
        &mut self,
        section: &crate::snapshot::ShardSection,
    ) -> Result<(), String> {
        if section.shard != self.shard.0 {
            return Err(format!(
                "snapshot section belongs to shard {} but this worker is shard {}",
                section.shard, self.shard.0
            ));
        }
        crate::snapshot::restore_section_into(section, &mut self.state)
    }

    /// Finishes the worker and returns its final per-shard report.
    ///
    /// # Errors
    /// Returns the sticky protocol violation if one occurred.
    pub fn into_report(self) -> Result<Report, String> {
        if let Some(message) = self.state.failed {
            return Err(message);
        }
        let mut report = self.state.report;
        self.state.driver.finish(self.cfg.sim(), &mut report);
        Ok(report)
    }
}

/// Observation seam around [`ShardWorker::run_batch_hooked`]: a serving
/// runtime implements this to time per-cell drains without `otc-sim`
/// (a determinism crate — otc-lint rule R7) ever depending on a metrics
/// crate. Both methods return `()` and receive only the cell id and the
/// batch length, so an implementation cannot influence the drain — the
/// trait is one-way by construction.
pub trait BatchHooks {
    /// Called immediately before a batch drains on a cell worker.
    fn before_batch(&mut self, cell: u32, len: usize);
    /// Called immediately after the drain returns (on success and on
    /// protocol violation alike).
    fn after_batch(&mut self, cell: u32, len: usize);
}

/// The no-op hooks [`ShardWorker::run_batch`] uses: everything inlines
/// away, so the unobserved path pays nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl BatchHooks for NoHooks {
    #[inline]
    fn before_batch(&mut self, _cell: u32, _len: usize) {}
    #[inline]
    fn after_batch(&mut self, _cell: u32, _len: usize) {}
}

/// Assembles per-worker window snapshots into one [`Timeline`] (the
/// serving-side equivalent of `ShardedEngine::timeline`): `windows`
/// must be the concatenation of [`ShardWorker::windows`] results in
/// shard order.
#[must_use]
pub fn timeline_from_windows(
    cfg: &EngineConfig,
    shards: u32,
    windows: Vec<WindowRecord>,
) -> Timeline {
    let window_rounds = if cfg.telemetry { cfg.audit_chunk.unwrap_or(0) as u64 } else { 0 };
    Timeline { alpha: cfg.alpha, window_rounds, shards, windows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ShardedEngine;
    use otc_core::policy::CachePolicy;
    use otc_core::tc::{TcConfig, TcFast};
    use otc_core::tree::NodeId;
    use otc_util::SplitMix64;

    fn factory(tree: Arc<Tree>, _s: ShardId) -> Box<dyn CachePolicy> {
        Box::new(TcFast::new(tree, TcConfig::new(2, 4)))
    }

    fn mixed(n: usize, len: usize, seed: u64) -> Vec<Request> {
        let mut rng = SplitMix64::new(seed);
        (0..len)
            .map(|_| {
                let v = NodeId(rng.index(n) as u32);
                if rng.chance(0.4) {
                    Request::neg(v)
                } else {
                    Request::pos(v)
                }
            })
            .collect()
    }

    #[test]
    fn detached_workers_match_the_engine_bit_for_bit() {
        let tree = Tree::star(16);
        let reqs = mixed(tree.len(), 4000, 3);

        let mut engine =
            ShardedEngine::new(Forest::partition(&tree, 4), &factory, EngineConfig::new(2));
        engine.submit_batch(&reqs).expect("valid");
        let base = engine.into_reports().expect("valid");

        let engine =
            ShardedEngine::new(Forest::partition(&tree, 4), &factory, EngineConfig::new(2));
        let (router, mut workers) = engine.into_workers().expect("fresh engine detaches");
        assert_eq!(router.num_shards(), 4);
        for &r in &reqs {
            let (sid, local) = router.route(r).expect("in range");
            workers[sid.index()].step(local).expect("valid");
        }
        for (w, want) in workers.into_iter().zip(base) {
            assert_eq!(w.into_report().expect("valid"), want);
        }
    }

    #[test]
    fn snapshots_are_incremental_and_agree_with_the_terminal_report() {
        let tree = Tree::star(8);
        let reqs = mixed(tree.len(), 2000, 9);
        let engine =
            ShardedEngine::new(Forest::partition(&tree, 2), &factory, EngineConfig::new(2));
        let (router, mut workers) = engine.into_workers().expect("detaches");

        let mut mid = Vec::new();
        for (i, &r) in reqs.iter().enumerate() {
            let (sid, local) = router.route(r).expect("in range");
            workers[sid.index()].step(local).expect("valid");
            if i == reqs.len() / 2 {
                mid = workers.iter().map(ShardWorker::report_snapshot).collect();
            }
        }
        let last: Vec<Report> = workers.iter().map(ShardWorker::report_snapshot).collect();
        for (m, l) in mid.iter().zip(&last) {
            assert!(m.rounds <= l.rounds, "snapshots only grow");
            assert!(m.cost.total() <= l.cost.total());
        }
        for (w, want) in workers.into_iter().zip(last) {
            assert_eq!(
                w.into_report().expect("valid"),
                want,
                "a final snapshot equals the terminal report"
            );
        }
    }

    #[test]
    fn worker_windows_match_engine_timeline() {
        let tree = Tree::star(12);
        let reqs = mixed(tree.len(), 3000, 21);
        let cfg = EngineConfig::new(2).audit_every(256).telemetry(true);

        let mut engine = ShardedEngine::new(Forest::partition(&tree, 3), &factory, cfg);
        engine.submit_batch(&reqs).expect("valid");
        let base = engine.timeline();

        let engine = ShardedEngine::new(Forest::partition(&tree, 3), &factory, cfg);
        let (router, mut workers) = engine.into_workers().expect("detaches");
        for &r in &reqs {
            let (sid, local) = router.route(r).expect("in range");
            workers[sid.index()].step(local).expect("valid");
        }
        let windows: Vec<WindowRecord> = workers.iter().flat_map(ShardWorker::windows).collect();
        let live = timeline_from_windows(&cfg, workers.len() as u32, windows);
        assert_eq!(live, base, "detached telemetry is bit-identical to the engine's");
    }

    #[test]
    fn router_rejects_out_of_universe_ids_and_poison_sticks() {
        let tree = Tree::star(4);
        let engine =
            ShardedEngine::new(Forest::partition(&tree, 2), &factory, EngineConfig::new(2));
        let (router, mut workers) = engine.into_workers().expect("detaches");
        assert!(router.route(Request::pos(NodeId(99))).is_err());

        // Drive a worker into a violation with an out-of-range local id.
        let err = workers[0].step(Request::pos(NodeId(77))).unwrap_err();
        assert!(err.contains("77"), "got: {err}");
        assert_eq!(workers[0].error(), Some(err.as_str()));
        // Sticky: further batches refuse, and the terminal report errors.
        assert!(workers[0].run_batch(&[Request::pos(NodeId(1))]).is_err());
        let w = workers.remove(0);
        assert!(w.into_report().is_err());
    }
}
