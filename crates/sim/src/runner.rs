//! The simulation driver: feeds requests to a policy, verifies every claim
//! the policy makes, accounts all costs, and maintains the event-space
//! instrumentation.
//!
//! The simulator is adversarial towards the policy: it mirrors the cache
//! itself, recomputes whether each round pays, and validates every action
//! against the problem definition (Section 3) — a buggy policy cannot
//! misreport its own cost or smuggle an invalid changeset through.

use otc_core::cache::CacheSet;
use otc_core::changeset::{is_valid_negative, is_valid_positive};
use otc_core::policy::{request_pays, Action, CachePolicy};
use otc_core::request::Request;
use otc_core::tree::{NodeId, Tree};

use crate::report::{FieldStats, PeriodStats, PhaseStats, Report};

/// Simulation options.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// The per-node reorganisation cost α.
    pub alpha: u64,
    /// Verify subforest/validity/capacity invariants after every action.
    pub validate: bool,
    /// Track fields, periods and phases (small constant overhead).
    pub instrument: bool,
}

impl SimConfig {
    /// Standard configuration: full validation and instrumentation.
    #[must_use]
    pub fn new(alpha: u64) -> Self {
        Self { alpha, validate: true, instrument: true }
    }

    /// Fast configuration for throughput benchmarks: no checking, no
    /// instrumentation.
    #[must_use]
    pub fn bare(alpha: u64) -> Self {
        Self { alpha, validate: false, instrument: false }
    }
}

/// Closes the field belonging to an applied changeset and reports
/// `(paying requests inside, nodes with a "full" period)`.
fn close_field(pending: &mut [u64], set: &[NodeId], half_alpha: u64) -> (u64, u64) {
    let mut req = 0u64;
    let mut full = 0u64;
    for &v in set {
        let p = pending[v.index()];
        req += p;
        if p >= half_alpha {
            full += 1;
        }
        pending[v.index()] = 0;
    }
    (req, full)
}

/// Runs `policy` over `requests` and returns the verified report.
///
/// ```
/// use std::sync::Arc;
/// use otc_core::{Request, Tree, TcConfig, TcFast};
/// use otc_sim::{run_policy, SimConfig};
///
/// let tree = Arc::new(Tree::star(3));
/// let leaf = tree.leaves()[0];
/// let reqs = vec![Request::pos(leaf); 5];
/// let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(2, 2));
/// let report = run_policy(&tree, &mut tc, &reqs, SimConfig::new(2)).unwrap();
/// // Two misses, then the fetch (α = 2), then free hits.
/// assert_eq!(report.cost.service, 2);
/// assert_eq!(report.cost.reorg, 2);
/// ```
///
/// # Errors
/// Returns a description of the first protocol violation: wrong
/// `paid_service` flag, invalid changeset, flush payload mismatch,
/// capacity overflow, subforest violation, or mirror divergence.
pub fn run_policy(
    tree: &Tree,
    policy: &mut dyn CachePolicy,
    requests: &[Request],
    cfg: SimConfig,
) -> Result<Report, String> {
    let n = tree.len();
    let mut mirror = CacheSet::empty(n);
    let mut report = Report { name: policy.name().to_string(), ..Report::default() };
    // Paying requests per node since its last state change (its slice of
    // the current field).
    let mut pending = vec![0u64; n];
    let mut fields = FieldStats::default();
    let mut periods = PeriodStats::default();
    let half_alpha = cfg.alpha.div_ceil(2);

    // Phase bookkeeping.
    let mut phase = PhaseStats::default();
    let mut phase_pout = 0u64;
    let mut phase_pin = 0u64;

    for (round, &req) in requests.iter().enumerate() {
        let expected_pays = request_pays(&mirror, req);
        let out = policy.step(req);
        if out.paid_service != expected_pays {
            return Err(format!(
                "round {round}: policy reported paid={} but the mirror says {}",
                out.paid_service, expected_pays
            ));
        }
        report.rounds += 1;
        phase.rounds += 1;
        if expected_pays {
            report.paid_rounds += 1;
            report.cost.service += 1;
            phase.cost.service += 1;
            pending[req.node.index()] += 1;
        }

        for action in &out.actions {
            // Reorganisation cost is charged to the phase the action ends
            // in — for a flush that is the *dying* phase (the paper's
            // `kP·α` final-eviction term), so account it before any phase
            // hand-over below.
            let touched = action.nodes_touched() as u64;
            report.cost.reorg += cfg.alpha * touched;
            phase.cost.reorg += cfg.alpha * touched;
            match action {
                Action::Fetch(set) => {
                    if cfg.validate && !is_valid_positive(tree, &mirror, set) {
                        return Err(format!("round {round}: invalid positive changeset {set:?}"));
                    }
                    mirror.fetch(set);
                    report.fetch_events += 1;
                    report.nodes_fetched += set.len() as u64;
                    if cfg.instrument {
                        let (req_in_field, full) = close_field(&mut pending, set, half_alpha);
                        fields.positive_fields += 1;
                        fields.total_size += set.len() as u64;
                        fields.total_requests += req_in_field;
                        fields.field_sizes.push(set.len() as u64);
                        if req_in_field != set.len() as u64 * cfg.alpha {
                            fields.saturation_violations += 1;
                        }
                        // A fetch closes one out-period per fetched node.
                        phase_pout += set.len() as u64;
                        periods.pout += set.len() as u64;
                        periods.full_out += full;
                        phase.fields_size += set.len() as u64;
                    }
                }
                Action::Evict(set) => {
                    if cfg.validate && !is_valid_negative(tree, &mirror, set) {
                        return Err(format!("round {round}: invalid negative changeset {set:?}"));
                    }
                    mirror.evict(set);
                    report.evict_events += 1;
                    report.nodes_evicted += set.len() as u64;
                    if cfg.instrument {
                        let (req_in_field, full) = close_field(&mut pending, set, half_alpha);
                        fields.negative_fields += 1;
                        fields.total_size += set.len() as u64;
                        fields.total_requests += req_in_field;
                        fields.field_sizes.push(set.len() as u64);
                        if req_in_field != set.len() as u64 * cfg.alpha {
                            fields.saturation_violations += 1;
                        }
                        // An eviction closes one in-period per node.
                        phase_pin += set.len() as u64;
                        periods.pin += set.len() as u64;
                        periods.full_in += full;
                        phase.fields_size += set.len() as u64;
                    }
                }
                Action::Flush(set) => {
                    let mut expect: Vec<_> = mirror.iter().collect();
                    expect.sort_unstable();
                    let mut got = set.clone();
                    got.sort_unstable();
                    if got != expect {
                        return Err(format!(
                            "round {round}: flush payload {got:?} differs from cache {expect:?}"
                        ));
                    }
                    report.flush_events += 1;
                    report.nodes_evicted += set.len() as u64;
                    if cfg.instrument {
                        // The flush ends the phase: kP is the cache size
                        // just before the flush; all pending request mass
                        // belongs to the dying phase's open field.
                        phase.k_p = mirror.len();
                        phase.finished = true;
                        phase.open_requests = pending.iter().sum();
                        periods.per_phase_balance.push((phase_pout, phase_pin, phase.k_p));
                        report.phases.push(std::mem::take(&mut phase));
                        phase_pout = 0;
                        phase_pin = 0;
                        pending.fill(0);
                    }
                    let _ = mirror.flush();
                }
            }
        }

        if cfg.validate {
            mirror
                .validate(tree)
                .map_err(|e| format!("round {round}: mirror invalid after actions: {e}"))?;
            if mirror.len() > policy.capacity() {
                return Err(format!(
                    "round {round}: capacity exceeded: {} > {}",
                    mirror.len(),
                    policy.capacity()
                ));
            }
            if mirror != *policy.cache() {
                return Err(format!("round {round}: policy cache diverged from mirror"));
            }
        }
        report.peak_cache = report.peak_cache.max(mirror.len());
    }

    if cfg.instrument {
        // Close the unfinished phase and account the open field F∞.
        phase.k_p = mirror.len();
        phase.finished = false;
        phase.open_requests = pending.iter().sum();
        periods.per_phase_balance.push((phase_pout, phase_pin, phase.k_p));
        report.phases.push(phase);
        fields.open_field_requests = pending.iter().sum();
        report.fields = Some(fields);
        report.periods = Some(periods);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use otc_core::policy::StepOutcome;
    use otc_core::tc::{TcConfig, TcFast};
    use otc_core::tree::Tree;
    use otc_core::Request;

    #[test]
    fn accounting_matches_manual_trace() {
        // Star(3), α = 2, capacity 2: two requests to a leaf fetch it.
        let tree = Arc::new(Tree::star(3));
        let leaf = tree.leaves()[0];
        let reqs = vec![Request::pos(leaf), Request::pos(leaf), Request::pos(leaf)];
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(2, 2));
        let report = run_policy(&tree, &mut tc, &reqs, SimConfig::new(2)).expect("valid run");
        assert_eq!(report.cost.service, 2, "two paying requests");
        assert_eq!(report.cost.reorg, 2, "one node fetched at α = 2");
        assert_eq!(report.fetch_events, 1);
        assert_eq!(report.paid_rounds, 2);
        assert_eq!(report.peak_cache, 1);
        let fields = report.fields.expect("instrumented");
        assert_eq!(fields.positive_fields, 1);
        assert_eq!(fields.saturation_violations, 0);
        assert_eq!(fields.total_requests, 2);
        assert_eq!(fields.open_field_requests, 0, "third request was free");
    }

    #[test]
    fn tc_fields_always_saturated() {
        let tree = Arc::new(Tree::kary(2, 4));
        let mut rng = otc_util::SplitMix64::new(5);
        let reqs: Vec<Request> = (0..4000)
            .map(|_| {
                let v = otc_core::tree::NodeId(rng.index(tree.len()) as u32);
                if rng.chance(0.4) {
                    Request::neg(v)
                } else {
                    Request::pos(v)
                }
            })
            .collect();
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(3, 6));
        let report = run_policy(&tree, &mut tc, &reqs, SimConfig::new(3)).expect("valid");
        let fields = report.fields.expect("instrumented");
        assert!(fields.positive_fields + fields.negative_fields > 0, "something happened");
        assert_eq!(fields.saturation_violations, 0, "Observation 5.2 holds for every field");
        assert_eq!(
            fields.total_requests,
            fields.total_size * 3,
            "aggregate saturation: req = size·α"
        );
    }

    #[test]
    fn period_balance_matches_lemma() {
        // pout = pin + kP per phase (Lemma 5.11's bookkeeping).
        let tree = Arc::new(Tree::kary(2, 3));
        let mut rng = otc_util::SplitMix64::new(9);
        let reqs: Vec<Request> = (0..6000)
            .map(|_| {
                let v = otc_core::tree::NodeId(rng.index(tree.len()) as u32);
                if rng.chance(0.45) {
                    Request::neg(v)
                } else {
                    Request::pos(v)
                }
            })
            .collect();
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(2, 3));
        let report = run_policy(&tree, &mut tc, &reqs, SimConfig::new(2)).expect("valid");
        let periods = report.periods.expect("instrumented");
        for &(pout, pin, kp) in &periods.per_phase_balance {
            assert_eq!(pout, pin + kp as u64, "pout = pin + kP per phase");
        }
        // All in-periods are full for TC: an eviction of X needs |X|·α
        // negative requests distributed over X... (exactly α per node only
        // after shifting; raw counts are at least 0). The raw guarantee is
        // aggregate: total in-field requests = α·size. So just sanity-check
        // counters exist.
        assert!(periods.pout > 0);
    }

    /// A policy that lies about paying — the simulator must catch it.
    struct Liar {
        cache: CacheSet,
    }
    impl CachePolicy for Liar {
        fn name(&self) -> &'static str {
            "liar"
        }
        fn capacity(&self) -> usize {
            4
        }
        fn cache(&self) -> &CacheSet {
            &self.cache
        }
        fn reset(&mut self) {}
        fn step(&mut self, _req: Request) -> StepOutcome {
            StepOutcome { paid_service: false, actions: vec![] }
        }
    }

    #[test]
    fn liar_is_caught() {
        let tree = Tree::star(2);
        let mut liar = Liar { cache: CacheSet::empty(tree.len()) };
        let reqs = vec![Request::pos(tree.leaves()[0])];
        let err = run_policy(&tree, &mut liar, &reqs, SimConfig::new(2)).unwrap_err();
        assert!(err.contains("paid"), "unexpected error: {err}");
    }

    /// A policy that emits an invalid fetch (internal node without its
    /// children).
    struct InvalidFetcher {
        cache: CacheSet,
        fired: bool,
    }
    impl CachePolicy for InvalidFetcher {
        fn name(&self) -> &'static str {
            "invalid-fetcher"
        }
        fn capacity(&self) -> usize {
            8
        }
        fn cache(&self) -> &CacheSet {
            &self.cache
        }
        fn reset(&mut self) {}
        fn step(&mut self, req: Request) -> StepOutcome {
            if self.fired {
                return StepOutcome { paid_service: true, actions: vec![] };
            }
            self.fired = true;
            // Fetch the root alone — invalid on any tree with children.
            self.cache.insert(otc_core::tree::NodeId(0));
            StepOutcome {
                paid_service: req.is_positive(),
                actions: vec![Action::Fetch(vec![otc_core::tree::NodeId(0)])],
            }
        }
    }

    #[test]
    fn invalid_changeset_is_caught() {
        let tree = Tree::star(3);
        let mut p = InvalidFetcher { cache: CacheSet::empty(tree.len()), fired: false };
        let reqs = vec![Request::pos(tree.leaves()[0])];
        let err = run_policy(&tree, &mut p, &reqs, SimConfig::new(2)).unwrap_err();
        assert!(err.contains("invalid positive changeset"), "unexpected error: {err}");
    }

    /// A policy whose internal cache silently diverges from its actions.
    struct Divergent {
        cache: CacheSet,
        fired: bool,
    }
    impl CachePolicy for Divergent {
        fn name(&self) -> &'static str {
            "divergent"
        }
        fn capacity(&self) -> usize {
            8
        }
        fn cache(&self) -> &CacheSet {
            &self.cache
        }
        fn reset(&mut self) {}
        fn step(&mut self, req: Request) -> StepOutcome {
            if !self.fired {
                self.fired = true;
                // Claims to fetch a leaf but doesn't record it internally.
                return StepOutcome {
                    paid_service: req.is_positive(),
                    actions: vec![Action::Fetch(vec![otc_core::tree::NodeId(1)])],
                };
            }
            StepOutcome { paid_service: req.is_positive(), actions: vec![] }
        }
    }

    #[test]
    fn divergent_cache_is_caught() {
        let tree = Tree::star(3);
        let mut p = Divergent { cache: CacheSet::empty(tree.len()), fired: false };
        let reqs = vec![Request::pos(otc_core::tree::NodeId(1))];
        let err = run_policy(&tree, &mut p, &reqs, SimConfig::new(2)).unwrap_err();
        assert!(err.contains("diverged"), "unexpected error: {err}");
    }

    #[test]
    fn bare_mode_skips_checks() {
        // The divergent policy passes in bare mode (documented risk).
        let tree = Tree::star(3);
        let mut p = Divergent { cache: CacheSet::empty(tree.len()), fired: false };
        let reqs = vec![Request::pos(otc_core::tree::NodeId(1))];
        let report = run_policy(&tree, &mut p, &reqs, SimConfig::bare(2)).expect("no checks");
        assert_eq!(report.cost.reorg, 2);
    }
}
